"""Backend selection and application.

Two backends execute a machine:

``interp``
    the ordinary class hierarchy — every hook point (tracer, verifier,
    monitor, fault filter) is checked on the hot paths;
``elab``
    a generated specialized core (:mod:`repro.elab.codegen`) — constants
    baked in, pump loops fused.  Bit-identical to ``interp`` on the
    canonical reporting surface (events / time / ``nc_stats`` /
    ``memory_stats`` / ``utilizations`` / ``ring_interface_delays``).
    Two compiled variants exist, selected here per run:

    * **plain** — every hook check deleted; observability-only telemetry
      (FIFO depth/wait histograms, bus ``transactions``, ring
      ``packets_carried``, CPU ``retries``) is not maintained;
    * **instrumented** — tracer stamps and that telemetry compiled back
      in inline, so tracer/probe runs execute on the elab core at full
      speed (the obs hooks never schedule events: identical
      ``(events_run, now)``).

Selection mirrors the scheduler knob: an explicit ``Machine(backend=...)``
argument wins, then ``NUMACHINE_BACKEND`` (``auto`` | ``interp`` | ``elab``),
and ``auto`` uses the specialized core whenever it safely can.

The elaborated core is applied by *re-classing* the already-wired component
instances (``obj.__class__ = Generated``) — no state is copied, moved, or
rebuilt, which is what keeps the switch exact.  Two safety rules:

* **non-observability hooks force interp**: a monitor, verifier or fault
  injector rewires behaviour the generated code cannot honour, so any of
  them keeps the machine interpreted (a watchdog is engine-level and
  stays allowed).  Observability hooks — tracers attached by
  :class:`repro.obs.Observability`, probes, the telemetry stream — select
  the *instrumented* elab variant instead of forcing interp;
* **no switching under in-flight events**: pending events hold bound
  methods captured under the old classes; the backend only flips when the
  event queue is empty (:meth:`sync` is a no-op otherwise).

If elaboration fails (unsupported topology, unwritable cache dir with a
broken generator, ...) the machine silently stays interpreted — ``auto``
never breaks a run; an explicit ``elab`` request warns.
"""

from __future__ import annotations

import os
import warnings

BACKENDS = ("auto", "interp", "elab")


def backend_name(pref=None) -> str:
    """Resolve the backend choice: explicit preference > environment > auto."""
    name = pref or os.environ.get("NUMACHINE_BACKEND") or "auto"
    name = str(name).strip().lower()
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}: expected one of {', '.join(BACKENDS)}"
        )
    return name


def interp_only_hooks(machine) -> bool:
    """Any hook attached that rewires behaviour the generated code cannot
    honour (monitor / verifier / fault injection)?

    Scans component hook slots directly (not just the Machine-level
    attributes) so hooks installed by hand in tests are honoured too.
    """
    if (
        machine.monitor is not None
        or machine.verifier is not None
        or machine.fault is not None
    ):
        return True
    for st in machine.stations:
        sri = st.ring_interface
        if sri.verifier is not None or sri.fault_filter is not None:
            return True
        for mod in (st.memory, st.nc):
            if mod.monitor is not None or mod.verifier is not None:
                return True
        for cpu in st.cpus:
            if cpu.verifier is not None:
                return True
    return False


def obs_hooks_active(machine) -> bool:
    """Any observability hook (tracer / probes / telemetry stream)
    attached?  These never perturb the event stream, so they run on the
    *instrumented* elab variant instead of forcing interp."""
    if machine.obs is not None:
        return True
    for st in machine.stations:
        if st.ring_interface.tracer is not None:
            return True
        for mod in (st.memory, st.nc):
            if mod.tracer is not None:
                return True
        for cpu in st.cpus:
            if cpu.tracer is not None:
                return True
    for iri in machine.net.iris:
        if iri.tracer is not None:
            return True
    return False


def hooks_active(machine) -> bool:
    """Any hook attached at all (back-compat predicate)."""
    return interp_only_hooks(machine) or obs_hooks_active(machine)


# ----------------------------------------------------------------------
def sync(machine) -> None:
    """Bring the machine's active backend in line with the selection and
    the hook state.  Called on entry to :meth:`Machine.run`; a no-op when
    nothing changed or events are in flight.

    The target is three-way: interpreted (``None``), the plain elab
    variant, or the instrumented elab variant when only observability
    hooks are attached."""
    name = backend_name(machine._backend_pref)
    if (
        name == "interp"
        or getattr(machine, "_elab_failed", False)
        or interp_only_hooks(machine)
    ):
        target = None
    elif obs_hooks_active(machine):
        target = "instr"
    else:
        target = "plain"
    current = machine._elab_variant if machine._elab_applied else None
    if target == current:
        return
    if machine.engine.pending:
        return  # pending events hold old bound methods; never swap now
    if machine._elab_applied:
        _revert(machine)
        machine._elab_applied = False
        machine._elab_variant = None
    if target is None:
        return
    try:
        from .ir import MachineIR
        from .store import load_module

        mod = load_module(
            MachineIR.from_machine(machine, instrumented=(target == "instr"))
        )
        _specialize(machine, mod)
    except Exception as exc:
        machine._elab_failed = True
        if name == "elab":
            warnings.warn(
                f"NUMACHINE_BACKEND=elab unavailable ({exc}); "
                "running interpreted",
                RuntimeWarning,
                stacklevel=2,
            )
        return
    machine._elab_applied = True
    machine._elab_variant = target


def ensure_interp(machine) -> None:
    """Force the interpreted classes back in place (hook attachment)."""
    if not machine._elab_applied:
        return
    if machine.engine.pending:
        raise RuntimeError(
            "cannot attach hooks while elaborated events are in flight; "
            "drain the engine (run to completion) first"
        )
    _revert(machine)
    machine._elab_applied = False
    machine._elab_variant = None


# ----------------------------------------------------------------------
def _recapture(machine) -> None:
    """Re-capture the bound methods the ring interfaces hold: a bound
    method pins the function of the class *at capture time*, so it must be
    refreshed after every class swap (in either direction)."""
    for st in machine.stations:
        sri = st.ring_interface
        sri.bus_granter = st.bus.request
        sri.deliver_cb = st.deliver_from_ring


def _specialize(machine, mod) -> None:
    for st in machine.stations:
        st.__class__ = mod.ElabStation
        st.bus.__class__ = mod.ElabBus
        st.memory.__class__ = mod.ElabMem
        st.memory.out_port.__class__ = mod.ElabPort
        st.nc.__class__ = mod.ElabNC
        st.nc.out_port.__class__ = mod.ElabPort
        for cpu in st.cpus:
            cpu.__class__ = mod.ElabCPU
        st.ring_interface.__class__ = mod.SRI_CLASSES[st.station_id]
    for (level, _), ring in machine.net.rings.items():
        ring.__class__ = mod.RING_CLASSES[level]
    for iri in machine.net.iris:
        iri.__class__ = mod.IRI_CLASSES[iri.name]
    _recapture(machine)


def _revert(machine) -> None:
    from ..cpu.processor import Processor
    from ..interconnect.interfaces import (
        InterRingInterface,
        StationRingInterface,
    )
    from ..interconnect.ring import Ring
    from ..system.bus import Bus, OrderedPort
    from ..system.station import Station

    # the interpreted classes are the active protocol's engine classes,
    # not the protocol-agnostic bases
    proto = machine.protocol
    for st in machine.stations:
        st.__class__ = Station
        st.bus.__class__ = Bus
        st.memory.__class__ = proto.memory_class
        st.memory.out_port.__class__ = OrderedPort
        st.nc.__class__ = proto.nc_class
        st.nc.out_port.__class__ = OrderedPort
        for cpu in st.cpus:
            cpu.__class__ = Processor
        st.ring_interface.__class__ = StationRingInterface
    for ring in machine.net.rings.values():
        ring.__class__ = Ring
    for iri in machine.net.iris:
        iri.__class__ = InterRingInterface
    _recapture(machine)
    _resync_telemetry(
        machine,
        integrate=(getattr(machine, "_elab_variant", None) == "instr"),
    )


def _resync_telemetry(machine, integrate: bool = False) -> None:
    """The *plain* specialized core does not maintain the FIFO depth
    integral, so every fifo's ``_last_change`` clock is stale after a
    plain-elab run.  Reset it to *now* before interpreted code resumes its
    ``depth_area`` updates, otherwise the first interp push/pop would
    integrate the whole elab era at the current depth.

    The *instrumented* core keeps the integral live; there the un-flushed
    tail span ``[_last_change, now]`` is real area, so it is integrated
    (not discarded) before the clock reset."""
    now = machine.engine.now
    if integrate:
        for f in _all_fifos(machine):
            f._depth_area += len(f._items) * (now - f._last_change)
            f._last_change = now
    else:
        for f in _all_fifos(machine):
            f._last_change = now


def _all_fifos(machine):
    for st in machine.stations:
        sri = st.ring_interface
        yield from (st.memory.in_fifo, st.nc.in_fifo)
        yield from (sri.out_fifo, sri.in_fifo, sri.sink_q, sri.nonsink_q)
    for iri in machine.net.iris:
        yield from (iri.up_fifo, iri.down_fifo)
