"""Backend selection and application.

Two backends execute a machine:

``interp``
    the ordinary class hierarchy — every hook point (tracer, verifier,
    monitor, fault filter) is checked on the hot paths;
``elab``
    the generated specialized core (:mod:`repro.elab.codegen`) — hook
    checks deleted, constants baked in, pump loops fused.  Bit-identical
    to ``interp`` on the canonical reporting surface (events / time /
    ``nc_stats`` / ``memory_stats`` / ``utilizations`` /
    ``ring_interface_delays``); observability-only telemetry (FIFO
    depth/wait histograms, bus ``transactions``, ring ``packets_carried``,
    CPU ``retries``) is not maintained — attach an observability hook to
    collect it, which forces ``interp``.

Selection mirrors the scheduler knob: an explicit ``Machine(backend=...)``
argument wins, then ``NUMACHINE_BACKEND`` (``auto`` | ``interp`` | ``elab``),
and ``auto`` uses the specialized core whenever it safely can.

The elaborated core is applied by *re-classing* the already-wired component
instances (``obj.__class__ = Generated``) — no state is copied, moved, or
rebuilt, which is what keeps the switch exact.  Two safety rules:

* **hooks force interp**: if any observability / verifier / monitor /
  fault hook is attached (a watchdog is engine-level and stays allowed),
  the machine runs interpreted so every hook keeps firing;
* **no switching under in-flight events**: pending events hold bound
  methods captured under the old classes; the backend only flips when the
  event queue is empty (:meth:`sync` is a no-op otherwise).

If elaboration fails (unsupported topology, unwritable cache dir with a
broken generator, ...) the machine silently stays interpreted — ``auto``
never breaks a run; an explicit ``elab`` request warns.
"""

from __future__ import annotations

import os
import warnings

BACKENDS = ("auto", "interp", "elab")


def backend_name(pref=None) -> str:
    """Resolve the backend choice: explicit preference > environment > auto."""
    name = pref or os.environ.get("NUMACHINE_BACKEND") or "auto"
    name = str(name).strip().lower()
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}: expected one of {', '.join(BACKENDS)}"
        )
    return name


def hooks_active(machine) -> bool:
    """Any hook attached anywhere the generated code would skip it?

    Scans component hook slots directly (not just the Machine-level
    attributes) so hooks installed by hand in tests are honoured too.
    """
    if (
        machine.monitor is not None
        or machine.obs is not None
        or machine.verifier is not None
        or machine.fault is not None
    ):
        return True
    for st in machine.stations:
        sri = st.ring_interface
        if (
            sri.tracer is not None
            or sri.verifier is not None
            or sri.fault_filter is not None
        ):
            return True
        for mod in (st.memory, st.nc):
            if (
                mod.monitor is not None
                or mod.tracer is not None
                or mod.verifier is not None
            ):
                return True
        for cpu in st.cpus:
            if cpu.tracer is not None or cpu.verifier is not None:
                return True
    for iri in machine.net.iris:
        if iri.tracer is not None:
            return True
    return False


# ----------------------------------------------------------------------
def sync(machine) -> None:
    """Bring the machine's active backend in line with the selection and
    the hook state.  Called on entry to :meth:`Machine.run`; a no-op when
    nothing changed or events are in flight."""
    name = backend_name(machine._backend_pref)
    want_elab = (
        name != "interp"
        and not getattr(machine, "_elab_failed", False)
        and not hooks_active(machine)
    )
    if want_elab == machine._elab_applied:
        return
    if machine.engine.pending:
        return  # pending events hold old bound methods; never swap now
    if not want_elab:
        _revert(machine)
        machine._elab_applied = False
        return
    try:
        from .ir import MachineIR
        from .store import load_module

        mod = load_module(MachineIR.from_machine(machine))
        _specialize(machine, mod)
    except Exception as exc:
        machine._elab_failed = True
        if name == "elab":
            warnings.warn(
                f"NUMACHINE_BACKEND=elab unavailable ({exc}); "
                "running interpreted",
                RuntimeWarning,
                stacklevel=2,
            )
        return
    machine._elab_applied = True


def ensure_interp(machine) -> None:
    """Force the interpreted classes back in place (hook attachment)."""
    if not machine._elab_applied:
        return
    if machine.engine.pending:
        raise RuntimeError(
            "cannot attach hooks while elaborated events are in flight; "
            "drain the engine (run to completion) first"
        )
    _revert(machine)
    machine._elab_applied = False


# ----------------------------------------------------------------------
def _recapture(machine) -> None:
    """Re-capture the bound methods the ring interfaces hold: a bound
    method pins the function of the class *at capture time*, so it must be
    refreshed after every class swap (in either direction)."""
    for st in machine.stations:
        sri = st.ring_interface
        sri.bus_granter = st.bus.request
        sri.deliver_cb = st.deliver_from_ring


def _specialize(machine, mod) -> None:
    for st in machine.stations:
        st.__class__ = mod.ElabStation
        st.bus.__class__ = mod.ElabBus
        st.memory.__class__ = mod.ElabMem
        st.memory.out_port.__class__ = mod.ElabPort
        st.nc.__class__ = mod.ElabNC
        st.nc.out_port.__class__ = mod.ElabPort
        for cpu in st.cpus:
            cpu.__class__ = mod.ElabCPU
        st.ring_interface.__class__ = mod.SRI_CLASSES[st.station_id]
    for (level, _), ring in machine.net.rings.items():
        ring.__class__ = mod.RING_CLASSES[level]
    for iri in machine.net.iris:
        iri.__class__ = mod.IRI_CLASSES[iri.name]
    _recapture(machine)


def _revert(machine) -> None:
    from ..cache.network_cache import NetworkCache
    from ..cpu.processor import Processor
    from ..interconnect.interfaces import (
        InterRingInterface,
        StationRingInterface,
    )
    from ..interconnect.ring import Ring
    from ..memory.memory_module import MemoryModule
    from ..system.bus import Bus, OrderedPort
    from ..system.station import Station

    for st in machine.stations:
        st.__class__ = Station
        st.bus.__class__ = Bus
        st.memory.__class__ = MemoryModule
        st.memory.out_port.__class__ = OrderedPort
        st.nc.__class__ = NetworkCache
        st.nc.out_port.__class__ = OrderedPort
        for cpu in st.cpus:
            cpu.__class__ = Processor
        st.ring_interface.__class__ = StationRingInterface
    for ring in machine.net.rings.values():
        ring.__class__ = Ring
    for iri in machine.net.iris:
        iri.__class__ = InterRingInterface
    _recapture(machine)
    _resync_telemetry(machine)


def _resync_telemetry(machine) -> None:
    """The specialized core does not maintain the FIFO depth integral, so
    every fifo's ``_last_change`` clock is stale after an elab run.  Reset
    it to *now* before interpreted code resumes its ``depth_area`` updates,
    otherwise the first interp push/pop would integrate the whole elab era
    at the current depth."""
    now = machine.engine.now
    for f in _all_fifos(machine):
        f._last_change = now


def _all_fifos(machine):
    for st in machine.stations:
        sri = st.ring_interface
        yield from (st.memory.in_fifo, st.nc.in_fifo)
        yield from (sri.out_fifo, sri.in_fifo, sri.sink_q, sri.nonsink_q)
    for iri in machine.net.iris:
        yield from (iri.up_fifo, iri.down_fifo)
