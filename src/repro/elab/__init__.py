"""Build-time elaboration: compile a MachineConfig into a specialized core.

The machine's behaviour is fully determined at build time by the config,
the routing-mask layout and the protocol transition tables, so instead of
interpreting it event by event through generic dispatch, this package
*elaborates* it once:

* :mod:`repro.elab.ir` extracts everything build-time-constant from a
  wired :class:`~repro.system.machine.Machine` into a small IR;
* :mod:`repro.elab.codegen` emits a specialized Python module from the IR
  (literal constants, fused pump loops, dense coherence dispatch, no hook
  checks);
* :mod:`repro.elab.store` caches generated modules on disk keyed by config
  fingerprint (under ``.numachine_cache/elab/``);
* :mod:`repro.elab.backend` selects and applies a backend per run
  (``NUMACHINE_BACKEND`` = ``auto`` | ``interp`` | ``elab``), falling back
  to the interpreter whenever any observability / verification / fault
  hook is attached so hooked runs stay bit-identical.
"""

from .backend import BACKENDS, backend_name, hooks_active, sync
from .ir import ELAB_SCHEMA, MachineIR, config_elab_fingerprint

__all__ = [
    "BACKENDS",
    "ELAB_SCHEMA",
    "MachineIR",
    "backend_name",
    "config_elab_fingerprint",
    "hooks_active",
    "sync",
]
