"""Intermediate representation for the build-time elaborator.

A :class:`MachineIR` captures everything about a machine that is *fixed at
build time* — the geometry, the routing-mask bit layout, every derived tick
constant, ring sizes and sequencing positions, FIFO capacities — as plain
data.  The code generator (:mod:`repro.elab.codegen`) consumes it to emit a
specialized simulator module in which all of these appear as literals.

The IR is extracted from a constructed :class:`~repro.system.machine.Machine`
rather than recomputed from the config, so the elaborated core specializes
exactly the topology the interpreter wired (ring sizes, IRI positions,
sequencing points) with no duplicated construction rules.

The fingerprint hashes the full config plus the package version and the
elaborator schema number, so a generated module can never be reused across
a config change or a code change that bumps either.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: bump whenever the generated module's shape or semantics change; stale
#: on-disk modules are ignored (their fingerprint no longer matches)
ELAB_SCHEMA = 5


@dataclass(frozen=True)
class StationIR:
    """Per-station routing constants (class attributes of the generated
    per-station ring-interface subclass)."""

    station_id: int
    #: this station's bit inside the level-0 field (already shifted)
    my_bit: int
    #: this station's bit inside the level-1 field (shifted); 0 on
    #: single-level machines
    upper_bit: int
    #: True when this station interface is its ring's sequencing point
    #: (single-level machines only)
    is_seq: bool


@dataclass(frozen=True)
class IriIR:
    """Per-inter-ring-interface constants."""

    name: str
    child_size: int
    parent_size: int
    parent_level: int
    parent_shift: int
    parent_field_mask: int
    #: bit for this interface's position inside the parent-level field
    #: (unshifted, as the interp compares unshifted fields)
    parent_bit: int
    child_is_seq: bool
    parent_is_seq: bool
    #: OR of all field masks *above* the parent level (0 = parent is top)
    higher_mask: int
    #: OR of all field masks *below* the parent level (clear_upper keep-mask)
    keep_mask: int


@dataclass
class MachineIR:
    fingerprint: str
    num_levels: int
    levels: Tuple[int, ...]
    num_stations: int
    #: module-level literal constants for codegen, name -> int
    consts: Dict[str, int] = field(default_factory=dict)
    ring_sizes: Dict[int, int] = field(default_factory=dict)  # level -> size
    stations: List[StationIR] = field(default_factory=list)
    iris: List[IriIR] = field(default_factory=list)
    #: when True the generated core carries tracer stamps and the
    #: observability-only telemetry (FIFO depth/wait integrals, bus
    #: transactions, ring packets_carried, CPU retries) inline — a separate
    #: fingerprint axis, so both variants coexist in the module store
    instrumented: bool = False
    #: when True the generated core mirrors the transit-fusion fast path
    #: (NUMACHINE_FUSE=on): ring sends route through the interpreted fused
    #: ``Ring._send`` and the idle-wakeup / service-done elisions are
    #: compiled in — a third fingerprint axis (see repro.interconnect.ring)
    fused: bool = False
    #: coherence-protocol plug-in whose DISPATCH tables the generated core
    #: compiles into dense dispatch — a fourth fingerprint axis
    protocol: str = "numachine"

    # ------------------------------------------------------------------
    @classmethod
    def from_machine(cls, machine, instrumented: bool = False) -> "MachineIR":
        config = machine.config
        codec = machine.codec
        geometry = config.geometry
        levels = tuple(geometry.levels)
        num_levels = len(levels)

        in_cap = config.ring_in_fifo_capacity
        iri_cap = config.iri_fifo_capacity
        from ..sim.engine import ns_to_ticks

        consts = {
            "ARB": ns_to_ticks(config.bus_arb_ns),
            "SLOT": config.ring_slot_ticks,
            "HOP": config.ring_hop_ticks,
            "HALT": config.ring_slot_ticks * 4,
            "SEQ": ns_to_ticks(config.seq_point_ns),
            "SWITCH": ns_to_ticks(config.iri_switch_ns),
            "PKT_GEN": ns_to_ticks(config.pkt_gen_ns),
            "HANDLER": ns_to_ticks(config.handler_ns),
            "TAG": ns_to_ticks(config.nc_tag_ns),
            "LOOKUP": ns_to_ticks(config.dir_sram_ns),
            "CMD": config.cmd_bus_ticks,
            "LINE_T": config.line_bus_ticks,
            "LINE_MASK": ~(config.line_bytes - 1),
            "SMB": config.station_mem_bytes,
            "NSTATIONS": config.num_stations,
            "IN_CAP": in_cap,
            "IN_HW": max(1, in_cap - 2),
            "IRI_CAP": iri_cap,
            "IRI_HW": max(1, iri_cap - 2),
            "F0_MASK": codec._field_masks[0],
            "CPS": config.cpus_per_station,
            # geometry of the two tag arrays probed on the local-request
            # fast path (read off the wired instances, not re-derived)
            "NC_LINE_B": machine.stations[0].nc.array.line_bytes,
            "NC_SLOTS": machine.stations[0].nc.array.num_slots,
            "L2_LINE_B": machine.stations[0].cpus[0].l2.line_bytes,
            "L2_SETS": machine.stations[0].cpus[0].l2.num_sets,
        }
        if num_levels >= 2:
            consts["F1_MASK"] = codec._field_masks[1]
            consts["SHIFT1"] = codec._shifts[1]

        # ring sizes per level, read off the wired interconnect
        ring_sizes: Dict[int, int] = {}
        for (level, _), ring in machine.net.rings.items():
            prev = ring_sizes.setdefault(level, ring.size)
            if prev != ring.size:  # pragma: no cover - topology invariant
                raise ValueError(f"rings at level {level} differ in size")

        stations: List[StationIR] = []
        for st in machine.stations:
            sid = st.station_id
            coords = codec._station_coords[sid]
            sri = st.ring_interface
            upper = 0
            if num_levels >= 2:
                upper = 1 << (codec._shifts[1] + coords[1])
            stations.append(
                StationIR(
                    station_id=sid,
                    my_bit=1 << coords[0],
                    upper_bit=upper,
                    is_seq=(sri.ring.seq_pos == sri.pos),
                )
            )

        iris: List[IriIR] = []
        for iri in machine.net.iris:
            plevel = iri.parent.level
            higher = 0
            for lv in range(plevel + 1, num_levels):
                higher |= codec._field_masks[lv]
            keep = 0
            for lv in range(plevel):
                keep |= codec._field_masks[lv]
            iris.append(
                IriIR(
                    name=iri.name,
                    child_size=iri.child.size,
                    parent_size=iri.parent.size,
                    parent_level=plevel,
                    parent_shift=codec._shifts[plevel],
                    parent_field_mask=codec._field_masks[plevel],
                    parent_bit=1 << iri.parent_pos,
                    child_is_seq=(iri.child.seq_pos == iri.child_pos),
                    parent_is_seq=(iri.parent.seq_pos == iri.parent_pos),
                    higher_mask=higher,
                    keep_mask=keep,
                )
            )

        fused = bool(getattr(machine, "fused", False))
        protocol = getattr(machine, "protocol_name", "numachine")
        return cls(
            fingerprint=config_elab_fingerprint(config, instrumented, fused, protocol),
            num_levels=num_levels,
            levels=levels,
            num_stations=config.num_stations,
            consts=consts,
            ring_sizes=ring_sizes,
            stations=stations,
            iris=iris,
            instrumented=instrumented,
            fused=fused,
            protocol=protocol,
        )


def config_elab_fingerprint(
    config, instrumented: bool = False, fused: bool = False,
    protocol: str = "numachine",
) -> str:
    """Digest identifying a generated module: full config, package version,
    elaborator schema, instrumentation axis, transit-fusion axis, coherence
    protocol.  Any mismatch forces regeneration."""
    import dataclasses

    from repro import __version__

    payload = json.dumps(
        {
            "elab_schema": ELAB_SCHEMA,
            "version": __version__,
            "instrumented": bool(instrumented),
            "fused": bool(fused),
            "protocol": str(protocol),
            "config": dataclasses.asdict(config),
        },
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:32]
