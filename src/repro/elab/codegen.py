"""Code generator: MachineIR -> specialized simulator module source.

The generated module defines subclasses of the interpreted components with
their hot-path methods rewritten:

* every config-derived quantity (arbitration ticks, ring slot/hop ticks,
  FIFO capacities, routing-mask shifts and field masks, per-station bits,
  ring sizes) appears as a literal;
* the four hottest pump loops — bus grant / ordered-port pump, memory pump,
  NC pump, ring inject/deliver — are fused: FIFO push/pop bookkeeping and
  ``Engine.schedule`` are inlined so a packet hop costs a handful of Python
  frames instead of a dozen;
* the coherence dispatch is a dense tuple indexed by ``MsgType.value``
  pointing at the *live* interpreted handler functions, so protocol
  behaviour is never duplicated — only the dispatch is compiled;
* all tracer / verifier / monitor / fault-filter checks are deleted (the
  backend guarantees the specialized classes are never active while any
  hook is attached).

Every event is pushed with the same ``(time, priority, seq)`` draw order
as the interpreted path, and every statistic on the machine's canonical
reporting surface (``nc_stats`` / ``memory_stats`` / ``utilizations`` /
``ring_interface_delays``, plus flow-control state such as FIFO
``max_depth``) is updated identically — that is the bit-identity contract,
enforced by tests/test_elab_backend.py and scripts/check_elab.py.

Observability is a *compile-time axis*: ``MachineIR.instrumented`` selects
between two generated variants sharing this generator.

* the **plain** variant deletes every hook check and drops the
  observability-only telemetry no canonical reader consumes (FIFO depth
  integral / wait-time histograms / push counters, the bus
  ``transactions`` counter, the ring ``packets_carried`` counter, the CPU
  ``retries`` counter);
* the **instrumented** variant bakes that telemetry back in inline and
  emits the tracer stamps at exactly the interpreted stamp sites
  (``cpu.send`` / ``ri.send`` / ``ring.inject`` / ``ri.arrive`` /
  ``ri.deliver`` / ``mem.in`` / ``mem.svc`` / ``nc.in`` / ``nc.svc`` /
  the four ``iri.*`` stamps / NACK retries), each behind a single
  ``tracer is not None`` load — no monitor / verifier / fault checks,
  which still force the interpreted backend.

Tracer stamps never schedule events, so both variants push the identical
event stream: instrumented runs are bit-identical to plain runs in
``(events_run, now)`` and the full canonical surface (pinned by
tests/test_obs_elab.py).  The two variants hash to different fingerprints
(:func:`repro.elab.ir.config_elab_fingerprint`) and coexist in the module
store.

Transit fusion (``NUMACHINE_FUSE=on``) is a second compile-time axis
(``MachineIR.fused``), orthogonal to instrumentation.  The fused variants
route every ring send through the interpreted ``Ring._send`` — the
reservation scan, wait-through closed forms and repair replays stay a
single shared implementation — and compile the idle-wakeup deferrals
(``_out_done`` / ``_up_done`` / ``_down_done``) and the NC / memory
zero-extra service-done merge inline, mirroring the interpreted fused
core event for event.  Unfused variants push ring arrivals, tail-lag
bounces and done relays with the same *content-derived* sequence keys
the interpreter uses (no tie-break counter draw), which is the invariant
that makes fused and unfused streams order-identical (see
repro.interconnect.ring and repro.sim.engine).

Slotted base classes get subclasses with ``__slots__ = ()`` so instances can
be re-classed in place (``obj.__class__ = Generated``); per-station and
per-interface constants therefore live in *class* attributes of tiny
generated subclasses rather than new instance fields.
"""

from __future__ import annotations

from .ir import MachineIR


class ElabUnsupportedError(RuntimeError):
    """This machine shape has no specialized core; run interpreted."""

# The coherence transition tables are no longer literal here: they come
# from the active protocol plug-in's engine classes (``DISPATCH`` class
# attributes, the same single source of truth the interpreted ``_dispatch``
# builds its handler dict from — see repro.protocol.base).  The generated
# module compiles them into dense ``MsgType.value``-indexed tuples.


# ----------------------------------------------------------------------
# snippet helpers (each returns lines already carrying ``ind`` indentation)
# ----------------------------------------------------------------------
def _insert_ev(ind: str) -> str:
    """Insert a prepared local ``ev`` tuple: the calendar queue's
    bucket-append fast path (the overwhelmingly common case) runs without
    a function call, falling back to ``sched.push`` for new / draining
    buckets; the heap engine takes the direct C ``heappush``."""
    return (
        f"{ind}q = engine._queue\n"
        f"{ind}if q is None:\n"
        f"{ind}    sched = engine._sched\n"
        f"{ind}    bi = ev[0] // sched._width\n"
        f"{ind}    b = sched._buckets.get(bi)\n"
        f"{ind}    if b is not None:\n"
        f"{ind}        b.append(ev)\n"
        f"{ind}    elif bi == sched._cur_bi and sched._cur_i < len(sched._cur):\n"
        f"{ind}        _insort(sched._cur, ev, sched._cur_i)\n"
        f"{ind}    else:\n"
        f"{ind}        sched.push(ev)\n"
        f"{ind}else:\n"
        f"{ind}    _heappush(q, ev)\n"
    )


def _push_event(ind: str, when: str, prio: int, cb: str, arg: str) -> str:
    """Inlined Engine.schedule: requires a local ``engine``.

    The event tuple and its ``(time, priority, seq)`` counter draw are
    identical to ``Engine.schedule``.
    """
    return (
        f"{ind}seq = engine._seq + 1\n"
        f"{ind}engine._seq = seq\n"
        f"{ind}ev = ({when}, {prio}, seq, {cb}, {arg})\n"
        + _insert_ev(ind)
    )


def _push_keyed(ind: str, when: str, prio: int, key: str, cb: str, arg: str) -> str:
    """Inlined Engine.schedule_keyed_at: the event carries a
    *content-derived* sequence key and draws nothing from the tie-break
    counter (see repro.sim.engine) — which is what lets transit fusion
    elide the intermediate events without shifting later counter draws.
    """
    return (
        f"{ind}ev = ({when}, {prio}, {key}, {cb}, {arg})\n"
        + _insert_ev(ind)
    )


def _grant_bus(ind: str, bus: str, arb: int, instr: bool = False) -> str:
    """Inlined Bus._grant for a known-nonempty queue: requires ``engine``.
    Caller must have set ``{bus}._busy = True`` (or know it already is).

    The completion event carries the module-level ``_bus_complete`` with the
    bus packed into the arg tuple — no bound-method allocation per grant.
    The ``transactions`` counter is observability-only telemetry (see module
    docstring): maintained only by the instrumented variant.
    """
    text = (
        f"{ind}duration, on_complete = {bus}._queue.popleft()\n"
        f"{ind}{bus}.busy.busy += duration\n"
    )
    if instr:
        text += f"{ind}{bus}.transactions.value += 1\n"
    return text + (
        f"{ind}now_g = engine.now\n"
        + _push_event(
            ind,
            f"now_g + {arb} + duration",
            1,
            "_bus_complete",
            f"({bus}, now_g + {arb}, on_complete)",
        )
    )


def _fifo_pop(ind: str, fifo: str, out: str, instr: bool = False) -> str:
    """Inlined Fifo.pop, keeping flow control; requires a local ``now``.

    The entry's enqueue tick lands in ``enq`` (several callers feed it into
    the canonical delay accumulators); the depth integral and wait-time
    histogram are observability-only and maintained only by the
    instrumented variant (module docstring).
    """
    text = ""
    if instr:
        text += (
            f"{ind}{fifo}._depth_area += "
            f"len({fifo}._items) * (now - {fifo}._last_change)\n"
            f"{ind}{fifo}._last_change = now\n"
        )
    text += f"{ind}{out}, enq = {fifo}._items.popleft()\n"
    if instr:
        text += (
            f"{ind}wt = {fifo}.wait_time\n"
            f"{ind}sample = now - enq\n"
            f"{ind}wt.count += 1\n"
            f"{ind}wt.total += sample\n"
            f"{ind}if wt.min is None or sample < wt.min:\n"
            f"{ind}    wt.min = sample\n"
            f"{ind}if wt.max is None or sample > wt.max:\n"
            f"{ind}    wt.max = sample\n"
        )
    return text + (
        f"{ind}if {fifo}._on_space:\n"
        f"{ind}    waiters, {fifo}._on_space = {fifo}._on_space, []\n"
        f"{ind}    for cb in waiters:\n"
        f"{ind}        cb()\n"
    )


def _fifo_push(
    ind: str,
    fifo: str,
    item: str,
    capacity: int | None = None,
    instr: bool = False,
) -> str:
    """Inlined Fifo.push at local ``now``; bounded when capacity given.

    Flow control (capacity, ``max_depth`` — the watchdog and the deadlock
    tests read it) is kept; the depth integral and push counter are
    observability-only and maintained only by the instrumented variant."""
    text = f"{ind}items = {fifo}._items\n"
    if capacity is not None:
        text += (
            f"{ind}if len(items) >= {capacity}:\n"
            f'{ind}    raise FifoFullError(f"{{{fifo}.name}} overflow '
            f'(capacity={capacity})")\n'
        )
    if instr:
        text += (
            f"{ind}{fifo}._depth_area += "
            f"len(items) * (now - {fifo}._last_change)\n"
            f"{ind}{fifo}._last_change = now\n"
        )
    text += f"{ind}items.append(({item}, now))\n"
    if instr:
        text += f"{ind}{fifo}.pushes.value += 1\n"
    text += (
        f"{ind}depth = len(items)\n"
        f"{ind}if depth > {fifo}.max_depth:\n"
        f"{ind}    {fifo}.max_depth = depth\n"
    )
    return text


def _ring_send(
    ind: str,
    ring: str,
    pos: str,
    pkt: str,
    size: int,
    slot: int,
    hop: int,
    instr: bool = False,
    fused: bool = False,
) -> str:
    """Ring send site: leaves the transmission start tick in ``start``.

    Unfused, Ring._send is inlined (requires locals ``engine`` and
    ``now``): the arrival is pushed with its *content* key (no counter
    draw) carrying the module-level ``_ring_arrive`` with the ring packed
    into the arg — no bound-method allocation per hop.  The
    ``packets_carried`` counter is observability-only telemetry,
    maintained only by the instrumented variant.

    Fused, the send routes through the interpreted ``Ring._send`` — the
    reservation-table scan, wait-through closed forms, repair replays and
    macro-event keys are a single implementation shared by both backends,
    which is what keeps the fused elab core exact by construction."""
    if fused:
        return f"{ind}start = {ring}.inject({pos}, {pkt})\n"
    text = (
        f"{ind}link_free = {ring}._link_free\n"
        f"{ind}start = link_free[{pos}]\n"
        f"{ind}if now > start:\n"
        f"{ind}    start = now\n"
        f"{ind}occupy = {pkt}.flits * {slot}\n"
        f"{ind}link_free[{pos}] = start + occupy\n"
        f"{ind}{ring}.busy.busy += occupy\n"
    )
    if instr:
        text += f"{ind}{ring}.packets_carried.value += 1\n"
    text += f"{ind}np = ({pos} + 1) % {size}\n"
    return text + _push_keyed(
        ind,
        f"start + {hop}",
        0,
        f"{ring}._abase | np",
        "_ring_arrive",
        f"({ring}, np, {pkt})",
    )


def _stamp_pkt(ind: str, pkt: str, label: str, t: str) -> str:
    """Tracer stamp at an interpreted stamp site (instrumented variant only).

    ``Tracer.stamp_pkt`` is inlined — requester lookup, active-transaction
    fetch, line-address guard, stamp append — because the call overhead
    alone costs ~20% of a traced hot-spot run.  It records but never
    schedules, preserving (events_run, now) bit-identity."""
    return (
        f"{ind}tr = self.tracer\n"
        f"{ind}if tr is not None:\n"
        f"{ind}    _req = {pkt}.requester\n"
        f"{ind}    if _req is not None:\n"
        f"{ind}        _rec = tr.active.get(_req)\n"
        f"{ind}        if _rec is not None and _rec.addr == {pkt}.addr:\n"
        f'{ind}            _rec.stamps.append(({t}, "{label}"))\n'
    )


def _halt_link(ind: str, ring: str, pos: str, size: int) -> str:
    """Inlined Ring.halt_link at local ``now`` (duration = 4 ring slots)."""
    return (
        f"{ind}upstream = ({pos} - 1) % {size}\n"
        f"{ind}target = now + HALT\n"
        f"{ind}if target > {ring}._link_free[upstream]:\n"
        f"{ind}    {ring}._link_free[upstream] = target\n"
        f"{ind}    {ring}.halts.value += 1\n"
    )


# ----------------------------------------------------------------------
def _route_prep(ind: str, ir: MachineIR, pkt: str) -> str:
    """Inlined StationRingInterface._route_prep.

    1 level: the packet always stays on the ring and no upper fields exist.
    2 levels: "needs to ascend" collapses to one mask test against this
    station's own ring bit.  3+ levels: generic codec path.
    """
    if ir.num_levels == 1:
        return f"{ind}{pkt}.route_state = 2 if {pkt}.ordered else 0\n"
    if ir.num_levels == 2:
        return (
            f"{ind}mask = {pkt}.dest_mask\n"
            f"{ind}if mask & F1_MASK & ~self._UPPER_BIT:\n"
            f"{ind}    {pkt}.route_state = 1\n"
            f"{ind}else:\n"
            f"{ind}    {pkt}.dest_mask = mask & F0_MASK\n"
            f"{ind}    {pkt}.route_state = 2 if {pkt}.ordered else 0\n"
        )
    return (
        f"{ind}codec = self.codec\n"
        f"{ind}if codec.highest_level_needed({pkt}.dest_mask, self.station_id):\n"
        f"{ind}    {pkt}.route_state = 1\n"
        f"{ind}else:\n"
        f"{ind}    {pkt}.dest_mask = codec.clear_upper({pkt}.dest_mask, 1)\n"
        f"{ind}    {pkt}.route_state = 2 if {pkt}.ordered else 0\n"
    )


# ======================================================================
# the generator
# ======================================================================
def generate_source(ir: MachineIR) -> str:
    if ir.iris:
        ch, pa = ir.iris[0].child_size, ir.iris[0].parent_size
        if any(i.child_size != ch or i.parent_size != pa for i in ir.iris):
            # 3+-level hierarchies mix ring sizes across IRI groups; the
            # shared _ElabIRI body bakes one (child, parent) size pair
            raise ElabUnsupportedError(
                "heterogeneous inter-ring interface sizes (deep hierarchy)"
            )
    C = ir.consts
    slot, hop, arb = C["SLOT"], C["HOP"], C["ARB"]
    seq_t = C["SEQ"]
    sizes = ir.ring_sizes
    size0 = sizes[0]
    instr = bool(ir.instrumented)
    fused = bool(ir.fused)
    # the active coherence plug-in supplies the engine base classes and
    # their DISPATCH transition tables (repro.protocol); the generated
    # subclasses extend those, not the protocol-agnostic bases
    from ..protocol import get_protocol

    proto = get_protocol(ir.protocol)
    nc_base = proto.nc_class
    mem_base = proto.memory_class
    L: list[str] = []
    w = L.append

    w('"""Auto-generated specialized simulator core — DO NOT EDIT.')
    w("")
    w("Produced by repro.elab.codegen from a MachineConfig; regenerated")
    w("whenever the config, package version or elaborator schema changes.")
    w('"""')
    w(f'FINGERPRINT = "{ir.fingerprint}"')
    w(f"INSTRUMENTED = {instr}")
    w(f"FUSED = {fused}")
    w(f'PROTOCOL = "{proto.name}"')
    w("")
    w("from bisect import insort as _insort")
    w("from heapq import heappush as _heappush")
    w("")
    w(f"from {nc_base.__module__} import {nc_base.__name__} as _NCBase")
    w(f"from {mem_base.__module__} import {mem_base.__name__} as _MemBase")
    w("from repro.cpu.processor import Processor")
    w("from repro.core.states import CacheState")
    w("from repro.interconnect.interfaces import (")
    w("    InterRingInterface,")
    w("    StationRingInterface,")
    w(")")
    w("from repro.interconnect.packet import MsgType, Packet, next_pid")
    w("from repro.interconnect.ring import Ring")
    w("from repro.sim.engine import SimulationError")
    w("from repro.sim.fifo import FifoFullError")
    w("from repro.softctl import ops as _softops")
    w("from repro.system.bus import Bus, OrderedPort")
    w("from repro.system.station import Station")
    w("")
    for name, value in sorted(ir.consts.items()):
        w(f"{name} = {value}")
    w("")
    w("_WRITE_BACK = MsgType.WRITE_BACK")
    w("_BARRIER_WRITE = MsgType.BARRIER_WRITE")
    w("_INTERRUPT = MsgType.INTERRUPT")
    w("_UNCACHED_RESP = MsgType.UNCACHED_RESP")
    w("_READ = MsgType.READ")
    w("_READ_EX = MsgType.READ_EX")
    w("_UPGRADE = MsgType.UPGRADE")
    w("_SHARED = CacheState.SHARED")
    w("")
    w("# dense coherence dispatch: MsgType.value -> live interp handler")
    w("_MT_MAX = max(_m._value_ for _m in MsgType)")
    w("")
    w("def _mk_table(default, pairs):")
    w("    table = [default] * (_MT_MAX + 1)")
    w("    for mt, fn in pairs:")
    w("        table[mt._value_] = fn")
    w("    return tuple(table)")
    w("")
    w("_NC_H = _mk_table(_softops.nc_dispatch, (")
    for mt, fn in nc_base.DISPATCH:
        w(f"    (MsgType.{mt}, _NCBase.{fn}),")
    w("))")
    w("_MEM_H = _mk_table(_MemBase._on_other, (")
    for mt, fn in mem_base.DISPATCH:
        w(f"    (MsgType.{mt}, _MemBase.{fn}),")
    w("))")
    w("")
    w("")
    w("# ----------------------------------------------------------------------")
    w("# module-level event callbacks: the component the event belongs to is")
    w("# packed into the arg tuple, so pushing an event costs one tuple and")
    w("# never a bound-method allocation (the engine calls ``callback(arg)``,")
    w("# so callback identity is free to differ from the interpreted path).")
    w("# ----------------------------------------------------------------------")
    i2, i3 = "        ", "            "
    w("# The two hottest bus completions — the CPU's request delivery and the")
    w("# NC's NACK-retry — are encoded as plain tuples instead of lambdas /")
    w("# closures: ``(target, pkt)`` delivers ``target.handle(pkt)``, and")
    w("# ``(cpu, addr, None)`` runs the NACK retry.  Everything else (interp")
    w("# protocol handlers, SRI drain) still passes a real callable.")
    w("def _bus_complete(arg):")
    w("    bus, start, on_complete = arg")
    w("    if type(on_complete) is tuple:")
    w("        if len(on_complete) == 2:")
    w("            t, k = on_complete")
    w("            t.handle(k)")
    w("        else:")
    w("            cc = on_complete[0]")
    w("            p = cc._pending")
    w('            if p is not None and p["la"] == on_complete[1]:')
    w('                p["tries"] += 1')
    w("                engine = cc.engine")
    if instr:
        w('                cc.stats.counter("retries").incr()')
        w("                tr = cc.tracer")
        w("                if tr is not None:")
        w("                    _rec = tr.active.get(cc.cpu_id)")
        w("                    if _rec is not None:")
        w("                        _rec.retries += 1")
        w('                        _rec.stamps.append((engine.now, "nack"))')
    w(_push_event("                ", "engine.now + cc._retry", 1,
                  "_cpu_send_request", "cc").rstrip())
    w("    else:")
    w("        on_complete(start)")
    w("    if not bus._queue:")
    w("        bus._busy = False")
    w("        return")
    w("    engine = bus.engine")
    w(_grant_bus("    ", "bus", arb, instr).rstrip())
    w("")
    w("")
    w("def _port_issue(arg):")
    w("    port, duration, cb = arg")
    w("    bus = port.bus")
    w("    bus._queue.append((duration, cb))")
    w("    if not bus._busy:")
    w("        bus._busy = True")
    w("        engine = port.engine")
    w(_grant_bus("        ", "bus", arb, instr).rstrip())
    w("    port._busy = False")
    w("    pq = port._queue")
    w("    if pq:")
    w("        port._busy = True")
    w("        ready, duration, cb = pq.popleft()")
    w("        engine = port.engine")
    w("        now = engine.now")
    w("        if ready < now:")
    w("            ready = now")
    w(_push_event("        ", "ready", 1, "_port_issue",
                  "(port, duration, cb)").rstrip())
    w("")
    w("")
    w("def _ring_arrive(arg):")
    w("    ring, pos, packet = arg")
    w("    member = ring.members[pos]")
    w("    if member is None:")
    w('        raise RuntimeError(f"{ring.name}: no member at position {pos}")')
    w("    member.ring_arrival(ring, packet)")
    w("")
    w("")

    # ------------------------------------------------------------------
    # bus + ordered port
    # ------------------------------------------------------------------
    w("")
    w("class ElabBus(Bus):")
    w("    __slots__ = ()")
    w("")
    w("    def request(self, duration, on_complete):")
    w("        self._queue.append((duration, on_complete))")
    w("        if not self._busy:")
    w("            self._busy = True")
    w("            engine = self.engine")
    w(_grant_bus(i3, "self", arb, instr).rstrip())
    w("")
    w("")
    w("class ElabPort(OrderedPort):")
    w("    __slots__ = ()")
    w("")
    w("    def send(self, delay, duration, on_complete):")
    w("        engine = self.engine")
    w("        now = engine.now")
    w("        if self._busy:")
    w("            self._queue.append((now + delay, duration, on_complete))")
    w("            return")
    w("        # idle port => empty queue: push + popleft cancel out")
    w("        self._busy = True")
    w("        ready = now + delay if delay > 0 else now")
    w(_push_event(i2, "ready", 1, "_port_issue",
                  "(self, duration, on_complete)").rstrip())
    w("")
    w("    def _pump(self):")
    w("        if self._busy or not self._queue:")
    w("            return")
    w("        self._busy = True")
    w("        ready, duration, cb = self._queue.popleft()")
    w("        engine = self.engine")
    w("        now = engine.now")
    w("        if ready < now:")
    w("            ready = now")
    w(_push_event(i2, "ready", 1, "_port_issue", "(self, duration, cb)").rstrip())
    w("")

    # ------------------------------------------------------------------
    # rings (one subclass per level: the size is a literal)
    # ------------------------------------------------------------------
    for level in sorted(sizes):
        size = sizes[level]
        w("")
        w(f"class ElabRingL{level}(Ring):")
        w("    __slots__ = ()")
        if fused:
            # the fused send (reservation scan, wait-through closed forms,
            # repair replays) is a single shared implementation: inherit
            # the interpreted Ring._send/halt_link unchanged
            w("")
        else:
            if not instr:
                # the plain variant's inlined sends drop packets_carried;
                # flag it so the (fusion-only) repair rollback would match
                w("    _count_carried = False")
            w("")
            w("    def inject(self, pos, packet):")
            w("        engine = self.engine")
            w("        now = engine.now")
            w(_ring_send(i2, "self", "pos", "packet", size, slot, hop,
                         instr).rstrip())
            w("        return start")
            w("")
            w("    forward = inject")
            w("")

    # ------------------------------------------------------------------
    # station ring interface
    # ------------------------------------------------------------------
    w("")
    w("class _ElabSRI(StationRingInterface):")
    w("    __slots__ = ()")
    w("")
    w("    def send(self, packet):")
    w("        engine = self.engine")
    w("        if packet.born < 0:")
    w("            packet.born = engine.now")
    if instr:
        # interp stamps before the credit check, so credit-waiting packets
        # carry the stamp at original send time (release_credit re-stamps
        # nothing)
        w(_stamp_pkt(i2, "packet", "ri.send", "engine.now").rstrip())
    w("        if not packet.mtype.sinkable:")
    w("            if self._nonsink_credits == 0:")
    w("                self._pending_out.append(packet)")
    w('                self.stats.counter("nonsink_credit_waits").incr()')
    w("                return")
    w("            self._nonsink_credits -= 1")
    w("            packet.credit_home = self")
    w(_route_prep(i2, ir, "packet").rstrip())
    w("        now = engine.now")
    w("        packet.send_enq = now")
    w(_push_event(i2, "now + PKT_GEN", 1, "self._enqueue_out", "packet").rstrip())
    w("")
    w("    def release_credit(self):")
    w("        if self._pending_out:")
    w("            packet = self._pending_out.popleft()")
    w("            packet.credit_home = self")
    w(_route_prep(i3, ir, "packet").rstrip())
    w("            engine = self.engine")
    w("            now = engine.now")
    w("            packet.send_enq = now")
    w(_push_event(i3, "now + PKT_GEN", 1, "self._enqueue_out", "packet").rstrip())
    w("        else:")
    w("            self._nonsink_credits += 1")
    w("")
    w("    def _enqueue_out(self, packet):")
    w("        f = self.out_fifo")
    w("        engine = self.engine")
    w("        now = engine.now")
    w(_fifo_push(i2, "f", "packet", instr=instr).rstrip())
    if fused:
        # resolve a deferred idle wakeup (see interfaces._enqueue_out):
        # materialize it at its original (time, key) if it has not
        # notionally fired yet, else absorb it
        w("        free = self._out_free")
        w("        if free is not None:")
        w("            self._out_free = None")
        w("            if free > now:")
        w("                self.events_fused -= 1")
        w(_push_keyed("                ", "free", 1, "self._out_done_key",
                      "self._out_done", "None").rstrip())
        w("            else:")
        w("                self._out_busy = False")
    w("        self._pump_out()")
    w("")
    w("    def _pump_out(self):")
    w("        if self._out_busy:")
    w("            return")
    w("        f = self.out_fifo")
    w("        if not f._items:")
    w("            return")
    w("        self._out_busy = True")
    w("        engine = self.engine")
    w("        now = engine.now")
    w(_fifo_pop(i2, "f", "packet", instr).rstrip())
    w("        if packet.route_state == 0 and (packet.dest_mask & F0_MASK) == self._MYBIT:")
    w(_push_event(i3, "now", 1, "self._local_loopback", "packet").rstrip())
    w("            self._out_busy = False")
    w("            self._pump_out()")
    w("            return")
    w("        ring = self.ring")
    w("        pos = self.pos")
    w(_ring_send(i2, "ring", "pos", "packet", size0, slot, hop, instr,
                 fused).rstrip())
    w("        enq = packet.send_enq")
    w("        packet.send_enq = -1")
    w('        self.stats.accumulator("send_delay").add(start - enq if enq >= 0 else 0)')
    if instr:
        w(_stamp_pkt(i2, "packet", "ring.inject", "start").rstrip())
    w(f"        done = start + packet.flits * {slot}")
    if fused:
        w("        if not f._items:")
        w("            # idle elision: defer the relay (interfaces._pump_out)")
        w("            self._out_free = done")
        w("            self.events_fused += 1")
        w("            return")
    w(_push_keyed(i2, "done", 1, "self._out_done_key",
                  "self._out_done", "None").rstrip())
    w("")
    w("    def _out_done(self):")
    w("        self._out_busy = False")
    w("        self._pump_out()")
    w("")
    # ring_arrival: single-level machines need the sequencing-point branch;
    # in multi-level machines the local-ring sequencing point is the IRI, so
    # any nonzero route_state simply forwards past the station.
    w("    def ring_arrival(self, ring, packet):")
    w("        state = packet.route_state")
    if ir.num_levels == 1:
        w("        if state == 2 and self._IS_SEQ:")
        w("            packet.route_state = 0")
        if seq_t:
            w(_push_event(i3, "engine.now + SEQ", 1, "self._deliver_after_seq",
                          "packet").replace("seq = engine", "engine = self.engine\n"
                          + i3 + "seq = engine", 1).rstrip())
            w("            return")
        w("        elif state:")
    else:
        w("        if state:")
    if fused:
        w("            self.ring.forward(self.pos, packet)")
    else:
        w("            engine = self.engine")
        w("            now = engine.now")
        w("            ring = self.ring")
        w("            pos = self.pos")
        w(_ring_send(i3, "ring", "pos", "packet", size0, slot, hop, instr).rstrip())
    w("            return")
    w("        fld = packet.dest_mask & F0_MASK")
    w("        mybit = self._MYBIT")
    w("        if fld & mybit:")
    w("            remaining = fld & ~mybit")
    w("            packet.dest_mask = (packet.dest_mask & ~F0_MASK) | remaining")
    w("            if remaining:")
    w("                copy = packet.copy_for_branch()")
    w("                self._accept(copy)")
    w("                self.ring.forward(self.pos, packet)")
    w("            else:")
    w("                self._accept(packet)")
    w("        else:")
    if fused:
        w("            self.ring.forward(self.pos, packet)")
    else:
        w("            engine = self.engine")
        w("            now = engine.now")
        w("            ring = self.ring")
        w("            pos = self.pos")
        w(_ring_send(i3, "ring", "pos", "packet", size0, slot, hop, instr).rstrip())
    w("")
    # the tail-lag bounce carries the arrival-derived content key so the
    # fused tail-lag merge reproduces it exactly (see interfaces._accept);
    # _local_loopback / _accept_seq / _fused_accept are inherited — they
    # delegate to _accept_body, which resolves to the generated one
    w("    def _accept(self, packet):")
    w(f"        tail = (packet.flits - 1) * {slot}")
    w("        if tail:")
    w("            engine = self.engine")
    w(_push_keyed(i3, "engine.now + tail", 0,
                  "self._bounce_base | packet.flits",
                  "self._accept_body", "packet").rstrip())
    w("            return")
    w("        self._accept_body(packet, True)")
    w("")
    w("    def _accept_body(self, packet, in_arrival=False):")
    w("        now = self.engine.now")
    w("        packet.arr = now")
    if instr:
        w(_stamp_pkt(i2, "packet", "ri.arrive", "now").rstrip())
    w("        f = self.in_fifo")
    w(_fifo_push(i2, "f", "packet", capacity=C["IN_CAP"], instr=instr).rstrip())
    w("        if depth >= IN_HW:")
    w("            ring = self.ring")
    if fused:
        # the interpreted halt_link also runs the reservation-conflict
        # repair hook (with the same-tick arrival-order bit); never
        # bypass it while fused transits are live
        w("            ring.halt_link(self.pos, HALT, in_arrival)")
    else:
        w(_halt_link(i3, "ring", "self.pos", size0).rstrip())
    w('            self.stats.counter("input_halts").incr()')
    w("        if not self._handler_busy:")
    w("            f2 = self.in_fifo")
    w("            self._handler_busy = True")
    w("            engine = self.engine")
    w(_fifo_pop(i3, "f2", "pkt2", instr).rstrip())
    w(_push_event(i3, "now + HANDLER", 1, "self._handler_done", "pkt2").rstrip())
    w("")
    w("    def _pump_handler(self):")
    w("        if self._handler_busy:")
    w("            return")
    w("        f = self.in_fifo")
    w("        if not f._items:")
    w("            return")
    w("        self._handler_busy = True")
    w("        engine = self.engine")
    w("        now = engine.now")
    w(_fifo_pop(i2, "f", "packet", instr).rstrip())
    w(_push_event(i2, "now + HANDLER", 1, "self._handler_done", "packet").rstrip())
    w("")
    w("    def _handler_done(self, packet):")
    w("        now = self.engine.now")
    w("        f = self.sink_q if packet.mtype.sinkable else self.nonsink_q")
    w(_fifo_push(i2, "f", "packet", instr=instr).rstrip())
    w("        self._handler_busy = False")
    w("        self._pump_handler()")
    w("        self._pump_drain()")
    w("")
    w("    def _pump_drain(self):")
    w("        if self._drain_busy:")
    w("            return")
    w("        if self.sink_q._items:")
    w("            f = self.sink_q")
    w('            kind = "sink"')
    w("        elif self.nonsink_q._items:")
    w("            f = self.nonsink_q")
    w('            kind = "nonsink"')
    w("        else:")
    w("            return")
    w("        self._drain_busy = True")
    w("        now = self.engine.now")
    w(_fifo_pop(i2, "f", "packet", instr).rstrip())
    w("        cycles = CMD + (LINE_T if packet.data is not None else 0)")
    w("        self.bus_granter(")
    w("            cycles, lambda start, p=packet, k=kind: self._bus_done(p, k)")
    w("        )")
    w("")
    w("    def _bus_done(self, packet, kind):")
    w("        now = self.engine.now")
    w("        arr = packet.arr")
    w("        packet.arr = -1")
    w("        if arr < 0:")
    w("            arr = now")
    w('        self.stats.accumulator("down_delay_" + kind).add(now - arr)')
    if instr:
        w(_stamp_pkt(i2, "packet", "ri.deliver", "now").rstrip())
    w("        self._drain_busy = False")
    w("        if not packet.mtype.sinkable:")
    w("            credit_home = packet.credit_home")
    w("            if credit_home is not None:")
    w("                packet.credit_home = None")
    w("                credit_home.release_credit()")
    w("        self.deliver_cb(packet)")
    w("        self._pump_drain()")
    w("")

    # per-station subclasses: routing constants as class attributes
    for st in ir.stations:
        w("")
        w(f"class ElabSRI{st.station_id}(_ElabSRI):")
        w("    __slots__ = ()")
        w(f"    _MYBIT = {st.my_bit}")
        if ir.num_levels >= 2:
            w(f"    _UPPER_BIT = {st.upper_bit}")
        if ir.num_levels == 1:
            w(f"    _IS_SEQ = {st.is_seq}")
        w("")

    # ------------------------------------------------------------------
    # inter-ring interfaces
    # ------------------------------------------------------------------
    if ir.iris:
        ch_size = ir.iris[0].child_size
        p_size = ir.iris[0].parent_size
        w("")
        w("class _ElabIRI(InterRingInterface):")
        w("    __slots__ = ()")
        w("")
        w("    def ring_arrival(self, ring, packet):")
        w("        if ring is self.child:")
        w("            self._child_arrival(packet)")
        w("        elif ring is self.parent:")
        w("            self._parent_arrival(packet)")
        w("        else:  # pragma: no cover - wiring error")
        w('            raise RuntimeError(f"{self.name} got packet from unknown ring")')
        w("")
        w("    def _child_arrival(self, packet):")
        w("        state = packet.route_state")
        w("        if state == 1:")
        w("            self._enqueue_up(packet)")
        w("            return")
        w("        if state == 2 and self._CHILD_IS_SEQ:")
        w("            packet.route_state = 0")
        if seq_t:
            w("            engine = self.engine")
            w(_push_event(i3, "engine.now + SEQ", 1, "self._fwd_child", "packet").rstrip())
            w("            return")
        w("        self.child.forward(self.child_pos, packet)")
        w("")
        w("    def _fwd_child(self, packet):")
        w("        self.child.forward(self.child_pos, packet)")
        w("")
        w("    def _enqueue_up(self, packet):")
        w("        engine = self.engine")
        w("        now = engine.now")
        if instr:
            w(_stamp_pkt(i2, "packet", "iri.up_enq", "now").rstrip())
        w("        packet.up_enq = now")
        w("        f = self.up_fifo")
        w(_fifo_push(i2, "f", "packet", capacity=C["IRI_CAP"], instr=instr).rstrip())
        w("        if depth >= IRI_HW:")
        if fused:
            # in-arrival: _enqueue_up only runs inside child-ring arrivals
            w("            self.child.halt_link(self.child_pos, HALT, True)")
        else:
            w("            child = self.child")
            w(_halt_link(i3, "child", "self.child_pos", ch_size).rstrip())
        if fused:
            w("        free = self._up_free")
            w("        if free is not None:")
            w("            self._up_free = None")
            w("            if free > now:")
            w("                self.events_fused -= 1")
            w(_push_keyed("                ", "free", 1, "self._up_done_key",
                          "self._up_done", "None").rstrip())
            w("            else:")
            w("                self._up_busy = False")
        w("        self._pump_up()")
        w("")
        w("    def _pump_up(self):")
        w("        if self._up_busy:")
        w("            return")
        w("        f = self.up_fifo")
        w("        if not f._items:")
        w("            return")
        w("        self._up_busy = True")
        w("        engine = self.engine")
        w("        now = engine.now")
        w(_fifo_pop(i2, "f", "packet", instr).rstrip())
        w(_push_event(i2, "now + SWITCH", 1, "self._inject_parent", "packet").rstrip())
        w("")
        w("    def _inject_parent(self, packet):")
        w("        if packet.dest_mask & self._HIGHER_MASK:")
        w("            packet.route_state = 1")
        w("        else:")
        w("            packet.route_state = 2 if packet.ordered else 0")
        w("        engine = self.engine")
        w("        now = engine.now")
        w("        parent = self.parent")
        w("        pos = self.parent_pos")
        w(_ring_send(i2, "parent", "pos", "packet", p_size, slot, hop, instr,
                     fused).rstrip())
        w("        enq = packet.up_enq")
        w("        packet.up_enq = -1")
        w('        self.stats.accumulator("up_delay").add(start - enq if enq >= 0 else 0)')
        if instr:
            w(_stamp_pkt(i2, "packet", "iri.up_inject", "start").rstrip())
        w(f"        done = start + packet.flits * {slot}")
        if fused:
            w("        if not self.up_fifo._items:")
            w("            self._up_free = done")
            w("            self.events_fused += 1")
            w("            return")
        w(_push_keyed(i2, "done", 1, "self._up_done_key",
                      "self._up_done", "None").rstrip())
        w("")
        w("    def _up_done(self):")
        w("        self._up_busy = False")
        w("        self._pump_up()")
        w("")
        w("    def _parent_arrival(self, packet):")
        w("        state = packet.route_state")
        w("        if state == 1:")
        w("            self.parent.forward(self.parent_pos, packet)")
        w("            return")
        w("        if state == 2:")
        w("            if self._PARENT_IS_SEQ:")
        w("                packet.route_state = 0")
        if seq_t:
            w("                if not packet.seq_done:")
            w("                    packet.seq_done = True")
            w("                    packet.route_state = 2")
            w("                    engine = self.engine")
            w(_push_event("                    ", "engine.now + SEQ", 1,
                          "self._parent_arrival", "packet").rstrip())
            w("                    return")
            w("                packet.seq_done = False")
        w("            else:")
        w("                self.parent.forward(self.parent_pos, packet)")
        w("                return")
        w("        fld = (packet.dest_mask & self._PF_MASK) >> self._P_SHIFT")
        w("        mybit = self._PBIT")
        w("        if fld & mybit:")
        w("            remaining = fld & ~mybit")
        w("            packet.dest_mask = (packet.dest_mask & ~self._PF_MASK) | (")
        w("                remaining << self._P_SHIFT")
        w("            )")
        w("            if remaining:")
        w("                copy = packet.copy_for_branch()")
        w("                self._enqueue_down(copy)")
        w("                self.parent.forward(self.parent_pos, packet)")
        w("            else:")
        w("                self._enqueue_down(packet)")
        w("        else:")
        w("            self.parent.forward(self.parent_pos, packet)")
        w("")
        w("    def _enqueue_down(self, packet):")
        w("        packet.dest_mask &= self._KEEP_MASK")
        w("        packet.route_state = 0")
        w("        engine = self.engine")
        w("        now = engine.now")
        w("        packet.down_enq = now")
        if instr:
            w(_stamp_pkt(i2, "packet", "iri.down_enq", "now").rstrip())
        w("        f = self.down_fifo")
        w(_fifo_push(i2, "f", "packet", capacity=C["IRI_CAP"], instr=instr).rstrip())
        w("        if depth >= IRI_HW:")
        if fused:
            # in-arrival: _enqueue_down only runs inside parent-ring arrivals
            w("            self.parent.halt_link(self.parent_pos, HALT, True)")
        else:
            w("            parent = self.parent")
            w(_halt_link(i3, "parent", "self.parent_pos", p_size).rstrip())
        if fused:
            w("        free = self._down_free")
            w("        if free is not None:")
            w("            self._down_free = None")
            w("            if free > now:")
            w("                self.events_fused -= 1")
            w(_push_keyed("                ", "free", 1, "self._down_done_key",
                          "self._down_done", "None").rstrip())
            w("            else:")
            w("                self._down_busy = False")
        w("        self._pump_down()")
        w("")
        w("    def _pump_down(self):")
        w("        if self._down_busy:")
        w("            return")
        w("        f = self.down_fifo")
        w("        if not f._items:")
        w("            return")
        w("        self._down_busy = True")
        w("        engine = self.engine")
        w("        now = engine.now")
        w(_fifo_pop(i2, "f", "packet", instr).rstrip())
        w(_push_event(i2, "now + SWITCH", 1, "self._inject_child", "packet").rstrip())
        w("")
        w("    def _inject_child(self, packet):")
        w("        engine = self.engine")
        w("        now = engine.now")
        w("        child = self.child")
        w("        pos = self.child_pos")
        w(_ring_send(i2, "child", "pos", "packet", ch_size, slot, hop, instr,
                     fused).rstrip())
        w("        enq = packet.down_enq")
        w("        packet.down_enq = -1")
        w('        self.stats.accumulator("down_delay").add(start - enq if enq >= 0 else 0)')
        if instr:
            w(_stamp_pkt(i2, "packet", "iri.down_inject", "start").rstrip())
        w(f"        done = start + packet.flits * {slot}")
        if fused:
            w("        if not self.down_fifo._items:")
            w("            self._down_free = done")
            w("            self.events_fused += 1")
            w("            return")
        w(_push_keyed(i2, "done", 1, "self._down_done_key",
                      "self._down_done", "None").rstrip())
        w("")
        w("    def _down_done(self):")
        w("        self._down_busy = False")
        w("        self._pump_down()")
        w("")
        for idx, iri in enumerate(ir.iris):
            w("")
            w(f"class ElabIRI{idx}(_ElabIRI):")
            w("    __slots__ = ()")
            w(f"    _PBIT = {iri.parent_bit}")
            w(f"    _PF_MASK = {iri.parent_field_mask}")
            w(f"    _P_SHIFT = {iri.parent_shift}")
            w(f"    _HIGHER_MASK = {iri.higher_mask}")
            w(f"    _KEEP_MASK = {iri.keep_mask}")
            w(f"    _CHILD_IS_SEQ = {iri.child_is_seq}")
            w(f"    _PARENT_IS_SEQ = {iri.parent_is_seq}")
            w("")

    # ------------------------------------------------------------------
    # network cache + memory module serialization plumbing
    # ------------------------------------------------------------------
    for cname, base, latency, svc in (
        ("ElabNC", "_NCBase", "TAG", "nc"),
        ("ElabMem", "_MemBase", "LOOKUP", "mem"),
    ):
        done_fn = f"_{svc}_service_done"
        w("")
        w(f"def {done_fn}(self):")
        w("    self._busy = False")
        w("    f = self.in_fifo")
        w("    if not f._items:")
        w("        return")
        w("    self._busy = True")
        w("    engine = self.engine")
        w("    now = engine.now")
        w(_fifo_pop("    ", "f", "pkt", instr).rstrip())
        w(_push_event("    ", f"now + {latency}", 1, "self._service", "pkt").rstrip())
        w("")
        w("")
        w(f"class {cname}({base}):")
        w("")
        w(f"    _service_done = {done_fn}")
        w("")
        w("    def handle(self, pkt):")
        w("        engine = self.engine")
        w("        now = engine.now")
        if instr:
            w(_stamp_pkt(i2, "pkt", f"{svc}.in", "now").rstrip())
        w("        f = self.in_fifo")
        w(_fifo_push(i2, "f", "pkt", instr=instr).rstrip())
        w("        if self._busy:")
        w("            return")
        w("        self._busy = True")
        if instr:
            # full Fifo.pop telemetry: the pop lands at the push tick, so
            # the depth-area delta is 0 and the wait sample is exactly 0 —
            # identical to the interpreted push-then-pump sequence
            w(_fifo_pop(i2, "f", "pkt2", instr).rstrip())
        else:
            w("        # Fifo.pop inlined (handle just pushed, so nonempty)")
            w("        pkt2, enq = items.popleft()")
            w("        if f._on_space:")
            w("            waiters, f._on_space = f._on_space, []")
            w("            for cb in waiters:")
            w("                cb()")
        w(_push_event(i2, f"now + {latency}", 1, "self._service", "pkt2").rstrip())
        w("")
        w("    def _pump(self):")
        w("        if self._busy:")
        w("            return")
        w("        f = self.in_fifo")
        w("        if not f._items:")
        w("            return")
        w("        self._busy = True")
        w("        engine = self.engine")
        w("        now = engine.now")
        w(_fifo_pop(i2, "f", "pkt", instr).rstrip())
        w(_push_event(i2, f"now + {latency}", 1, "self._service", "pkt").rstrip())
        w("")
        if svc == "nc":
            w("    def _service(self, pkt):")
            if instr:
                w(_stamp_pkt(i2, "pkt", "nc.svc", "self.engine.now").rstrip())
            w("        mtype = pkt.mtype")
            w('        if pkt.meta.get("local"):')
            w("            if mtype is _WRITE_BACK:")
            w("                extra = self._on_local_writeback(pkt)")
            w("            else:")
            w("                extra = self._on_local_request(pkt)")
            w("        else:")
            w("            extra = _NC_H[mtype._value_](self, pkt)")
            w("        engine = self.engine")
            if fused:
                w("        if extra:")
                w(_push_keyed(i3, "engine.now + extra", 1, "self._done_key",
                              done_fn, "self").rstrip())
                w("        else:")
                w("            # zero-extra service: the content-keyed done")
                w("            # would pop immediately after this dispatch")
                w("            # (see network_cache._service) — merge it")
                w("            self.events_fused += 1")
                w(f"            {done_fn}(self)")
            else:
                w(_push_keyed(i2, "engine.now + (extra or 0)", 1,
                              "self._done_key", done_fn, "self").rstrip())
        else:
            w("    def _service(self, pkt):")
            if instr:
                w(_stamp_pkt(i2, "pkt", "mem.svc", "self.engine.now").rstrip())
            w("        entry = self.directory.entry(pkt.addr & LINE_MASK)")
            w("        extra = _MEM_H[pkt.mtype._value_](")
            w('            self, pkt, entry, bool(pkt.meta.get("local"))')
            w("        )")
            w("        engine = self.engine")
            if fused:
                w("        if extra:")
                w(_push_keyed(i3, "engine.now + extra", 1, "self._done_key",
                              done_fn, "self").rstrip())
                w("        else:")
                w("            # zero-extra service: the content-keyed done")
                w("            # would pop immediately after this dispatch")
                w("            # (see network_cache._service) — merge it")
                w("            self.events_fused += 1")
                w(f"            {done_fn}(self)")
            else:
                w(_push_keyed(i2, "engine.now + (extra or 0)", 1,
                              "self._done_key", done_fn, "self").rstrip())
        w("")
        if svc == "nc" and proto.name == "numachine":
            # The local-request NACK storm is the hottest protocol path in
            # contended runs: a locked line bounces every local retry.  It
            # is transcribed here with the tag probe, the nack counter, the
            # cpu lookup and the ordered-port send all inlined; every other
            # local-request outcome falls back to the interpreted method
            # (the probe is pure, so re-running it there is side-effect
            # free).  Protocol-specific (it mirrors the NUMAchine NC's
            # locked-line branch), so other plug-ins inherit their own
            # _on_local_request unmodified.
            w("    def _on_local_request(self, pkt):")
            w("        if self.enabled:")
            w("            addr = pkt.addr")
            w("            line = self.array._slots.get(")
            w("                (addr // NC_LINE_B) % NC_SLOTS")
            w("            )")
            w("            if line is not None and line.addr == addr and line.locked:")
            w("                p = line.pending")
            w("                cpu = pkt.requester")
            w('                if p is not None and p.kind == "fetch" and cpu != p.cpu:')
            w("                    p.combined.add(cpu)")
            w("                ctr = self._ctr_nacks")
            w("                if ctr is None:")
            w('                    ctr = self._ctr_nacks = self.stats.counter("nacks")')
            w("                ctr.value += 1")
            w("                c = self.station.cpus[cpu % CPS]")
            w("                if c.cpu_id != cpu:")
            w("                    raise SimulationError(")
            w('                        f"cpu {cpu} is not on station "')
            w('                        f"{self.station.station_id}"')
            w("                    )")
            w("                port = self.out_port")
            w("                engine = self.engine")
            w("                # NACK retry as a data tuple (see _bus_complete)")
            w("                cb = (c, addr, None)")
            w("                if port._busy:")
            w("                    port._queue.append((engine.now, CMD, cb))")
            w("                else:")
            w("                    # idle port => empty queue: send's")
            w("                    # append+popleft cancels out")
            w("                    port._busy = True")
            w(_push_event("                    ", "engine.now", 1,
                          "_port_issue", "(port, CMD, cb)").rstrip())
            w("                return 0")
            w("        return _NCBase._on_local_request(self, pkt)")
            w("")

    # ------------------------------------------------------------------
    # station dispatch + processor request path
    # ------------------------------------------------------------------
    w("")
    w("class ElabStation(Station):")
    w("")
    w("    def module_for(self, addr):")
    w("        station = addr // SMB")
    w("        if station == self.station_id:")
    w("            return self.memory")
    w("        if station >= NSTATIONS:")
    w('            raise ValueError(f"address {addr:#x} beyond physical memory")')
    w("        return self.nc")
    w("")
    w("    def deliver_from_ring(self, pkt):")
    w("        mtype = pkt.mtype")
    w("        if (")
    w("            mtype is _BARRIER_WRITE")
    w("            or mtype is _INTERRUPT")
    w("            or mtype is _UNCACHED_RESP")
    w("        ):")
    w("            Station.deliver_from_ring(self, pkt)")
    w("            return")
    w("        home = pkt.addr // SMB")
    w("        if home >= NSTATIONS:")
    w('            raise ValueError(f"address {pkt.addr:#x} beyond physical memory")')
    w("        if home == self.station_id:")
    w("            self.memory.handle(pkt)")
    w("        else:")
    w("            self.nc.handle(pkt)")
    w("")
    w("")
    w("# Processor._send_request specialized as a module-level function so the")
    w("# retry path can schedule it with the CPU packed in the arg (no bound")
    w("# method per retry); aliased back into ElabCPU so descriptor callers")
    w("# (read/write issue) bind it as a normal method.")
    w("def _cpu_send_request(self):")
    w("    p = self._pending")
    w("    if p is None:")
    w("        return")
    w('    la = p["la"]')
    w("    # l2.lookup(la, touch=False) inlined: probe without MRU move")
    w("    s = self.l2._sets.get((la // L2_LINE_B) % L2_SETS)")
    w("    line = None if s is None else s.get(la)")
    w('    kind = p["kind"]')
    w('    if kind == "read":')
    w("        if line is not None and line.state.readable:")
    w("            self._complete_locally()")
    w("            return")
    w('        mtype = _READ_EX if p.get("exclusive_only") else _READ')
    w("    else:")
    w("        if line is not None and line.state.writable:")
    w("            self._complete_locally()")
    w("            return")
    w("        if line is not None and line.state is _SHARED:")
    w("            mtype = _UPGRADE")
    w("        else:")
    w("            mtype = _READ_EX")
    w('    pkt = p.get("pkt")')
    w("    if pkt is None:")
    w("        pkt = Packet(")
    w("            mtype=mtype,")
    w("            addr=la,")
    w("            src_station=self.station.station_id,")
    w("            dest_mask=0,")
    w("            requester=self.cpu_id,")
    w('            meta={"local": True, "retry": False, "phase": self.phase},')
    w("        )")
    w('        p["pkt"] = pkt')
    w("    else:")
    w("        pkt.mtype = mtype")
    w("        pkt.pid = next_pid()")
    w('        pkt.meta["retry"] = True')
    if instr:
        # inlined Tracer.stamp — this runs once per issue *and* retry, the
        # single hottest CPU-side stamp site
        w("    tr = self.tracer")
        w("    if tr is not None:")
        w("        _rec = tr.active.get(self.cpu_id)")
        w("        if _rec is not None:")
        w('            _rec.stamps.append((self.engine.now, "cpu.send"))')
    w("    st = self.station")
    w("    home = la // SMB")
    w("    if home == st.station_id:")
    w("        target = st.memory")
    w("    elif home < NSTATIONS:")
    w("        target = st.nc")
    w("    else:")
    w('        raise ValueError(f"address {la:#x} beyond physical memory")')
    w("    bus = st.bus")
    w("    # delivery as a data tuple (see _bus_complete): no lambda per issue")
    w("    bus._queue.append((CMD, (target, pkt)))")
    w("    if not bus._busy:")
    w("        bus._busy = True")
    w("        engine = self.engine")
    w(_grant_bus(i2, "bus", arb, instr).rstrip())
    w("")
    w("")
    w("class ElabCPU(Processor):")
    w("")
    w("    _send_request = _cpu_send_request")
    w("")
    w("    def nack_from_module(self, la):")
    w("        p = self._pending")
    w('        if p is None or p["la"] != la:')
    w("            return")
    w('        p["tries"] += 1')
    w("        engine = self.engine")
    if instr:
        w('        self.stats.counter("retries").incr()')
        w("        tr = self.tracer")
        w("        if tr is not None:")
        w("            _rec = tr.active.get(self.cpu_id)")
        w("            if _rec is not None:")
        w("                _rec.retries += 1")
        w('                _rec.stamps.append((engine.now, "nack"))')
    w(_push_event(i2, "engine.now + self._retry", 1,
                  "_cpu_send_request", "self").rstrip())
    w("")

    # ------------------------------------------------------------------
    # class maps consumed by repro.elab.backend
    # ------------------------------------------------------------------
    w("")
    w("SRI_CLASSES = {")
    for st in ir.stations:
        w(f"    {st.station_id}: ElabSRI{st.station_id},")
    w("}")
    w("IRI_CLASSES = {")
    for idx, iri in enumerate(ir.iris):
        w(f'    "{iri.name}": ElabIRI{idx},')
    w("}")
    w("RING_CLASSES = {")
    for level in sorted(sizes):
        w(f"    {level}: ElabRingL{level},")
    w("}")
    w("")
    return "\n".join(L) + "\n"
