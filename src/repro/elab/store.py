"""Disk store for generated specialized-core modules.

Generated modules live under ``<cache>/elab/elab_<fingerprint>.py`` where
``<cache>`` follows the same conventions as the sweep-result cache
(:mod:`repro.perf.cache`): ``NUMACHINE_CACHE_DIR`` or ``.numachine_cache``
under the current working directory.  The fingerprint (config + package
version + elaborator schema + the ``instrumented`` axis, see
:mod:`repro.elab.ir`) is embedded in both the filename and the module's
``FINGERPRINT`` constant, so a stale module can never be picked up after a
config or code change — its name simply no longer matches — and the plain /
instrumented and fused / unfused variants of one config (two independent
axes, see :mod:`repro.elab.ir`) coexist as separate entries.

* ``NUMACHINE_CACHE=0`` disables the disk layer entirely (modules are
  generated and executed in memory every time);
* ``NUMACHINE_CACHE_MAX_MB`` caps the elab directory like the result cache:
  least-recently-used modules are evicted after each write, and loads
  refresh an entry's mtime;
* loaded modules are memoized per process, keyed by fingerprint.
"""

from __future__ import annotations

import os
import sys
import tempfile
import types
from pathlib import Path
from typing import Dict, Optional

from ..perf.cache import _max_bytes
from . import codegen
from .ir import MachineIR

#: process-wide cache: fingerprint -> executed module
_memo: Dict[str, types.ModuleType] = {}


def elab_dir(root: Optional[Path] = None) -> Path:
    """The directory holding generated modules."""
    if root is None:
        root = Path(os.environ.get("NUMACHINE_CACHE_DIR", ".numachine_cache"))
    return Path(root) / "elab"


def _disk_enabled() -> bool:
    return os.environ.get("NUMACHINE_CACHE", "1") != "0"


def module_path(fingerprint: str, root: Optional[Path] = None) -> Path:
    return elab_dir(root) / f"elab_{fingerprint}.py"


def _exec_module(source: str, fingerprint: str, filename: str) -> types.ModuleType:
    mod = types.ModuleType(f"numachine_elab_{fingerprint}")
    mod.__file__ = filename
    code = compile(source, filename, "exec")
    exec(code, mod.__dict__)
    if getattr(mod, "FINGERPRINT", None) != fingerprint:
        raise RuntimeError(
            f"generated module fingerprint mismatch in {filename}"
        )
    sys.modules[mod.__name__] = mod
    return mod


def load_module(ir: MachineIR) -> types.ModuleType:
    """The specialized module for this machine IR: memoized, then disk,
    then freshly generated (and written back when the disk layer is on)."""
    fp = ir.fingerprint
    mod = _memo.get(fp)
    if mod is not None:
        return mod

    path = module_path(fp)
    source = None
    if _disk_enabled():
        try:
            source = path.read_text()
            os.utime(path)  # refresh: LRU eviction keys off mtime
        except OSError:
            source = None
    if source is None:
        source = codegen.generate_source(ir)
        if _disk_enabled():
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                # per-writer-unique temp name + atomic rename: concurrent
                # workers generating the same fingerprint must never
                # interleave writes into one shared temp file (a torn
                # module would fail its FINGERPRINT check at best)
                fd, tmp = tempfile.mkstemp(
                    prefix=f".{ir.fingerprint[:16]}.", suffix=".tmp",
                    dir=path.parent,
                )
                try:
                    with os.fdopen(fd, "w") as fh:
                        fh.write(source)
                    os.replace(tmp, path)
                except OSError:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise
                prune()
            except OSError:
                pass  # a read-only cache dir must never break a run

    mod = _exec_module(source, fp, str(path))
    _memo[fp] = mod
    return mod


# ----------------------------------------------------------------------
# hygiene (shared with `python -m repro.perf.cache`)
# ----------------------------------------------------------------------
def _entries(root: Optional[Path] = None):
    """(mtime, size, path) for every generated module, oldest first."""
    out = []
    d = elab_dir(root)
    if d.is_dir():
        for path in d.glob("elab_*.py"):
            try:
                st = path.stat()
            except OSError:
                continue
            out.append((st.st_mtime, st.st_size, path))
    out.sort()
    return out


def prune(max_bytes: Optional[int] = None, root: Optional[Path] = None) -> int:
    """Evict least-recently-used generated modules past the size cap."""
    cap = _max_bytes() if max_bytes is None else max_bytes
    entries = _entries(root)
    total = sum(size for _, size, _ in entries)
    removed = 0
    for _, size, path in entries:
        if total <= cap:
            break
        try:
            path.unlink()
        except OSError:
            continue
        total -= size
        removed += 1
    return removed


def clear(root: Optional[Path] = None) -> int:
    """Delete every generated module; returns the number removed."""
    removed = 0
    for _, _, path in _entries(root):
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    return removed


def stats(root: Optional[Path] = None) -> dict:
    entries = _entries(root)
    return {
        "dir": str(elab_dir(root)),
        "modules": len(entries),
        "bytes": sum(size for _, size, _ in entries),
    }
