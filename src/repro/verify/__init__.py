"""Runtime coherence invariant checking (the verification sibling of
:mod:`repro.obs`).

The checker observes memory / network-cache state transitions through the
same null-object hook pattern the tracer uses: every component carries a
``verifier`` attribute that is ``None`` by default, and the hot paths guard
each hook call with ``v = self.verifier; if v is not None: ...`` — so a run
with checking disabled pays one attribute load per hook site, and a run
with checking *enabled* is bit-identical in (events, now) to a disabled
run, because the checker never schedules events, never draws packet ids and
never mutates simulation state.

Checked invariants (see :class:`CoherenceChecker` for the exact
formulations, which account for the protocol's *designed* transients such
as ack-free invalidation):

* ``single-writer`` — at most one L2 in the machine holds a line DIRTY
* ``writer-reader-exclusion`` — an exclusive grant excludes readers on the
  same station (bus ordering makes this exact)
* ``proc-mask-coverage`` — directory processor masks over-approximate the
  true local sharer set (modulo invalidations already on the bus)
* ``routing-mask-coverage`` — routing masks may over-deliver but never
  under-deliver; GI lines always name at least one owner station
* ``legal-transition`` — the LV/LI/GV/GI transition table, plus "a locked
  line's state only changes at unlock"
* ``locked-liveness`` — no line stays locked beyond a bounded sim time
* ``sc-blocking`` — one outstanding miss per CPU, monotonically completed
  (the R4400 blocking property sequential consistency rests on)
* ``nonsink-priority`` — nonsinkable credits stay within bounds and a
  nonsinkable message never drains while a sinkable one is queued

Violations raise :class:`InvariantViolation` carrying the guilty line, the
module, the packet id that triggered the check and a replayable seed.
"""

from .checker import CoherenceChecker, InvariantViolation

__all__ = ["CoherenceChecker", "InvariantViolation"]
