"""The coherence invariant checker (see the package docstring).

Design constraints, in order:

1. **Read-only.**  The checker may look at any simulation state but never
   changes it, never schedules events and never draws from shared id/rng
   streams — this is what makes checked runs bit-identical to unchecked
   ones.
2. **Transient-aware.**  The protocol *by design* lets stale copies
   outlive a write (ack-free ordered invalidation: the writer proceeds
   once the multicast reaches its own station; downstream sharers see it
   later).  Naive "no readers while a writer exists" would fire on every
   contended write.  Each invariant below is formulated at a point where
   the protocol's own ordering makes it exact, with checker-maintained
   shadow sets covering the in-flight invalidation windows.
3. **Cheap.**  Checks touch only the line the current event is about plus
   the small per-station cache arrays; nothing scans the whole machine
   except the single-writer check at exclusive installs (misses only).
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ..core.states import CacheState, LineState
from ..interconnect.packet import MsgType, Packet
from ..sim.engine import SimulationError


class InvariantViolation(SimulationError):
    """A protocol invariant did not hold.

    Carries enough context to reproduce and localize the failure:
    ``invariant`` (the rule name), ``line_addr`` (the guilty line),
    ``where`` (module description), ``trace_id`` (packet pid that
    triggered the check, if any), ``seed`` (the run's replay seed, set by
    the harness via :meth:`CoherenceChecker.set_seed`), plus the engine
    ``now`` / ``events_run`` at detection time.
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        *,
        line_addr: Optional[int] = None,
        where: str = "?",
        now: int = 0,
        events_run: int = 0,
        trace_id: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.invariant = invariant
        self.line_addr = line_addr
        self.where = where
        self.now = now
        self.events_run = events_run
        self.trace_id = trace_id
        self.seed = seed
        line = f"{line_addr:#x}" if line_addr is not None else "?"
        super().__init__(
            f"[{invariant}] {message} (line={line} at={where} now={now} "
            f"events={events_run} pid={trace_id} seed={seed})"
        )


def _default_policy():
    """Fallback mask/transition policy for checkers attached before a
    machine resolved its protocol (direct unit-test construction)."""
    from ..protocol import get_protocol

    return get_protocol("numachine")


class CoherenceChecker:
    """Runtime invariant checker attached across a whole machine."""

    def __init__(
        self,
        max_locked_ticks: int = 3_000_000,
        seed: Optional[int] = None,
    ) -> None:
        #: locked-liveness bound: a line continuously locked for more sim
        #: ticks than this (~1 ms at the default 3 ticks/ns) is stuck
        self.max_locked_ticks = max_locked_ticks
        self.seed = seed
        self.machine = None
        #: mask/transition policy: the machine's coherence-protocol plug-in
        #: (set at attach; per-protocol invariants live on the plug-in)
        self._policy = None
        #: per-invariant count of checks performed (not violations)
        self.checks: Dict[str, int] = {}
        # last observed (state, locked) per (kind, station, line)
        self._last: Dict[Tuple[str, int, int], Tuple[LineState, bool]] = {}
        # tick of the first observation of each continuously-locked line
        self._locked_since: Dict[Tuple[str, int, int], int] = {}
        # cpu ids with a bus invalidation delivered after the mask cleared
        self._pending_inval: Dict[Tuple[int, int], Set[int]] = {}
        # in-flight ordered-multicast invalidations per (station, line)
        self._inval_inflight: Dict[Tuple[int, int], int] = {}
        # outstanding miss per cpu: cpu_id -> (line, issue_tick)
        self._cpu_out: Dict[int, Tuple[int, int]] = {}
        self._last_complete: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def attach(self, machine) -> "CoherenceChecker":
        """Install the checker on every hook point of ``machine``."""
        self.machine = machine
        self._policy = getattr(machine, "protocol", None) or _default_policy()
        machine.verifier = self
        for cpu in machine.cpus:
            cpu.verifier = self
        for st in machine.stations:
            st.memory.verifier = self
            st.nc.verifier = self
            st.ring_interface.verifier = self
        return self

    def detach(self) -> None:
        machine = self.machine
        if machine is None:
            return
        machine.verifier = None
        for cpu in machine.cpus:
            cpu.verifier = None
        for st in machine.stations:
            st.memory.verifier = None
            st.nc.verifier = None
            st.ring_interface.verifier = None
        self.machine = None

    def set_seed(self, seed: Optional[int]) -> None:
        """Record the replay seed violations should carry."""
        self.seed = seed

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def _count(self, invariant: str) -> None:
        self.checks[invariant] = self.checks.get(invariant, 0) + 1

    def _violate(
        self,
        invariant: str,
        message: str,
        *,
        la: Optional[int] = None,
        where: str = "?",
        pkt: Optional[Packet] = None,
    ) -> None:
        engine = self.machine.engine if self.machine is not None else None
        raise InvariantViolation(
            invariant,
            message,
            line_addr=la,
            where=where,
            now=engine.now if engine is not None else 0,
            events_run=engine.events_run if engine is not None else 0,
            trace_id=pkt.pid if pkt is not None else None,
            seed=self.seed,
        )

    # ------------------------------------------------------------------
    # shared transition / lock bookkeeping
    # ------------------------------------------------------------------
    def _observe(
        self,
        kind: str,
        station_id: int,
        la: int,
        state: Optional[LineState],
        locked: bool,
        pkt: Optional[Packet],
    ) -> None:
        key = (kind, station_id, la)
        where = f"{kind}@S{station_id}"
        if state is None:
            # line evicted / never present: epoch reset
            self._last.pop(key, None)
            self._locked_since.pop(key, None)
            return
        prev = self._last.get(key)
        self._count("legal-transition")
        if prev is not None:
            pstate, plocked = prev
            if plocked and locked and pstate is not state:
                self._violate(
                    "legal-transition",
                    f"locked line changed state {pstate.value}->{state.value}",
                    la=la, where=where, pkt=pkt,
                )
            policy = self._policy
            illegal = policy.illegal_mem if kind == "mem" else policy.illegal_nc
            if not plocked and (pstate, state) in illegal:
                self._violate(
                    "legal-transition",
                    f"illegal transition {pstate.value}->{state.value}",
                    la=la, where=where, pkt=pkt,
                )
        self._last[key] = (state, locked)
        now = self.machine.engine.now
        self._count("locked-liveness")
        if locked:
            since = self._locked_since.setdefault(key, now)
            if now - since > self.max_locked_ticks:
                self._violate(
                    "locked-liveness",
                    f"line locked for {now - since} ticks "
                    f"(bound {self.max_locked_ticks})",
                    la=la, where=where, pkt=pkt,
                )
        else:
            self._locked_since.pop(key, None)

    # ------------------------------------------------------------------
    # memory module hooks
    # ------------------------------------------------------------------
    def mem_event(self, mem, pkt: Packet) -> None:
        """After the memory module dispatched ``pkt``."""
        la = mem.config.line_addr(pkt.addr)
        if pkt.mtype is MsgType.INVALIDATE:
            self._inval_delivered(mem.station_id, la)
        entry = mem.directory.peek(la)
        if entry is None:
            return
        self._observe("mem", mem.station_id, la, entry.state, entry.locked, pkt)
        if not entry.locked:
            self._check_mem_masks(mem, la, entry, pkt)

    def mem_settled(self, mem, addr: int) -> None:
        """After an out-of-dispatch directory mutation (bus intervention
        answers land via :meth:`MemoryModule._local_intervention_done`)."""
        la = mem.config.line_addr(addr)
        entry = mem.directory.peek(la)
        if entry is None:
            return
        self._observe("mem", mem.station_id, la, entry.state, entry.locked, None)
        if not entry.locked:
            self._check_mem_masks(mem, la, entry, None)

    def _check_mem_masks(self, mem, la: int, entry, pkt: Optional[Packet]) -> None:
        # what a valid mask *is* depends on the protocol (hierarchical
        # routing masks vs a flat full map): the plug-in owns the rule
        self._policy.check_mem_masks(self, mem, la, entry, pkt)

    def note_invalidate_sent(self, mem, inv: Packet) -> None:
        """Home memory launched an ordered-multicast invalidation."""
        la = mem.config.line_addr(inv.addr)
        for s in mem.codec.stations(inv.dest_mask):
            key = (s, la)
            self._inval_inflight[key] = self._inval_inflight.get(key, 0) + 1

    def _inval_delivered(self, station_id: int, la: int) -> None:
        key = (station_id, la)
        n = self._inval_inflight.get(key)
        if n is not None:
            if n <= 1:
                del self._inval_inflight[key]
            else:
                self._inval_inflight[key] = n - 1

    # ------------------------------------------------------------------
    # network cache hooks
    # ------------------------------------------------------------------
    def nc_event(self, nc, pkt: Packet) -> None:
        """After the network cache dispatched ``pkt``."""
        la = nc.config.line_addr(pkt.addr)
        if pkt.mtype is MsgType.INVALIDATE:
            self._inval_delivered(nc.station_id, la)
        if not nc.enabled:
            return
        line = nc.array.probe(la)
        if line is None:
            self._observe("nc", nc.station_id, la, None, False, pkt)
            return
        self._observe("nc", nc.station_id, la, line.state, line.locked, pkt)
        if not line.locked:
            self._check_nc_masks(nc, la, line, pkt)

    def nc_settled(self, nc, addr: int) -> None:
        la = nc.config.line_addr(addr)
        line = nc.array.probe(la)
        if line is None:
            self._observe("nc", nc.station_id, la, None, False, None)
            return
        self._observe("nc", nc.station_id, la, line.state, line.locked, None)
        if not line.locked:
            self._check_nc_masks(nc, la, line, None)

    def _check_nc_masks(self, nc, la: int, line, pkt: Optional[Packet]) -> None:
        self._policy.check_nc_masks(self, nc, la, line, pkt)

    # ------------------------------------------------------------------
    # local bus invalidation shadow
    # ------------------------------------------------------------------
    def note_local_inval(self, station_id: int, addr: int, cpu_ids) -> None:
        """A module cleared mask bits and put an invalidation on the bus;
        until each victim processes it, its copy is legitimately uncovered."""
        la = self.machine.config.line_addr(addr)
        key = (station_id, la)
        pend = self._pending_inval.get(key)
        if pend is None:
            pend = self._pending_inval[key] = set()
        pend.update(cpu_ids)

    def cpu_invalidated(self, cpu, la: int) -> None:
        """A bus invalidation reached ``cpu`` (whatever its outcome)."""
        key = (cpu.station.station_id, la)
        pend = self._pending_inval.get(key)
        if pend is not None:
            pend.discard(cpu.cpu_id)
            if not pend:
                del self._pending_inval[key]

    # ------------------------------------------------------------------
    # processor hooks (sc-blocking + single-writer)
    # ------------------------------------------------------------------
    def cpu_issue(self, cpu, la: int) -> None:
        self._count("sc-blocking")
        now = self.machine.engine.now
        out = self._cpu_out.get(cpu.cpu_id)
        if out is not None:
            self._violate(
                "sc-blocking",
                f"P{cpu.cpu_id} issued a miss for {la:#x} while "
                f"{out[0]:#x} (issued at {out[1]}) is still outstanding",
                la=la, where=f"P{cpu.cpu_id}",
            )
        self._cpu_out[cpu.cpu_id] = (la, now)

    def cpu_local_complete(self, cpu) -> None:
        self._cpu_out.pop(cpu.cpu_id, None)

    def cpu_fill(self, cpu, la: int, exclusive: bool, consumed: bool) -> None:
        now = self.machine.engine.now
        if consumed:
            self._count("sc-blocking")
            self._cpu_out.pop(cpu.cpu_id, None)
            last = self._last_complete.get(cpu.cpu_id)
            if last is not None and now < last:
                self._violate(
                    "sc-blocking",
                    f"P{cpu.cpu_id} completed at {now} before its previous "
                    f"completion at {last}",
                    la=la, where=f"P{cpu.cpu_id}",
                )
            self._last_complete[cpu.cpu_id] = now
        self._count("single-writer")
        station = cpu.station
        if exclusive:
            for other in self.machine.cpus:
                if other is cpu:
                    continue
                line = other.l2.lookup(la, touch=False)
                if line is None:
                    continue
                if line.state is CacheState.DIRTY:
                    self._violate(
                        "single-writer",
                        f"P{cpu.cpu_id} installed DIRTY while P{other.cpu_id} "
                        f"also holds the line DIRTY",
                        la=la, where=f"P{cpu.cpu_id}",
                    )
                if other.station is station and line.state.readable:
                    self._count("writer-reader-exclusion")
                    self._violate(
                        "writer-reader-exclusion",
                        f"P{cpu.cpu_id} installed DIRTY while same-station "
                        f"P{other.cpu_id} holds {line.state.value}",
                        la=la, where=f"P{cpu.cpu_id}",
                    )
            if station.nc.enabled:
                nline = station.nc.array.probe(la)
                if nline is not None and not nline.locked \
                        and nline.state in self._policy.valid_nc_states:
                    self._violate(
                        "single-writer",
                        f"P{cpu.cpu_id} installed DIRTY while its NC still "
                        f"claims {nline.state.value}",
                        la=la, where=f"P{cpu.cpu_id}",
                    )
        else:
            self._count("writer-reader-exclusion")
            for other in station.cpus:
                if other is cpu:
                    continue
                line = other.l2.lookup(la, touch=False)
                if line is not None and line.state is CacheState.DIRTY:
                    self._violate(
                        "writer-reader-exclusion",
                        f"P{cpu.cpu_id} installed a readable copy while "
                        f"same-station P{other.cpu_id} holds the line DIRTY",
                        la=la, where=f"P{cpu.cpu_id}",
                    )

    # ------------------------------------------------------------------
    # ring interface hooks (deadlock-avoidance rules)
    # ------------------------------------------------------------------
    def ri_credit(self, ri) -> None:
        self._count("nonsink-priority")
        credits = ri._nonsink_credits
        if credits < 0 or credits > ri.nonsink_limit:
            self._violate(
                "nonsink-priority",
                f"S{ri.station_id} nonsinkable credits {credits} outside "
                f"[0, {ri.nonsink_limit}]",
                where=f"ri@S{ri.station_id}",
            )

    def ri_drain(self, ri, packet: Packet, kind: str) -> None:
        self._count("nonsink-priority")
        if kind == "nonsink" and not ri.sink_q.empty:
            self._violate(
                "nonsink-priority",
                f"S{ri.station_id} drained a nonsinkable message while "
                f"{len(ri.sink_q)} sinkable messages were queued",
                where=f"ri@S{ri.station_id}", pkt=packet,
            )

    # ------------------------------------------------------------------
    # end-of-run checks
    # ------------------------------------------------------------------
    def assert_quiescent(self) -> None:
        """After a drained run: no line anywhere may still be locked."""
        machine = self.machine
        if machine is None:
            return
        self._count("locked-liveness")
        for st in machine.stations:
            for la, entry in st.memory.directory.lines():
                if entry.locked:
                    self._violate(
                        "locked-liveness",
                        "line still locked after the run drained",
                        la=la, where=f"mem@S{st.station_id}",
                    )
            for line in st.nc.array.lines():
                if line.locked:
                    self._violate(
                        "locked-liveness",
                        "NC line still locked after the run drained",
                        la=line.addr, where=f"nc@S{st.station_id}",
                    )
