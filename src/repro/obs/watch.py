"""``python -m repro.obs.watch`` — tail a live (or finished) run.

Reads the JSONL telemetry stream a :class:`repro.obs.stream.TelemetryStream`
writes and renders a terminal status panel: simulated time, event totals,
per-CPU completion progress, utilizations, sparkline timelines of the event
rate and bus utilization across stream lines, and two ETA estimates — one
from CPU completion progress against wall time, one from the event rate
against the pending-event count (a drain lower bound).

In follow mode (the default) the file is re-read on an interval until the
``stream.final`` line lands; ``--once`` renders the current state and
exits, which is what CI uses against a completed run.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .report import sparkline
from .stream import read_stream, stream_is_final


def _fmt_eta(seconds: Optional[float]) -> str:
    if seconds is None or seconds < 0:
        return "?"
    if seconds < 120:
        return f"{seconds:.1f}s"
    if seconds < 7200:
        return f"{seconds / 60:.1f}m"
    return f"{seconds / 3600:.1f}h"


def _rates(lines: List[dict], key: str = "events_run") -> List[float]:
    """Events/s of each inter-line interval, from the stream's own
    wall-clock stamps (robust across runs appended to one file)."""
    out: List[float] = []
    for prev, cur in zip(lines, lines[1:]):
        de = cur["meta"].get(key, 0) - prev["meta"].get(key, 0)
        dw = cur["stream"]["wall_ts"] - prev["stream"]["wall_ts"]
        out.append(de / dw if dw > 0 and de >= 0 else 0.0)
    return out


def render_status(lines: List[dict], width: int = 60) -> str:
    """The status panel for a parsed stream (pure: testable, no I/O)."""
    if not lines:
        return "(no stream lines yet)"
    last = lines[-1]
    meta = last.get("meta", {})
    st = last.get("stream", {})
    out: List[str] = []

    done, total = st.get("cpus_done", 0), st.get("cpus_total", 0)
    state = "FINISHED" if st.get("final") else "running"
    # under transit fusion the macro-event count undersells progress; rate
    # and sparkline use hop-equivalents so fused/unfused runs compare, while
    # the drain ETA keeps the macro rate (the queue holds macro events)
    fused = meta.get("fuse") == "on" and "events_hop_equivalent" in meta
    header = (
        f"{state} [{meta.get('protocol', 'numachine')}]: "
        f"{meta.get('time_ns', 0):,.0f} ns simulated, "
        f"{meta.get('events_run', 0):,} events"
    )
    if fused:
        header += f" ({meta['events_hop_equivalent']:,} hop-equivalent)"
    out.append(
        header
        + f", cpus {done}/{total} done, {st.get('pending', 0):,} events pending"
    )

    rates = _rates(lines, "events_hop_equivalent" if fused else "events_run")
    rate = rates[-1] if rates else meta.get("events_per_sec", 0.0)
    if not st.get("final"):
        eta_cpu = None
        elapsed = st.get("wall_ts", 0) - lines[0]["stream"].get("wall_ts", 0)
        if done and total and done < total and elapsed > 0:
            eta_cpu = elapsed * (total - done) / done
        if fused:
            macro = _rates(lines)
            drain_rate = macro[-1] if macro else 0.0
        else:
            drain_rate = rate
        eta_drain = st.get("pending", 0) / drain_rate if drain_rate > 0 else None
        out.append(
            f"rate: {rate:,.0f} {'hop-equivalent ' if fused else ''}events/s   "
            f"eta {_fmt_eta(eta_cpu)} (cpu progress), "
            f">= {_fmt_eta(eta_drain)} (queue drain)"
        )
    elif "events_per_sec" in meta:
        rate = meta["events_per_sec"]
        if fused and meta.get("events_run"):
            # macro-events/s understates a fused run; report the
            # hop-equivalent rate so fused/unfused runs compare
            rate = rate * meta["events_hop_equivalent"] / meta["events_run"]
        out.append(
            f"rate: {rate:,.0f} {'hop-equivalent ' if fused else ''}events/s "
            f"over the run ({meta.get('wall_s', 0):.3f} s wall)"
        )

    util = last.get("utilizations", {})
    if util:
        out.append(
            "util: " + "  ".join(f"{k}={v:.1%}" for k, v in sorted(util.items()))
        )

    if len(lines) >= 2:
        out.append("")
        out.append(f"  {'events/s':<14} |{sparkline(rates, width)}|")
        for key in sorted(util):
            series = [
                ln.get("utilizations", {}).get(key, 0.0) for ln in lines
            ]
            out.append(f"  {key + '.util':<14} |{sparkline(series, width)}|")

    fifos = last.get("fifos", {})
    deep = sorted(
        ((f["depth"], name) for name, f in fifos.items() if f.get("depth")),
        reverse=True,
    )[:5]
    if deep:
        out.append("")
        out.append(
            "deepest fifos: "
            + "  ".join(f"{name}={depth}" for depth, name in deep)
        )
    return "\n".join(out)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.watch",
        description="Tail a run's JSONL telemetry stream "
        "(see Observability(stream_path=...)).",
    )
    parser.add_argument("stream", help="telemetry JSONL file")
    parser.add_argument(
        "--interval", type=float, default=1.0,
        help="refresh period in seconds (default: 1.0)",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="render the current state once and exit",
    )
    args = parser.parse_args(argv)

    while True:
        try:
            lines = read_stream(args.stream)
        except OSError as exc:
            print(f"error: cannot read stream: {exc}", file=sys.stderr)
            return 2
        panel = render_status(lines)
        if args.once:
            print(panel)
            return 0
        # follow mode: repaint in place until the final line lands
        sys.stdout.write("\x1b[2J\x1b[H" + panel + "\n")
        sys.stdout.flush()
        if stream_is_final(lines):
            return 0
        time.sleep(args.interval)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI smoke test
    raise SystemExit(main())
