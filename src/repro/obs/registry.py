"""Machine-wide metrics registry: one snapshot, two export formats.

The simulator's statistics live in many places — every component's
:class:`~repro.sim.stats.StatGroup`, the :class:`~repro.monitor.Monitor`
histogram tables, FIFO occupancy records, ring/bus busy trackers, and (when
observability is attached) the probe time series and transaction-trace
summary.  :func:`snapshot` walks a :class:`~repro.system.machine.Machine`
and flattens all of it into one JSON-serializable dict;
:func:`to_prometheus` renders any such snapshot as Prometheus text
exposition format, so a run's metrics drop straight into standard tooling.

The snapshot is deterministic for a deterministic run when taken with
``include_wall=False`` (the wall-clock throughput meter is the only
host-dependent field).
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List

from ..sim.engine import ticks_to_ns

#: bump when the snapshot layout changes incompatibly
SNAPSHOT_SCHEMA = 1


# ----------------------------------------------------------------------
# collection
# ----------------------------------------------------------------------
def _stat_groups(machine) -> Iterator:
    for cpu in machine.cpus:
        yield cpu.stats
    for st in machine.stations:
        yield st.memory.stats
        yield st.nc.stats
        yield st.ring_interface.stats
    for iri in machine.net.iris:
        yield iri.stats


def _fifos(machine) -> Iterator:
    for st in machine.stations:
        yield st.memory.in_fifo
        yield st.nc.in_fifo
        ri = st.ring_interface
        yield ri.out_fifo
        yield ri.in_fifo
        yield ri.sink_q
        yield ri.nonsink_q
    for iri in machine.net.iris:
        yield iri.up_fifo
        yield iri.down_fifo


def _histogram_json(hist) -> dict:
    cells = hist.cells()
    return {
        "name": hist.name,
        "rows": [str(r) for r in hist.rows()],
        "cols": [str(c) for c in hist.columns()],
        "cells": [[str(r), str(c), n] for (r, c), n in sorted(cells.items(), key=repr)],
        "overflows": hist.overflows,
    }


def snapshot(machine, include_wall: bool = True) -> dict:
    """Collect the unified metrics snapshot of ``machine`` right now.

    Works on any machine; the ``histograms`` / ``probes`` / ``trace``
    sections appear only when a monitor / observability layer is attached.
    """
    engine = machine.engine
    now = engine.now

    counters: Dict[str, int] = {}
    accumulators: Dict[str, dict] = {}
    for grp in _stat_groups(machine):
        for c in grp.counters.values():
            counters[c.name] = c.value
        for a in grp.accumulators.values():
            accumulators[a.name] = {
                "count": a.count,
                "total": a.total,
                "min": a.min,
                "max": a.max,
                "mean": a.mean,
            }
    for st in machine.stations:
        counters[st.bus.transactions.name] = st.bus.transactions.value
    for _key, ring in sorted(machine.net.rings.items()):
        counters[ring.packets_carried.name] = ring.packets_carried.value
        counters[ring.halts.name] = ring.halts.value

    meta = {
        "time_ticks": now,
        "time_ns": ticks_to_ns(now),
        "events_run": engine.events_run,
        "num_stations": machine.config.num_stations,
        "num_cpus": len(machine.cpus),
        "protocol": getattr(machine, "protocol_name", "numachine"),
    }
    counts = getattr(machine, "event_counts", None)
    if counts is not None:
        # transit fusion (NUMACHINE_FUSE): macro-events vs the equivalent
        # hop-by-hop event count, so fused and unfused runs stay comparable
        ec = counts()
        meta["fuse"] = ec["fuse"]
        meta["events_fused"] = ec["fused"]
        meta["events_cancelled"] = ec["cancels"]
        meta["events_hop_equivalent"] = ec["hop_equivalent"]
    snap = {
        "schema": SNAPSHOT_SCHEMA,
        "meta": meta,
        "counters": counters,
        "accumulators": accumulators,
        "fifos": {f.name: f.stats_snapshot(now) for f in _fifos(machine)},
        "utilizations": machine.utilizations(),
    }
    if include_wall:
        snap["meta"]["wall_s"] = engine.wall_time_s
        snap["meta"]["events_per_sec"] = engine.events_per_sec

    monitor = machine.monitor
    if monitor is not None:
        snap["histograms"] = {
            "coherence": _histogram_json(monitor.coherence_histogram),
            "nc": _histogram_json(monitor.nc_histogram),
            "originator": _histogram_json(monitor.originator_table),
            "phase": _histogram_json(monitor.phase_table),
        }

    obs = getattr(machine, "obs", None)
    if obs is not None:
        if obs.probes is not None:
            snap["probes"] = obs.probes.series()
        if obs.tracer is not None:
            snap["trace"] = obs.tracer.summary()
    return snap


def write_snapshot(path, snap: dict) -> None:
    with open(path, "w") as fh:
        json.dump(snap, fh, indent=1)
        fh.write("\n")


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _esc(label: str) -> str:
    # text-exposition label values escape backslash, double-quote and
    # newline (in that order — backslash first, or the others double up)
    return (
        str(label)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


class PromWriter:
    """Shared text-exposition emitter: HELP/TYPE pairs + sample lines.

    One writer per document; both the per-run snapshot exporter
    (:func:`to_prometheus`) and the job server's service-level series
    (:func:`serve_to_prometheus`) render through it, so every metric the
    project emits obeys the same format rules (and the same golden-file
    validator in the test suite).
    """

    def __init__(self, prefix: str) -> None:
        self.prefix = prefix
        self.out: List[str] = []

    def metric(self, name, help_, mtype, samples) -> None:
        prefix, out = self.prefix, self.out
        out.append(f"# HELP {prefix}_{name} {help_}")
        out.append(f"# TYPE {prefix}_{name} {mtype}")
        for labels, value in samples:
            lbl = ",".join(f'{k}="{_esc(v)}"' for k, v in labels)
            out.append(f"{prefix}_{name}{{{lbl}}} {value}" if lbl
                       else f"{prefix}_{name} {value}")

    def render(self) -> str:
        return "\n".join(self.out) + "\n"


def to_prometheus(snap: dict, prefix: str = "numachine") -> str:
    """Render a :func:`snapshot` dict in Prometheus text format."""
    writer = PromWriter(prefix)
    metric = writer.metric

    meta = snap.get("meta", {})
    metric("sim_time_ns", "simulated time", "gauge",
           [((), meta.get("time_ns", 0))])
    metric("events_total", "engine events processed", "counter",
           [((), meta.get("events_run", 0))])
    if "protocol" in meta:
        # info-style gauge: the coherence protocol rides as a label so
        # scrapes can group/filter ablation runs without re-keying metrics
        metric("protocol_info", "coherence protocol plug-in", "gauge",
               [((("protocol", meta["protocol"]),), 1)])
    if "events_hop_equivalent" in meta:
        metric("events_fused_total", "hop events elided by transit fusion",
               "counter", [((), meta.get("events_fused", 0))])
        metric("events_hop_equivalent_total",
               "events the hop-by-hop walk would have run", "counter",
               [((), meta.get("events_hop_equivalent", 0))])

    metric("counter_total", "component event counters", "counter",
           [((("name", k),), v) for k, v in sorted(snap.get("counters", {}).items())])

    acc_ticks, acc_samples = [], []
    for name, a in sorted(snap.get("accumulators", {}).items()):
        acc_ticks.append(((("name", name),), a["total"]))
        acc_samples.append(((("name", name),), a["count"]))
    metric("latency_ticks_total", "accumulated delay samples (ticks)",
           "counter", acc_ticks)
    metric("latency_samples_total", "delay sample counts", "counter", acc_samples)

    metric("utilization", "busy fraction over the run", "gauge",
           [((("resource", k),), v)
            for k, v in sorted(snap.get("utilizations", {}).items())])

    depth, max_depth, mean_depth = [], [], []
    for name, f in sorted(snap.get("fifos", {}).items()):
        lbl = (("fifo", name),)
        depth.append((lbl, f["depth"]))
        max_depth.append((lbl, f["max_depth"]))
        mean_depth.append((lbl, f["mean_depth"]))
    metric("fifo_depth", "current FIFO occupancy", "gauge", depth)
    metric("fifo_max_depth", "peak FIFO occupancy", "gauge", max_depth)
    metric("fifo_mean_depth", "time-weighted mean FIFO occupancy", "gauge",
           mean_depth)

    hist_samples = []
    for table, h in sorted(snap.get("histograms", {}).items()):
        for row, col, n in h["cells"]:
            hist_samples.append(
                ((("table", table), ("row", row), ("col", col)), n)
            )
    if hist_samples:
        metric("histogram_total", "monitor histogram cells", "counter",
               hist_samples)

    probe_samples = []
    for name, series in sorted(snap.get("probes", {}).items()):
        if series["v"]:
            probe_samples.append(((("name", name),), series["v"][-1]))
    if probe_samples:
        metric("probe_last", "latest probe sample", "gauge", probe_samples)

    trace = snap.get("trace")
    if trace is not None:
        metric("traced_transactions_total", "finished traced transactions",
               "counter", [((), trace["finished"])])
        seg_samples = []
        for kind, agg in sorted(trace.get("breakdown", {}).items()):
            for label, seg in sorted(agg["segments"].items()):
                seg_samples.append(
                    ((("kind", kind), ("segment", label)), seg["ticks"])
                )
        if seg_samples:
            metric("trace_segment_ticks_total",
                   "traced latency by pipeline segment", "counter", seg_samples)

    return writer.render()


def serve_to_prometheus(stats: dict, prefix: str = "numachine_serve") -> str:
    """Render a :meth:`repro.serve.ServeMetrics.snapshot` dict as
    Prometheus text — the service-level counterpart of
    :func:`to_prometheus` (hit ratio, queue depth, in-flight jobs,
    latency quantiles per serving class)."""
    w = PromWriter(prefix)
    w.metric("uptime_seconds", "seconds since server start", "gauge",
             [((), stats.get("uptime_s", 0.0))])

    req_samples = []
    for route_status, n in sorted(stats.get("requests", {}).items()):
        route, _, status = route_status.rpartition(" ")
        req_samples.append(((("route", route), ("status", status)), n))
    w.metric("requests_total", "HTTP requests by route and status",
             "counter", req_samples)
    w.metric("responses_5xx_total", "server-error responses", "counter",
             [((), stats.get("responses_5xx", 0))])

    cache = stats.get("cache", {})
    w.metric("cache_requests_total",
             "point lookups by outcome (hit / miss / coalesced)", "counter",
             [((("result", k),), cache.get(k, 0))
              for k in ("hits", "misses", "coalesced")])
    w.metric("cache_hit_ratio", "hits over hits+misses since start", "gauge",
             [((), cache.get("hit_ratio", 0.0))])

    jobs = stats.get("jobs", {})
    w.metric("jobs_total", "cold jobs by final state", "counter",
             [((("state", k),), jobs.get(k, 0))
              for k in ("completed", "failed", "expired", "dropped")])
    w.metric("pool_submissions_total",
             "batched submissions handed to the worker pool", "counter",
             [((), jobs.get("pool_submissions", 0))])
    w.metric("batched_points_total", "points carried by those submissions",
             "counter", [((), jobs.get("batched_points", 0))])
    w.metric("queue_depth", "cold points waiting for admission", "gauge",
             [((), jobs.get("queue_depth", 0))])
    w.metric("jobs_in_flight", "points currently executing in the pool",
             "gauge", [((), jobs.get("in_flight", 0))])
    w.metric("draining", "1 while the server refuses new work", "gauge",
             [((), 1 if stats.get("draining") else 0)])
    w.metric("stream_lines_forwarded_total",
             "telemetry JSONL lines bridged to streaming clients", "counter",
             [((), stats.get("stream_lines_forwarded", 0))])

    quantiles, counts = [], []
    for cls, summary in sorted(stats.get("latency_s", {}).items()):
        for q, label in (("p50", "0.5"), ("p90", "0.9"), ("p99", "0.99")):
            quantiles.append(
                ((("class", cls), ("quantile", label)), summary.get(q, 0.0))
            )
        counts.append(((("class", cls),), summary.get("count", 0)))
    w.metric("request_latency_seconds",
             "request latency quantiles over the recent window", "gauge",
             quantiles)
    w.metric("request_latency_count", "latency samples per serving class",
             "counter", counts)
    return w.render()
