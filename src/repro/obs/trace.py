"""Transaction tracing — the lifecycle of every cache-miss request.

The paper's monitoring hardware (§3.3) can watch any bus or ring in the
machine, but it sees each resource in isolation.  The tracer stitches the
per-resource observations back into *transactions*: each CPU request that
misses its secondary cache gets a trace id, and every hop it (or any packet
acting on its behalf — interventions, invalidations, data responses) takes
through the machine appends a timestamped *stamp*.  Spans are the intervals
between consecutive stamps, so a finished transaction's span chain is
contiguous by construction and its total equals exactly the latency the
processor's ``<kind>_latency`` accumulator records (issue to restart, the
definition :mod:`repro.analysis.latency` uses).

Keying works because the R4400 processor model is blocking: a CPU has at
most one outstanding request, so ``(requester cpu id)`` — which every
packet already carries — uniquely names the transaction.  No trace state
rides in packets and nothing changes on the hot paths when tracing is off:
every instrumentation site is a ``tracer is not None`` check against an
attribute that defaults to ``None``.

Export is Chrome trace-event JSON (the ``traceEvents`` array form), which
Perfetto and ``chrome://tracing`` open directly: one track per CPU with a
complete ("X") slice per transaction and nested child slices per span.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from ..sim.engine import TICKS_PER_NS

#: engine ticks per Chrome trace-event microsecond
_TICKS_PER_US = TICKS_PER_NS * 1000.0


class TxnTrace:
    """One traced transaction: a CPU request from issue to restart."""

    __slots__ = ("tid", "cpu", "kind", "addr", "begin", "end", "stamps", "retries")

    def __init__(self, tid: int, cpu: int, kind: str, addr: int, begin: int) -> None:
        self.tid = tid
        self.cpu = cpu
        self.kind = kind                    # 'read' | 'write' | 'rmw'
        self.addr = addr                    # line address
        self.begin = begin                  # tick of issue (= _request_start)
        self.end: Optional[int] = None      # tick of processor restart
        #: (tick, label) checkpoints, in recording order
        self.stamps: List[Tuple[int, str]] = [(begin, "issue")]
        self.retries = 0

    @property
    def duration(self) -> int:
        return (self.end if self.end is not None else self.stamps[-1][0]) - self.begin

    def spans(self) -> List[Tuple[str, int, int]]:
        """Contiguous ``(label, t0, t1)`` intervals tiling [begin, end].

        Stamps are sorted by time first: multicast branches (e.g. the copies
        of an ordered invalidation) stamp concurrently, and a stamp taken at
        a reserved future slot time can precede an earlier-resource stamp in
        recording order.  Each interval is attributed to the label of the
        stamp that *ends* it — "what the transaction was waiting for".
        """
        stamps = sorted(self.stamps)
        out: List[Tuple[str, int, int]] = []
        for (t0, _l0), (t1, l1) in zip(stamps, stamps[1:]):
            if t1 > t0:
                out.append((l1, t0, t1))
        return out

    def to_json(self) -> dict:
        return {
            "tid": self.tid,
            "cpu": self.cpu,
            "kind": self.kind,
            "addr": self.addr,
            "begin": self.begin,
            "end": self.end,
            "retries": self.retries,
            "spans": [[label, t0, t1] for label, t0, t1 in self.spans()],
        }

    def __repr__(self) -> str:
        return (
            f"TxnTrace(#{self.tid} P{self.cpu} {self.kind} {self.addr:#x} "
            f"{self.begin}..{self.end} {len(self.stamps)} stamps)"
        )


class Tracer:
    """Machine-wide transaction tracer.

    Components hold a reference to the machine's tracer (or ``None``) and
    call :meth:`begin` / :meth:`stamp` / :meth:`stamp_pkt` / :meth:`finish`
    at the hops described in the module docstring.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        #: bound on retained finished transactions (None = unbounded)
        self.capacity = capacity
        self.active: Dict[int, TxnTrace] = {}       # cpu id -> in-flight trace
        self.finished: List[TxnTrace] = []
        self.dropped = 0
        self.abandoned = 0
        self._next_tid = 1

    # ------------------------------------------------------------------
    # recording (called from instrumented components)
    # ------------------------------------------------------------------
    def begin(self, cpu: int, kind: str, line_addr: int, now: int) -> TxnTrace:
        rec = TxnTrace(self._next_tid, cpu, kind, line_addr, now)
        self._next_tid += 1
        self.active[cpu] = rec
        return rec

    def stamp(self, cpu: int, label: str, t: int) -> None:
        """Checkpoint the active transaction of ``cpu`` (no packet in hand)."""
        rec = self.active.get(cpu)
        if rec is not None:
            rec.stamps.append((t, label))

    def stamp_pkt(self, pkt, label: str, t: int) -> None:
        """Checkpoint via a packet: attributed to the requester's active
        transaction, only if the packet concerns the same cache line."""
        cpu = pkt.requester
        if cpu is None:
            return
        rec = self.active.get(cpu)
        if rec is not None and rec.addr == pkt.addr:
            rec.stamps.append((t, label))

    def retry(self, cpu: int, t: int) -> None:
        rec = self.active.get(cpu)
        if rec is not None:
            rec.retries += 1
            rec.stamps.append((t, "nack"))

    def finish(self, cpu: int, t_end: int) -> None:
        """The processor restarts at ``t_end``; close the transaction."""
        rec = self.active.pop(cpu, None)
        if rec is None:
            return
        rec.end = t_end
        rec.stamps.append((t_end, "restart"))
        if self.capacity is not None and len(self.finished) >= self.capacity:
            self.dropped += 1
            return
        self.finished.append(rec)

    def abandon(self, cpu: int) -> None:
        """The request resolved without network traffic (e.g. a racing fill
        arrived while it was queued); it records no latency sample, so it
        keeps no trace either."""
        if self.active.pop(cpu, None) is not None:
            self.abandoned += 1

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------
    def breakdown(self) -> Dict[str, Dict[str, Any]]:
        """Per-kind, per-segment latency totals over finished transactions.

        Returns ``{kind: {"count": n, "total_ticks": T,
        "segments": {label: {"count": c, "ticks": t}}}}``.
        """
        out: Dict[str, Dict[str, Any]] = {}
        for rec in self.finished:
            agg = out.get(rec.kind)
            if agg is None:
                agg = out[rec.kind] = {"count": 0, "total_ticks": 0, "segments": {}}
            agg["count"] += 1
            agg["total_ticks"] += rec.duration
            segs = agg["segments"]
            for label, t0, t1 in rec.spans():
                s = segs.get(label)
                if s is None:
                    s = segs[label] = {"count": 0, "ticks": 0}
                s["count"] += 1
                s["ticks"] += t1 - t0
        return out

    def summary(self) -> dict:
        return {
            "finished": len(self.finished),
            "active": len(self.active),
            "dropped": self.dropped,
            "abandoned": self.abandoned,
            "breakdown": self.breakdown(),
        }

    # ------------------------------------------------------------------
    # Chrome trace-event export
    # ------------------------------------------------------------------
    def chrome_events(self) -> List[dict]:
        """The transactions as Chrome trace-event dicts (``ph: X`` slices).

        One process ("transactions"), one thread per CPU.  Each transaction
        is an enclosing slice with its contiguous spans as nested child
        slices, so Perfetto shows the latency breakdown visually.
        """
        events: List[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "args": {"name": "transactions"},
            }
        ]
        cpus = sorted({rec.cpu for rec in self.finished})
        for cpu in cpus:
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": cpu,
                    "args": {"name": f"P{cpu}"},
                }
            )
        for rec in self.finished:
            ts = rec.begin / _TICKS_PER_US
            dur = rec.duration / _TICKS_PER_US
            events.append(
                {
                    "name": f"{rec.kind} {rec.addr:#x}",
                    "cat": "txn",
                    "ph": "X",
                    "ts": ts,
                    "dur": dur,
                    "pid": 1,
                    "tid": rec.cpu,
                    "args": {
                        "trace_id": rec.tid,
                        "addr": f"{rec.addr:#x}",
                        "retries": rec.retries,
                    },
                }
            )
            for label, t0, t1 in rec.spans():
                events.append(
                    {
                        "name": label,
                        "cat": "span",
                        "ph": "X",
                        "ts": t0 / _TICKS_PER_US,
                        "dur": (t1 - t0) / _TICKS_PER_US,
                        "pid": 1,
                        "tid": rec.cpu,
                        "args": {"trace_id": rec.tid},
                    }
                )
        return events


def dump_chrome_events(dump: dict) -> List[dict]:
    """A watchdog :func:`repro.fault.diagnostic_dump` as Chrome trace
    instant events (``ph: i``), one per blocked component and locked line,
    all at the dump's capture time — loaded alongside the transaction
    trace, Perfetto pins *what was stuck* onto *when the machine stalled*.
    """
    ts = dump.get("now_ticks", 0) / _TICKS_PER_US
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 4,
            "tid": 0,
            "args": {"name": "watchdog dump"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 4,
            "tid": 1,
            "args": {"name": "blocked components"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 4,
            "tid": 2,
            "args": {"name": "locked lines"},
        },
    ]
    for reason in dump.get("blocked", []):
        events.append(
            {
                "name": str(reason)[:120],
                "cat": "dump",
                "ph": "i",
                "s": "t",
                "ts": ts,
                "pid": 4,
                "tid": 1,
                "args": {"reason": str(reason)},
            }
        )
    for section, kind in (
        ("locked_memory_lines", "memory"),
        ("locked_nc_lines", "nc"),
    ):
        for rec in dump.get(section, []):
            events.append(
                {
                    "name": f"{kind} S{rec.get('station')} {rec.get('line')} "
                    f"{rec.get('state')}",
                    "cat": "dump",
                    "ph": "i",
                    "s": "t",
                    "ts": ts,
                    "pid": 4,
                    "tid": 2,
                    "args": dict(rec, kind=kind),
                }
            )
    return events


def chrome_trace(tracer: Optional[Tracer], probes=None, dump=None) -> dict:
    """Assemble the full Chrome trace-event JSON document.

    ``probes`` (a :class:`repro.obs.probes.ProbeSet`) contributes counter
    ("C") events so FIFO depths and utilizations render as Perfetto counter
    tracks alongside the transaction slices; ``dump`` (a watchdog
    :func:`~repro.fault.diagnostic_dump`) contributes instant events
    marking blocked components and locked lines at the stall instant.
    """
    events: List[dict] = []
    if tracer is not None:
        events.extend(tracer.chrome_events())
    if probes is not None:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": 2,
                "tid": 0,
                "args": {"name": "probes"},
            }
        )
        for name, series in probes.series().items():
            for t, v in zip(series["t"], series["v"]):
                events.append(
                    {
                        "name": name,
                        "ph": "C",
                        "ts": t / _TICKS_PER_US,
                        "pid": 2,
                        "tid": 0,
                        "args": {"value": v},
                    }
                )
    if dump is not None:
        events.extend(dump_chrome_events(dump))
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def write_chrome_trace(path, tracer: Optional[Tracer], probes=None, dump=None) -> None:
    """Write the Perfetto-loadable trace JSON to ``path``."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(tracer, probes, dump), fh)
        fh.write("\n")
