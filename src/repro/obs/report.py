"""``python -m repro.obs.report`` — render a saved observability snapshot.

Reads a JSON snapshot written by :func:`repro.obs.registry.write_snapshot`
(or ``Observability.write_snapshot``) and prints, depending on ``--format``:

``text`` (default)
    run metadata, monitor histograms, the traced latency breakdown per
    transaction kind and pipeline segment, FIFO occupancy, and ASCII
    sparkline timelines of the probe series.
``prom``
    the Prometheus text exposition of the same snapshot.
``json``
    the snapshot itself, pretty-printed (useful after ad-hoc filtering).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..sim.engine import TICKS_PER_NS
from .registry import to_prometheus

_SPARK = " .:-=+*#%@"


def sparkline(values, width: int = 60) -> str:
    """Down-sample ``values`` to ``width`` buckets of ASCII intensity."""
    if not values:
        return ""
    if len(values) > width:
        step = len(values) / width
        values = [
            max(values[int(i * step): max(int(i * step) + 1, int((i + 1) * step))])
            for i in range(width)
        ]
    top = max(values)
    if top <= 0:
        return _SPARK[0] * len(values)
    scale = len(_SPARK) - 1
    return "".join(_SPARK[min(scale, int(v / top * scale + 0.5))] for v in values)


def _render_histogram(h: dict) -> str:
    rows, cols = h["rows"], h["cols"]
    cells = {(r, c): n for r, c, n in h["cells"]}
    width = max([len(c) for c in cols] + [8])
    lines = [f"{h['name']:<14}" + "".join(f"{c:>{width + 2}}" for c in cols)]
    for r in rows:
        lines.append(
            f"{r:<14}" + "".join(f"{cells.get((r, c), 0):>{width + 2}}" for c in cols)
        )
    return "\n".join(lines)


def _render_breakdown(trace: dict) -> List[str]:
    lines = [
        f"traced transactions: {trace['finished']} finished, "
        f"{trace['active']} active, {trace['dropped']} dropped, "
        f"{trace['abandoned']} abandoned",
    ]
    for kind, agg in sorted(trace.get("breakdown", {}).items()):
        n = agg["count"]
        mean_ns = agg["total_ticks"] / n / TICKS_PER_NS if n else 0.0
        lines.append(f"\n  {kind}: {n} txns, mean latency {mean_ns:.1f} ns")
        segs = sorted(
            agg["segments"].items(), key=lambda kv: -kv[1]["ticks"]
        )
        for label, seg in segs:
            seg_ns = seg["ticks"] / n / TICKS_PER_NS
            share = seg["ticks"] / agg["total_ticks"] * 100 if agg["total_ticks"] else 0
            lines.append(
                f"    {label:<18} {seg_ns:>9.1f} ns/txn  {share:>5.1f}%"
                f"  ({seg['count']} spans)"
            )
    return lines


def render_text(snap: dict, probe_limit: int = 24) -> str:
    out: List[str] = []
    meta = snap.get("meta", {})
    out.append(
        f"run: {meta.get('time_ns', 0):.0f} ns simulated, "
        f"{meta.get('events_run', 0)} events, "
        f"{meta.get('num_cpus', '?')} cpus / {meta.get('num_stations', '?')} stations, "
        f"{meta.get('protocol', 'numachine')} protocol"
    )
    if meta.get("fuse") == "on":
        out.append(
            f"     transit fusion on: {meta.get('events_fused', 0)} hop events "
            f"elided ({meta.get('events_cancelled', 0)} fused transits "
            f"repaired), {meta.get('events_hop_equivalent', 0)} hop-equivalent"
        )
    if "events_per_sec" in meta:
        out.append(
            f"     {meta['events_per_sec']:.0f} events/s "
            f"({meta.get('wall_s', 0):.3f} s wall)"
        )

    util = snap.get("utilizations", {})
    if util:
        out.append("\nutilization: " + "  ".join(
            f"{k}={v:.1%}" for k, v in sorted(util.items())
        ))

    for key, h in sorted(snap.get("histograms", {}).items()):
        out.append("")
        out.append(_render_histogram(h))

    trace = snap.get("trace")
    if trace is not None:
        out.append("\nlatency breakdown (from transaction traces):")
        out.extend(_render_breakdown(trace))

    fifos = snap.get("fifos", {})
    busy = [
        (name, f) for name, f in sorted(fifos.items()) if f["pushes"]
    ]
    if busy:
        out.append("\nfifos (with traffic):")
        out.append(
            f"  {'name':<20} {'pushes':>8} {'max':>5} {'mean':>7} "
            f"{'wait ns':>9} {'stalls':>7}"
        )
        for name, f in busy:
            wait_ns = f["wait_mean_ticks"] / TICKS_PER_NS
            out.append(
                f"  {name:<20} {f['pushes']:>8} {f['max_depth']:>5} "
                f"{f['mean_depth']:>7.3f} {wait_ns:>9.1f} {f['stalls']:>7}"
            )

    probes = snap.get("probes", {})
    shown = [(n, s) for n, s in sorted(probes.items()) if any(s["v"])]
    if shown:
        out.append("\nprobe timelines (scale: per-series max):")
        for name, series in shown[:probe_limit]:
            peak = max(series["v"])
            out.append(f"  {name:<22} |{sparkline(series['v'])}| peak {peak:.3g}")
        if len(shown) > probe_limit:
            out.append(f"  ... {len(shown) - probe_limit} more non-zero series")
    return "\n".join(out)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Render a saved observability snapshot.",
    )
    parser.add_argument("snapshot", help="snapshot JSON file (see Observability.write_snapshot)")
    parser.add_argument(
        "--format", choices=("text", "prom", "json"), default="text",
        help="output format (default: text)",
    )
    args = parser.parse_args(argv)
    try:
        with open(args.snapshot) as fh:
            snap = json.load(fh)
    except OSError as exc:
        print(
            f"error: cannot read snapshot {args.snapshot!r}: {exc.strerror or exc}",
            file=sys.stderr,
        )
        return 2
    except json.JSONDecodeError as exc:
        print(
            f"error: {args.snapshot!r} is not a JSON snapshot "
            f"(line {exc.lineno}: {exc.msg}); expected a file written by "
            "Observability.write_snapshot",
            file=sys.stderr,
        )
        return 2
    try:
        if args.format == "prom":
            sys.stdout.write(to_prometheus(snap))
        elif args.format == "json":
            json.dump(snap, sys.stdout, indent=1)
            sys.stdout.write("\n")
        else:
            print(render_text(snap))
        sys.stdout.flush()
    except BrokenPipeError:
        # downstream consumer (head, grep -m) closed the pipe: not an error,
        # but Python would print a noisy traceback at interpreter shutdown
        # unless stdout is detached first
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI smoke test
    raise SystemExit(main())
