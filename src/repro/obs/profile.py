"""Simulator self-profiler — where does the wall clock go?

The paper instruments the *machine*; this module instruments the
*simulator*.  A :class:`Profiler` re-classes the machine's
:class:`~repro.sim.engine.Engine` into a profiled subclass (the same
``obj.__class__`` swap the elab backend uses on components — no state is
copied, so install/uninstall are exact) whose event loop attributes wall
time to *pump sites*: the bound-method handler each event dispatches to,
keyed by qualified name (``MemoryModule._service``, ``Ring._advance_slot``;
under the elab backend the generated names — ``ElabMem._service`` — show
through, which is exactly what you want when profiling that backend).

Two measurements per site:

* an exact **event count** (every event, a dict bump);
* **wall-clock buckets** from ``perf_counter`` pairs around the callback,
  taken on a deterministic every-``sample_every``-th-event schedule so the
  profiler's overhead is tunable and its sampling pattern reproducible.
  Per-site wall time is scaled by ``events / timed`` in the summary.

The profiler never schedules events and never touches simulated state, so
a profiled run is bit-identical to an unprofiled one in ``(events_run,
now)`` on either backend.  Export is a JSON summary plus a
Perfetto-loadable Chrome trace-event file: one track of handler slices and
one of component slices, widths proportional to estimated wall time — a
one-level flamegraph of the event loop.
"""

from __future__ import annotations

import heapq
import json
import time
from typing import Dict, Optional

from ..sim.engine import Engine

_heappop = heapq.heappop
_perf_counter = time.perf_counter

#: id(engine) -> Profiler.  Engine is ``__slots__``-only, so profiler
#: state cannot ride on the instance itself.
_STATE: Dict[int, "Profiler"] = {}


class _Site:
    __slots__ = ("events", "timed", "wall_s")

    def __init__(self) -> None:
        self.events = 0
        self.timed = 0
        self.wall_s = 0.0


class _ProfiledEngine(Engine):
    """Engine with the event loop replaced by a per-event-timed replica.

    Mirrors :meth:`Engine._run_core` for both scheduler shapes (heap and
    calendar); the fast-path specializations (limit-free inner loops) are
    deliberately dropped — a profiler run pays per-event checks anyway.
    """

    __slots__ = ()

    def _run_core(
        self, until: Optional[int] = None, max_events: Optional[int] = None
    ) -> int:
        prof = _STATE[id(self)]
        every = prof.sample_every
        sites = prof._sites
        n = prof._n
        processed = 0
        limit = -1 if max_events is None else max(1, max_events)
        queue = self._queue
        self._running = True
        wall_start = _perf_counter()
        try:
            if queue is not None:
                # ---------------- binary heap (reference) ----------------
                pop = _heappop
                while queue:
                    if until is not None and queue[0][0] > until:
                        self.now = until
                        break
                    when, _prio, _seq, callback, arg = pop(queue)
                    self.now = when
                    fn = getattr(callback, "__func__", callback)
                    key = getattr(fn, "__qualname__", None) or repr(fn)
                    site = sites.get(key)
                    if site is None:
                        site = sites[key] = _Site()
                    site.events += 1
                    n += 1
                    if n % every == 0:
                        t0 = _perf_counter()
                        if arg is None:
                            callback()
                        else:
                            callback(arg)
                        site.wall_s += _perf_counter() - t0
                        site.timed += 1
                    elif arg is None:
                        callback()
                    else:
                        callback(arg)
                    processed += 1
                    if processed == limit:
                        break
            else:
                # ---------------- calendar queue (default) ----------------
                sched = self._sched
                while True:
                    i = sched._cur_i
                    cur = sched._cur
                    if i >= len(cur):
                        if not sched._advance():
                            break
                        cur = sched._cur
                        i = 0
                    when = cur[i][0]
                    if until is not None and when > until:
                        self.now = until
                        break
                    sched._cur_i = i + 1
                    when, _prio, _seq, callback, arg = cur[i]
                    self.now = when
                    fn = getattr(callback, "__func__", callback)
                    key = getattr(fn, "__qualname__", None) or repr(fn)
                    site = sites.get(key)
                    if site is None:
                        site = sites[key] = _Site()
                    site.events += 1
                    n += 1
                    if n % every == 0:
                        t0 = _perf_counter()
                        if arg is None:
                            callback()
                        else:
                            callback(arg)
                        site.wall_s += _perf_counter() - t0
                        site.timed += 1
                    elif arg is None:
                        callback()
                    else:
                        callback(arg)
                    processed += 1
                    if processed == limit:
                        break
        finally:
            prof._n = n
            self._running = False
            self._events_run += processed
            self.wall_time_s += _perf_counter() - wall_start
        return processed


class Profiler:
    """Attachable event-loop profiler for one engine.

    Usage::

        prof = Profiler(sample_every=4).install(machine.engine)
        machine.run(programs)
        prof.uninstall()
        prof.write_chrome("profile.json")      # open in ui.perfetto.dev
        prof.write_summary("profile_summary.json")
    """

    def __init__(self, sample_every: int = 1) -> None:
        self.sample_every = max(1, int(sample_every))
        self._sites: Dict[str, _Site] = {}
        self._n = 0
        self._engine = None

    # ------------------------------------------------------------------
    def install(self, engine) -> "Profiler":
        if self._engine is not None:
            raise RuntimeError("profiler already installed on an engine")
        if isinstance(engine, _ProfiledEngine):
            raise RuntimeError("engine already has a profiler installed")
        _STATE[id(engine)] = self
        engine.__class__ = _ProfiledEngine
        self._engine = engine
        return self

    def uninstall(self) -> "Profiler":
        engine = self._engine
        if engine is not None:
            engine.__class__ = Engine
            _STATE.pop(id(engine), None)
            self._engine = None
        return self

    def __enter__(self) -> "Profiler":
        return self

    def __exit__(self, *exc) -> None:
        self.uninstall()

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Per-site attribution, hottest first.

        ``est_wall_s`` scales each site's sampled wall time by its
        ``events / timed`` ratio; ``share`` is the fraction of the summed
        estimate, so it is comparable across ``sample_every`` settings.
        """
        total_events = 0
        est_total = 0.0
        rows = []
        for key, s in self._sites.items():
            est = s.wall_s * (s.events / s.timed) if s.timed else 0.0
            total_events += s.events
            est_total += est
            rows.append((est, key, s))
        rows.sort(key=lambda r: (-r[0], r[1]))
        sites = []
        for est, key, s in rows:
            comp, _, handler = key.rpartition(".")
            sites.append(
                {
                    "site": key,
                    "component": comp or key,
                    "handler": handler,
                    "events": s.events,
                    "timed": s.timed,
                    "wall_s": s.wall_s,
                    "est_wall_s": est,
                    "share": (est / est_total) if est_total else 0.0,
                }
            )
        return {
            "sample_every": self.sample_every,
            "events": total_events,
            "est_wall_s": est_total,
            "sites": sites,
        }

    def chrome_trace(self) -> dict:
        """The profile as a Chrome trace-event document (Perfetto loads
        it): handler and component tracks of ``X`` slices laid end to end,
        widths proportional to estimated wall time."""
        summ = self.summary()
        events = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 3,
                "tid": 0,
                "args": {"name": "simulator self-profile"},
            },
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 3,
                "tid": 1,
                "args": {"name": "wall time by handler"},
            },
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 3,
                "tid": 2,
                "args": {"name": "wall time by component"},
            },
        ]
        ts = 0.0
        comps: Dict[str, float] = {}
        comp_events: Dict[str, int] = {}
        for site in summ["sites"]:
            comps[site["component"]] = (
                comps.get(site["component"], 0.0) + site["est_wall_s"]
            )
            comp_events[site["component"]] = (
                comp_events.get(site["component"], 0) + site["events"]
            )
            dur_us = site["est_wall_s"] * 1e6
            if dur_us <= 0.0:
                continue
            events.append(
                {
                    "name": site["site"],
                    "cat": "profile",
                    "ph": "X",
                    "ts": ts,
                    "dur": dur_us,
                    "pid": 3,
                    "tid": 1,
                    "args": {
                        "events": site["events"],
                        "share": round(site["share"], 4),
                    },
                }
            )
            ts += dur_us
        ts = 0.0
        for name, wall in sorted(comps.items(), key=lambda kv: (-kv[1], kv[0])):
            dur_us = wall * 1e6
            if dur_us <= 0.0:
                continue
            events.append(
                {
                    "name": name,
                    "cat": "profile",
                    "ph": "X",
                    "ts": ts,
                    "dur": dur_us,
                    "pid": 3,
                    "tid": 2,
                    "args": {"events": comp_events[name]},
                }
            )
            ts += dur_us
        return {"traceEvents": events, "displayTimeUnit": "ns"}

    # ------------------------------------------------------------------
    def write_chrome(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(), fh)
            fh.write("\n")

    def write_summary(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.summary(), fh, indent=1)
            fh.write("\n")


__all__ = ["Profiler"]
