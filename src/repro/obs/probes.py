"""Time-series probes — the paper's FIFO-depth monitoring as a series.

§3.3 lists "FIFO depth monitoring" and per-resource utilization among the
fixed monitoring circuits; the seed simulator only kept end-of-run
aggregates (``max_depth``, total busy ticks).  A :class:`ProbeSet` samples
live gauges (queue depths, NC occupancy) and rate probes (busy-tick deltas
per interval = utilization) on a configurable tick period into bounded
ring buffers, so *when* a queue filled up is visible, not just how deep it
ever got.

Sampling rides the event engine: the probe tick is an ordinary scheduled
event that re-arms itself only while other events remain queued, so a run
still terminates when the machine goes quiescent and an un-probed machine
schedules nothing at all.  Probe callbacks read simulator state but never
mutate it, which keeps probed runs bit-identical to unprobed ones in
simulated time and event *order* (only the sampling events themselves are
added to the event count).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional

from ..sim.engine import ns_to_ticks


class _Gauge:
    """Instantaneous value probe (queue depth, occupancy)."""

    __slots__ = ("name", "unit", "fn")

    def __init__(self, name: str, fn: Callable[[], float], unit: str) -> None:
        self.name = name
        self.fn = fn
        self.unit = unit

    def prime(self) -> None:
        pass

    def sample(self, dt: int) -> float:
        return self.fn()


class _Rate:
    """Cumulative-counter delta probe: ``(total - prev) / (dt * scale)``.

    With ``fn`` returning busy ticks and ``scale`` the number of parallel
    links, the sample is the resource's utilization over the interval.
    """

    __slots__ = ("name", "unit", "fn", "scale", "_prev")

    def __init__(self, name: str, fn: Callable[[], float], scale: float, unit: str) -> None:
        self.name = name
        self.fn = fn
        self.scale = scale
        self.unit = unit
        self._prev = 0.0

    def prime(self) -> None:
        self._prev = self.fn()

    def sample(self, dt: int) -> float:
        cur = self.fn()
        prev, self._prev = self._prev, cur
        if dt <= 0:
            return 0.0
        return (cur - prev) / (dt * self.scale)


class ProbeSet:
    """A machine's sampled time series, all on one tick period."""

    def __init__(self, period_ns: float = 2000.0, capacity: int = 4096) -> None:
        self.period_ticks = max(1, ns_to_ticks(period_ns))
        self.capacity = capacity
        self.probes: List = []
        self._series: Dict[str, deque] = {}
        self._engine = None
        self._armed = False
        self._last = 0
        self.samples = 0
        #: other periodic samplers on the same engine (e.g. the telemetry
        #: stream): their armed in-flight events are discounted when
        #: deciding whether real work remains, otherwise two samplers
        #: would keep re-arming each other forever
        self.peers: tuple = ()

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def add_gauge(self, name: str, fn: Callable[[], float], unit: str = "") -> None:
        self._register(_Gauge(name, fn, unit))

    def add_rate(
        self, name: str, fn: Callable[[], float], scale: float = 1.0,
        unit: str = "util",
    ) -> None:
        self._register(_Rate(name, fn, scale, unit))

    def _register(self, probe) -> None:
        if probe.name in self._series:
            raise ValueError(f"duplicate probe {probe.name!r}")
        self.probes.append(probe)
        self._series[probe.name] = deque(maxlen=self.capacity)

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def arm(self, engine) -> None:
        """Start (or restart) periodic sampling on ``engine``.

        Called by :meth:`Machine.run` each time a run begins; idempotent
        while a sampling chain is already in flight.
        """
        self._engine = engine
        if self._armed or not self.probes:
            return
        self._armed = True
        self._last = engine.now
        for probe in self.probes:
            probe.prime()
        engine.schedule(self.period_ticks, self._tick)

    def _tick(self) -> None:
        engine = self._engine
        now = engine.now
        dt = now - self._last
        self._last = now
        for probe in self.probes:
            self._series[probe.name].append((now, probe.sample(dt)))
        self.samples += 1
        # Re-arm only while the machine still has work: the sampler must
        # not keep an otherwise-drained event queue alive forever.  Events
        # belonging to armed peer samplers are not work.
        if engine.pending > sum(1 for p in self.peers if p._armed):
            engine.schedule(self.period_ticks, self._tick)
        else:
            self._armed = False

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def series(self) -> Dict[str, dict]:
        """``{name: {"unit", "period_ticks", "t": [...], "v": [...]}}``."""
        out: Dict[str, dict] = {}
        for probe in self.probes:
            buf = self._series[probe.name]
            out[probe.name] = {
                "unit": probe.unit,
                "period_ticks": self.period_ticks,
                "t": [t for t, _v in buf],
                "v": [v for _t, v in buf],
            }
        return out

    def last(self, name: str) -> Optional[float]:
        buf = self._series.get(name)
        if not buf:
            return None
        return buf[-1][1]
