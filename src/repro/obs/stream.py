"""Live run telemetry — the metrics snapshot as a JSONL stream.

A :class:`TelemetryStream` rides the event engine exactly like the probe
sampler (:mod:`repro.obs.probes`): a periodic event that re-arms itself
only while other events remain queued, so a streamed run still terminates
when the machine goes quiescent.  Each firing appends one *slim* snapshot
line — the full :func:`repro.obs.registry.snapshot` minus the bulky probe
series and monitor histograms, plus a ``stream`` section with the line
sequence number, host wall-clock timestamp, pending-event count, and
per-CPU completion progress — to a JSONL file, flushed per line so
``python -m repro.obs.watch`` can tail a run while it executes.

The emitter only *reads* simulator state; like the probes it adds its own
sampling events to the event count but never changes simulated time or the
order of the machine's own events.  Under ``NUMACHINE_BACKEND=elab`` a
streamed run executes on the *instrumented* specialized core (see
:mod:`repro.elab.backend`) — the stream itself is engine-level and
survives the class swap untouched.
"""

from __future__ import annotations

import json
import time

from ..sim.engine import ns_to_ticks
from .registry import snapshot

#: bump when the per-line layout changes incompatibly
STREAM_SCHEMA = 1


class TelemetryStream:
    """Periodic JSONL snapshot emitter for one machine's runs.

    Parameters
    ----------
    path:
        Output file; opened lazily on first arm, truncating any previous
        stream, and appended to across multiple :meth:`Machine.run` calls.
    period_ns:
        Simulated time between lines (coarser than the probe period — a
        line carries a whole snapshot).
    """

    def __init__(self, path, period_ns: float = 20000.0) -> None:
        self.path = path
        self.period_ticks = max(1, ns_to_ticks(period_ns))
        self._fh = None
        self._machine = None
        self._armed = False
        self.seq = 0
        self.lines_written = 0
        #: sampler events this stream itself ran on the engine.  The
        #: stream never delays or reorders the machine's own events, but
        #: its ticks do count in ``engine.events_run`` and the final tick
        #: can extend quiescence time by up to one period — consumers
        #: comparing an observed run to an unobserved one (e.g. the job
        #: server's tests) reconcile event counts with this.
        self.ticks = 0
        #: other periodic samplers on the same engine (the probe set);
        #: their armed in-flight events do not count as pending work
        self.peers: tuple = ()

    # ------------------------------------------------------------------
    def arm(self, machine) -> None:
        """Start (or restart) periodic emission; called by
        :meth:`Machine.run`, idempotent while a chain is in flight."""
        self._machine = machine
        if self._fh is None:
            self._fh = open(self.path, "w")
        if self._armed:
            return
        self._armed = True
        machine.engine.schedule(self.period_ticks, self._tick)

    def _tick(self) -> None:
        self.ticks += 1
        self.emit(final=False)
        engine = self._machine.engine
        # re-arm only while the machine still has work: the emitter must
        # not keep an otherwise-drained event queue alive forever (and
        # armed peer samplers' events are not work)
        if engine.pending > sum(1 for p in self.peers if p._armed):
            engine.schedule(self.period_ticks, self._tick)
        else:
            self._armed = False

    # ------------------------------------------------------------------
    def emit(self, final: bool = False) -> None:
        """Append one slim snapshot line right now."""
        machine = self._machine
        if machine is None or self._fh is None:
            return
        snap = snapshot(machine, include_wall=True)
        # the bulky sections belong in the end-of-run snapshot file, not
        # on every line of a live stream
        snap.pop("probes", None)
        snap.pop("histograms", None)
        engine = machine.engine
        done = sum(1 for c in machine.cpus if c.finished_at is not None)
        total = sum(1 for c in machine.cpus if c.program is not None)
        snap["stream"] = {
            "schema": STREAM_SCHEMA,
            "seq": self.seq,
            "wall_ts": time.time(),
            "pending": engine.pending,
            "cpus_done": done,
            "cpus_total": total,
            "final": bool(final),
        }
        self.seq += 1
        json.dump(snap, self._fh, separators=(",", ":"))
        self._fh.write("\n")
        self._fh.flush()
        self.lines_written += 1

    def finish(self) -> None:
        """Emit the end-of-run line (``stream.final: true``); called by
        :meth:`Machine.run` after the event loop drains."""
        self.emit(final=True)
        self._armed = False

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


# ----------------------------------------------------------------------
def read_stream(path) -> list:
    """Parse a telemetry JSONL file into a list of snapshot dicts.

    Tolerates a truncated last line (the writer may be mid-write when a
    live file is read)."""
    out = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                out.append(json.loads(line))
            except json.JSONDecodeError:
                break  # torn tail of a live file
    return out


def stream_is_final(lines) -> bool:
    return bool(lines) and bool(lines[-1].get("stream", {}).get("final"))


__all__ = ["TelemetryStream", "read_stream", "stream_is_final", "STREAM_SCHEMA"]
