"""repro.obs — the non-intrusive observability layer (paper §3.3).

NUMAchine's monitoring hardware watches every bus and ring without
perturbing them; this package is the simulator's equivalent.  It bundles:

* :class:`~repro.obs.trace.Tracer` — per-transaction lifecycle tracing with
  Chrome trace-event (Perfetto) export and latency breakdowns;
* :class:`~repro.obs.probes.ProbeSet` — periodic sampling of FIFO depths,
  bus/ring utilization and NC occupancy into bounded time series;
* :mod:`~repro.obs.registry` — the unified metrics snapshot with JSON and
  Prometheus-text exporters;
* :class:`~repro.obs.stream.TelemetryStream` — periodic slim-snapshot JSONL
  emission during a run, tailed live by ``python -m repro.obs.watch``;
* :class:`~repro.obs.profile.Profiler` — the simulator *self*-profiler,
  attributing event-loop wall time to pump sites on either backend;
* ``python -m repro.obs.report`` — a CLI renderer for saved snapshots.

:class:`Observability` is the front door::

    machine = Machine(MachineConfig.small())
    obs = Observability().attach(machine)
    machine.run(programs)
    obs.write_trace("trace.json")          # open in ui.perfetto.dev
    obs.write_snapshot("obs.json")         # python -m repro.obs.report obs.json

Every instrumentation hook in the simulator defaults to ``None`` and costs
one attribute load plus an ``is not None`` test when disabled, so machines
without an attached ``Observability`` run the PR 1 fast paths unchanged.
Under ``NUMACHINE_BACKEND=elab`` (or ``auto``) an attached ``Observability``
does not fall back to the interpreter: the run executes on the
*instrumented* variant of the generated specialized core, which carries
the tracer stamps and telemetry inline (see :mod:`repro.elab.backend`).
"""

from __future__ import annotations

from typing import Optional

from .probes import ProbeSet
from .profile import Profiler
from .registry import (
    serve_to_prometheus,
    snapshot,
    to_prometheus,
    write_snapshot,
)
from .stream import TelemetryStream
from .trace import (
    Tracer,
    TxnTrace,
    chrome_trace,
    dump_chrome_events,
    write_chrome_trace,
)

__all__ = [
    "Observability",
    "ProbeSet",
    "Profiler",
    "TelemetryStream",
    "Tracer",
    "TxnTrace",
    "chrome_trace",
    "dump_chrome_events",
    "write_chrome_trace",
    "snapshot",
    "serve_to_prometheus",
    "to_prometheus",
    "write_snapshot",
]


class Observability:
    """Attachable tracing + probing bundle for one :class:`Machine`.

    Parameters
    ----------
    trace:
        Enable the transaction tracer.
    trace_capacity:
        Bound on retained finished transactions (``None`` = unbounded).
    probes:
        Enable periodic time-series sampling.
    probe_period_ns / probe_capacity:
        Sampling period and per-series ring-buffer length.
    stream_path / stream_period_ns:
        When ``stream_path`` is given, a :class:`TelemetryStream` appends a
        slim snapshot line to that JSONL file every ``stream_period_ns`` of
        simulated time (tail it with ``python -m repro.obs.watch``).
    """

    def __init__(
        self,
        trace: bool = True,
        trace_capacity: Optional[int] = None,
        probes: bool = True,
        probe_period_ns: float = 2000.0,
        probe_capacity: int = 4096,
        stream_path=None,
        stream_period_ns: float = 20000.0,
    ) -> None:
        self.tracer = Tracer(trace_capacity) if trace else None
        self.probes = ProbeSet(probe_period_ns, probe_capacity) if probes else None
        self.stream = (
            TelemetryStream(stream_path, stream_period_ns)
            if stream_path is not None
            else None
        )
        self.machine = None

    # ------------------------------------------------------------------
    def attach(self, machine) -> "Observability":
        """Wire the tracer into every component and register the default
        probe set.  Returns ``self`` for chaining."""
        self.machine = machine
        machine.obs = self
        tr = self.tracer
        if tr is not None:
            for cpu in machine.cpus:
                cpu.tracer = tr
            for st in machine.stations:
                st.memory.tracer = tr
                st.nc.tracer = tr
                st.ring_interface.tracer = tr
            for iri in machine.net.iris:
                iri.tracer = tr
        if self.probes is not None:
            self._default_probes(machine)
        return self

    def _default_probes(self, machine) -> None:
        ps = self.probes
        for st in machine.stations:
            s = f"S{st.station_id}"
            ps.add_rate(f"{s}.bus.util", lambda b=st.bus: b.busy.busy)
            ps.add_gauge(f"{s}.mem.in.depth",
                         lambda f=st.memory.in_fifo: len(f), "pkts")
            ps.add_gauge(f"{s}.nc.in.depth",
                         lambda f=st.nc.in_fifo: len(f), "pkts")
            ps.add_gauge(f"{s}.nc.occupancy",
                         lambda a=st.nc.array: a.occupancy(), "lines")
            ri = st.ring_interface
            ps.add_gauge(f"{s}.ri.out.depth", lambda f=ri.out_fifo: len(f), "pkts")
            ps.add_gauge(f"{s}.ri.in.depth", lambda f=ri.in_fifo: len(f), "pkts")
            ps.add_gauge(f"{s}.ri.sink.depth", lambda f=ri.sink_q: len(f), "pkts")
            ps.add_gauge(f"{s}.ri.nonsink.depth",
                         lambda f=ri.nonsink_q: len(f), "pkts")
        for _key, ring in sorted(machine.net.rings.items()):
            ps.add_rate(f"{ring.name}.util",
                        lambda r=ring: r.busy.busy, scale=ring.size)
        for iri in machine.net.iris:
            ps.add_gauge(f"{iri.name}.up.depth", lambda f=iri.up_fifo: len(f), "pkts")
            ps.add_gauge(f"{iri.name}.down.depth",
                         lambda f=iri.down_fifo: len(f), "pkts")

    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Start probe sampling and telemetry streaming (called by
        :meth:`Machine.run`)."""
        if self.machine is None:
            return
        if self.probes is not None and self.stream is not None:
            # let each periodic sampler see through the other's pending
            # event when deciding whether real work remains
            self.probes.peers = (self.stream,)
            self.stream.peers = (self.probes,)
        if self.probes is not None:
            self.probes.arm(self.machine.engine)
        if self.stream is not None:
            self.stream.arm(self.machine)

    def finish_run(self) -> None:
        """End-of-run hook from :meth:`Machine.run`: flush the final
        telemetry-stream line (no-op without a stream)."""
        if self.stream is not None:
            self.stream.finish()

    # ------------------------------------------------------------------
    # exports
    # ------------------------------------------------------------------
    def snapshot(self, include_wall: bool = True) -> dict:
        return snapshot(self.machine, include_wall=include_wall)

    def chrome_trace(self, dump=None) -> dict:
        """The Perfetto document; pass a watchdog ``diagnostic_dump`` to
        overlay blocked components / locked lines as instant events."""
        return chrome_trace(self.tracer, self.probes, dump)

    def write_trace(self, path, dump=None) -> None:
        write_chrome_trace(path, self.tracer, self.probes, dump)

    def write_snapshot(self, path, include_wall: bool = True) -> None:
        write_snapshot(path, self.snapshot(include_wall=include_wall))

    def prometheus(self) -> str:
        return to_prometheus(self.snapshot())
