"""Memory modules: DRAM + directory SRAM + the memory-side protocol engine."""

from .memory_module import MemoryModule, Pending

__all__ = ["MemoryModule", "Pending"]
