"""The station memory module (paper §3.1.2) and its coherence engine.

Each station owns a contiguous physical address range.  The module couples:

* DRAM for line data (two interleaved banks in hardware; modelled as the
  line-read/line-write latencies of the master controller's pipeline),
* SRAM holding the network-level directory: per line a routing mask of
  stations that may hold copies, a processor mask of local sharers, the
  LV/LI/GV/GI state and a lock bit,
* the *hardware cache coherence* block implementing the memory side of the
  two-level protocol (Fig. 5), and
* special functions (block operations, coherence bypass, interrupts) used
  by system software (§3.2) — dispatched to :mod:`repro.softctl`.

Requests arrive from the station bus (local processors) and from the ring
interface (remote stations); the master controller services them serially.
Lines undergoing a transition are *locked*; requests that hit a locked line
are negatively acknowledged and retried by the requester, never queued —
that is what keeps the module's service path simple and fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.directory import DirEntry, Directory
from ..core.states import LineState
from ..interconnect.packet import MsgType, Packet, acquire_packet, release_packet
from ..interconnect.ring import fusion_enabled
from ..sim.engine import Engine, SimulationError, ns_to_ticks
from ..sim.fifo import Fifo
from ..sim.stats import StatGroup


@dataclass(slots=True)
class Pending:
    """The in-flight transaction record stored while a line is locked."""

    kind: str                      # 'inv' | 'fetch' | 'awaiting_wb'
    req_type: MsgType
    requester: Optional[int]       # global cpu id
    req_station: int
    is_local: bool                 # requester is on the home station
    grant: str = "data"            # 'data' | 'ack' (what to deliver on unlock)
    extra: Dict[str, Any] = field(default_factory=dict)


class MemoryModule:
    """Home memory + directory + serialization plumbing for one station.

    The coherence state machine itself lives in a protocol plug-in
    (:mod:`repro.protocol`): a subclass supplies the transition handlers
    and declares them in ``DISPATCH``.  Stations instantiate
    ``machine.protocol.memory_class``; this base holds everything
    protocol-independent — FIFOs, the master-controller service loop,
    uncached accesses, softctl dispatch, NACK/lock bookkeeping and the
    outbound bus/ring send helpers.
    """

    #: (MsgType name, handler method name) pairs — the protocol subclass's
    #: transition table, consumed by ``_dispatch`` and the elaborator
    DISPATCH: tuple = ()

    def __init__(self, engine: Engine, config, station) -> None:
        self.engine = engine
        self.config = config
        self.station = station
        self.station_id = station.station_id
        self.codec = station.codec
        self.directory = Directory(
            self.codec,
            self.station_id,
            default_state=LineState.LV,
            exact_sharers=config.exact_sharers,
        )
        self.data: Dict[int, List] = {}
        from ..system.bus import OrderedPort

        self.out_port = OrderedPort(engine, station.bus)
        self.in_fifo = Fifo(f"S{self.station_id}.mem.in", capacity=None)
        self._busy = False
        self.stats = StatGroup(f"S{self.station_id}.mem")
        #: optional monitor (histogram tables etc.); see repro.monitor
        self.monitor = None
        #: transaction tracer (repro.obs), or None when tracing is off
        self.tracer = None
        #: invariant checker (repro.verify), or None when checking is off
        self.verifier = None
        self._lookup_ticks = ns_to_ticks(config.dir_sram_ns)
        self._handlers = None  # mtype -> bound handler, built on first dispatch
        # hot-path tick values cached once (config properties recompute
        # ns_to_ticks on every access, which profiles as real run time)
        self._cmd_ticks = config.cmd_bus_ticks
        self._line_ticks = config.line_bus_ticks
        self._line_flits = config.line_flits
        self._line_words = config.line_words
        self._dram_read = ns_to_ticks(config.dram_read_ns)
        self._dram_write = ns_to_ticks(config.dram_write_ns)
        #: transaction ids stamp each lock instance so stale intervention
        #: answers from an earlier, already-resolved round are ignored
        self._txn = 0
        #: service-done relay fusion (NUMACHINE_FUSE); see NetworkCache
        self.fused = fusion_enabled()
        self.events_fused = 0
        self._done_key = ~engine.alloc_uid()

    # ==================================================================
    # data storage
    # ==================================================================
    def read_line(self, line_addr: int) -> List:
        line = self.data.get(line_addr)
        if line is None:
            return [0] * self._line_words
        return list(line)

    def write_line(self, line_addr: int, data: List) -> None:
        self.data[line_addr] = list(data)

    # ==================================================================
    # request entry points
    # ==================================================================
    def handle(self, pkt: Packet) -> None:
        """Entry for both bus-side and ring-side traffic."""
        tr = self.tracer
        if tr is not None:
            tr.stamp_pkt(pkt, "mem.in", self.engine.now)
        self.in_fifo.push(pkt, self.engine.now)
        self._pump()

    def _pump(self) -> None:
        if self._busy or self.in_fifo.empty:
            return
        self._busy = True
        # Engine.schedule inlined (_lookup_ticks is a non-negative constant):
        # every packet entering the memory module passes through here
        engine = self.engine
        pkt = self.in_fifo.pop(engine.now)
        seq = engine._seq + 1
        engine._seq = seq
        engine._push((engine.now + self._lookup_ticks, 1, seq, self._service, pkt))

    def _service(self, pkt: Packet) -> None:
        tr = self.tracer
        if tr is not None:
            tr.stamp_pkt(pkt, "mem.svc", self.engine.now)
        extra = self._dispatch(pkt)
        v = self.verifier
        if v is not None:
            v.mem_event(self, pkt)
        # Content-keyed done event; zero-extra dones merge into the service
        # event when fusion is on (exactness argument in NetworkCache).
        engine = self.engine
        if extra:
            engine.schedule_keyed_at(
                engine.now + extra, self._done_key, self._service_done,
                priority=1,
            )
        elif self.fused:
            self.events_fused += 1
            self._busy = False
            self._pump()
        else:
            engine.schedule_keyed_at(
                engine.now, self._done_key, self._service_done, priority=1
            )

    def _service_done(self) -> None:
        self._busy = False
        self._pump()

    # ==================================================================
    # dispatch
    # ==================================================================
    def _dispatch(self, pkt: Packet) -> int:
        entry = self.directory.entry(self.config.line_addr(pkt.addr))
        if self.monitor is not None:
            self.monitor.record_memory_txn(self.station_id, pkt, entry)
        local = bool(pkt.meta.get("local"))
        handlers = self._handlers
        if handlers is None:
            # built lazily once per instance from the protocol subclass's
            # DISPATCH declaration; rebuilding this dict (and hashing every
            # MsgType) per packet is measurable in profiles
            handlers = self._handlers = {
                MsgType[name]: getattr(self, fn) for name, fn in type(self).DISPATCH
            }
        handler = handlers.get(pkt.mtype)
        if handler is None:
            handler = self._on_other
        return handler(pkt, entry, local)

    def _txn_matches(self, pkt: Packet, entry: DirEntry) -> bool:
        """Does this intervention answer belong to the current lock round?"""
        if not (entry.locked and entry.pending is not None):
            return False
        expect = entry.pending.extra.get("txn")
        got = pkt.meta.get("txn")
        return got is None or expect is None or got == expect

    # ------------------------------------------------------------------
    # uncached word accesses (cacheable=False pages, §3.2)
    # ------------------------------------------------------------------
    def _word_index(self, addr: int) -> int:
        return (addr % self.config.line_bytes) // self.config.word_bytes

    def _on_read_uncached(self, pkt: Packet, entry: DirEntry, local: bool) -> int:
        la = self.config.line_addr(pkt.addr)
        value = self.read_line(la)[self._word_index(pkt.addr)]
        self.stats.counter("uncached_reads").incr()
        if local:
            cpu = self.station.cpu_by_global(pkt.requester)
            self.out_port.send(
                self._dram_read_ticks(), self._cmd_ticks,
                lambda start, c=cpu, a=pkt.addr, v=value: c.complete_uncached(a, v),
            )
        else:
            resp = Packet(
                mtype=MsgType.UNCACHED_RESP, addr=pkt.addr,
                src_station=self.station_id,
                dest_mask=self.codec.station_mask(pkt.src_station),
                requester=pkt.requester, data=value,
            )
            self._send_packet(resp, has_data=False, delay=self._dram_read_ticks())
        return self._dram_read_ticks()

    def _on_write_uncached(self, pkt: Packet, entry: DirEntry, local: bool) -> int:
        la = self.config.line_addr(pkt.addr)
        line = self.read_line(la)
        line[self._word_index(pkt.addr)] = pkt.data
        self.write_line(la, line)
        self.stats.counter("uncached_writes").incr()
        return self._dram_write_ticks()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _on_other(self, pkt: Packet, entry: DirEntry, local: bool) -> int:
        from ..softctl import ops as softops

        return softops.memory_dispatch(self, pkt, entry, local)

    def _nack(self, pkt: Packet, local: bool) -> int:
        self.stats.counter("nacks").incr()
        if local:
            cpu = self.station.cpu_by_global(pkt.requester)
            self.out_port.send(
                0, self._cmd_ticks,
                lambda start, c=cpu, a=pkt.addr: c.nack_from_module(a),
            )
        else:
            nack = acquire_packet(
                MsgType.NACK, pkt.addr,
                self.station_id,
                self.codec.station_mask(pkt.src_station),
                requester=pkt.requester,
            )
            self._send_packet(nack, has_data=False)
            # The bounced request dies here: nothing queues on a locked
            # line, and the retry is rebuilt from scratch by the requesting
            # NC (this is the hot allocation loop of a retry storm).
            release_packet(pkt)
        return 0

    def _lock(self, entry: DirEntry, pending: Pending) -> None:
        if entry.locked:
            raise SimulationError("double lock on memory line")
        self._txn += 1
        pending.extra["txn"] = self._txn
        entry.locked = True
        entry.pending = pending

    def _unlock(self, entry: DirEntry) -> None:
        entry.locked = False
        entry.pending = None

    def _local_index(self, global_cpu: int) -> int:
        return global_cpu % self.config.cpus_per_station

    def _cpu_has_copy(self, global_cpu: int, line_addr: int) -> bool:
        cpu = self.station.cpu_by_global(global_cpu)
        line = cpu.l2.lookup(line_addr, touch=False)
        return line is not None and line.state.readable

    def _owner_station(self, entry: DirEntry) -> int:
        """GI state: the routing mask names the owning station exactly
        (exclusive grants always use set_station)."""
        mask = self.directory.sharer_mask(entry)
        try:
            return self.codec.single_station(mask)
        except ValueError:
            # Defensive: pick the first selected station.
            stations = self.codec.stations(mask)
            if not stations:
                raise SimulationError(
                    f"GI line {entry!r} with empty owner mask"
                )
            return stations[0]

    def _remote_sharers(self, entry: DirEntry) -> int:
        """Sharer mask excluding this (home) station's own bit-combination.

        With inexact masks the home station's bits may overspecify; we keep
        the full mask (minus nothing) and simply include home in multicasts,
        so this returns the mask of all possibly-sharing stations, or 0 when
        it selects nobody but home."""
        mask = self.directory.sharer_mask(entry)
        if mask == 0:
            return 0
        stations = self.codec.stations(mask)
        remote = [s for s in stations if s != self.station_id]
        if not remote:
            return 0
        return mask

    # ---- outbound actions ------------------------------------------------
    def _respond_local(
        self, pkt: Packet, data: Optional[List], exclusive: bool, delay: int = 0
    ) -> None:
        cpu = self.station.cpu_by_global(pkt.requester)
        ticks = self._cmd_ticks + (
            self._line_ticks if data is not None else 0
        )
        prefetch = bool(pkt.meta.get("prefetch"))

        self.out_port.send(
            delay, ticks,
            lambda start, c=cpu, a=pkt.addr, d=data, e=exclusive: c.complete_fill(
                a, d, exclusive=e
            ) if not prefetch else None,
        )

    def _respond_local_pending(
        self, addr: int, pending: Pending, data: Optional[List], exclusive: bool,
        delay: int = 0,
    ) -> None:
        cpu = self.station.cpu_by_global(pending.requester)
        ticks = self._cmd_ticks + (
            self._line_ticks if data is not None else 0
        )

        self.out_port.send(
            delay, ticks,
            lambda start, c=cpu, a=addr, d=data, e=exclusive: c.complete_fill(
                a, d, exclusive=e
            ),
        )

    def _send_data(
        self, pkt: Packet, data: List, exclusive: bool, inv_follows: bool = False,
        delay: int = 0,
    ) -> None:
        resp = Packet(
            mtype=MsgType.DATA_RESP_EX if exclusive else MsgType.DATA_RESP,
            addr=pkt.addr,
            src_station=self.station_id,
            dest_mask=self.codec.station_mask(pkt.src_station),
            requester=pkt.requester,
            data=data,
            flits=self._line_flits,
            meta={"inv_follows": inv_follows, "prefetch": pkt.meta.get("prefetch", False)},
        )
        self._send_packet(resp, has_data=True, delay=delay)

    def _send_intervention(
        self, pkt: Packet, owner: int, exclusive: bool, false_remote: bool = False
    ) -> None:
        entry = self.directory.entry(pkt.addr)
        txn = entry.pending.extra.get("txn") if entry.pending is not None else None
        iv = Packet(
            mtype=MsgType.INTERVENTION_EX if exclusive else MsgType.INTERVENTION,
            addr=pkt.addr,
            src_station=self.station_id,
            dest_mask=self.codec.station_mask(owner),
            requester=pkt.requester,
            meta={
                "home": self.station_id,
                "req_station": pkt.src_station,
                "req_local_to_home": bool(pkt.meta.get("local")),
                "false_remote": false_remote,
                "prefetch": pkt.meta.get("prefetch", False),
                "txn": txn,
            },
        )
        self._send_packet(iv, has_data=False)

    def _send_invalidate(
        self, pkt: Packet, entry: DirEntry, remote_mask: int, include_home: bool = True
    ) -> None:
        """Ordered multicast invalidation to every station that may share,
        plus the requester's station and home (the return unlocks us)."""
        req_station = self.station_id if pkt.meta.get("local") else pkt.src_station
        mask = remote_mask | self.codec.station_mask(req_station)
        if include_home:
            mask |= self.codec.station_mask(self.station_id)
        inv = Packet(
            mtype=MsgType.INVALIDATE,
            addr=pkt.addr,
            src_station=self.station_id,
            dest_mask=mask,
            requester=pkt.requester,
            ordered=True,
            meta={"home": self.station_id, "writer_station": req_station},
        )
        self.stats.counter("invalidates_sent").incr()
        v = self.verifier
        if v is not None:
            v.note_invalidate_sent(self, inv)
        self._send_packet(inv, has_data=False)

    def _send_packet(self, pkt: Packet, has_data: bool, delay: int = 0) -> None:
        ticks = self._cmd_ticks + (
            self._line_ticks if has_data else 0
        )
        self.out_port.send(
            delay, ticks, lambda start, p=pkt: self.station.ring_interface.send(p)
        )

    def _local_intervention(self, addr: int, entry: DirEntry, exclusive: bool) -> None:
        owner_idx = entry.proc_mask.bit_length() - 1
        if entry.proc_mask == 0:
            raise SimulationError(f"LI line {addr:#x} with empty processor mask")
        cpu = self.station.cpus[owner_idx]
        self.out_port.send(
            0, self._cmd_ticks,
            lambda start, c=cpu, a=addr, e=exclusive: c.handle_intervention(
                a, e, lambda data, a2=a, e2=e: self._local_intervention_done(a2, e2, data)
            ),
        )

    def _local_intervention_done(self, addr: int, exclusive: bool, data) -> None:
        entry = self.directory.entry(addr)
        pending = entry.pending
        if pending is None:
            return
        if data is None:
            # crossed with the owner's write-back; it is already in our FIFO
            pending.kind = "awaiting_wb"
            return
        self.write_line(addr, data)
        self._unlock(entry)
        if exclusive:
            if pending.is_local:
                idx = self._local_index(pending.requester)
                entry.state = LineState.LI
                entry.proc_mask = 1 << idx
                self.directory.set_station(entry, self.station_id)
                self._respond_local_pending(addr, pending, list(data), exclusive=True)
            else:
                entry.state = LineState.GI
                entry.proc_mask = 0
                self.directory.set_station(entry, pending.req_station)
                fake = Packet(
                    mtype=MsgType.READ_EX, addr=addr,
                    src_station=pending.req_station, dest_mask=0,
                    requester=pending.requester,
                )
                self._send_data(fake, list(data), exclusive=True, inv_follows=False)
        else:
            entry.state = LineState.LV if pending.is_local else LineState.GV
            if pending.is_local:
                idx = self._local_index(pending.requester)
                entry.proc_mask |= 1 << idx
                self.directory.set_station(entry, self.station_id)
                self._respond_local_pending(addr, pending, list(data), exclusive=False)
            else:
                self.directory.add_station(entry, self.station_id)
                self.directory.add_station(entry, pending.req_station)
                fake = Packet(
                    mtype=MsgType.READ, addr=addr,
                    src_station=pending.req_station, dest_mask=0,
                    requester=pending.requester,
                )
                self._send_data(fake, list(data), exclusive=False)
        v = self.verifier
        if v is not None:
            v.mem_settled(self, addr)

    def _invalidate_local(self, addr: int, entry: DirEntry, keep: Optional[int]) -> None:
        """Invalidate local secondary-cache copies over the bus (one
        broadcast transaction), sparing ``keep`` (the writing processor)."""
        mask = entry.proc_mask
        if keep is not None:
            mask &= ~(1 << self._local_index(keep))
        if mask == 0:
            entry.proc_mask = 0 if keep is None else entry.proc_mask
            return
        victims = [
            self.station.cpus[i]
            for i in range(self.config.cpus_per_station)
            if mask & (1 << i)
        ]
        v = self.verifier
        if v is not None:
            v.note_local_inval(self.station_id, addr, [c.cpu_id for c in victims])
        entry.proc_mask &= ~mask
        self.out_port.send(
            0, self._cmd_ticks,
            lambda start, vs=victims, a=addr: [c.invalidate_line(a) for c in vs],
        )

    # ---- timing helpers ---------------------------------------------------
    def _dram_read_ticks(self) -> int:
        return self._dram_read

    def _dram_write_ticks(self) -> int:
        return self._dram_write
