"""Histogram tables (paper §3.3.2-3.3.3).

The monitoring hardware's most useful circuits are SRAM histogram tables:
general two-dimensional counters configured per experiment.  Each table has
two halves — one accumulating, one frozen after an overflow interrupt — so
monitoring continues while software drains results.

:class:`CoherenceHistogram` is the paper's worked example (§3.3.3): for
every memory transaction type it counts how often each cache-line state
(LV/LI/GV/GI, locked or unlocked) was encountered, optionally restricted to
an address range and/or a phase identifier.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Tuple


class HistogramTable:
    """A two-half counting table: (row, column) -> count.

    ``overflow_limit`` models the hardware counter width: when any cell of
    the active half reaches the limit, the halves swap, the overflowed half
    is frozen, and ``on_overflow`` (the interrupt) fires.
    """

    def __init__(
        self,
        name: str,
        overflow_limit: int = 1 << 16,
        on_overflow: Optional[Callable[["HistogramTable"], None]] = None,
    ) -> None:
        self.name = name
        self.overflow_limit = overflow_limit
        self.on_overflow = on_overflow
        self._halves: List[Dict[Tuple[Hashable, Hashable], int]] = [{}, {}]
        self._drained: Dict[Tuple[Hashable, Hashable], int] = {}
        self.active = 0
        self.overflows = 0

    def record(self, row: Hashable, col: Hashable, n: int = 1) -> None:
        half = self._halves[self.active]
        key = (row, col)
        half[key] = half.get(key, 0) + n
        if half[key] >= self.overflow_limit:
            self._swap()

    def _swap(self) -> None:
        self.overflows += 1
        self.active ^= 1
        # the half we are about to reuse was frozen at the previous
        # overflow; software has had its interrupt to drain it — fold its
        # counts into the drained archive so totals stay exact
        for key, n in self._halves[self.active].items():
            self._drained[key] = self._drained.get(key, 0) + n
        self._halves[self.active] = {}
        if self.on_overflow is not None:
            self.on_overflow(self)

    # ------------------------------------------------------------------
    def total(self, row: Hashable = None, col: Hashable = None) -> int:
        """Sum over both halves, optionally filtered by row and/or column."""
        out = 0
        for half in list(self._halves) + [self._drained]:
            for (r, c), n in half.items():
                if row is not None and r != row:
                    continue
                if col is not None and c != col:
                    continue
                out += n
        return out

    def cells(self) -> Dict[Tuple[Hashable, Hashable], int]:
        merged: Dict[Tuple[Hashable, Hashable], int] = dict(self._drained)
        for half in self._halves:
            for key, n in half.items():
                merged[key] = merged.get(key, 0) + n
        return merged

    def rows(self) -> List[Hashable]:
        return sorted({r for (r, _c) in self.cells()}, key=repr)

    def columns(self) -> List[Hashable]:
        return sorted({c for (_r, c) in self.cells()}, key=repr)

    def render(self) -> str:
        """Format as the paper's table: states as rows, txn types as cols."""
        cells = self.cells()
        rows, cols = self.rows(), self.columns()
        width = max([len(str(c)) for c in cols] + [8])
        head = f"{self.name:<14}" + "".join(f"{str(c):>{width + 2}}" for c in cols)
        lines = [head]
        for r in rows:
            line = f"{str(r):<14}" + "".join(
                f"{cells.get((r, c), 0):>{width + 2}}" for c in cols
            )
            lines.append(line)
        return "\n".join(lines)
