"""The machine-wide monitor (paper §3.3).

NUMAchine embeds non-intrusive monitoring in every subsystem; because the
monitoring PLDs are reprogrammable the same circuits implement different
tables per experiment.  The simulator mirrors that: a :class:`Monitor`
attached via ``machine.attach_monitor`` observes every memory / network
cache transaction (zero perturbation of timing) and feeds:

* the cache-coherence histogram (state x transaction type, §3.3.3),
* per-originator transaction tables ("resource hogs", §3.3),
* trace memory — a bounded ring of recent transactions for post-mortem
  inspection around errors or barriers,
* phase-identifier attribution: counts keyed by the phase register value
  the requesting processor had set (§3.3).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from ..interconnect.packet import Packet
from .histogram import HistogramTable


class TraceMemory:
    """Bounded history of transactions (the monitor's trace DRAM)."""

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = capacity
        self._entries: Deque[Tuple] = deque(maxlen=capacity)

    def record(self, entry: Tuple) -> None:
        self._entries.append(entry)

    def recent(self, n: int = 50):
        return list(self._entries)[-n:]

    def __len__(self) -> int:
        return len(self._entries)


class Monitor:
    """Aggregated monitoring hardware for one machine."""

    def __init__(
        self,
        address_range: Optional[Tuple[int, int]] = None,
        phase_filter: Optional[int] = None,
        trace_capacity: int = 4096,
    ) -> None:
        self.address_range = address_range
        self.phase_filter = phase_filter
        self.coherence_histogram = HistogramTable("mem state x txn")
        self.nc_histogram = HistogramTable("nc state x txn")
        self.originator_table = HistogramTable("txn x originator")
        self.phase_table = HistogramTable("txn x phase")
        self.trace = TraceMemory(trace_capacity)

    # ------------------------------------------------------------------
    def _in_scope(self, pkt: Packet) -> bool:
        if self.address_range is not None:
            lo, hi = self.address_range
            if not lo <= pkt.addr < hi:
                return False
        if self.phase_filter is not None:
            if pkt.meta.get("phase") != self.phase_filter:
                return False
        return True

    def record_memory_txn(self, station_id: int, pkt: Packet, entry) -> None:
        if not self._in_scope(pkt):
            return
        lock = "*" if entry.locked else ""
        self.coherence_histogram.record(entry.state.value + lock, pkt.mtype.name)
        self.originator_table.record(pkt.mtype.name, pkt.requester)
        phase = pkt.meta.get("phase")
        if phase is not None:
            self.phase_table.record(pkt.mtype.name, phase)
        self.trace.record(("mem", station_id, pkt.mtype.name, pkt.addr, pkt.requester))

    def record_nc_txn(self, station_id: int, pkt: Packet, line) -> None:
        if not self._in_scope(pkt):
            return
        if line is None:
            state = "NotIn"
        else:
            state = line.state.value + ("*" if line.locked else "")
        self.nc_histogram.record(state, pkt.mtype.name)
        # same originator / phase attribution as memory transactions: the
        # monitoring PLDs watch the NC's bus port with identical tables
        self.originator_table.record(pkt.mtype.name, pkt.requester)
        phase = pkt.meta.get("phase")
        if phase is not None:
            self.phase_table.record(pkt.mtype.name, phase)
        self.trace.record(("nc", station_id, pkt.mtype.name, pkt.addr, pkt.requester))

    # ------------------------------------------------------------------
    def report(self) -> str:
        parts = [
            self.coherence_histogram.render(),
            "",
            self.nc_histogram.render(),
            "",
            self.originator_table.render(),
            "",
            self.phase_table.render(),
        ]
        return "\n".join(parts)
