"""Non-intrusive performance monitoring (paper section 3.3)."""

from .histogram import HistogramTable
from .monitor import Monitor, TraceMemory

__all__ = ["HistogramTable", "Monitor", "TraceMemory"]
