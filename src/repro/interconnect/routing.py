"""Hierarchical routing masks (paper §2.2).

A routing mask has one bit-field per level of the ring hierarchy.  For the
prototype's two-level 4x4 geometry the mask is 8 bits: a 4-bit *ring* field
(which local rings) and a 4-bit *station* field (which station positions on
those rings).  A single station sets exactly one bit per field; a multicast
destination set is formed by OR-ing station masks, which may *overspecify*
(Fig. 3): OR-ing {ring 0, station 0} with {ring 1, station 1} also selects
{ring 0, station 1} and {ring 1, station 0}.

The same masks double as the network-level directory entries, which is why
the per-cache-line directory cost grows only logarithmically with system
size.  :class:`RoutingMaskCodec` performs all encode/decode/inexactness
operations on plain ints so they are cheap enough to use on every packet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class Geometry:
    """Machine geometry: ``levels[0]`` is stations per local ring,
    ``levels[1]`` local rings on the central ring, and so on upward.

    The prototype is ``Geometry((4, 4))`` = 16 stations, 64 processors with
    4 CPUs per station.  A single-ring machine is ``Geometry((n,))``.
    """

    levels: Tuple[int, ...]
    processors_per_station: int = 4

    def __post_init__(self) -> None:
        if not self.levels or any(n < 1 for n in self.levels):
            raise ValueError(f"invalid geometry levels {self.levels}")

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    @property
    def num_stations(self) -> int:
        n = 1
        for width in self.levels:
            n *= width
        return n

    @property
    def num_processors(self) -> int:
        return self.num_stations * self.processors_per_station

    def station_coords(self, station_id: int) -> Tuple[int, ...]:
        """Decompose a flat station id into per-level positions,
        lowest level first (station-on-ring, ring-on-central, ...)."""
        if not 0 <= station_id < self.num_stations:
            raise ValueError(f"station {station_id} out of range")
        coords = []
        rest = station_id
        for width in self.levels:
            coords.append(rest % width)
            rest //= width
        return tuple(coords)

    def station_id(self, coords: Sequence[int]) -> int:
        sid = 0
        for width, c in zip(reversed(self.levels), reversed(list(coords))):
            if not 0 <= c < width:
                raise ValueError(f"coordinate {c} out of range for width {width}")
            sid = sid * width + c
        return sid


class RoutingMaskCodec:
    """Encode/decode routing masks for a given :class:`Geometry`.

    Masks are ints.  Field for level 0 (stations) occupies the low bits;
    each higher level is shifted left by the widths below it.
    """

    def __init__(self, geometry: Geometry) -> None:
        self.geometry = geometry
        self._shifts: List[int] = []
        shift = 0
        for width in geometry.levels:
            self._shifts.append(shift)
            shift += width
        self.total_bits = shift
        self._field_masks = [
            ((1 << width) - 1) << sh
            for width, sh in zip(geometry.levels, self._shifts)
        ]
        # per-station lookup tables: coords and masks are consulted on every
        # packet routing decision and are pure functions of the station id
        self._station_coords = [
            geometry.station_coords(s) for s in range(geometry.num_stations)
        ]
        self._station_masks = []
        for coords in self._station_coords:
            mask = 0
            for coord, sh in zip(coords, self._shifts):
                mask |= 1 << (sh + coord)
            self._station_masks.append(mask)

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def station_mask(self, station_id: int) -> int:
        """The unique routing mask with one bit per field for a station."""
        return self._station_masks[station_id]

    def combine(self, station_ids: Iterable[int]) -> int:
        """OR together station masks — the paper's (inexact) multicast set."""
        mask = 0
        for sid in station_ids:
            mask |= self.station_mask(sid)
        return mask

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def field(self, mask: int, level: int) -> int:
        """Extract the bit-field for one hierarchy level (unshifted)."""
        return (mask & self._field_masks[level]) >> self._shifts[level]

    def with_field(self, mask: int, level: int, value: int) -> int:
        """Return ``mask`` with the given level's field replaced."""
        return (mask & ~self._field_masks[level]) | (
            (value << self._shifts[level]) & self._field_masks[level]
        )

    def stations(self, mask: int) -> List[int]:
        """All stations selected by ``mask`` (the overspecified set: the
        cartesian product of the per-level fields)."""
        per_level: List[List[int]] = []
        for level, width in enumerate(self.geometry.levels):
            fld = self.field(mask, level)
            positions = [i for i in range(width) if fld & (1 << i)]
            if not positions:
                return []
            per_level.append(positions)
        out: List[int] = []

        def rec(level: int, coords: List[int]) -> None:
            if level == len(per_level):
                out.append(self.geometry.station_id(coords))
                return
            for pos in per_level[level]:
                rec(level + 1, coords + [pos])

        rec(0, [])
        return sorted(out)

    def selects(self, mask: int, station_id: int) -> bool:
        """Does ``mask`` select ``station_id``?  (O(levels), no expansion.)

        Equivalent to ``mask & station_mask == station_mask`` — every field
        must have the station's bit set."""
        smask = self._station_masks[station_id]
        return mask & smask == smask

    def is_single_station(self, mask: int) -> bool:
        """True when exactly one bit is set in every field."""
        for level in range(self.geometry.num_levels):
            fld = self.field(mask, level)
            if fld == 0 or fld & (fld - 1):
                return False
        return True

    def single_station(self, mask: int) -> int:
        """Decode a point-to-point mask to its station id."""
        if not self.is_single_station(mask):
            raise ValueError(f"mask {mask:#x} is not a single station")
        coords = []
        for level in range(self.geometry.num_levels):
            coords.append(self.field(mask, level).bit_length() - 1)
        return self.geometry.station_id(coords)

    # ------------------------------------------------------------------
    # routing decisions (paper §2.2 ascend/descend rules)
    # ------------------------------------------------------------------
    def highest_level_needed(self, mask: int, src_station: int) -> int:
        """The highest hierarchy level a packet from ``src_station`` must
        ascend to in order to reach every station in ``mask``.

        Level 0 means all targets are on the source's local ring; level k
        means the packet must climb to the ring at level k.  This is where
        the packet *turns around* and starts descending, and (for
        invalidations) where the sequencing point orders it.
        """
        src_coords = self._station_coords[src_station]
        top = 0
        for level in range(self.geometry.num_levels - 1, 0, -1):
            # Targets differing from the source at `level` or above require
            # ascending to that level.
            fld = self.field(mask, level)
            if fld & ~(1 << src_coords[level]):
                top = level
                break
        return top

    def descend_targets(self, mask: int, level: int) -> List[int]:
        """Positions on a level-``level`` ring whose downward links the
        descending packet must take (set bits of that level's field)."""
        fld = self.field(mask, level)
        width = self.geometry.levels[level]
        return [i for i in range(width) if fld & (1 << i)]

    def clear_upper(self, mask: int, level: int) -> int:
        """When a packet is switched down past ``level``, all bits in the
        fields above are cleared (paper: 'all bits in the higher-level field
        are cleared to zero')."""
        out = mask
        for lv in range(level, self.geometry.num_levels):
            out &= ~self._field_masks[lv]
        return out
