"""Slotted unidirectional rings (paper §2.2).

Each ring is a cycle of *members* (station ring interfaces on local rings;
inter-ring interfaces on all rings).  Every link carries one packet flit per
ring clock; a message of ``flits`` flits occupies that many consecutive
slots.  Rather than ticking every slot every cycle, the simulator reserves
link time: injecting or forwarding reserves the earliest free slots on the
outgoing link and schedules the arrival event at the next member.  Through
traffic wins ties against new injections because arrival events carry a
higher scheduler priority — exactly the behaviour of a slotted ring, where a
node may only inject into empty slots.

Routing follows the paper's ascend/descend rules.  A packet's travel mode is
kept in ``meta['state']``:

``ascend``
    climbing to a higher ring; station members just forward, the inter-ring
    interface always switches it up.
``to_seq``
    an *ordered* multicast heading for the sequencing point of the highest
    ring it reaches (the upward connection on non-central rings; a
    designated member on the central ring).
``deliver``
    visiting targets: each member whose bit is set in the packet's field for
    this ring level takes a copy and clears its bit; the packet is consumed
    when its field empties.

Flow control: when a member's input FIFO passes its high-water mark the
member halts the upstream link (``halt_link``), modelling the paper's
"operation of the ring that is feeding the buffer is temporarily halted".
"""

from __future__ import annotations

from typing import List, Optional, Protocol

from ..sim.engine import Engine
from ..sim.stats import BusyTracker, Counter
from .packet import Packet


class RingMember(Protocol):
    """Anything attached to a ring position."""

    def ring_arrival(self, ring: "Ring", packet: Packet) -> None:
        """Handle a packet whose last flit has arrived at this member."""
        ...


class Ring:
    """One slotted ring at a given hierarchy ``level`` (0 = local rings)."""

    __slots__ = (
        "engine",
        "name",
        "level",
        "size",
        "slot_ticks",
        "hop_ticks",
        "seq_pos",
        "members",
        "_link_free",
        "busy",
        "packets_carried",
        "halts",
    )

    def __init__(
        self,
        engine: Engine,
        name: str,
        level: int,
        size: int,
        slot_ticks: int,
        hop_ticks: int,
        seq_pos: int = 0,
    ) -> None:
        self.engine = engine
        self.name = name
        self.level = level
        self.size = size
        self.slot_ticks = slot_ticks
        self.hop_ticks = hop_ticks
        #: position of the sequencing point member (ordering of multicasts)
        self.seq_pos = seq_pos
        self.members: List[Optional[RingMember]] = [None] * size
        #: earliest tick at which the outgoing link of position i is free
        self._link_free = [0] * size
        self.busy = BusyTracker(f"{name}.links")
        self.packets_carried = Counter(f"{name}.packets")
        self.halts = Counter(f"{name}.halts")

    # ------------------------------------------------------------------
    def attach(self, pos: int, member: RingMember) -> None:
        if self.members[pos] is not None:
            raise ValueError(f"{self.name} position {pos} already attached")
        self.members[pos] = member

    def next_pos(self, pos: int) -> int:
        return (pos + 1) % self.size

    def distance(self, src: int, dst: int) -> int:
        """Hops from src to dst travelling in ring direction."""
        return (dst - src) % self.size

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def inject(self, pos: int, packet: Packet) -> int:
        """Place ``packet`` onto the ring at ``pos`` (head starts moving on
        the first free slot).  Returns the tick transmission starts."""
        return self._send(pos, packet)

    def forward(self, pos: int, packet: Packet) -> None:
        """Forward a through packet from ``pos`` to the next member."""
        self._send(pos, packet)

    def _send(self, pos: int, packet: Packet) -> int:
        # Cut-through: the head flit moves on after one hop; the tail's
        # serialization time is charged once, at final delivery (the
        # interfaces add ``(flits-1)*slot`` when consuming).  The link is
        # reserved for all flits, so bandwidth and FIFO order are exact.
        engine = self.engine
        link_free = self._link_free
        start = link_free[pos]
        now = engine.now
        if now > start:
            start = now
        occupy = packet.flits * self.slot_ticks
        link_free[pos] = start + occupy
        self.busy.busy += occupy
        self.packets_carried.value += 1
        engine.schedule_at(
            start + self.hop_ticks,
            self._arrive,
            ((pos + 1) % self.size, packet),
            priority=0,  # Engine.PRIO_ARRIVAL
        )
        return start

    def _arrive(self, arg) -> None:
        pos, packet = arg
        member = self.members[pos]
        if member is None:
            raise RuntimeError(f"{self.name}: no member at position {pos}")
        member.ring_arrival(self, packet)

    def halt_link(self, into_pos: int, duration: int) -> None:
        """Backpressure: stop the link feeding ``into_pos`` for ``duration``
        ticks (the upstream member cannot forward meanwhile)."""
        upstream = (into_pos - 1) % self.size
        target = self.engine.now + duration
        if target > self._link_free[upstream]:
            self._link_free[upstream] = target
            self.halts.incr()

    # ------------------------------------------------------------------
    def utilization(self, now: int) -> float:
        """Mean link utilization across the ring since the last window reset."""
        elapsed = now - self.busy._window_start
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy.busy / (elapsed * self.size))

    def start_window(self, now: int) -> None:
        self.busy.start_window(now)
