"""Slotted unidirectional rings (paper §2.2).

Each ring is a cycle of *members* (station ring interfaces on local rings;
inter-ring interfaces on all rings).  Every link carries one packet flit per
ring clock; a message of ``flits`` flits occupies that many consecutive
slots.  Rather than ticking every slot every cycle, the simulator reserves
link time: injecting or forwarding reserves the earliest free slots on the
outgoing link and schedules the arrival event at the next member.  Through
traffic wins ties against new injections because arrival events carry a
higher scheduler priority — exactly the behaviour of a slotted ring, where a
node may only inject into empty slots.

Routing follows the paper's ascend/descend rules.  A packet's travel mode is
kept in ``meta['state']``:

``ascend``
    climbing to a higher ring; station members just forward, the inter-ring
    interface always switches it up.
``to_seq``
    an *ordered* multicast heading for the sequencing point of the highest
    ring it reaches (the upward connection on non-central rings; a
    designated member on the central ring).
``deliver``
    visiting targets: each member whose bit is set in the packet's field for
    this ring level takes a copy and clears its bit; the packet is consumed
    when its field empties.

Flow control: when a member's input FIFO passes its high-water mark the
member halts the upstream link (``halt_link``), modelling the paper's
"operation of the ring that is feeding the buffer is temporarily halted".

Transit fusion (``NUMACHINE_FUSE=on``, default off)
---------------------------------------------------

Most ring events are pure pass-through hops: a packet ascending to the
central ring, or circling past non-destination stations, triggers one
``_send``/``_arrive`` pair per hop that does nothing but re-send.  When a
packet's ``route_state``/``dest_mask`` prove it passes the next *k*
positions without side effects, the fused path schedules **one** arrival
event *k* hops ahead and applies the skipped links' ``link_free``/
``busy``/``packets_carried`` updates in closed form — including waiting
out already-reserved link time (*wait-through*): a link busy inside the
window just delays the downstream send times, exactly as the hop-by-hop
walk would have computed them.  When the final member is the packet's
sole delivery target, the ``(flits-1)``-slot tail-lag bounce is folded
into the same macro-event.  The canonical surface — ``now``, every
latency accumulator, coherence/utilization stats — is bit-identical to
the hop-by-hop run; only ``events_run`` shrinks.

Exactness rests on two mechanisms.  First, arrival events carry
*content-derived* sequence keys (``ring.uid``/position, see
:mod:`repro.sim.engine`), so a macro-event sorts exactly where the
hop-by-hop final arrival would have and eliding the intermediate events
leaves the global tie-break counter untouched.  Second, because
``halt_link`` (backpressure, fault injection) or a competing ``_send``
can retroactively invalidate a fused window, every fused transit leaves
a :class:`FusedTransit` record in the ring's segment reservation table.
A conflicting operation detects the reservation, cancels the fused
arrival via the engine's O(1) tombstone (:meth:`Engine.cancel`), rolls
the skipped links back to their pre-fusion reservations, and replays the
remainder hop-by-hop from the conflict position — after which the normal
(exact) rules apply, including re-fusing further downstream.
"""

from __future__ import annotations

import os
from typing import List, Optional, Protocol

from ..sim.engine import Engine
from ..sim.stats import BusyTracker, Counter
from .packet import Packet


def fusion_enabled(override=None) -> bool:
    """Resolve the ``NUMACHINE_FUSE`` knob (``off``/``on``, default off)."""
    raw = os.environ.get("NUMACHINE_FUSE", "off") if override is None else override
    if isinstance(raw, bool):
        return raw
    name = str(raw).strip().lower()
    if name in ("on", "1", "true", "yes"):
        return True
    if name in ("off", "0", "false", "no", ""):
        return False
    raise ValueError(f"unknown NUMACHINE_FUSE value {raw!r} (use 'off' or 'on')")


def fusion_mode(override=None) -> str:
    """The knob normalized to the string stamped in caches/ledgers."""
    return "on" if fusion_enabled(override) else "off"


#: content-key spaces at PRIO_ARRIVAL (positive; the counter never appears
#: at that priority).  An arrival at ring position ``p`` is keyed
#: ``uid << ARRIVAL_SHIFT | p``; the tail-lag bounce of a delivery there is
#: keyed ``BOUNCE_KEY | uid << ARRIVAL_SHIFT | p << BOUNCE_FLIT_SHIFT |
#: flits`` — unique per tick because consecutive sends on a link are spaced
#: by at least one slot, so same-key bounces at one tick would need equal
#: flit counts *and* equal arrival ticks, a contradiction.
ARRIVAL_SHIFT = 18
BOUNCE_FLIT_SHIFT = 8
BOUNCE_KEY = 1 << 30


class FusedTransit:
    """Segment reservation record for one in-flight fused multi-hop transit.

    ``pos`` sent the packet; links ``pos+1 .. pos+m`` were reserved in
    closed form.  ``arr`` holds the tick the packet reaches each skipped
    position (the moment the hop-by-hop walk would have reserved its link)
    and ``prev`` the links' pre-fusion ``link_free`` values — together the
    conflict test and the rollback state.  The single macro-event
    ``handle`` delivers at ``fpos``; ``accept`` is the final member's
    fused-accept callback when the tail-lag merge applied, else ``None``
    (plain ``ring_arrival``).  ``saved`` is the number of events this
    fusion avoided, for hop-equivalent accounting.
    """

    __slots__ = ("packet", "pos", "m", "occupy", "prev", "arr",
                 "fpos", "accept", "handle", "saved")


class RingMember(Protocol):
    """Anything attached to a ring position."""

    def ring_arrival(self, ring: "Ring", packet: Packet) -> None:
        """Handle a packet whose last flit has arrived at this member."""
        ...

    def fuse_profile(self, ring: "Ring") -> tuple:
        """Static transit-fusion descriptor for this member on ``ring``:
        ``(dest_bit_mask, other_bits_mask, pass_ascend, pass_toseq,
        fused_accept_or_None)``.  A deliver-state packet passes through iff
        ``dest_mask & dest_bit_mask == 0``; ascend/to_seq packets pass iff
        the respective flag is set."""
        ...


class Ring:
    """One slotted ring at a given hierarchy ``level`` (0 = local rings)."""

    __slots__ = (
        "engine",
        "name",
        "level",
        "size",
        "slot_ticks",
        "hop_ticks",
        "seq_pos",
        "uid",
        "members",
        "_link_free",
        "busy",
        "packets_carried",
        "halts",
        "fused",
        "events_fused",
        "_abase",
        "_bbase",
        "_resv",
        "_fuse_tab",
    )

    #: generated plain-variant cores drop ``packets_carried``; their ring
    #: classes clear this so the shared repair path skips the rollback too
    _count_carried = True

    def __init__(
        self,
        engine: Engine,
        name: str,
        level: int,
        size: int,
        slot_ticks: int,
        hop_ticks: int,
        seq_pos: int = 0,
        fused: Optional[bool] = None,
    ) -> None:
        self.engine = engine
        self.name = name
        self.level = level
        self.size = size
        if size > (1 << BOUNCE_FLIT_SHIFT):
            raise ValueError(f"ring size {size} exceeds the arrival-key space")
        self.slot_ticks = slot_ticks
        self.hop_ticks = hop_ticks
        #: position of the sequencing point member (ordering of multicasts)
        self.seq_pos = seq_pos
        #: stable identity for content-keyed events (same in every backend)
        self.uid = engine.alloc_uid()
        #: content-key bases: arrivals and tail-lag bounces (see module vars)
        self._abase = self.uid << ARRIVAL_SHIFT
        self._bbase = BOUNCE_KEY | self._abase
        self.members: List[Optional[RingMember]] = [None] * size
        #: earliest tick at which the outgoing link of position i is free
        self._link_free = [0] * size
        self.busy = BusyTracker(f"{name}.links")
        self.packets_carried = Counter(f"{name}.packets")
        self.halts = Counter(f"{name}.halts")
        #: transit fusion (resolved from NUMACHINE_FUSE unless forced)
        self.fused = fusion_enabled() if fused is None else bool(fused)
        #: events avoided by fusion so far (hop-equivalent accounting)
        self.events_fused = 0
        #: segment reservation table: live FusedTransit records
        self._resv: List[FusedTransit] = []
        #: per-position fuse profiles, built lazily on the first fused send
        self._fuse_tab = None

    # ------------------------------------------------------------------
    def attach(self, pos: int, member: RingMember) -> None:
        if self.members[pos] is not None:
            raise ValueError(f"{self.name} position {pos} already attached")
        self.members[pos] = member

    def next_pos(self, pos: int) -> int:
        return (pos + 1) % self.size

    def distance(self, src: int, dst: int) -> int:
        """Hops from src to dst travelling in ring direction."""
        return (dst - src) % self.size

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def inject(self, pos: int, packet: Packet) -> int:
        """Place ``packet`` onto the ring at ``pos`` (head starts moving on
        the first free slot).  Returns the tick transmission starts."""
        return self._send(pos, packet)

    def forward(self, pos: int, packet: Packet) -> int:
        """Forward a through packet from ``pos`` to the next member."""
        return self._send(pos, packet)

    def _send(self, pos: int, packet: Packet) -> int:
        # Cut-through: the head flit moves on after one hop; the tail's
        # serialization time is charged once, at final delivery (the
        # interfaces add ``(flits-1)*slot`` when consuming).  The link is
        # reserved for all flits, so bandwidth and FIFO order are exact.
        if self._resv:
            # hop-by-hop this send would have reserved the link before any
            # fused transit's future hop across it: repair those first
            self._send_conflicts(pos)
        engine = self.engine
        link_free = self._link_free
        start = link_free[pos]
        now = engine.now
        if now > start:
            start = now
        occupy = packet.flits * self.slot_ticks
        link_free[pos] = start + occupy
        self.busy.busy += occupy
        self.packets_carried.value += 1
        if self.fused:
            return self._fused_send(pos, packet, start, occupy)
        np = pos + 1
        if np >= self.size:
            np = 0
        engine._push(
            (start + self.hop_ticks, 0, self._abase | np, self._arrive,
             (np, packet))
        )
        return start

    def _fused_send(self, pos: int, packet: Packet, start: int, occupy: int) -> int:
        """Fusion fast path: link ``pos`` is already reserved; scan ahead
        for pass-through positions, reserve their links in closed form
        (waiting through existing reservations), and schedule the single
        macro arrival."""
        tab = self._fuse_tab
        if tab is None:
            tab = self._build_fuse_tab()
            if tab is None:  # ring opted out of fusion: plain next hop
                np = pos + 1
                if np >= self.size:
                    np = 0
                self.engine._push(
                    (start + self.hop_ticks, 0, self._abase | np,
                     self._arrive, (np, packet))
                )
                return start
        size = self.size
        hop = self.hop_ticks
        state = packet.route_state
        dest = packet.dest_mask
        np = pos + 1
        if np >= size:
            np = 0
        dbm, others, pass_a, pass_t, accept = tab[np]
        if state == 0:  # ROUTE_DELIVER
            stop = dest & dbm
        elif state == 1:  # ROUTE_ASCEND
            stop = not pass_a
        else:  # ROUTE_TO_SEQ
            stop = not pass_t
        if stop:
            # the next member consumes or redirects the packet: nothing to
            # fuse except possibly the tail-lag bounce — skip the window
            # machinery entirely (the common case on short rings)
            engine = self.engine
            t = start + hop
            if state == 0 and accept is not None and not (dest & others):
                tail = (packet.flits - 1) * self.slot_ticks
                if tail:
                    self.events_fused += 1
                    engine._push(
                        (t + tail, 0,
                         self._bbase | np << BOUNCE_FLIT_SHIFT | packet.flits,
                         accept, packet)
                    )
                    return start
            engine._push((t, 0, self._abase | np, self._arrive, (np, packet)))
            return start
        link_free = self._link_free
        resv = self._resv
        m = 0
        p = pos
        s = start  # send time on the current hop's link
        prev = []
        arr = []
        limit = size - 1
        while True:
            # invariant: position ``np`` passes the packet through; try to
            # take its link in closed form
            a = s + hop  # the packet reaches np (and reserves its link) here
            if resv:
                # another fused transit crosses link np but arrives *later*
                # than we do: hop-by-hop we would reserve first, so taking
                # its closed-form reservation as wait-through time would
                # invert the order.  End the window; our macro arrival's
                # ordinary ``_send`` there will repair the other transit.
                blocked = False
                for rec in resv:
                    jj = (np - rec.pos) % size
                    if 1 <= jj <= rec.m and rec.arr[jj - 1] > a:
                        blocked = True
                        break
                if blocked:
                    break
            f = link_free[np]
            prev.append(f)
            arr.append(a)
            s = f if f > a else a  # wait-through: queue behind link time
            link_free[np] = s + occupy
            p = np
            m += 1
            if m >= limit:
                break
            np = p + 1
            if np >= size:
                np = 0
            dbm, others, pass_a, pass_t, accept = tab[np]
            if state == 0:
                if dest & dbm:
                    break
            elif state == 1:
                if not pass_a:
                    break
            elif not pass_t:
                break
        fpos = p + 1
        if fpos >= size:
            fpos = 0
        t = s + hop  # head arrival tick at fpos
        engine = self.engine
        if m == limit:
            # only the length-limit break leaves the tab locals one behind
            dbm, others, _pass_a, _pass_t, accept = tab[fpos]
        # Tail-lag merge: a sole-target delivery's arrival only gates the
        # (flits-1)-slot tail bounce — fold that bounce into the macro event
        # (see SRI._fused_accept).  The merged event reuses the bounce's own
        # content key, so it sorts exactly like the unfused bounce would.
        tail = (packet.flits - 1) * self.slot_ticks
        merged = (
            accept is not None
            and tail
            and state == 0
            and dest & dbm
            and not (dest & others)
        )
        if m == 0:
            # no hops skipped: no reservation needed — the only link used
            # was reserved normally, and an in-flight arrival can't be
            # invalidated by a later halt
            if merged:
                self.events_fused += 1
                engine._push(
                    (t + tail, 0,
                     self._bbase | fpos << BOUNCE_FLIT_SHIFT | packet.flits,
                     accept, packet)
                )
            else:
                engine._push((t, 0, self._abase | fpos, self._arrive,
                              (fpos, packet)))
            return start
        self.busy.busy += occupy * m
        self.packets_carried.value += m
        rec = FusedTransit()
        rec.packet = packet
        rec.pos = pos
        rec.m = m
        rec.occupy = occupy
        rec.prev = prev
        rec.arr = arr
        rec.fpos = fpos
        rec.accept = accept if merged else None
        rec.saved = m + 1 if merged else m
        if merged:
            rec.handle = engine.schedule_cancellable_keyed_at(
                t + tail,
                self._bbase | fpos << BOUNCE_FLIT_SHIFT | packet.flits,
                self._fused_fire, rec,
            )
        else:
            rec.handle = engine.schedule_cancellable_keyed_at(
                t, self._abase | fpos, self._fused_fire, rec,
            )
        resv.append(rec)
        self.events_fused += rec.saved
        return start

    def _build_fuse_tab(self):
        tab = []
        for member in self.members:
            profile = getattr(member, "fuse_profile", None)
            if profile is None:
                # a partially attached ring or a stub member (tests,
                # tooling) exposes no fuse profile: run this ring unfused
                # rather than guess at its pass-through semantics
                self.fused = False
                return None
            tab.append(profile(self))
        self._fuse_tab = tab = tuple(tab)
        return tab

    def _fused_fire(self, rec: FusedTransit) -> None:
        """The macro arrival of a fused transit: clear the reservation and
        deliver exactly as the last hop-by-hop event would have."""
        self._resv.remove(rec)
        accept = rec.accept
        if accept is None:
            self.members[rec.fpos].ring_arrival(self, rec.packet)
        else:
            accept(rec.packet)

    def _send_conflicts(self, pos: int) -> None:
        now = self.engine.now
        size = self.size
        for rec in self._resv:
            j = (pos - rec.pos) % size
            # conflict iff the fused packet has not yet reached this link:
            # hop-by-hop it would reserve at rec.arr[j-1], so a send before
            # then must queue *ahead* of it, not behind its reservation
            if 1 <= j <= rec.m and rec.arr[j - 1] > now:
                self._repair_all()
                return

    def _halt_conflicts(
        self, upstream: int, target: int, tie_pending: bool
    ) -> None:
        now = self.engine.now
        size = self.size
        for rec in self._resv:
            j = (upstream - rec.pos) % size
            # conflict iff the fused packet has not yet reached this link
            # and the halt would have pushed the pre-fusion reservation out
            # (hop-by-hop: exactly the halts that change start times/counts).
            # ``tie_pending`` resolves the same-tick race: a virtual arrival
            # at exactly ``now`` has already reserved the link only if its
            # content key sorts before the halting event's (see halt_link)
            if (
                1 <= j <= rec.m
                and (
                    rec.arr[j - 1] > now
                    or (tie_pending and rec.arr[j - 1] == now)
                )
                and target > rec.prev[j - 1]
            ):
                self._repair_all(upstream if tie_pending else None)
                return

    def _repair_all(self, tie_pos: Optional[int] = None) -> None:
        """Unwind every live reservation with pending hops, newest first.

        Repairing is conservative by construction — it reconstructs the
        exact hop-by-hop pending state, so unwinding more than the one
        conflicted transit never changes results, it only forgoes savings.
        Unwinding *newest first* is what makes the blind ``prev`` restores
        exact when windows overlap: a later fusion observed (and reserved
        over) an earlier one's link values, so restores must nest like a
        stack.  Conflicts are rare (backpressure/fault paths) and ``_resv``
        is tiny, so the simplicity is worth a few extra replays.

        ``tie_pos`` marks one link whose same-tick virtual arrival has NOT
        yet run in hop-by-hop key order (see :meth:`halt_link`): a hop
        reaching it at exactly ``now`` counts as pending, where every other
        same-tick hop counts as already reserved.
        """
        now = self.engine.now
        size = self.size
        for rec in reversed(tuple(self._resv)):
            # earliest pending hop: smallest j whose position the packet
            # has not reached yet (arr is strictly increasing)
            arr = rec.arr
            m = rec.m
            j = 1
            while j <= m and (
                arr[j - 1] < now
                or (
                    arr[j - 1] == now
                    and (tie_pos is None or (rec.pos + j) % size != tie_pos)
                )
            ):
                j += 1
            if j <= m:
                self._repair(rec, j)

    def _repair(self, rec: FusedTransit, j: int) -> None:
        """Cancel a fused transit invalidated at hop ``j`` and replay the
        remainder hop-by-hop from the conflict position: roll the skipped
        links back to their pre-fusion reservations and re-create the plain
        arrival event the unfused run would have pending right now."""
        engine = self.engine
        engine.cancel(rec.handle)
        self._resv.remove(rec)
        link_free = self._link_free
        size = self.size
        undone = rec.m - j + 1
        for i in range(j, rec.m + 1):
            link_free[(rec.pos + i) % size] = rec.prev[i - 1]
        self.busy.busy -= rec.occupy * undone
        if self._count_carried:
            self.packets_carried.value -= undone
        # hops 1..j-1 stay genuinely saved; the macro event is replaced by
        # the replay arrival (and its tombstone is netted out by
        # ``engine.cancels`` in the hop-equivalent formula)
        self.events_fused -= rec.saved - (j - 1)
        rp = (rec.pos + j) % size
        engine.schedule_keyed_at(
            rec.arr[j - 1], self._abase | rp, self._arrive, (rp, rec.packet)
        )

    def _arrive(self, arg) -> None:
        pos, packet = arg
        member = self.members[pos]
        if member is None:
            raise RuntimeError(f"{self.name}: no member at position {pos}")
        member.ring_arrival(self, packet)

    def halt_link(
        self, into_pos: int, duration: int, in_arrival: bool = False
    ) -> None:
        """Backpressure: stop the link feeding ``into_pos`` for ``duration``
        ticks (the upstream member cannot forward meanwhile).

        ``in_arrival`` marks a halt issued from *inside* the arrival event
        at ``into_pos`` (e.g. a single-flit accept that finds its FIFO
        pressured).  It disambiguates the same-tick race against a fused
        window: the halted link is reserved by the arrival at ``upstream``,
        whose content key sorts after the current event's exactly when
        ``upstream > into_pos`` — i.e. only for ``into_pos == 0``, where
        hop-by-hop the halt lands *before* the reserving arrival runs and
        the fused closed form must be repaired even at equal ticks."""
        upstream = (into_pos - 1) % self.size
        target = self.engine.now + duration
        if self._resv:
            self._halt_conflicts(
                upstream, target, in_arrival and upstream > into_pos
            )
        if target > self._link_free[upstream]:
            self._link_free[upstream] = target
            self.halts.incr()

    # ------------------------------------------------------------------
    def utilization(self, now: int) -> float:
        """Mean link utilization across the ring since the last window reset."""
        elapsed = now - self.busy._window_start
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy.busy / (elapsed * self.size))

    def start_window(self, now: int) -> None:
        self.busy.start_window(now)
