"""Ring interfaces (paper §3.1.3).

Two kinds of interface exist:

* :class:`StationRingInterface` — connects a station's bus to its local
  ring.  Upward path: packet generator -> output FIFO -> ring slots.
  Downward path: input FIFO -> packet handler -> separate *sinkable* /
  *nonsinkable* queues -> station bus.  It also enforces the deadlock
  bound on nonsinkable messages a station may have in the network.

* :class:`InterRingInterface` — a simple FIFO switch joining a ring to its
  parent ring.  It is the sequencing point of its child ring, and one
  designated inter-ring interface is the sequencing point of the central
  ring.

Both implement the :class:`~repro.interconnect.ring.RingMember` protocol and
realize the ascend / to_seq / deliver routing rules described in
:mod:`repro.interconnect.ring`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from ..sim.engine import Engine
from ..sim.fifo import Fifo
from ..sim.stats import StatGroup
from .packet import Packet, ROUTE_ASCEND, ROUTE_DELIVER, ROUTE_TO_SEQ
from .ring import BOUNCE_FLIT_SHIFT, Ring, fusion_enabled
from .routing import RoutingMaskCodec

#: travel-mode values kept in ``Packet.route_state``
ASCEND = ROUTE_ASCEND
TO_SEQ = ROUTE_TO_SEQ
DELIVER = ROUTE_DELIVER


class StationRingInterface:
    """The local ring interface of one station."""

    __slots__ = (
        "engine",
        "codec",
        "station_id",
        "ring",
        "pos",
        "pkt_gen_ticks",
        "handler_ticks",
        "bus_granter",
        "deliver_cb",
        "nonsink_limit",
        "line_bus_ticks",
        "cmd_bus_ticks",
        "seq_ticks",
        "station_bit",
        "out_fifo",
        "in_fifo",
        "sink_q",
        "nonsink_q",
        "_pending_out",
        "_nonsink_credits",
        "_bounce_base",
        "_out_busy",
        "_handler_busy",
        "_drain_busy",
        "fused",
        "events_fused",
        "_out_done_key",
        "_out_free",
        "stats",
        "tracer",
        "verifier",
        "fault_filter",
    )

    def __init__(
        self,
        engine: Engine,
        codec: RoutingMaskCodec,
        station_id: int,
        ring: Ring,
        pos: int,
        *,
        pkt_gen_ticks: int,
        handler_ticks: int,
        bus_granter: Callable,
        deliver: Callable[[Packet], None],
        nonsink_limit: int = 16,
        in_fifo_capacity: int = 256,
        line_bus_ticks: int = 0,
        cmd_bus_ticks: int = 0,
        seq_ticks: int = 0,
    ) -> None:
        self.engine = engine
        self.codec = codec
        self.station_id = station_id
        self.ring = ring
        self.pos = pos
        self.pkt_gen_ticks = pkt_gen_ticks
        self.handler_ticks = handler_ticks
        self.bus_granter = bus_granter
        self.deliver_cb = deliver
        self.nonsink_limit = nonsink_limit
        self.line_bus_ticks = line_bus_ticks
        self.cmd_bus_ticks = cmd_bus_ticks
        self.seq_ticks = seq_ticks
        #: station-position bit index within the level-0 field
        self.station_bit = codec.geometry.station_coords(station_id)[0]
        #: content-key base for ring-delivery tail bounces (see ring.py)
        self._bounce_base = ring._bbase | pos << BOUNCE_FLIT_SHIFT

        self.out_fifo = Fifo(f"S{station_id}.ri.out", capacity=None)
        self.in_fifo = Fifo(f"S{station_id}.ri.in", capacity=in_fifo_capacity)
        self.sink_q = Fifo(f"S{station_id}.ri.sink", capacity=None)
        self.nonsink_q = Fifo(f"S{station_id}.ri.nonsink", capacity=None)
        self._pending_out: deque = deque()  # nonsinkables waiting for credit
        self._nonsink_credits = nonsink_limit
        self._out_busy = False
        self._handler_busy = False
        self._drain_busy = False
        #: idle-port wakeup elision (NUMACHINE_FUSE): when the output FIFO
        #: is empty at inject time the ``_out_done`` relay is deferred
        #: rather than scheduled (see _pump_out / _enqueue_out); the
        #: content key keeps its tie-break position identical either way
        self.fused = fusion_enabled()
        self.events_fused = 0
        self._out_done_key = ~engine.alloc_uid()
        self._out_free: Optional[int] = None
        self.stats = StatGroup(f"S{station_id}.ri")
        #: transaction tracer (repro.obs), or None when tracing is off
        self.tracer = None
        #: invariant checker (repro.verify), or None when checking is off
        self.verifier = None
        #: fault-injection interceptor (repro.fault); returns True when it
        #: consumed the packet (delayed re-send), or None when faults are off
        self.fault_filter = None
        engine.blocked_watchers.append(self._blocked_reason)

    # ------------------------------------------------------------------
    # upward path (station -> ring)
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> None:
        """Inject a message from this station into the network."""
        ff = self.fault_filter
        if ff is not None and ff(self, packet):
            return
        if packet.born < 0:
            packet.born = self.engine.now
        tr = self.tracer
        if tr is not None:
            tr.stamp_pkt(packet, "ri.send", self.engine.now)
        if not packet.sinkable:
            if self._nonsink_credits == 0:
                self._pending_out.append(packet)
                self.stats.counter("nonsink_credit_waits").incr()
                return
            self._nonsink_credits -= 1
            packet.credit_home = self
            v = self.verifier
            if v is not None:
                v.ri_credit(self)
        self._route_prep(packet)
        packet.send_enq = self.engine.now
        # packet generator formatting latency, then the output FIFO
        self.engine.schedule(self.pkt_gen_ticks, self._enqueue_out, packet)

    def release_credit(self) -> None:
        """A nonsinkable message from this station left the network."""
        if self._pending_out:
            packet = self._pending_out.popleft()
            packet.credit_home = self
            self._route_prep(packet)
            packet.send_enq = self.engine.now
            self.engine.schedule(self.pkt_gen_ticks, self._enqueue_out, packet)
        else:
            self._nonsink_credits += 1
            v = self.verifier
            if v is not None:
                v.ri_credit(self)

    def _route_prep(self, packet: Packet) -> None:
        codec = self.codec
        top = codec.highest_level_needed(packet.dest_mask, self.station_id)
        if top == 0:
            # Stays on this ring: clear the upper fields so the packet is not
            # mistaken for an ascending one.
            packet.dest_mask = codec.clear_upper(packet.dest_mask, 1)
            packet.route_state = TO_SEQ if packet.ordered else DELIVER
        else:
            packet.route_state = ASCEND

    def _enqueue_out(self, packet: Packet) -> None:
        now = self.engine.now
        self.out_fifo.push(packet, now)
        free = self._out_free
        if free is not None:
            # a deferred idle wakeup is outstanding: materialize it if it
            # has not notionally fired yet, else absorb it (the unfused
            # done — content-keyed — ran before this counter-keyed event)
            self._out_free = None
            if free > now:
                self.events_fused -= 1
                self.engine.schedule_keyed_at(
                    free, self._out_done_key, self._out_done, priority=1
                )
            else:
                self._out_busy = False
        self._pump_out()

    def _pump_out(self) -> None:
        if self._out_busy or self.out_fifo.empty:
            return
        self._out_busy = True
        packet = self.out_fifo.pop(self.engine.now)
        # A deliver-mode packet whose only target is this station never
        # touches the ring (e.g. an unordered self-send); loop it back.
        state = packet.route_state
        fld = self.codec.field(packet.dest_mask, 0)
        if state == DELIVER and fld == (1 << self.station_bit):
            self.engine.schedule(0, self._local_loopback, packet)
            self._out_busy = False
            self._pump_out()
            return
        start = self.ring.inject(self.pos, packet)
        enq = packet.send_enq
        packet.send_enq = -1
        self.stats.accumulator("send_delay").add(start - enq if enq >= 0 else 0)
        tr = self.tracer
        if tr is not None:
            tr.stamp_pkt(packet, "ring.inject", start)
        done = start + packet.flits * self.ring.slot_ticks
        if self.fused and self.out_fifo.empty:
            # nothing to pump at ``done``: defer the relay (idle elision)
            self._out_free = done
            self.events_fused += 1
            return
        self.engine.schedule_keyed_at(
            done, self._out_done_key, self._out_done, priority=1
        )

    def _out_done(self) -> None:
        self._out_busy = False
        self._pump_out()

    def _local_loopback(self, packet: Packet) -> None:
        # Loopbacks are not anchored to a ring arrival, so their tail
        # bounce stays counter-keyed (the arrival-derived bounce key's
        # uniqueness argument does not cover them) — and transit fusion
        # consequently leaves the loopback path alone.
        tail = (packet.flits - 1) * self.ring.slot_ticks
        if tail:
            self.engine.schedule(tail, self._accept_body, packet)
            return
        self._accept_body(packet)

    # ------------------------------------------------------------------
    # ring member: arrivals on the local ring
    # ------------------------------------------------------------------
    def ring_arrival(self, ring: Ring, packet: Packet) -> None:
        state = packet.route_state
        if state == ASCEND:
            ring.forward(self.pos, packet)
            return
        if state == TO_SEQ:
            if ring.seq_pos == self.pos:
                # this member is the sequencing point (single-ring machines):
                # ordering the multicast costs seq_ticks before it proceeds
                packet.route_state = DELIVER
                if self.seq_ticks:
                    self.engine.schedule(
                        self.seq_ticks, self._deliver_after_seq, packet
                    )
                    return
            else:
                ring.forward(self.pos, packet)
                return
        # deliver mode
        fld = self.codec.field(packet.dest_mask, 0)
        mybit = 1 << self.station_bit
        if fld & mybit:
            remaining = fld & ~mybit
            packet.dest_mask = self.codec.with_field(packet.dest_mask, 0, remaining)
            if remaining:
                copy = packet.copy_for_branch()
                self._accept(copy)
                ring.forward(self.pos, packet)
            else:
                self._accept(packet)  # consumed here
        else:
            ring.forward(self.pos, packet)

    def _deliver_after_seq(self, packet: Packet) -> None:
        # Deliver logic inlined from ring_arrival, with a counter-keyed
        # tail bounce: this entry is not anchored to a ring arrival, so the
        # arrival-derived bounce key's per-tick uniqueness argument does
        # not cover it.  Only TO_SEQ packets reach here, and fusion always
        # stops at the sequencing point, so both modes schedule these at
        # identical stream positions.
        fld = self.codec.field(packet.dest_mask, 0)
        mybit = 1 << self.station_bit
        if fld & mybit:
            remaining = fld & ~mybit
            packet.dest_mask = self.codec.with_field(packet.dest_mask, 0, remaining)
            if remaining:
                copy = packet.copy_for_branch()
                self._accept_seq(copy)
                self.ring.forward(self.pos, packet)
            else:
                self._accept_seq(packet)
        else:
            self.ring.forward(self.pos, packet)

    def _accept(self, packet: Packet) -> None:
        """Downward path entry for ring deliveries: the input FIFO between
        ring and handler.  Multi-flit messages finish arriving
        ``(flits-1)`` slots after their head (cut-through tail lag); the
        bounce event carries an arrival-derived content key so the fused
        tail-lag merge can reproduce it exactly (see ring.py)."""
        tail = (packet.flits - 1) * self.ring.slot_ticks
        if tail:
            engine = self.engine
            engine._push(
                (engine.now + tail, 0, self._bounce_base | packet.flits,
                 self._accept_body, packet)
            )
            return
        self._accept_body(packet, True)

    def _accept_seq(self, packet: Packet) -> None:
        """Tail-lag gate for sequencing-point re-deliveries (counter-keyed,
        see :meth:`_deliver_after_seq`)."""
        tail = (packet.flits - 1) * self.ring.slot_ticks
        if tail:
            self.engine.schedule(tail, self._accept_body, packet)
            return
        self._accept_body(packet)

    def _accept_body(self, packet: Packet, in_arrival: bool = False) -> None:
        # in_arrival: called synchronously from inside this position's
        # arrival event (single-flit fast path) rather than from the
        # tail-lag bounce or a counter-keyed gate — the backpressure halt
        # below then precedes same-tick arrivals at higher positions, which
        # the fused conflict test must know (see Ring.halt_link)
        packet.arr = self.engine.now
        tr = self.tracer
        if tr is not None:
            tr.stamp_pkt(packet, "ri.arrive", self.engine.now)
        self.in_fifo.push(packet, self.engine.now)
        if self.in_fifo.pressured:
            self.ring.halt_link(self.pos, self.ring.slot_ticks * 4, in_arrival)
            self.stats.counter("input_halts").incr()
        self._pump_handler()

    def _fused_accept(self, packet: Packet) -> None:
        """Fused final delivery: the skipped sole-target arrival would have
        cleared the level-0 field and bounced once for the tail lag — do
        the clear here and run the post-tail accept body directly."""
        packet.dest_mask = self.codec.with_field(packet.dest_mask, 0, 0)
        self._accept_body(packet)

    def fuse_profile(self, ring: Ring) -> tuple:
        """Transit-fusion descriptor (see :class:`~repro.interconnect.ring.
        RingMember`): a station passes ascending packets, passes ordered
        multicasts unless it is the ring's sequencing point (single-ring
        machines), and consumes deliveries addressed to its level-0 bit."""
        codec = self.codec
        dbm = codec.with_field(0, 0, 1 << self.station_bit)
        others = codec._field_masks[0] & ~dbm
        return (dbm, others, True, ring.seq_pos != self.pos, self._fused_accept)

    def _pump_handler(self) -> None:
        if self._handler_busy or self.in_fifo.empty:
            return
        self._handler_busy = True
        packet = self.in_fifo.pop(self.engine.now)
        self.engine.schedule(self.handler_ticks, self._handler_done, packet)

    def _handler_done(self, packet: Packet) -> None:
        if packet.sinkable:
            self.sink_q.push(packet, self.engine.now)
        else:
            self.nonsink_q.push(packet, self.engine.now)
        self._handler_busy = False
        self._pump_handler()
        self._pump_drain()

    def _pump_drain(self) -> None:
        """Move packets from the sink/nonsink queues onto the station bus,
        sinkable first (deadlock rule: sinkables have priority)."""
        if self._drain_busy:
            return
        if not self.sink_q.empty:
            queue, kind = self.sink_q, "sink"
        elif not self.nonsink_q.empty:
            queue, kind = self.nonsink_q, "nonsink"
        else:
            return
        self._drain_busy = True
        packet = queue.pop(self.engine.now)
        v = self.verifier
        if v is not None:
            v.ri_drain(self, packet, kind)
        cycles = self.cmd_bus_ticks + (
            self.line_bus_ticks if packet.data is not None else 0
        )
        self.bus_granter(cycles, lambda start, p=packet, k=kind: self._bus_done(p, k))

    def _bus_done(self, packet: Packet, kind: str) -> None:
        arr = packet.arr
        packet.arr = -1
        if arr < 0:
            arr = self.engine.now
        self.stats.accumulator(f"down_delay_{kind}").add(self.engine.now - arr)
        tr = self.tracer
        if tr is not None:
            tr.stamp_pkt(packet, "ri.deliver", self.engine.now)
        self._drain_busy = False
        if not packet.sinkable:
            credit_home = packet.credit_home
            if credit_home is not None:
                packet.credit_home = None
                credit_home.release_credit()
        self.deliver_cb(packet)
        self._pump_drain()

    # ------------------------------------------------------------------
    def _blocked_reason(self) -> Optional[str]:
        if self._pending_out:
            return (
                f"S{self.station_id} ring interface holds "
                f"{len(self._pending_out)} packets waiting for nonsinkable credit"
            )
        return None


class InterRingInterface:
    """Switch between a child ring and its parent ring (paper: 'both upward
    and downward paths are implemented with simple FIFO buffers')."""

    __slots__ = (
        "engine",
        "codec",
        "name",
        "child",
        "child_pos",
        "parent",
        "parent_pos",
        "switch_ticks",
        "seq_ticks",
        "up_fifo",
        "down_fifo",
        "_up_busy",
        "_down_busy",
        "fused",
        "events_fused",
        "_up_done_key",
        "_up_free",
        "_down_done_key",
        "_down_free",
        "stats",
        "tracer",
    )

    def __init__(
        self,
        engine: Engine,
        codec: RoutingMaskCodec,
        name: str,
        child: Ring,
        child_pos: int,
        parent: Ring,
        parent_pos: int,
        *,
        switch_ticks: int,
        fifo_capacity: int = 256,
        seq_ticks: int = 0,
    ) -> None:
        self.engine = engine
        self.codec = codec
        self.name = name
        self.child = child
        self.child_pos = child_pos
        self.parent = parent
        self.parent_pos = parent_pos
        self.switch_ticks = switch_ticks
        self.seq_ticks = seq_ticks
        self.up_fifo = Fifo(f"{name}.up", capacity=fifo_capacity)
        self.down_fifo = Fifo(f"{name}.down", capacity=fifo_capacity)
        self._up_busy = False
        self._down_busy = False
        #: idle-port wakeup elision, one per direction (see the station
        #: ring interface's _pump_out / _enqueue_out)
        self.fused = fusion_enabled()
        self.events_fused = 0
        self._up_done_key = ~engine.alloc_uid()
        self._up_free: Optional[int] = None
        self._down_done_key = ~engine.alloc_uid()
        self._down_free: Optional[int] = None
        self.stats = StatGroup(name)
        #: transaction tracer (repro.obs), or None when tracing is off
        self.tracer = None

    # ------------------------------------------------------------------
    def ring_arrival(self, ring: Ring, packet: Packet) -> None:
        if ring is self.child:
            self._child_arrival(packet)
        elif ring is self.parent:
            self._parent_arrival(packet)
        else:  # pragma: no cover - wiring error
            raise RuntimeError(f"{self.name} got packet from unknown ring")

    def fuse_profile(self, ring: Ring) -> tuple:
        """Transit-fusion descriptor.  On the child ring the switch stops
        every ascending packet (it is the up link) and every ordered
        multicast when it is the sequencing point; deliver-mode packets
        have no bit at the switch position and pass through.  On the parent
        ring it behaves like a station, keyed on the parent-level field."""
        if ring is self.child:
            return (0, 0, False, self.child.seq_pos != self.child_pos, None)
        codec = self.codec
        lvl = self.parent.level
        dbm = codec.with_field(0, lvl, 1 << self.parent_pos)
        others = codec._field_masks[lvl] & ~dbm
        return (dbm, others, True, self.parent.seq_pos != self.parent_pos, None)

    # ---- child ring side ---------------------------------------------
    def _child_arrival(self, packet: Packet) -> None:
        state = packet.route_state
        if state == ASCEND:
            self._enqueue_up(packet)
            return
        if state == TO_SEQ and self.child.seq_pos == self.child_pos:
            # This interface is the child ring's sequencing point: ordering
            # the multicast costs seq_ticks before the copies proceed.
            packet.route_state = DELIVER
            if self.seq_ticks:
                self.engine.schedule(
                    self.seq_ticks,
                    lambda p=packet: self.child.forward(self.child_pos, p),
                )
                return
        self.child.forward(self.child_pos, packet)

    def _enqueue_up(self, packet: Packet) -> None:
        tr = self.tracer
        if tr is not None:
            tr.stamp_pkt(packet, "iri.up_enq", self.engine.now)
        packet.up_enq = self.engine.now
        self.up_fifo.push(packet, self.engine.now)
        if self.up_fifo.pressured:
            # always called from inside the child-ring arrival event here
            self.child.halt_link(self.child_pos, self.child.slot_ticks * 4, True)
        free = self._up_free
        if free is not None:
            self._up_free = None
            if free > self.engine.now:
                self.events_fused -= 1
                self.engine.schedule_keyed_at(
                    free, self._up_done_key, self._up_done, priority=1
                )
            else:
                self._up_busy = False
        self._pump_up()

    def _pump_up(self) -> None:
        if self._up_busy or self.up_fifo.empty:
            return
        self._up_busy = True
        packet = self.up_fifo.pop(self.engine.now)
        self.engine.schedule(self.switch_ticks, self._inject_parent, packet)

    def _inject_parent(self, packet: Packet) -> None:
        # Reached the parent ring: decide the packet's mode there.
        higher = False
        for level in range(self.parent.level + 1, self.codec.geometry.num_levels):
            if self.codec.field(packet.dest_mask, level):
                higher = True
                break
        if higher:
            packet.route_state = ASCEND
        else:
            packet.route_state = TO_SEQ if packet.ordered else DELIVER
        start = self.parent.inject(self.parent_pos, packet)
        enq = packet.up_enq
        packet.up_enq = -1
        self.stats.accumulator("up_delay").add(start - enq if enq >= 0 else 0)
        tr = self.tracer
        if tr is not None:
            tr.stamp_pkt(packet, "iri.up_inject", start)
        done = start + packet.flits * self.parent.slot_ticks
        if self.fused and self.up_fifo.empty:
            self._up_free = done
            self.events_fused += 1
            return
        self.engine.schedule_keyed_at(
            done, self._up_done_key, self._up_done, priority=1
        )

    def _up_done(self) -> None:
        self._up_busy = False
        self._pump_up()

    # ---- parent ring side ---------------------------------------------
    def _parent_arrival(self, packet: Packet) -> None:
        state = packet.route_state
        if state == ASCEND:
            # Only possible in 3+ level machines; this interface is not the
            # one that switches further up (each ring has one upward link).
            self.parent.forward(self.parent_pos, packet)
            return
        if state == TO_SEQ:
            if self.parent.seq_pos == self.parent_pos:
                packet.route_state = DELIVER
                if self.seq_ticks and not packet.seq_done:
                    packet.seq_done = True
                    packet.route_state = TO_SEQ
                    self.engine.schedule(
                        self.seq_ticks,
                        lambda p=packet: self._parent_arrival(p),
                    )
                    return
                packet.seq_done = False
            else:
                self.parent.forward(self.parent_pos, packet)
                return
        fld = self.codec.field(packet.dest_mask, self.parent.level)
        mybit = 1 << self.parent_pos
        if fld & mybit:
            remaining = fld & ~mybit
            packet.dest_mask = self.codec.with_field(
                packet.dest_mask, self.parent.level, remaining
            )
            if remaining:
                copy = packet.copy_for_branch()
                self._enqueue_down(copy)
                self.parent.forward(self.parent_pos, packet)
            else:
                self._enqueue_down(packet)
        else:
            self.parent.forward(self.parent_pos, packet)

    def _enqueue_down(self, packet: Packet) -> None:
        # Switching down clears every higher-level field (paper §2.2).
        packet.dest_mask = self.codec.clear_upper(packet.dest_mask, self.parent.level)
        packet.route_state = DELIVER
        packet.down_enq = self.engine.now
        tr = self.tracer
        if tr is not None:
            tr.stamp_pkt(packet, "iri.down_enq", self.engine.now)
        self.down_fifo.push(packet, self.engine.now)
        if self.down_fifo.pressured:
            # always called from inside the parent-ring arrival event here
            self.parent.halt_link(self.parent_pos, self.parent.slot_ticks * 4, True)
        free = self._down_free
        if free is not None:
            self._down_free = None
            if free > self.engine.now:
                self.events_fused -= 1
                self.engine.schedule_keyed_at(
                    free, self._down_done_key, self._down_done, priority=1
                )
            else:
                self._down_busy = False
        self._pump_down()

    def _pump_down(self) -> None:
        if self._down_busy or self.down_fifo.empty:
            return
        self._down_busy = True
        packet = self.down_fifo.pop(self.engine.now)
        self.engine.schedule(self.switch_ticks, self._inject_child, packet)

    def _inject_child(self, packet: Packet) -> None:
        start = self.child.inject(self.child_pos, packet)
        enq = packet.down_enq
        packet.down_enq = -1
        self.stats.accumulator("down_delay").add(start - enq if enq >= 0 else 0)
        tr = self.tracer
        if tr is not None:
            tr.stamp_pkt(packet, "iri.down_inject", start)
        done = start + packet.flits * self.child.slot_ticks
        if self.fused and self.down_fifo.empty:
            self._down_free = done
            self.events_fused += 1
            return
        self.engine.schedule_keyed_at(
            done, self._down_done_key, self._down_done, priority=1
        )

    def _down_done(self) -> None:
        self._down_busy = False
        self._pump_down()
