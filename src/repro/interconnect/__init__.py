"""Interconnect: packets, routing masks, slotted rings, interfaces, topology."""

from .packet import NONSINKABLE, MsgType, Packet, is_sinkable
from .ring import Ring
from .routing import Geometry, RoutingMaskCodec
from .topology import Interconnect, build_interconnect

__all__ = [
    "NONSINKABLE",
    "MsgType",
    "Packet",
    "is_sinkable",
    "Ring",
    "Geometry",
    "RoutingMaskCodec",
    "Interconnect",
    "build_interconnect",
]
