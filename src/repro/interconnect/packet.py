"""Packet and message-type definitions (paper §2.2, §2.4).

A *message* is one logical transfer (request, response, invalidation, ...).
Messages that carry a cache line or block occupy several ring slots; the
simulator models a multi-packet message as a single :class:`Packet` object
whose ``flits`` count charges the right number of slots on every link it
crosses (the hardware's tag-based reassembly is folded into this — the
packet handler sees the message once, fully reassembled).

Deadlock avoidance (§2.4) splits messages into two classes:

* **sinkable** — messages that elicit no response and can always be consumed:
  read responses, write-backs, multicasts, invalidation commands, NACKs,
  interrupts.
* **nonsinkable** — messages that elicit responses: all flavours of read /
  write-permission requests and interventions.

Ring interfaces keep the two classes in separate queues, always give
sinkable messages priority and a guaranteed downward path, and bound the
number of nonsinkable messages a station may have in the network.
"""

from __future__ import annotations

import enum
import itertools
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: ring travel modes, kept in ``Packet.route_state`` (promoted from the old
#: ``meta['state']`` key: it is touched on every ring hop).  DELIVER is the
#: default so a packet that never entered a ring reads as plain delivery.
ROUTE_DELIVER = 0
ROUTE_ASCEND = 1
ROUTE_TO_SEQ = 2


class MsgType(enum.Enum):
    """Every message type exchanged in the machine."""

    # identity hash (enum equality is identity): the default Enum.__hash__
    # is Python-level and measurable in per-packet dispatch lookups
    __hash__ = object.__hash__

    # ---- nonsinkable requests -------------------------------------------
    READ = enum.auto()            # shared read request (cache line fill)
    READ_EX = enum.auto()         # read exclusive (write) request
    UPGRADE = enum.auto()         # write permission for an already-shared line
    SPECIAL_READ = enum.auto()    # ownership granted but data was stale (§4.6)
    INTERVENTION = enum.auto()    # forwarded read to the dirty owner's station
    INTERVENTION_EX = enum.auto() # forwarded read-exclusive to the owner
    PREFETCH = enum.auto()        # software prefetch into the network cache
    BLOCK_COPY_REQ = enum.auto()  # memory-to-memory block copy request (§3.2)

    # ---- sinkable responses / commands ----------------------------------
    DATA_RESP = enum.auto()       # cache line data, shared
    DATA_RESP_EX = enum.auto()    # cache line data + ownership
    ACK_UPGRADE = enum.auto()     # write permission granted, no data
    INVALIDATE = enum.auto()      # ordered multicast invalidation
    KILL = enum.auto()            # software kill (invalidate incl. dirty) command
    NACK = enum.auto()            # negative acknowledgement (locked line) - retry
    WRITE_BACK = enum.auto()      # dirty line written back to home / NC
    MULTICAST_DATA = enum.auto()  # software multicast of data to NCs (§3.2)
    BLOCK_DATA = enum.auto()      # block transfer payload
    INTERRUPT = enum.auto()       # interrupt-register write (possibly multicast)
    BARRIER_WRITE = enum.auto()   # barrier-register write (multicast, no interrupt)
    XFER_ACK = enum.auto()        # ownership-transfer notice to the home memory
    NACK_INTERVENTION = enum.auto()  # owner NC could not supply data; bounce requester
    NO_DATA = enum.auto()         # owner NC reports a write-back already in flight
    DIR_LOCK_READ = enum.auto()   # softctl: atomically lock a line + read its tags
    DIR_INFO = enum.auto()        # softctl: directory-state response
    BLOCK_OP = enum.auto()        # softctl: block kill/invalidate/writeback request
    READ_UNCACHED = enum.auto()   # single-word read, no caching (§3.2 page attr)
    WRITE_UNCACHED = enum.auto()  # single-word write, no caching
    UNCACHED_RESP = enum.auto()   # word value back to the requester


#: Message types that elicit a response (must never be blocked by sinkables).
NONSINKABLE = frozenset(
    {
        MsgType.READ,
        MsgType.READ_EX,
        MsgType.UPGRADE,
        MsgType.SPECIAL_READ,
        MsgType.INTERVENTION,
        MsgType.INTERVENTION_EX,
        MsgType.PREFETCH,
        MsgType.BLOCK_COPY_REQ,
        MsgType.DIR_LOCK_READ,
        MsgType.BLOCK_OP,
        MsgType.READ_UNCACHED,
    }
)


# Precompute a ``sinkable`` attribute on every MsgType member: membership
# tests against NONSINKABLE hash enum members on every packet hop, which
# shows up in profiles; a plain attribute load does not.
for _mt in MsgType:
    _mt.sinkable = _mt not in NONSINKABLE


def is_sinkable(mtype: MsgType) -> bool:
    return mtype.sinkable


_packet_ids = itertools.count(1)


@dataclass(slots=True)
class Packet:
    """One logical message travelling through the machine.

    Attributes
    ----------
    mtype:
        Message type.
    addr:
        Cache-line-aligned physical address the message concerns (0 for
        pure interrupt traffic).
    src_station / dest_mask:
        Source station id and destination routing mask (codec-encoded).
    requester:
        Global processor id that initiated the chain (for responses to find
        their way back to the right CPU), or ``None`` for module-originated
        traffic.
    data:
        Cache-line payload (list of words) or other payload; ``None`` for
        dataless messages.
    flits:
        Ring slots this message occupies per link (1 for dataless messages,
        ``1 + line_words/words_per_flit`` for line carriers).
    ordered:
        True for multicasts that must pass the sequencing point of the
        highest ring they reach (invalidations and other SC-ordered traffic).
    meta:
        Protocol scratch fields (e.g. the owner mask an intervention should
        restore, block-transfer progress, monitor phase id).

    The remaining fields are *transit state* touched on every ring hop —
    promoted from ``meta`` to real slots so the interconnect's hottest code
    does attribute loads instead of string-keyed dict operations:
    ``route_state`` (travel mode), the four queue-entry timestamps
    (``send_enq``/``arr``/``up_enq``/``down_enq``, ``-1`` = unset), the
    ``tail_done``/``seq_done`` one-shot flags, and ``credit_home`` (the
    station interface owed a nonsinkable credit when this packet sinks).
    """

    mtype: MsgType
    addr: int
    src_station: int
    dest_mask: int
    requester: Optional[int] = None
    data: Any = None
    flits: int = 1
    ordered: bool = False
    meta: Dict[str, Any] = field(default_factory=dict)
    pid: int = field(default_factory=lambda: next(_packet_ids))
    #: engine tick when the message was first injected (latency accounting)
    born: int = -1
    # ---- hot transit state (see class docstring) ----
    route_state: int = ROUTE_DELIVER
    send_enq: int = -1
    arr: int = -1
    up_enq: int = -1
    down_enq: int = -1
    tail_done: bool = False
    seq_done: bool = False
    credit_home: Any = None

    @property
    def sinkable(self) -> bool:
        return self.mtype.sinkable

    def copy_for_branch(self) -> "Packet":
        """Duplicate for a multicast branch (descending copies share payload
        but are distinct packets with their own ids)."""
        return Packet(
            mtype=self.mtype,
            addr=self.addr,
            src_station=self.src_station,
            dest_mask=self.dest_mask,
            requester=self.requester,
            data=self.data,
            flits=self.flits,
            ordered=self.ordered,
            meta=dict(self.meta),
            born=self.born,
            route_state=self.route_state,
            credit_home=self.credit_home,
        )

    def __repr__(self) -> str:  # compact for debug traces
        return (
            f"Pkt#{self.pid}({self.mtype.name} addr={self.addr:#x} "
            f"src=S{self.src_station} mask={self.dest_mask:#06b} req={self.requester})"
        )


def next_pid() -> int:
    """A fresh packet id — used when a pooled/reused packet is re-issued so
    every network attempt is distinguishable (tracers and debug traces key
    per-attempt state off the pid, never off object identity)."""
    return next(_packet_ids)


# ----------------------------------------------------------------------
# free-list pooling
#
# Short-lived packets (CPU requests, NACK bounces) dominate allocation in
# large-machine runs.  Components whose packets provably die inside their
# own code paths recycle them here instead of leaving them to the GC.
# Rules that keep this invisible to everything else:
#
# * ``acquire`` always stamps a fresh pid and hands out an *empty* (reused)
#   meta dict, so tracers and monitors see exactly the stamps a brand-new
#   packet would carry;
# * ``release`` is only called by the component that built the packet, at a
#   point where no FIFO, event, closure or pending record can still hold it;
# * ``NUMACHINE_POOL=0`` disables recycling entirely (acquire falls back to
#   plain construction, release drops the packet) — runs are bit-identical
#   either way because pid draw order does not depend on pooling.
# ----------------------------------------------------------------------

#: retained free packets (module-wide; the simulator is single-threaded)
_POOL_MAX = 256
_pool: list = []

POOLING = os.environ.get("NUMACHINE_POOL", "1").strip().lower() not in (
    "0", "false", "off", "no",
)


def acquire_packet(
    mtype: MsgType,
    addr: int,
    src_station: int,
    dest_mask: int,
    requester: Optional[int] = None,
    data: Any = None,
    flits: int = 1,
    ordered: bool = False,
) -> Packet:
    """A fresh-looking packet, recycled from the pool when possible.

    The returned packet has a new pid, an empty ``meta`` dict and reset
    transit state; callers fill protocol meta keys afterwards.
    """
    if not _pool:
        return Packet(
            mtype=mtype, addr=addr, src_station=src_station,
            dest_mask=dest_mask, requester=requester, data=data,
            flits=flits, ordered=ordered,
        )
    pkt = _pool.pop()
    pkt.mtype = mtype
    pkt.addr = addr
    pkt.src_station = src_station
    pkt.dest_mask = dest_mask
    pkt.requester = requester
    pkt.data = data
    pkt.flits = flits
    pkt.ordered = ordered
    pkt.pid = next(_packet_ids)
    pkt.born = -1
    return pkt


def release_packet(pkt: Packet) -> None:
    """Return a dead packet to the pool (see ownership rules above)."""
    if not POOLING or len(_pool) >= _POOL_MAX:
        return
    pkt.data = None
    pkt.meta.clear()
    pkt.route_state = ROUTE_DELIVER
    pkt.send_enq = -1
    pkt.arr = -1
    pkt.up_enq = -1
    pkt.down_enq = -1
    pkt.tail_done = False
    pkt.seq_done = False
    pkt.credit_home = None
    _pool.append(pkt)
