"""Hierarchy builder: wires rings and inter-ring interfaces for any
:class:`~repro.interconnect.routing.Geometry`.

Level-0 (local) rings carry the stations plus, in multi-level machines, one
inter-ring interface at the last position.  Higher-level rings carry one
position per child ring, plus an up-interface when a further level exists.
Sequencing points (ordered-multicast serialization, §2.3) sit at each
ring's upward connection; the top ring designates position 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..sim.engine import Engine
from .interfaces import InterRingInterface
from .ring import Ring
from .routing import Geometry, RoutingMaskCodec


@dataclass
class Interconnect:
    """All rings and inter-ring interfaces of one machine."""

    codec: RoutingMaskCodec
    #: rings keyed by (level, coords-above-that-level)
    rings: Dict[Tuple[int, Tuple[int, ...]], Ring] = field(default_factory=dict)
    iris: List[InterRingInterface] = field(default_factory=list)

    def local_ring_for(self, station_id: int) -> Tuple[Ring, int]:
        """The (ring, position) a station attaches to."""
        coords = self.codec.geometry.station_coords(station_id)
        ring = self.rings[(0, tuple(coords[1:]))]
        return ring, coords[0]

    @property
    def local_rings(self) -> List[Ring]:
        return [r for (lvl, _), r in sorted(self.rings.items()) if lvl == 0]

    @property
    def central_ring(self) -> Ring:
        top = self.codec.geometry.num_levels - 1
        return self.rings[(top, ())]


def build_interconnect(engine: Engine, config) -> Interconnect:
    """Create every ring and inter-ring interface for ``config.geometry``."""
    geometry: Geometry = config.geometry
    codec = RoutingMaskCodec(geometry)
    net = Interconnect(codec=codec)
    levels = geometry.levels
    top = len(levels) - 1
    slot = config.ring_slot_ticks
    hop = config.ring_hop_ticks
    from ..sim.engine import ns_to_ticks

    switch_ticks = ns_to_ticks(config.iri_switch_ns)

    def coords_above(level: int):
        """All coordinate tuples identifying rings at ``level``."""
        dims = levels[level + 1 :]
        out: List[Tuple[int, ...]] = [()]
        for width in reversed(dims):
            out = [(c,) + rest for c in range(width) for rest in out]
        # produce tuples ordered (level+1, level+2, ...)
        dims_n = len(dims)
        result = []

        def rec(i: int, acc: Tuple[int, ...]):
            if i == dims_n:
                result.append(acc)
                return
            for c in range(dims[i]):
                rec(i + 1, acc + (c,))

        rec(0, ())
        return result

    # create rings, bottom-up
    for level in range(len(levels)):
        has_up = level < top
        size = levels[level] + (1 if has_up else 0)
        seq = levels[level] if has_up else 0
        for coords in coords_above(level):
            name = f"ring.L{level}" + ("." + ".".join(map(str, coords)) if coords else "")
            net.rings[(level, coords)] = Ring(
                engine, name, level, size, slot, hop, seq_pos=seq
            )

    # create inter-ring interfaces between consecutive levels
    for level in range(top):
        for coords in coords_above(level):
            child = net.rings[(level, coords)]
            parent = net.rings[(level + 1, coords[1:])]
            child_pos = levels[level]
            parent_pos = coords[0]
            iri = InterRingInterface(
                engine,
                codec,
                f"iri.L{level}to{level + 1}." + ".".join(map(str, coords)),
                child,
                child_pos,
                parent,
                parent_pos,
                switch_ticks=switch_ticks,
                fifo_capacity=config.iri_fifo_capacity,
                seq_ticks=ns_to_ticks(config.seq_point_ns),
            )
            child.attach(child_pos, iri)
            parent.attach(parent_pos, iri)
            net.iris.append(iri)

    return net
