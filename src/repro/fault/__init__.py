"""Deterministic fault injection + liveness watchdog (the degraded-hardware
sibling of :mod:`repro.verify`).

Faults are described by a :class:`FaultPlan` — a seeded, fully explicit
schedule of ring-link stalls, packet delay/duplication windows, FIFO
capacity squeezes and memory/NC service-time spikes — and applied by a
:class:`FaultInjector` through the same null-object hook pattern the tracer
and verifier use (a ``fault_filter`` slot on each station ring interface,
plus plain engine scheduling for the timed faults).  Every run with the
same plan, workload and scheduler is bit-identical, so any failure a fault
uncovers is replayable from its seed alone.

Fault classes:

* **delay-class** (finite link stalls, packet delay, FIFO/credit squeeze,
  service spikes) — the machine must complete with final memory contents
  identical to the fault-free run; these faults only reshuffle timing.
* **loss-class** (packet duplication, permanent link stalls) — the machine
  must *detect and report* (an :class:`~repro.verify.InvariantViolation`,
  a :class:`WatchdogError`, or a data mismatch flagged by the harness)
  rather than hang or silently corrupt.

The :class:`Watchdog` bounds a run's simulated time / event count from
inside :meth:`Engine.run` and converts both runaway runs and drained-queue
deadlocks into a :class:`WatchdogError` carrying a diagnostic dump (FIFO
depths, locked lines, blocked components, a sample of in-flight events).
"""

from .plan import FaultEvent, FaultPlan
from .inject import FaultInjector
from .watchdog import Watchdog, WatchdogError, diagnostic_dump, render_dump

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "Watchdog",
    "WatchdogError",
    "diagnostic_dump",
    "render_dump",
]
