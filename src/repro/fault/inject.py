"""Apply a :class:`~repro.fault.plan.FaultPlan` to a built machine.

The injector is attached after :class:`~repro.system.machine.Machine`
construction and before :meth:`Machine.run`.  It perturbs the machine only
through mechanisms the hardware itself models:

* **link_stall** — :meth:`Ring.halt_link`, the same mechanism FIFO
  back-pressure uses, so a stalled link interacts correctly with slot
  reservation and through-traffic priority;
* **service_spike** — scales the cached DRAM / NC SRAM service ticks for a
  window, modelling a slow bank or a refresh storm;
* **packet_delay / packet_dup** — a ``fault_filter`` hook on the station
  ring interface's ``send`` path (same null-object pattern as the tracer
  and verifier), deferring or branching packets before they enter the
  network;
* **FIFO squeeze / nonsink squeeze** — shrinks ring-interface input FIFOs
  and the nonsinkable-credit pool to force the back-pressure and flow
  control machinery to carry real load.

All randomness (per-packet delay/dup coin flips) comes from a private
``random.Random`` seeded from the plan, so a (plan, workload, scheduler)
triple is exactly reproducible.
"""

from __future__ import annotations

import random
from typing import List

from ..sim.engine import ns_to_ticks
from .plan import PERMANENT_TICKS, FaultPlan


class FaultInjector:
    """Applies one :class:`FaultPlan` to one machine, once."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._attached = False
        #: count of faults actually triggered (windows entered, packets hit)
        self.triggered = {
            "link_stall": 0,
            "packet_delay": 0,
            "packet_dup": 0,
            "service_spike": 0,
        }

    # ------------------------------------------------------------------
    def attach(self, machine) -> "FaultInjector":
        if self._attached:
            raise RuntimeError("fault injector already attached")
        self._attached = True
        self.machine = machine
        plan = self.plan
        engine = machine.engine

        if plan.in_fifo_capacity is not None:
            # squeeze the back-pressure threshold, not the physical
            # capacity: the ring halts reactively (packets already in
            # flight still land after the halt), so capacity below the
            # in-flight slack would overflow in a way no real FIFO sizing
            # could — lowering high_water alone forces the flow-control
            # machinery to engage constantly, which is the point
            hw = max(1, plan.in_fifo_capacity - 2)
            for st in machine.stations:
                st.ring_interface.in_fifo.high_water = hw
            for iri in machine.net.iris:
                iri.up_fifo.high_water = hw
                iri.down_fifo.high_water = hw

        if plan.nonsink_limit is not None:
            lim = max(1, plan.nonsink_limit)
            for st in machine.stations:
                ri = st.ring_interface
                ri.nonsink_limit = lim
                ri._nonsink_credits = lim  # pre-run: pool is full

        # group packet-fault windows per station so each ring interface
        # gets at most one filter closure
        windows: dict = {}
        for ev in plan.events:
            at = ns_to_ticks(ev.at_ns)
            if ev.kind == "link_stall":
                self._schedule_stall(engine, at, ev.params)
            elif ev.kind == "service_spike":
                self._schedule_spike(engine, at, ev.params)
            else:  # packet_delay / packet_dup
                sid = ev.params["station"] % len(machine.stations)
                end = at + ns_to_ticks(ev.params["duration_ns"])
                windows.setdefault(sid, []).append((ev.kind, at, end, ev.params))
        for sid, wins in windows.items():
            self._install_filter(machine.stations[sid].ring_interface, wins)
        return self

    def detach(self) -> None:
        for st in self.machine.stations:
            st.ring_interface.fault_filter = None

    # ------------------------------------------------------------------
    def _schedule_stall(self, engine, at: int, params: dict) -> None:
        ring_name = params["ring"]
        net = self.machine.net
        if ring_name == "central":
            ring = net.central_ring
        else:
            idx = int(ring_name.split(":", 1)[1])
            ring = net.local_rings[idx % len(net.local_rings)]
        pos = params["pos"] % ring.size
        if params.get("permanent"):
            duration = PERMANENT_TICKS
        else:
            duration = max(1, ns_to_ticks(params["duration_ns"]))

        def fire() -> None:
            self.triggered["link_stall"] += 1
            ring.halt_link(pos, duration)

        engine.schedule(max(0, at - engine.now), fire)

    def _schedule_spike(self, engine, at: int, params: dict) -> None:
        st = self.machine.stations[params["station"] % len(self.machine.stations)]
        factor = max(2, int(params["factor"]))
        duration = max(1, ns_to_ticks(params["duration_ns"]))
        if params["target"] == "mem":
            target, attrs = st.memory, ("_dram_read", "_dram_write")
        else:
            target, attrs = st.nc, ("_nc_read", "_nc_write")

        def begin() -> None:
            self.triggered["service_spike"] += 1
            saved = [(a, getattr(target, a)) for a in attrs]
            for a, v in saved:
                setattr(target, a, v * factor)

            def end() -> None:
                for a, v in saved:
                    setattr(target, a, v)

            engine.schedule(duration, end)

        engine.schedule(max(0, at - engine.now), begin)

    def _install_filter(self, ri, wins: List[tuple]) -> None:
        rng = random.Random(self.plan.seed ^ 0xFA17_F117 ^ ri.station_id)
        engine = self.machine.engine
        triggered = self.triggered
        # packet_delay must preserve per-source packet order: the ack-free
        # ordered-multicast invalidation scheme is only correct if nothing
        # a station sends can overtake what it sent earlier.  A held packet
        # therefore holds everything behind it (a transient outbound-FIFO
        # stall), tracked by this release horizon.
        state = {"hold": 0}

        def fault_filter(iface, packet) -> bool:
            # returns True when the filter consumed the packet
            if packet.meta.get("_fault_done"):
                return False
            now = engine.now
            hold = state["hold"]
            if hold > now:
                packet.meta["_fault_done"] = True
                engine.schedule(hold - now, iface.send, packet)
                return True
            for kind, start, end, params in wins:
                if not (start <= now < end):
                    continue
                if rng.random() >= params["prob"]:
                    continue
                if kind == "packet_delay":
                    triggered["packet_delay"] += 1
                    delay = max(1, ns_to_ticks(params["delay_ns"]))
                    state["hold"] = now + delay
                    packet.meta["_fault_done"] = True
                    engine.schedule(delay, iface.send, packet)
                    return True
                # packet_dup: inject a branched duplicate alongside the
                # original (loss-class: duplicated NACKs double-retry)
                triggered["packet_dup"] += 1
                dup = packet.copy_for_branch()
                dup.meta["_fault_done"] = True
                packet.meta["_fault_done"] = True
                engine.schedule(1, iface.send, dup)
                return False
            return False

        ri.fault_filter = fault_filter
