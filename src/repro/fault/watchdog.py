"""Liveness watchdog + diagnostic machine-state dump.

Two silent failure modes exist for an event-driven simulator under faults:

* the event queue **drains** while programs are still blocked (classic
  deadlock — the engine already raises :class:`DeadlockError` for this, and
  :meth:`Watchdog.deadlock_error` enriches it with a dump), and
* the machine **livelocks**: events keep firing (retry storms, spin loops)
  or simulated time runs away past any plausible completion, so the queue
  never drains and CI would hang.

The :class:`Watchdog` bounds the second mode.  :meth:`Engine.run` calls
:meth:`Watchdog.check` every ``interval`` events; exceeding ``max_ticks``
(simulated time) or ``max_events`` raises :class:`WatchdogError` carrying
:func:`diagnostic_dump` — FIFO depths, locked lines, blocked components
and a sample of in-flight events — instead of hanging.

Simulated-time bounds are the right liveness measure here: a *permanent*
link stall does not stop the clock (the ring's ``_link_free`` horizon just
moves into the far future, so the next send jumps simulation time), which
``max_ticks`` catches immediately while an event-count bound might grind
through a retry storm first.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim.engine import DeadlockError, Engine, ticks_to_ns


class WatchdogError(DeadlockError):
    """A run exceeded its liveness bounds (or deadlocked); carries the
    diagnostic dump as ``.dump`` and renders it into the message."""

    def __init__(self, message: str, dump: Optional[dict] = None) -> None:
        self.dump = dump
        if dump is not None:
            message = f"{message}\n{render_dump(dump)}"
        super().__init__(message)


def _pending_events(engine: Engine, limit: int) -> List[dict]:
    """A (time-sorted) sample of events still in the scheduler."""
    sched = engine._sched
    events: List[tuple] = []
    queue = getattr(engine, "_queue", None)
    if queue is not None:
        events = sorted(queue)[:limit]
    else:
        cur = getattr(sched, "_cur", None)
        if cur is not None:
            events = list(cur[sched._cur_i:])
            for bucket in sched._buckets.values():
                events.extend(bucket)
            events.sort()
            events = events[:limit]
    out = []
    for when, prio, _seq, callback, arg in events:
        name = getattr(callback, "__qualname__", None) or repr(callback)
        owner = getattr(callback, "__self__", None)
        if owner is not None:
            name = f"{name}<{getattr(owner, 'station_id', '')}>"
        out.append({
            "at_ns": ticks_to_ns(when),
            "prio": prio,
            "callback": name,
            "arg": repr(arg)[:100] if arg is not None else None,
        })
    return out


def diagnostic_dump(machine, max_inflight: int = 32) -> dict:
    """Snapshot everything needed to diagnose a stuck machine."""
    engine = machine.engine
    now = engine.now
    blocked = []
    for watcher in engine.blocked_watchers:
        reason = watcher()
        if reason:
            blocked.append(reason)
    fifos: Dict[str, dict] = {}

    def note_fifo(fifo) -> None:
        if len(fifo) or fifo.max_depth:
            fifos[fifo.name] = fifo.stats_snapshot(now)

    locked_mem = []
    locked_nc = []
    ring_ifaces = []
    for st in machine.stations:
        note_fifo(st.memory.in_fifo)
        note_fifo(st.nc.in_fifo)
        ri = st.ring_interface
        for f in (ri.out_fifo, ri.in_fifo, ri.sink_q, ri.nonsink_q):
            note_fifo(f)
        ring_ifaces.append({
            "station": st.station_id,
            "nonsink_credits": ri._nonsink_credits,
            "nonsink_limit": ri.nonsink_limit,
            "awaiting_credit": len(ri._pending_out),
        })
        for la, entry in st.memory.directory.lines():
            if entry.locked:
                locked_mem.append({
                    "station": st.station_id,
                    "line": f"{la:#x}",
                    "state": entry.state.value,
                    "pending": entry.pending.kind if entry.pending else None,
                })
        for line in st.nc.array.lines():
            if line.locked:
                locked_nc.append({
                    "station": st.station_id,
                    "line": f"{line.addr:#x}",
                    "state": line.state.value,
                    "pending": line.pending.kind if line.pending else None,
                })
    for iri in machine.net.iris:
        note_fifo(iri.up_fifo)
        note_fifo(iri.down_fifo)
    return {
        "now_ticks": now,
        "now_ns": ticks_to_ns(now),
        "events_run": engine.events_run,
        "pending_events": engine.pending,
        "blocked": blocked,
        "fifos": fifos,
        "locked_memory_lines": locked_mem,
        "locked_nc_lines": locked_nc,
        "ring_interfaces": ring_ifaces,
        "in_flight": _pending_events(engine, max_inflight),
    }


def render_dump(dump: dict) -> str:
    """Human-readable rendering of a :func:`diagnostic_dump`."""
    lines = [
        "--- watchdog diagnostic dump ---",
        f"sim time: {dump['now_ns']:.1f} ns ({dump['now_ticks']} ticks), "
        f"events run: {dump['events_run']}, pending: {dump['pending_events']}",
    ]
    if dump["blocked"]:
        lines.append("blocked components:")
        lines.extend(f"  {r}" for r in dump["blocked"])
    occupied = {k: v for k, v in dump["fifos"].items() if v["depth"]}
    if occupied:
        lines.append("non-empty FIFOs:")
        for name, snap in sorted(occupied.items()):
            lines.append(
                f"  {name}: depth={snap['depth']}/{snap['capacity']} "
                f"max={snap['max_depth']} stalls={snap['stalls']}"
            )
    for key, label in (
        ("locked_memory_lines", "locked memory lines"),
        ("locked_nc_lines", "locked NC lines"),
    ):
        if dump[key]:
            lines.append(f"{label}:")
            for rec in dump[key][:16]:
                lines.append(
                    f"  S{rec['station']} {rec['line']} state={rec['state']} "
                    f"pending={rec['pending']}"
                )
    starved = [
        r for r in dump["ring_interfaces"]
        if r["awaiting_credit"] or r["nonsink_credits"] < r["nonsink_limit"]
    ]
    if starved:
        lines.append("ring interfaces with nonsinkable traffic in flight:")
        for r in starved:
            lines.append(
                f"  S{r['station']}: credits {r['nonsink_credits']}/"
                f"{r['nonsink_limit']}, {r['awaiting_credit']} awaiting"
            )
    if dump["in_flight"]:
        lines.append(f"next {len(dump['in_flight'])} in-flight events:")
        for ev in dump["in_flight"]:
            arg = f" {ev['arg']}" if ev["arg"] else ""
            lines.append(f"  t={ev['at_ns']:.1f}ns {ev['callback']}{arg}")
    lines.append("--- end dump ---")
    return "\n".join(lines)


class Watchdog:
    """Liveness bounds for one machine run.

    Parameters
    ----------
    machine:
        The machine to dump when the bounds trip.
    max_ticks:
        Simulated-time ceiling (engine ticks).  The primary bound: time
        always advances, even under permanent stalls.
    max_events:
        Lifetime event-count ceiling (catches zero-delay livelock where
        time stops advancing entirely).
    interval:
        How many events run between checks.  Smaller catches overruns
        sooner; larger costs less (one Python call per interval).
    """

    def __init__(
        self,
        machine,
        max_ticks: Optional[int] = None,
        max_events: Optional[int] = None,
        interval: int = 50_000,
    ) -> None:
        if max_ticks is None and max_events is None:
            raise ValueError("watchdog needs max_ticks and/or max_events")
        self.machine = machine
        self.max_ticks = max_ticks
        self.max_events = max_events
        self.interval = max(1, interval)

    def attach(self) -> "Watchdog":
        self.machine.engine.watchdog = self
        self.machine.watchdog = self
        return self

    def detach(self) -> None:
        if self.machine.engine.watchdog is self:
            self.machine.engine.watchdog = None
        if getattr(self.machine, "watchdog", None) is self:
            self.machine.watchdog = None

    # called by Engine.run between event chunks
    def check(self, engine: Engine, processed: int) -> None:
        if self.max_ticks is not None and engine.now > self.max_ticks:
            raise WatchdogError(
                f"watchdog: simulated time {engine.now} ticks "
                f"({ticks_to_ns(engine.now):.0f} ns) exceeded the bound of "
                f"{self.max_ticks} ticks — the machine is not making progress",
                diagnostic_dump(self.machine),
            )
        if self.max_events is not None and engine.events_run > self.max_events:
            raise WatchdogError(
                f"watchdog: {engine.events_run} events exceeded the bound of "
                f"{self.max_events} — likely livelock (retry storm or spin)",
                diagnostic_dump(self.machine),
            )

    def deadlock_error(self, exc: DeadlockError) -> WatchdogError:
        """Wrap a drained-queue deadlock with the diagnostic dump."""
        return WatchdogError(str(exc), diagnostic_dump(self.machine))
