"""Fault plans: seeded, explicit, replayable fault schedules.

A plan is data, not behaviour — it can be printed, stored next to a failing
seed and handed to :class:`repro.fault.FaultInjector` to reproduce a run
exactly.  :meth:`FaultPlan.random` derives a plan deterministically from a
seed and a machine config, which is what the protocol fuzzer uses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: every fault kind the injector understands
FAULT_KINDS = ("link_stall", "packet_delay", "packet_dup", "service_spike")

#: "forever" in ticks for permanent stalls (far beyond any bench horizon)
PERMANENT_TICKS = 1 << 42


@dataclass
class FaultEvent:
    """One scheduled fault.

    ``kind`` selects the mechanism; ``at_ns`` is the (simulated) activation
    time; ``params`` the kind-specific knobs:

    * ``link_stall`` — ``ring`` ("local:<i>" or "central"), ``pos`` (link
      index), ``duration_ns`` (or ``permanent: True`` — loss-class)
    * ``packet_delay`` — ``station``, ``duration_ns`` (window length),
      ``prob`` (per-packet), ``delay_ns`` (added latency)
    * ``packet_dup`` — ``station``, ``duration_ns``, ``prob`` (loss-class:
      duplicated NACKs can double-retry into data loss by design)
    * ``service_spike`` — ``target`` ("mem" or "nc"), ``station``,
      ``duration_ns``, ``factor`` (latency multiplier)
    """

    kind: str
    at_ns: float
    params: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")


@dataclass
class FaultPlan:
    """A complete, deterministic fault schedule for one run."""

    seed: int
    events: List[FaultEvent] = field(default_factory=list)
    #: override every ring-interface / inter-ring FIFO capacity (squeeze)
    in_fifo_capacity: Optional[int] = None
    #: override the per-station nonsinkable-message bound
    nonsink_limit: Optional[int] = None

    def fault_class(self) -> str:
        """``delay`` if every fault only reshuffles timing (the run must
        produce identical final data), ``loss`` if any fault can drop or
        duplicate information (the run must detect-and-report)."""
        for ev in self.events:
            if ev.kind == "packet_dup":
                return "loss"
            if ev.kind == "link_stall" and ev.params.get("permanent"):
                return "loss"
        return "delay"

    def describe(self) -> str:
        parts = [f"seed={self.seed}", f"class={self.fault_class()}"]
        if self.in_fifo_capacity is not None:
            parts.append(f"fifo_cap={self.in_fifo_capacity}")
        if self.nonsink_limit is not None:
            parts.append(f"nonsink={self.nonsink_limit}")
        for ev in self.events:
            parts.append(f"{ev.kind}@{ev.at_ns:.0f}ns{ev.params}")
        return " ".join(parts)

    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        seed: int,
        config,
        horizon_ns: float = 50_000.0,
        max_events: int = 4,
        allow_loss: bool = False,
    ) -> "FaultPlan":
        """Derive a plan deterministically from ``seed``.

        Delay-class only unless ``allow_loss``: the fuzzer's must-pass runs
        assert data identity, which loss-class faults legitimately break.
        """
        rng = random.Random(seed ^ 0x5EED_FA17)
        events: List[FaultEvent] = []
        kinds = ["link_stall", "packet_delay", "service_spike"]
        if allow_loss:
            kinds.append("packet_dup")
        num_stations = config.num_stations
        stations_per_ring = config.geometry.levels[0]
        num_local_rings = max(1, num_stations // stations_per_ring)
        for _ in range(rng.randint(1, max_events)):
            kind = rng.choice(kinds)
            at_ns = rng.uniform(0.0, horizon_ns * 0.6)
            if kind == "link_stall":
                if num_local_rings > 1 and rng.random() < 0.3:
                    ring = "central"
                    pos = rng.randrange(num_local_rings)
                else:
                    ring = f"local:{rng.randrange(num_local_rings)}"
                    pos = rng.randrange(stations_per_ring + 1)
                params = {
                    "ring": ring,
                    "pos": pos,
                    "duration_ns": rng.uniform(200.0, horizon_ns / 4),
                }
                if allow_loss and rng.random() < 0.2:
                    params["permanent"] = True
                events.append(FaultEvent("link_stall", at_ns, params))
            elif kind == "packet_delay":
                events.append(FaultEvent("packet_delay", at_ns, {
                    "station": rng.randrange(num_stations),
                    "duration_ns": rng.uniform(500.0, horizon_ns / 2),
                    "prob": rng.uniform(0.05, 0.5),
                    "delay_ns": rng.uniform(100.0, 2_000.0),
                }))
            elif kind == "service_spike":
                events.append(FaultEvent("service_spike", at_ns, {
                    "target": rng.choice(["mem", "nc"]),
                    "station": rng.randrange(num_stations),
                    "duration_ns": rng.uniform(500.0, horizon_ns / 2),
                    "factor": rng.randint(2, 10),
                }))
            else:  # packet_dup (loss-class)
                events.append(FaultEvent("packet_dup", at_ns, {
                    "station": rng.randrange(num_stations),
                    "duration_ns": rng.uniform(500.0, horizon_ns / 2),
                    "prob": rng.uniform(0.05, 0.3),
                }))
        plan = cls(seed=seed, events=events)
        if rng.random() < 0.4:
            plan.in_fifo_capacity = rng.choice([8, 12, 16, 32])
        if rng.random() < 0.3:
            plan.nonsink_limit = rng.choice([1, 2, 4, 8])
        return plan
