"""Hardware/software interaction layer (paper section 3.2)."""

from . import ops

__all__ = ["ops"]
