"""Hardware/software interaction (paper §3.2).

NUMAchine deliberately exposes low-level hardware control to system
software.  This module implements those operations on top of the ordinary
protocol machinery:

* **coherence bypass**: atomically lock a line at its home and read its
  directory state (``DIR_LOCK_READ`` / ``DIR_INFO``);
* **update of shared data** ("eureka" pattern): lock, modify, and multicast
  the new value to every caching station without first invalidating;
* **kill / invalidate / write-back / prefetch** of single lines and
  ``BLOCK_OP`` ranges, with a completion interrupt to the initiator;
* **coherent memory-to-memory block copy** (``BLOCK_COPY_REQ`` /
  ``BLOCK_DATA``);
* **in-cache zeroing and copying**: create dirty lines directly in the
  secondary cache without reading the memory they will overwrite;
* **multicast interrupts** via the interrupt registers.

Entry points: :func:`memory_dispatch` (messages the memory module does not
handle natively), :func:`nc_dispatch` (ditto for the network cache), and
:func:`cpu_softop` (``SoftOp`` items yielded by workload programs).
"""

from __future__ import annotations


from ..core.states import CacheState, LineState
from ..interconnect.packet import MsgType, Packet
from ..sim.engine import SimulationError


# ======================================================================
# memory-module side
# ======================================================================
def memory_dispatch(mem, pkt: Packet, entry, local: bool) -> int:
    mtype = pkt.mtype
    if mtype is MsgType.DIR_LOCK_READ:
        return _mem_dir_lock_read(mem, pkt, entry, local)
    if mtype is MsgType.MULTICAST_DATA:
        return _mem_multicast_data(mem, pkt, entry)
    if mtype is MsgType.KILL:
        return _mem_kill(mem, pkt, entry)
    if mtype is MsgType.BLOCK_OP:
        return _mem_block_op(mem, pkt, entry, local)
    if mtype is MsgType.BLOCK_COPY_REQ:
        return _mem_block_copy_source(mem, pkt)
    if mtype is MsgType.BLOCK_DATA:
        return _mem_block_data(mem, pkt)
    raise SimulationError(f"memory module cannot handle {pkt!r}")


def _mem_dir_lock_read(mem, pkt: Packet, entry, local: bool) -> int:
    """Atomic lock + directory read (per-line lock of the coherence
    protocol, granted to software; §3.2 footnote)."""
    if entry.locked:
        return mem._nack(pkt, local)
    from ..memory.memory_module import Pending

    mem._lock(entry, Pending(
        kind="soft_lock", req_type=pkt.mtype, requester=pkt.requester,
        req_station=pkt.src_station, is_local=local, grant="ack",
    ))
    info = {
        "state": entry.state.value,
        "routing_mask": mem.directory.sharer_mask(entry),
        "proc_mask": entry.proc_mask,
    }
    resp = Packet(
        mtype=MsgType.DIR_INFO, addr=pkt.addr,
        src_station=mem.station_id,
        dest_mask=mem.codec.station_mask(pkt.src_station),
        requester=pkt.requester, meta={"info": info},
    )
    if local:
        cpu = mem.station.cpu_by_global(pkt.requester)
        mem.station.bus.request(
            mem.config.cmd_bus_ticks,
            lambda start, c=cpu, i=info: c.resume(i),
        )
    else:
        mem._send_packet(resp, has_data=False)
    mem.stats.counter("soft_dir_locks").incr()
    return 0


def _mem_multicast_data(mem, pkt: Packet, entry) -> int:
    """A software multicast update arriving at the home: write the DRAM and
    release the software lock."""
    mem.write_line(pkt.addr, pkt.data)
    if entry.locked and entry.pending is not None and entry.pending.kind == "soft_lock":
        mem._unlock(entry)
    # the writer's station now shares the line
    writer = pkt.meta.get("writer_station")
    entry.state = LineState.GV
    if writer is not None:
        mem.directory.add_station(entry, writer)
    mem.directory.add_station(entry, mem.station_id)
    # local secondary caches hold the pre-update value: invalidate them
    # (sparing the updating processor itself, whose copy is the new data)
    keep = pkt.requester if writer == mem.station_id else None
    mem._invalidate_local(pkt.addr, entry, keep=keep)
    if keep is not None:
        entry.proc_mask |= 1 << mem._local_index(keep)
    mem.stats.counter("soft_updates").incr()
    return mem._dram_write_ticks()


def _mem_kill(mem, pkt: Packet, entry) -> int:
    """Kill: obtain a clean-exclusive copy at memory, dropping every cached
    copy (dirty ones included)."""
    if entry.locked:
        mem._unlock(entry)
    mem._invalidate_local(pkt.addr, entry, keep=None)
    remote = mem._remote_sharers(entry)
    if remote:
        kill = Packet(
            mtype=MsgType.KILL, addr=pkt.addr,
            src_station=mem.station_id, dest_mask=remote,
            requester=pkt.requester,
        )
        mem._send_packet(kill, has_data=False)
    entry.state = LineState.LV
    entry.proc_mask = 0
    mem.directory.set_station(entry, mem.station_id)
    mem.stats.counter("kills").incr()
    return 0


def _mem_block_op(mem, pkt: Packet, entry, local: bool) -> int:
    """A block operation over ``nlines`` lines starting at ``addr``: kill or
    invalidate each, then interrupt the initiator (§3.2)."""
    op = pkt.meta["op"]
    nlines = pkt.meta["nlines"]
    cfg = mem.config
    busy = 0
    for i in range(nlines):
        la = pkt.addr + i * cfg.line_bytes
        if cfg.home_station(la) != mem.station_id:
            continue  # block ops are per-home-module; caller splits ranges
        e = mem.directory.entry(la)
        if op == "kill":
            fake = Packet(
                mtype=MsgType.KILL, addr=la, src_station=pkt.src_station,
                dest_mask=0, requester=pkt.requester,
            )
            busy += _mem_kill(mem, fake, e)
        elif op == "own":
            # in-cache zero/copy step 1: kill + hand dirty ownership to the
            # initiating processor without transferring data
            fake = Packet(
                mtype=MsgType.KILL, addr=la, src_station=pkt.src_station,
                dest_mask=0, requester=pkt.requester,
            )
            busy += _mem_kill(mem, fake, e)
            e.state = LineState.GI if not local else LineState.LI
            if local:
                e.proc_mask = 1 << mem._local_index(pkt.requester)
                mem.directory.set_station(e, mem.station_id)
            else:
                mem.directory.set_station(e, pkt.src_station)
        else:
            raise SimulationError(f"unknown block op {op!r}")
    _interrupt_initiator(mem, pkt)
    mem.stats.counter("block_ops").incr()
    return busy


def _mem_block_copy_source(mem, pkt: Packet) -> int:
    """Source side of a block copy: collect dirty local copies, then stream
    the lines to the target memory module in one large transfer."""
    cfg = mem.config
    nlines = pkt.meta["nlines"]
    # collect outstanding dirty copies from local secondary caches
    for i in range(nlines):
        la = pkt.addr + i * cfg.line_bytes
        if cfg.home_station(la) != mem.station_id:
            continue
        e = mem.directory.entry(la)
        if e.state is LineState.LI and e.proc_mask:
            owner_idx = e.proc_mask.bit_length() - 1
            cpu = mem.station.cpus[owner_idx]
            line = cpu.l2.lookup(la, touch=False)
            if line is not None and line.state is CacheState.DIRTY:
                mem.write_line(la, line.data)
                cpu.l2.downgrade(la)
                e.state = LineState.LV
    payload = [
        mem.read_line(pkt.addr + i * cfg.line_bytes) for i in range(nlines)
    ]
    data_pkt = Packet(
        mtype=MsgType.BLOCK_DATA, addr=pkt.meta["target_addr"],
        src_station=mem.station_id,
        dest_mask=mem.codec.station_mask(pkt.src_station),
        requester=pkt.requester,
        data=payload,
        flits=1 + nlines * (cfg.line_flits - 1),
        meta={"nlines": nlines, "initiator": pkt.meta.get("initiator")},
    )
    mem._send_packet(data_pkt, has_data=True)
    mem.stats.counter("block_copy_served").incr()
    return mem._dram_read_ticks() * max(1, nlines // 4)


def _mem_block_data(mem, pkt: Packet) -> int:
    """Target side of a block copy: write the arriving lines and interrupt
    the initiating processor."""
    cfg = mem.config
    for i, line_data in enumerate(pkt.data):
        la = pkt.addr + i * cfg.line_bytes
        if cfg.home_station(la) != mem.station_id:
            continue
        mem.write_line(la, line_data)
        e = mem.directory.entry(la)
        e.state = LineState.LV
        e.proc_mask = 0
        mem.directory.set_station(e, mem.station_id)
    _interrupt_initiator(mem, pkt)
    mem.stats.counter("block_copy_completed").incr()
    return mem._dram_write_ticks() * max(1, len(pkt.data) // 4)


def _interrupt_initiator(mem, pkt: Packet) -> None:
    initiator = pkt.meta.get("initiator", pkt.requester)
    if initiator is None:
        return
    cfg = mem.config
    st = initiator // cfg.cpus_per_station
    intr = Packet(
        mtype=MsgType.INTERRUPT, addr=0,
        src_station=mem.station_id,
        dest_mask=mem.codec.station_mask(st),
        requester=initiator,
        meta={
            "proc_mask": 1 << (initiator % cfg.cpus_per_station),
            "bits": pkt.meta.get("intr_bits", 1),
        },
    )
    mem._send_packet(intr, has_data=False)


# ======================================================================
# network-cache side
# ======================================================================
def nc_dispatch(nc, pkt: Packet) -> int:
    mtype = pkt.mtype
    if mtype is MsgType.DIR_INFO:
        cpu = nc.station.cpu_by_global(pkt.requester)
        nc.station.bus.request(
            nc.config.cmd_bus_ticks,
            lambda start, c=cpu, i=pkt.meta["info"]: c.resume(i),
        )
        return 0
    if mtype is MsgType.INTERRUPT:  # pragma: no cover - routed at station
        return 0
    raise SimulationError(f"network cache cannot handle {pkt!r}")


# ======================================================================
# processor side: SoftOp execution
# ======================================================================
def cpu_softop(cpu, op) -> None:
    kind = op.kind
    args = op.args
    handler = {
        "prefetch_nc": _soft_prefetch,
        "writeback": _soft_writeback,
        "invalidate_self": _soft_invalidate_self,
        "kill": _soft_kill,
        "block_op": _soft_block_op,
        "block_copy": _soft_block_copy,
        "update_shared": _soft_update_shared,
        "zero_page": _soft_zero_page,
        "copy_page_incache": _soft_copy_page_incache,
        "multicast_interrupt": _soft_multicast_interrupt,
        "wait_interrupt": _soft_wait_interrupt,
        "multicast_writeback": _soft_multicast_writeback,
        "io_read": lambda cpu, a: _soft_io(cpu, dict(a, kind="read")),
        "io_write": lambda cpu, a: _soft_io(cpu, dict(a, kind="write")),
    }.get(kind)
    if handler is None:
        raise SimulationError(f"unknown SoftOp kind {kind!r}")
    handler(cpu, args)


def _soft_prefetch(cpu, args) -> None:
    """Asynchronous prefetch into the network cache ('a write request to a
    special memory address'); the CPU does not wait."""
    addr = cpu.config.line_addr(args["addr"])
    if cpu.config.home_station(addr) == cpu.station.station_id:
        cpu.resume()  # local lines need no NC prefetch
        return
    pkt = Packet(
        mtype=MsgType.READ, addr=addr,
        src_station=cpu.station.station_id, dest_mask=0,
        requester=cpu.cpu_id, meta={"local": True, "prefetch": True},
    )
    cpu.station.bus.request(
        cpu.config.cmd_bus_ticks,
        lambda start, p=pkt: cpu.station.nc.handle(p),
    )
    cpu.resume(delay=cpu.config.cpu_cycle_ticks)


def _soft_writeback(cpu, args) -> None:
    """Write a dirty line back under software control (keeps a shared copy)."""
    addr = cpu.config.line_addr(args["addr"])
    line = cpu.l2.lookup(addr, touch=False)
    if line is None or line.state is not CacheState.DIRTY:
        cpu.resume()
        return
    data = list(line.data)
    cpu.l2.downgrade(addr)
    l1 = cpu.l1.lookup(addr, touch=False)
    if l1 is not None:
        l1.state = CacheState.SHARED
    target = cpu.station.module_for(addr)
    wb = Packet(
        mtype=MsgType.WRITE_BACK, addr=addr,
        src_station=cpu.station.station_id, dest_mask=0,
        requester=cpu.cpu_id, data=data, meta={"local": True},
    )
    cpu.station.bus.request(
        cpu.config.cmd_bus_ticks + cpu.config.line_bus_ticks,
        lambda start, t=target, p=wb: t.handle(p),
    )
    cpu.resume(delay=cpu.config.cpu_cycle_ticks)


def _soft_multicast_writeback(cpu, args) -> None:
    """§3.2: software supplies a routing mask for a write-back so the data
    is multicast directly into a set of network caches (and to memory)."""
    addr = cpu.config.line_addr(args["addr"])
    stations = args["stations"]
    line = cpu.l2.lookup(addr, touch=False)
    if line is None or not line.state.readable:
        cpu.resume()
        return
    data = list(line.data)
    if line.state is CacheState.DIRTY:
        cpu.l2.downgrade(addr)
    codec = cpu.station.codec
    home = cpu.config.home_station(addr)
    mask = codec.combine(list(stations) + [home])
    mc = Packet(
        mtype=MsgType.MULTICAST_DATA, addr=addr,
        src_station=cpu.station.station_id,
        dest_mask=mask, requester=cpu.cpu_id, data=data,
        flits=cpu.config.line_flits,
        meta={"writer_station": cpu.station.station_id},
    )
    cpu.station.bus.request(
        cpu.config.cmd_bus_ticks + cpu.config.line_bus_ticks,
        lambda start, p=mc: cpu.station.ring_interface.send(p),
    )
    cpu.resume(delay=cpu.config.cpu_cycle_ticks)


def _soft_invalidate_self(cpu, args) -> None:
    addr = cpu.config.line_addr(args["addr"])
    cpu.invalidate_line(addr)
    cpu.resume(delay=cpu.config.cpu_cycle_ticks)


def _soft_kill(cpu, args) -> None:
    """Ask the home memory to kill every cached copy of one line."""
    addr = cpu.config.line_addr(args["addr"])
    home = cpu.config.home_station(addr)
    local = home == cpu.station.station_id
    pkt = Packet(
        mtype=MsgType.KILL, addr=addr,
        src_station=cpu.station.station_id,
        dest_mask=cpu.station.codec.station_mask(home),
        requester=cpu.cpu_id, meta={"local": local},
    )
    if local:
        cpu.station.bus.request(
            cpu.config.cmd_bus_ticks,
            lambda start, p=pkt: cpu.station.memory.handle(p),
        )
    else:
        cpu.station.bus.request(
            cpu.config.cmd_bus_ticks,
            lambda start, p=pkt: cpu.station.ring_interface.send(p),
        )
    cpu.resume(delay=cpu.config.cpu_cycle_ticks)


def _soft_block_op(cpu, args) -> None:
    """Block kill/own over a physical range; completion arrives as an
    interrupt, on which the program resumes."""
    base = cpu.config.line_addr(args["base"])
    nlines = args["nlines"]
    opname = args.get("op", "kill")
    cfg = cpu.config
    homes = sorted(
        {cfg.home_station(base + i * cfg.line_bytes) for i in range(nlines)}
    )
    expected = len(homes)
    seen = {"n": 0}

    def on_intr(bits: int) -> None:
        seen["n"] += 1
        if seen["n"] >= expected:
            cpu.on_interrupt = None
            cpu.read_interrupt_reg()
            cpu.resume()

    cpu.on_interrupt = on_intr
    for home in homes:
        local = home == cpu.station.station_id
        pkt = Packet(
            mtype=MsgType.BLOCK_OP, addr=base,
            src_station=cpu.station.station_id,
            dest_mask=cpu.station.codec.station_mask(home),
            requester=cpu.cpu_id,
            meta={"op": opname, "nlines": nlines, "local": local,
                  "initiator": cpu.cpu_id},
        )
        if local:
            cpu.station.bus.request(
                cfg.cmd_bus_ticks,
                lambda start, p=pkt: cpu.station.memory.handle(p),
            )
        else:
            cpu.station.bus.request(
                cfg.cmd_bus_ticks,
                lambda start, p=pkt: cpu.station.ring_interface.send(p),
            )


def _soft_block_copy(cpu, args) -> None:
    """Coherent memory-to-memory block copy (§3.2): the request goes to the
    *target* module, which kills its cached lines and pulls the data from
    the source module; the initiator is interrupted on completion."""
    src = cpu.config.line_addr(args["src"])
    dst = cpu.config.line_addr(args["dst"])
    nlines = args["nlines"]
    cfg = cpu.config
    src_home = cfg.home_station(src)
    dst_home = cfg.home_station(dst)

    def on_intr(bits: int) -> None:
        cpu.on_interrupt = None
        cpu.read_interrupt_reg()
        cpu.resume()

    cpu.on_interrupt = on_intr
    # step 1: target kills its cached copies (block op without interrupt),
    # folded into the copy request; step 2: ask the source for the lines.
    req = Packet(
        mtype=MsgType.BLOCK_COPY_REQ, addr=src,
        src_station=dst_home,
        dest_mask=cpu.station.codec.station_mask(src_home),
        requester=cpu.cpu_id,
        meta={"nlines": nlines, "target_addr": dst, "initiator": cpu.cpu_id},
    )
    if src_home == cpu.station.station_id:
        cpu.station.bus.request(
            cfg.cmd_bus_ticks,
            lambda start, p=req: cpu.station.memory.handle(p),
        )
    else:
        cpu.station.bus.request(
            cfg.cmd_bus_ticks,
            lambda start, p=req: cpu.station.ring_interface.send(p),
        )


def _soft_update_shared(cpu, args) -> None:
    """The §3.2 'update of shared data' (eureka) sequence: (1) lock the line
    at home and obtain the routing mask of caching stations, (2) modify the
    data, (3) multicast the new line to those network caches; the update's
    arrival at home releases the lock."""
    addr = args["addr"]
    value = args["value"]
    cfg = cpu.config
    la = cfg.line_addr(addr)
    home = cfg.home_station(la)
    local = home == cpu.station.station_id

    line = cpu.l2.lookup(la, touch=False)
    if line is None or not line.state.readable:
        # the updater must hold a copy; fall back to an ordinary write
        cpu.resume(_UPDATE_FALLBACK)
        return

    def after_lock(info) -> None:
        # step 2-4: modify our copy (kept SHARED: the multicast makes every
        # copy identical, so no station legitimately holds it dirty)
        idx = (addr % cfg.line_bytes) // cfg.word_bytes
        line.data[idx] = value
        codec = cpu.station.codec
        mask = info["routing_mask"] | codec.station_mask(home)
        mc = Packet(
            mtype=MsgType.MULTICAST_DATA, addr=la,
            src_station=cpu.station.station_id,
            dest_mask=mask, requester=cpu.cpu_id,
            data=list(line.data), flits=cfg.line_flits,
            meta={"writer_station": cpu.station.station_id},
        )
        cpu.station.bus.request(
            cfg.cmd_bus_ticks + cfg.line_bus_ticks,
            lambda start, p=mc: cpu.station.ring_interface.send(p),
        )
        cpu.resume(_UPDATE_OK, delay=cfg.cpu_cycle_ticks)

    _soft_dir_lock(cpu, la, home, local, after_lock)


#: values sent back into the program by update_shared
_UPDATE_OK = "updated"
_UPDATE_FALLBACK = "fallback"


def _soft_dir_lock(cpu, la: int, home: int, local: bool, cont) -> None:
    pkt = Packet(
        mtype=MsgType.DIR_LOCK_READ, addr=la,
        src_station=cpu.station.station_id,
        dest_mask=cpu.station.codec.station_mask(home),
        requester=cpu.cpu_id, meta={"local": local},
    )
    # hijack the resume path: the DIR_INFO response calls cpu.resume(info)
    orig_resume = cpu.resume

    def resume_hook(value=None, delay: int = 0):
        cpu.resume = orig_resume
        cont(value)

    cpu.resume = resume_hook
    if local:
        cpu.station.bus.request(
            cpu.config.cmd_bus_ticks,
            lambda start, p=pkt: cpu.station.memory.handle(p),
        )
    else:
        cpu.station.bus.request(
            cpu.config.cmd_bus_ticks,
            lambda start, p=pkt: cpu.station.ring_interface.send(p),
        )


def _soft_zero_page(cpu, args) -> None:
    """In-cache zeroing (§3.2): take dirty ownership of every line of the
    page at the memory module, then create zero-filled dirty lines directly
    in the secondary cache — without reading memory."""
    base = cpu.config.line_addr(args["base"])
    nlines = args.get("nlines", cpu.config.page_bytes // cpu.config.line_bytes)
    cfg = cpu.config

    def on_intr(bits: int) -> None:
        cpu.on_interrupt = None
        cpu.read_interrupt_reg()
        zeros = [0] * cfg.line_words
        for i in range(nlines):
            la = base + i * cfg.line_bytes
            victim = cpu.l2.install(la, CacheState.DIRTY, list(zeros))
            cpu.l1.invalidate(la)
            if victim is not None:
                cpu.l1.invalidate(victim.addr)
                if victim.state is CacheState.DIRTY:
                    cpu._write_back(victim)
        cpu.resume(delay=nlines * cfg.cpu_cycle_ticks)

    cpu.on_interrupt = on_intr
    _send_own_block(cpu, base, nlines)


def _soft_copy_page_incache(cpu, args) -> None:
    """In-cache copying: as zeroing, but the program then reads the source
    page normally and writes the created lines (steps are the caller's)."""
    _soft_zero_page(cpu, args)


def _send_own_block(cpu, base: int, nlines: int) -> None:
    cfg = cpu.config
    homes = sorted(
        {cfg.home_station(base + i * cfg.line_bytes) for i in range(nlines)}
    )
    remaining = {"n": len(homes)}
    outer = cpu.on_interrupt

    def on_intr(bits: int) -> None:
        remaining["n"] -= 1
        if remaining["n"] <= 0:
            cpu.on_interrupt = None
            if outer is not None:
                outer(bits)

    cpu.on_interrupt = on_intr
    for home in homes:
        local = home == cpu.station.station_id
        pkt = Packet(
            mtype=MsgType.BLOCK_OP, addr=base,
            src_station=cpu.station.station_id,
            dest_mask=cpu.station.codec.station_mask(home),
            requester=cpu.cpu_id,
            meta={"op": "own", "nlines": nlines, "local": local,
                  "initiator": cpu.cpu_id},
        )
        if local:
            cpu.station.bus.request(
                cfg.cmd_bus_ticks, lambda start, p=pkt: cpu.station.memory.handle(p)
            )
        else:
            cpu.station.bus.request(
                cfg.cmd_bus_ticks,
                lambda start, p=pkt: cpu.station.ring_interface.send(p),
            )


def _soft_io(cpu, args) -> None:
    """Submit a DMA request to a station's I/O module (§3.2): software names
    the processor to interrupt and the bit pattern; the program continues
    immediately (use wait_interrupt to block for completion)."""
    from ..system.io import IORequest

    station = cpu.station.peer(args.get("station", cpu.station.station_id))
    station.io.submit(IORequest(
        kind=args["kind"],
        addr=cpu.config.line_addr(args["addr"]),
        nlines=args["nlines"],
        notify_cpu=args.get("notify_cpu", cpu.cpu_id),
        intr_bits=args.get("intr_bits", 1),
        payload=args.get("payload"),
    ))
    cpu.resume(delay=cpu.config.cpu_cycle_ticks)


def _soft_multicast_interrupt(cpu, args) -> None:
    """Cross-processor multicast interrupt (§3.2): one packet, many targets
    selected by a routing mask + per-station processor mask."""
    targets = args["cpus"]
    bits = args.get("bits", 1)
    cfg = cpu.config
    stations = sorted({c // cfg.cpus_per_station for c in targets})
    proc_masks = {}
    for c in targets:
        st = c // cfg.cpus_per_station
        proc_masks[st] = proc_masks.get(st, 0) | (1 << (c % cfg.cpus_per_station))
    # the hardware sends one multicast; per-station processor masks are the
    # same field, so the union is used (over-delivery is filtered by bits)
    union_mask = 0
    for m in proc_masks.values():
        union_mask |= m
    pkt = Packet(
        mtype=MsgType.INTERRUPT, addr=0,
        src_station=cpu.station.station_id,
        dest_mask=cpu.station.codec.combine(stations),
        requester=cpu.cpu_id,
        meta={"proc_mask": union_mask, "bits": bits},
    )
    cpu.station.bus.request(
        cfg.cmd_bus_ticks,
        lambda start, p=pkt: cpu.station.ring_interface.send(p),
    )
    cpu.resume(delay=cfg.cpu_cycle_ticks)


def _soft_wait_interrupt(cpu, args) -> None:
    """Block the program until any interrupt bit is raised."""
    if cpu.interrupt_reg:
        bits = cpu.read_interrupt_reg()
        cpu.resume(bits)
        return

    def on_intr(bits: int) -> None:
        cpu.on_interrupt = None
        got = cpu.read_interrupt_reg()
        cpu.resume(got)

    cpu.on_interrupt = on_intr
