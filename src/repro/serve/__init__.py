"""Simulation-as-a-service: an asyncio job server over the perf cache.

The paper's NUMAchine simulator was shared infrastructure for a research
group; this package is that idea at modern scale.  A stdlib-only
HTTP/1.1 server (raw ``asyncio.start_server``, no threads, no
dependencies) accepts simulation and sweep requests as JSON,
canonicalizes them onto the existing content-addressed result cache
(:mod:`repro.perf.cache`), serves hits directly, and pushes cold points
through an admission queue into a process pool with request coalescing,
compatible-point batching, bounded-queue backpressure (429 +
``Retry-After``), per-job TTLs, JSONL progress streaming and a graceful
SIGTERM drain.  ``python -m repro.serve`` starts it; see the README's
"Serving" section for the request schema and
``benchmarks/bench_serve.py`` for the load generator / soak gate.
"""

from .app import SERVE_SCHEMA, ServeApp, Server
from .canon import BadRequest, CanonPoint, canonical_point
from .jobs import (
    Backpressure,
    Draining,
    JobExpired,
    JobFailed,
    JobManager,
    default_workers,
)
from .metrics import LatencyReservoir, ServeMetrics

__all__ = [
    "BadRequest",
    "Backpressure",
    "CanonPoint",
    "Draining",
    "JobExpired",
    "JobFailed",
    "JobManager",
    "LatencyReservoir",
    "SERVE_SCHEMA",
    "ServeApp",
    "ServeMetrics",
    "Server",
    "canonical_point",
    "default_workers",
]
