"""Server-side metric series for the simulation service.

The simulator's own metrics (``repro.obs.registry``) describe one run;
these describe the *service*: request counts by route and status, cache
hit/miss/coalesce traffic, admission-queue depth, in-flight pool work,
and request-latency quantiles per serving class.  The snapshot is a
plain dict; :func:`repro.obs.registry.serve_to_prometheus` renders it in
the same text exposition format the simulator metrics already use, so
one scrape config covers both.

Latency quantiles come from a bounded reservoir of the most recent
samples per class — the soak benchmark and a Prometheus scrape both want
"recent p99", not an all-time aggregate that a warm-up phase would
pollute forever.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Dict, Optional


class LatencyReservoir:
    """Last-``capacity`` latency samples with quantile extraction."""

    def __init__(self, capacity: int = 4096) -> None:
        self._samples: deque = deque(maxlen=capacity)
        self.count = 0
        self.total = 0.0

    def observe(self, seconds: float) -> None:
        self._samples.append(seconds)
        self.count += 1
        self.total += seconds

    def quantile(self, q: float) -> float:
        """The q-quantile (0..1) of the retained window; 0.0 when empty."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[idx]

    def summary(self) -> dict:
        window = len(self._samples)
        return {
            "count": self.count,
            "window": window,
            "mean": (sum(self._samples) / window) if window else 0.0,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


class ServeMetrics:
    """Counters, gauges and latency reservoirs for one server instance."""

    #: serving classes a request latency is attributed to
    CLASSES = ("hit", "coalesced", "run")

    def __init__(self, reservoir: int = 4096) -> None:
        self.started_at = time.time()
        #: (route, status) -> count
        self.requests: Dict[tuple, int] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.coalesced = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.jobs_expired = 0
        self.jobs_dropped = 0  # queued jobs whose waiters all went away
        self.pool_submissions = 0
        self.batched_points = 0
        self.stream_lines_forwarded = 0
        self.latency: Dict[str, LatencyReservoir] = {
            cls: LatencyReservoir(reservoir) for cls in self.CLASSES
        }
        #: live-state callbacks installed by the job manager
        self.queue_depth_fn: Optional[Callable[[], int]] = None
        self.in_flight_fn: Optional[Callable[[], int]] = None
        self.draining_fn: Optional[Callable[[], bool]] = None

    # ------------------------------------------------------------------
    def record_request(self, route: str, status: int) -> None:
        key = (route, status)
        self.requests[key] = self.requests.get(key, 0) + 1

    def record_latency(self, cls: str, seconds: float) -> None:
        self.latency[cls].observe(seconds)

    def hit_ratio(self) -> float:
        """Cache hits over all point lookups since start (coalesced
        requests count as neither: they neither read the cache nor cost a
        simulation)."""
        total = self.cache_hits + self.cache_misses
        return (self.cache_hits / total) if total else 0.0

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The JSON view served on ``/stats`` and rendered on
        ``/metrics``."""
        return {
            "uptime_s": time.time() - self.started_at,
            "requests": {
                f"{route} {status}": n
                for (route, status), n in sorted(self.requests.items())
            },
            "responses_5xx": sum(
                n for (_, status), n in self.requests.items() if status >= 500
            ),
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "coalesced": self.coalesced,
                "hit_ratio": self.hit_ratio(),
            },
            "jobs": {
                "completed": self.jobs_completed,
                "failed": self.jobs_failed,
                "expired": self.jobs_expired,
                "dropped": self.jobs_dropped,
                "pool_submissions": self.pool_submissions,
                "batched_points": self.batched_points,
                "queue_depth": self.queue_depth_fn() if self.queue_depth_fn else 0,
                "in_flight": self.in_flight_fn() if self.in_flight_fn else 0,
            },
            "draining": bool(self.draining_fn()) if self.draining_fn else False,
            "stream_lines_forwarded": self.stream_lines_forwarded,
            "latency_s": {
                cls: res.summary() for cls, res in self.latency.items()
            },
        }


__all__ = ["LatencyReservoir", "ServeMetrics"]
