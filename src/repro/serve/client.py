"""A minimal keep-alive HTTP/1.1 client for the job server.

Shared by the load generator (``benchmarks/bench_serve.py``) and the
test suite, so neither needs an external HTTP library.  One
:class:`HttpClient` is one TCP connection; it understands exactly what
the server emits: fixed-length responses and chunked
``application/x-ndjson`` streams.
"""

from __future__ import annotations

import asyncio
import json
from typing import AsyncIterator, Dict, Optional, Tuple


class HttpClient:
    """One persistent connection to the server."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> "HttpClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            self._reader = self._writer = None

    # ------------------------------------------------------------------
    async def _send(self, method: str, path: str, body: Optional[bytes]) -> None:
        if self._writer is None:
            await self.connect()
        head = [f"{method} {path} HTTP/1.1", f"Host: {self.host}:{self.port}"]
        if body is not None:
            head.append("Content-Type: application/json")
            head.append(f"Content-Length: {len(body)}")
        head.append("Connection: keep-alive")
        payload = ("\r\n".join(head) + "\r\n\r\n").encode() + (body or b"")
        self._writer.write(payload)
        await self._writer.drain()

    async def _read_head(self) -> Tuple[int, Dict[str, str]]:
        head = await self._reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ")[1])
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.lower().strip()] = value.strip()
        return status, headers

    async def request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One request/response on this connection (fixed-length only)."""
        raw = json.dumps(body).encode() if body is not None else None
        await self._send(method, path, raw)
        status, headers = await self._read_head()
        if headers.get("transfer-encoding") == "chunked":
            chunks = [c async for c in self._iter_chunks()]
            return status, headers, b"".join(chunks)
        length = int(headers.get("content-length", "0"))
        payload = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return status, headers, payload

    async def request_json(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Tuple[int, Dict[str, str], dict]:
        status, headers, payload = await self.request(method, path, body)
        return status, headers, (json.loads(payload) if payload else {})

    # ------------------------------------------------------------------
    async def _iter_chunks(self) -> AsyncIterator[bytes]:
        while True:
            size_line = await self._reader.readline()
            size = int(size_line.strip() or b"0", 16)
            if size == 0:
                await self._reader.readline()  # trailing CRLF
                return
            data = await self._reader.readexactly(size)
            await self._reader.readexactly(2)  # chunk CRLF
            yield data

    async def stream_lines(
        self, method: str, path: str, body: Optional[dict] = None
    ):
        """Issue a streaming request; yields decoded JSONL objects.

        The first yielded item is ``(status, headers)``; every subsequent
        item is one parsed line from the chunked NDJSON body.
        """
        raw = json.dumps(body).encode() if body is not None else None
        await self._send(method, path, raw)
        status, headers = await self._read_head()
        yield status, headers
        if headers.get("transfer-encoding") != "chunked":
            length = int(headers.get("content-length", "0"))
            payload = await self._reader.readexactly(length) if length else b""
            for line in payload.splitlines():
                if line.strip():
                    yield json.loads(line)
            return
        buf = b""
        async for chunk in self._iter_chunks():
            buf += chunk
            while b"\n" in buf:
                line, buf = buf.split(b"\n", 1)
                if line.strip():
                    yield json.loads(line)
        if buf.strip():
            yield json.loads(buf)


__all__ = ["HttpClient"]
