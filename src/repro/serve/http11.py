"""Minimal HTTP/1.1 framing over raw asyncio streams.

The job server (:mod:`repro.serve.app`) speaks plain HTTP/1.1 on an
``asyncio.start_server`` socket — no ``http.server``, no threads, no
dependencies.  This module owns the wire format only: request parsing
(request line, headers, ``Content-Length`` bodies), fixed-length
responses, and ``Transfer-Encoding: chunked`` responses for the JSONL
progress streams.  Routing and semantics live in the app layer.

Parsing is deliberately strict and small: requests with a body must
declare ``Content-Length`` (chunked *request* bodies are rejected with
501 — no client of this service needs them), header blocks are bounded
by the stream reader's buffer limit, and any malformed request raises
:class:`ProtocolError` carrying the status code the connection handler
should answer with before closing.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

#: request bodies above this are refused with 413 (a sweep of thousands of
#: points is still well under 8 MB of JSON)
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def reason(status: int) -> str:
    return _REASONS.get(status, "Unknown")


class ProtocolError(Exception):
    """A malformed request; ``status`` is the answer to send before
    closing the connection."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]  # keys lower-cased; last occurrence wins
    body: bytes = b""
    version: str = "HTTP/1.1"

    #: filled by the app layer after JSON decoding
    json: Optional[dict] = field(default=None, repr=False)

    @property
    def keep_alive(self) -> bool:
        conn = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return conn == "keep-alive"
        return conn != "close"


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the stream.

    Returns ``None`` on a clean EOF between requests (the client hung up),
    raises :class:`ProtocolError` on anything malformed.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise ProtocolError(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise ProtocolError(431, "request head exceeds buffer limit") from None

    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 cannot fail
        raise ProtocolError(400, "undecodable request head") from None
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise ProtocolError(400, f"malformed request line {lines[0]!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise ProtocolError(400, f"unsupported version {version!r}")

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep or not name or name != name.strip() or "\t" in name:
            raise ProtocolError(400, f"malformed header line {line!r}")
        headers[name.lower()] = value.strip()

    if "transfer-encoding" in headers:
        raise ProtocolError(501, "chunked request bodies are not supported")

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise ProtocolError(400, "bad Content-Length") from None
        if length < 0:
            raise ProtocolError(400, "negative Content-Length")
        if length > MAX_BODY_BYTES:
            raise ProtocolError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError(400, "truncated request body") from None

    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return Request(
        method=method,
        target=target,
        path=split.path or "/",
        query=query,
        headers=headers,
        body=body,
        version=version,
    )


# ----------------------------------------------------------------------
# responses
# ----------------------------------------------------------------------
def _head(
    status: int,
    headers: Tuple[Tuple[str, str], ...],
) -> bytes:
    lines = [f"HTTP/1.1 {status} {reason(status)}"]
    lines += [f"{k}: {v}" for k, v in headers]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def send_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes = b"",
    content_type: str = "application/json",
    extra_headers: Tuple[Tuple[str, str], ...] = (),
    keep_alive: bool = True,
) -> None:
    """Write one fixed-length response and flush it."""
    headers = (
        ("Content-Type", content_type),
        ("Content-Length", str(len(body))),
        ("Connection", "keep-alive" if keep_alive else "close"),
    ) + tuple(extra_headers)
    writer.write(_head(status, headers) + body)
    await writer.drain()


class ChunkedResponse:
    """A ``Transfer-Encoding: chunked`` response for JSONL streaming.

    Every :meth:`send` flushes one chunk immediately, so a tailing client
    sees progress lines as they happen rather than at response end.
    """

    def __init__(
        self,
        writer: asyncio.StreamWriter,
        status: int = 200,
        content_type: str = "application/x-ndjson",
        extra_headers: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        self._writer = writer
        self._status = status
        self._content_type = content_type
        self._extra = tuple(extra_headers)
        self._started = False
        self._closed = False

    async def start(self) -> None:
        if self._started:
            return
        self._started = True
        headers = (
            ("Content-Type", self._content_type),
            ("Transfer-Encoding", "chunked"),
            ("Connection", "keep-alive"),
        ) + self._extra
        self._writer.write(_head(self._status, headers))
        await self._writer.drain()

    async def send(self, data) -> None:
        if not self._started:
            await self.start()
        if isinstance(data, str):
            data = data.encode()
        if not data:
            return
        self._writer.write(b"%x\r\n" % len(data) + data + b"\r\n")
        await self._writer.drain()

    async def close(self) -> None:
        if self._closed:
            return
        if not self._started:
            await self.start()
        self._closed = True
        self._writer.write(b"0\r\n\r\n")
        await self._writer.drain()


__all__ = [
    "MAX_BODY_BYTES",
    "ChunkedResponse",
    "ProtocolError",
    "Request",
    "read_request",
    "reason",
    "send_response",
]
