"""HTTP routes and the server object: simulation-as-a-service.

Endpoints
---------
``POST /run``
    Body: one point spec (see :mod:`repro.serve.canon`) plus the
    transport options ``stream`` (bool) and ``ttl_s`` (float).  Answers
    ``{"key", "source", "record"}`` where ``source`` is ``hit`` /
    ``coalesced`` / ``run``; the ``X-Cache`` response header carries the
    same value.  With ``"stream": true`` the response is chunked
    ``application/x-ndjson``: a ``queued`` line, ``telemetry`` lines
    bridged live from the worker's :class:`~repro.obs.stream.TelemetryStream`,
    then one final ``result`` (or ``error``) line.  A streamed result is
    an *observed* run (the sampler adds events and can extend quiescence
    time by one period) and is deliberately not written to the shared
    cache — see :mod:`repro.serve.jobs`.

``POST /sweep``
    Body: ``{"points": [spec, ...], "ttl_s": ...}``.  Admission is
    all-or-nothing over the cold subset (a partially admitted sweep would
    strand its client); the answer lists per-point sources and records in
    request order.

``GET /metrics``
    Server-side series in Prometheus text exposition format (rendered by
    :func:`repro.obs.registry.serve_to_prometheus`).

``GET /stats`` / ``GET /healthz``
    The JSON metrics snapshot / a tiny liveness document.

Failure semantics: malformed bodies are 400 with a message; a full
admission queue is 429 with ``Retry-After``; a draining server answers
503 for new work; a queued job that outlives its TTL is 504; a
simulation error is 500 with the worker's exception string.
"""

from __future__ import annotations

import asyncio
import json
import os
import shutil
import tempfile
import time
from typing import Optional, Tuple

from ..obs.registry import serve_to_prometheus
from .canon import BadRequest, CanonPoint, canonical_point
from .http11 import (
    ChunkedResponse,
    ProtocolError,
    Request,
    read_request,
    send_response,
)
from .jobs import Backpressure, Draining, Job, JobExpired, JobFailed, JobManager
from .metrics import ServeMetrics

#: bump when the response layout changes incompatibly
SERVE_SCHEMA = 1


def _json_bytes(payload) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode()


def _error_body(status: int, message: str, **extra) -> bytes:
    return _json_bytes({"error": message, "status": status, **extra})


class ServeApp:
    """Route dispatch over one :class:`JobManager`."""

    def __init__(
        self,
        manager: JobManager,
        metrics: Optional[ServeMetrics] = None,
        log=None,
    ) -> None:
        self.manager = manager
        self.metrics = metrics if metrics is not None else manager.metrics
        self.log = log or (lambda msg: None)
        self._stream_dir: Optional[str] = None
        self._stream_seq = 0

    # ------------------------------------------------------------------
    def _stream_path(self) -> str:
        if self._stream_dir is None:
            self._stream_dir = tempfile.mkdtemp(prefix="numachine_serve_")
        self._stream_seq += 1
        return os.path.join(self._stream_dir, f"job{self._stream_seq}.jsonl")

    def cleanup(self) -> None:
        if self._stream_dir is not None:
            shutil.rmtree(self._stream_dir, ignore_errors=True)
            self._stream_dir = None

    # ------------------------------------------------------------------
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One client connection: serve requests until close/EOF."""
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError as exc:
                    self.metrics.record_request("(malformed)", exc.status)
                    await send_response(
                        writer, exc.status,
                        _error_body(exc.status, exc.message),
                        keep_alive=False,
                    )
                    break
                if request is None:
                    break
                keep_alive = request.keep_alive
                await self.handle_request(request, writer)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            # swallow cancellation here too: at loop shutdown the runner
            # cancels connection tasks, and on 3.11 a task that ends
            # cancelled makes the streams connection callback log noise —
            # completing normally after closing the transport is the
            # clean exit for a connection handler
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.CancelledError):
                pass

    async def handle_request(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        route = f"{request.method} {request.path}"
        started = time.monotonic()
        try:
            status = await self._dispatch(request, writer, started)
        except (ConnectionResetError, BrokenPipeError):
            raise
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            status = 500
            self.log(f"500 on {route}: {type(exc).__name__}: {exc}")
            try:
                await send_response(
                    writer, 500,
                    _error_body(500, f"{type(exc).__name__}: {exc}"),
                    keep_alive=request.keep_alive,
                )
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        self.metrics.record_request(route, status)

    async def _dispatch(
        self, request: Request, writer: asyncio.StreamWriter, started: float
    ) -> int:
        method, path = request.method, request.path
        if path == "/healthz" and method == "GET":
            return await self._healthz(request, writer)
        if path == "/metrics" and method == "GET":
            body = serve_to_prometheus(self.metrics.snapshot()).encode()
            await send_response(
                writer, 200, body,
                content_type="text/plain; version=0.0.4; charset=utf-8",
                keep_alive=request.keep_alive,
            )
            return 200
        if path == "/stats" and method == "GET":
            await send_response(
                writer, 200, _json_bytes(self.metrics.snapshot()),
                keep_alive=request.keep_alive,
            )
            return 200
        if path == "/run" and method == "POST":
            return await self._run(request, writer, started)
        if path == "/sweep" and method == "POST":
            return await self._sweep(request, writer, started)
        if path in ("/run", "/sweep", "/healthz", "/metrics", "/stats"):
            await send_response(
                writer, 405, _error_body(405, f"{method} not allowed on {path}"),
                keep_alive=request.keep_alive,
            )
            return 405
        await send_response(
            writer, 404, _error_body(404, f"no route {path}"),
            keep_alive=request.keep_alive,
        )
        return 404

    async def _healthz(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> int:
        body = _json_bytes({
            "status": "draining" if self.manager.draining else "ok",
            "schema": SERVE_SCHEMA,
            "workers": self.manager.workers,
            "queue_depth": self.manager.queue_depth,
        })
        await send_response(writer, 200, body, keep_alive=request.keep_alive)
        return 200

    # ------------------------------------------------------------------
    def _parse_json(self, request: Request) -> dict:
        try:
            body = json.loads(request.body.decode() or "null")
        except (ValueError, UnicodeDecodeError) as exc:
            raise BadRequest(f"body is not valid JSON: {exc}") from None
        if not isinstance(body, dict):
            raise BadRequest("body must be a JSON object")
        return body

    @staticmethod
    def _ttl(body: dict) -> Optional[float]:
        ttl = body.get("ttl_s")
        if ttl is None:
            return None
        if isinstance(ttl, bool) or not isinstance(ttl, (int, float)) or ttl <= 0:
            raise BadRequest(f"ttl_s must be a positive number, got {ttl!r}")
        return float(ttl)

    async def _answer_4xx(
        self, request, writer, status: int, message: str, **extra
    ) -> int:
        headers: Tuple[Tuple[str, str], ...] = ()
        if "retry_after" in extra:
            headers = (("Retry-After", str(int(extra["retry_after"]))),)
            extra["retry_after"] = int(extra["retry_after"])
        await send_response(
            writer, status, _error_body(status, message, **extra),
            extra_headers=headers, keep_alive=request.keep_alive,
        )
        return status

    # ------------------------------------------------------------------
    async def _run(
        self, request: Request, writer: asyncio.StreamWriter, started: float
    ) -> int:
        try:
            body = self._parse_json(request)
            ttl = self._ttl(body)
            stream = bool(body.get("stream", False))
            cp = canonical_point(body)
        except BadRequest as exc:
            return await self._answer_4xx(request, writer, 400, str(exc))

        stream_path = self._stream_path() if stream else None
        try:
            source, item = self.manager.submit(cp, stream_path, ttl)
        except Backpressure as exc:
            return await self._answer_4xx(
                request, writer, 429, str(exc), retry_after=exc.retry_after
            )
        except Draining:
            return await self._answer_4xx(
                request, writer, 503, "server is draining"
            )

        if source == "hit":
            record = item
            self.metrics.record_latency("hit", time.monotonic() - started)
            payload = {
                "schema": SERVE_SCHEMA, "key": cp.key, "source": "hit",
                "point": cp.spec, "record": record.to_json(),
            }
            if stream:
                return await self._stream_immediate(writer, payload)
            await send_response(
                writer, 200, _json_bytes(payload),
                extra_headers=(("X-Cache", "hit"),),
                keep_alive=request.keep_alive,
            )
            return 200

        job: Job = item
        try:
            if stream:
                return await self._stream_job(writer, cp, job, source)
            return await self._await_job(
                request, writer, cp, job, source, started
            )
        finally:
            self.manager.release_waiter(job)

    async def _await_job(
        self, request, writer, cp: CanonPoint, job: Job, source: str,
        started: float,
    ) -> int:
        try:
            record = await asyncio.shield(job.future)
        except JobExpired as exc:
            return await self._answer_4xx(request, writer, 504, str(exc))
        except JobFailed as exc:
            await send_response(
                writer, 500, _error_body(500, str(exc), key=cp.key),
                keep_alive=request.keep_alive,
            )
            return 500
        except asyncio.CancelledError:
            raise
        self.metrics.record_latency(
            "coalesced" if source == "coalesced" else "run",
            time.monotonic() - started,
        )
        payload = {
            "schema": SERVE_SCHEMA, "key": cp.key, "source": source,
            "point": cp.spec, "record": record.to_json(),
        }
        await send_response(
            writer, 200, _json_bytes(payload),
            extra_headers=(("X-Cache", source),),
            keep_alive=request.keep_alive,
        )
        return 200

    # ------------------------------------------------------------------
    # JSONL progress streaming
    # ------------------------------------------------------------------
    async def _stream_immediate(self, writer, payload) -> int:
        chunked = ChunkedResponse(writer, extra_headers=(("X-Cache", "hit"),))
        await chunked.send(_json_bytes({"event": "result", **payload}))
        await chunked.close()
        return 200

    async def _stream_job(
        self, writer, cp: CanonPoint, job: Job, source: str
    ) -> int:
        chunked = ChunkedResponse(
            writer, extra_headers=(("X-Cache", source),)
        )
        await chunked.send(_json_bytes({
            "event": "queued", "key": cp.key, "source": source,
            "point": cp.spec,
        }))
        offset, tail = 0, b""
        path = job.stream_path
        try:
            while not job.future.done():
                await asyncio.wait({job.future}, timeout=0.15)
                offset, tail = await self._forward_telemetry(
                    chunked, path, offset, tail
                )
            offset, tail = await self._forward_telemetry(
                chunked, path, offset, tail
            )
            try:
                record = job.future.result()
            except JobExpired as exc:
                await chunked.send(_json_bytes(
                    {"event": "error", "status": 504, "error": str(exc)}
                ))
                await chunked.close()
                return 504
            except JobFailed as exc:
                await chunked.send(_json_bytes(
                    {"event": "error", "status": 500, "error": str(exc)}
                ))
                await chunked.close()
                return 500
            await chunked.send(_json_bytes({
                "event": "result", "schema": SERVE_SCHEMA, "key": cp.key,
                "source": source, "point": cp.spec,
                "record": record.to_json(),
                # an observed run, not the canonical record for this key:
                # the sampler's own events are counted here so the client
                # can reconcile against an unobserved run
                "sampler_ticks": job.sampler_ticks,
            }))
            await chunked.close()
            return 200
        finally:
            if path is not None:
                try:
                    os.unlink(path)
                except OSError:
                    pass

    async def _forward_telemetry(
        self, chunked: ChunkedResponse, path: Optional[str],
        offset: int, tail: bytes,
    ):
        """Tail the worker's telemetry JSONL file and forward every
        complete line; a torn tail is carried to the next poll."""
        if path is None:
            return offset, tail
        try:
            with open(path, "rb") as fh:
                fh.seek(offset)
                data = fh.read()
        except OSError:
            return offset, tail
        if not data:
            return offset, tail
        offset += len(data)
        buf = tail + data
        lines = buf.split(b"\n")
        tail = lines.pop()  # b"" when buf ended on a newline
        for line in lines:
            if not line.strip():
                continue
            try:
                snap = json.loads(line)
            except ValueError:
                continue
            await chunked.send(
                _json_bytes({"event": "telemetry", "data": snap})
            )
            self.metrics.stream_lines_forwarded += 1
        return offset, tail

    # ------------------------------------------------------------------
    async def _sweep(
        self, request: Request, writer: asyncio.StreamWriter, started: float
    ) -> int:
        try:
            body = self._parse_json(request)
            specs = body.get("points")
            if not isinstance(specs, list) or not specs:
                raise BadRequest("body must carry a non-empty 'points' list")
            extra = set(body) - {"points", "ttl_s"}
            if extra:
                raise BadRequest(f"unknown fields {sorted(extra)}")
            self._ttl(body)  # validated; sweeps use the server default TTL
            points = [canonical_point(s) for s in specs]
        except BadRequest as exc:
            return await self._answer_4xx(request, writer, 400, str(exc))

        try:
            admitted = self.manager.submit_many(points)
        except Backpressure as exc:
            return await self._answer_4xx(
                request, writer, 429, str(exc), retry_after=exc.retry_after
            )
        except Draining:
            return await self._answer_4xx(
                request, writer, 503, "server is draining"
            )

        jobs = [item for _s, item in admitted if isinstance(item, Job)]
        try:
            results, status = [], 200
            for cp, (source, item) in zip(points, admitted):
                if source == "hit":
                    self.metrics.record_latency(
                        "hit", time.monotonic() - started
                    )
                    results.append({
                        "key": cp.key, "source": source,
                        "record": item.to_json(),
                    })
                    continue
                try:
                    record = await asyncio.shield(item.future)
                except JobExpired as exc:
                    status = 504
                    results.append({
                        "key": cp.key, "source": source, "error": str(exc),
                    })
                except JobFailed as exc:
                    status = 500
                    results.append({
                        "key": cp.key, "source": source, "error": str(exc),
                    })
                else:
                    self.metrics.record_latency(
                        "coalesced" if source == "coalesced" else "run",
                        time.monotonic() - started,
                    )
                    results.append({
                        "key": cp.key, "source": source,
                        "record": record.to_json(),
                    })
        finally:
            for job in jobs:
                self.manager.release_waiter(job)

        payload = {
            "schema": SERVE_SCHEMA,
            "points": len(results),
            "results": results,
        }
        if status != 200:
            payload["error"] = "one or more points failed; see results"
        await send_response(
            writer, status, _json_bytes(payload),
            keep_alive=request.keep_alive,
        )
        return status


# ----------------------------------------------------------------------
# server lifecycle
# ----------------------------------------------------------------------
class Server:
    """The asyncio TCP server wrapping a :class:`ServeApp`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        manager: Optional[JobManager] = None,
        log=None,
    ) -> None:
        self.host = host
        self.port = port
        self.manager = manager if manager is not None else JobManager()
        self.app = ServeApp(self.manager, log=log)
        self.log = log or (lambda msg: None)
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> Tuple[str, int]:
        """Bind, start the manager, return the (host, port) actually bound
        (``port=0`` picks a free one — tests and CI rely on that)."""
        await self.manager.start()
        self._server = await asyncio.start_server(
            self.app.handle_connection, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        self.log(f"serving on http://{self.host}:{self.port}")
        return self.host, self.port

    async def serve_forever(self) -> None:
        async with self._server:
            await self._server.serve_forever()

    async def drain_and_stop(self, timeout: Optional[float] = 30.0) -> bool:
        """Graceful shutdown: stop accepting, finish in-flight jobs
        (bounded by ``timeout``), release the pool.  New jobs admitted
        while draining answer 503."""
        self.log("drain: closing listener, finishing in-flight jobs")
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        clean = await self.manager.drain(timeout)
        self.app.cleanup()
        self.log(f"drain: {'clean' if clean else 'timed out'}")
        return clean


__all__ = ["SERVE_SCHEMA", "ServeApp", "Server"]
