"""Request canonicalization: JSON bodies → sweep points → cache keys.

The server is a CDN for experiments, so the one property everything else
leans on is: *equivalent requests map to one cache key*.  A request spec
is normalized field by field — defaults filled in, numbers coerced
(``4.0`` and ``4`` are the same processor count), config overrides
applied onto a fresh :class:`~repro.system.config.MachineConfig` — and
the key is then the existing :func:`repro.perf.cache.point_key`, i.e.
exactly the digest the sweep runner and the figure benches already use.
A result computed by ``bench_fig13`` is a cache hit for a server client
asking for the same point, and vice versa.

Unknown fields anywhere (the spec itself or the ``config`` override
block) are rejected rather than ignored: a typo that silently falls back
to defaults would return the *wrong experiment* with a 200.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..interconnect.routing import Geometry
from ..perf.sweep import SweepPoint
from ..system.config import MachineConfig
from ..workloads import SUITE


class BadRequest(ValueError):
    """A request spec that cannot be canonicalized; maps to HTTP 400."""


#: fields a point spec may carry (`stream`/`ttl_s` are request transport
#: options, not part of the simulation identity — they never reach the key)
POINT_FIELDS = frozenset(
    {"workload", "nprocs", "cpus", "size", "variant", "config"}
)
REQUEST_ONLY_FIELDS = frozenset({"stream", "ttl_s"})

_CONFIG_FIELDS: Dict[str, object] = {
    f.name: f for f in dataclasses.fields(MachineConfig)
}
_CONFIG_DEFAULTS = MachineConfig.prototype()


@dataclass(frozen=True)
class CanonPoint:
    """One canonicalized request point: the sweep point, its cache key,
    and the normalized spec (for echoing back to the client)."""

    point: SweepPoint
    key: str
    spec: dict


def _as_int(name: str, value) -> int:
    if isinstance(value, bool):
        raise BadRequest(f"{name} must be an integer, got {value!r}")
    if isinstance(value, int):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    raise BadRequest(f"{name} must be an integer, got {value!r}")


def _geometry(value) -> Geometry:
    """Accept ``[4, 4]`` or ``{"levels": [4, 4],
    "processors_per_station": 4}``."""
    if isinstance(value, (list, tuple)):
        return Geometry(tuple(_as_int("geometry level", v) for v in value))
    if isinstance(value, dict):
        unknown = set(value) - {"levels", "processors_per_station"}
        if unknown:
            raise BadRequest(
                f"unknown geometry fields {sorted(unknown)}; valid: "
                "levels, processors_per_station"
            )
        if "levels" not in value:
            raise BadRequest("geometry object requires 'levels'")
        levels = tuple(_as_int("geometry level", v) for v in value["levels"])
        pps = _as_int(
            "processors_per_station", value.get("processors_per_station", 4)
        )
        return Geometry(levels, processors_per_station=pps)
    raise BadRequest(f"geometry must be a list or object, got {value!r}")


def build_config(overrides: Optional[dict]) -> MachineConfig:
    """A fresh prototype config with the given field overrides applied.

    Values are coerced to the field's default type, so ``"nc_enabled":
    true`` / ``"compute_scale": 32`` behave; unknown fields raise.
    """
    cfg = MachineConfig.prototype()
    if not overrides:
        return cfg
    if not isinstance(overrides, dict):
        raise BadRequest(f"config must be an object, got {overrides!r}")
    for name, value in overrides.items():
        if name not in _CONFIG_FIELDS:
            raise BadRequest(
                f"unknown config field {name!r}; valid fields: "
                f"{', '.join(sorted(_CONFIG_FIELDS))}"
            )
        if name == "geometry":
            value = _geometry(value)
        else:
            default = getattr(_CONFIG_DEFAULTS, name)
            if isinstance(default, bool):
                if not isinstance(value, bool):
                    raise BadRequest(f"config.{name} must be a boolean")
            elif isinstance(default, int):
                value = _as_int(f"config.{name}", value)
            elif isinstance(default, float):
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    raise BadRequest(f"config.{name} must be a number")
                value = float(value)
            elif isinstance(default, str):
                if not isinstance(value, str):
                    raise BadRequest(f"config.{name} must be a string")
        setattr(cfg, name, value)
    try:
        cfg.validate()
    except ValueError as exc:
        raise BadRequest(f"invalid config: {exc}") from None
    return cfg


def canonical_point(spec) -> CanonPoint:
    """Normalize one point spec into a :class:`CanonPoint`.

    Equivalent bodies — reordered keys, explicit defaults, ``4.0`` for
    ``4``, an empty ``config`` block — all land on the same key, because
    the key is computed from the *normalized* point, never the raw JSON.
    """
    if not isinstance(spec, dict):
        raise BadRequest(f"point spec must be an object, got {spec!r}")
    unknown = set(spec) - POINT_FIELDS - REQUEST_ONLY_FIELDS
    if unknown:
        raise BadRequest(
            f"unknown fields {sorted(unknown)}; valid fields: "
            f"{', '.join(sorted(POINT_FIELDS | REQUEST_ONLY_FIELDS))}"
        )

    workload = spec.get("workload")
    if not isinstance(workload, str) or workload not in SUITE:
        raise BadRequest(
            f"unknown workload {workload!r}; valid workloads: "
            f"{', '.join(sorted(SUITE))}"
        )

    size = spec.get("size", "bench")
    if size not in ("bench", "test"):
        raise BadRequest(f"size must be 'bench' or 'test', got {size!r}")

    variant = spec.get("variant", "")
    if not isinstance(variant, str):
        raise BadRequest(f"variant must be a string, got {variant!r}")

    raw_cpus = spec.get("cpus") or ()
    if not isinstance(raw_cpus, (list, tuple)):
        raise BadRequest(f"cpus must be a list, got {raw_cpus!r}")
    cpus: Tuple[int, ...] = tuple(_as_int("cpu id", c) for c in raw_cpus)
    if len(set(cpus)) != len(cpus):
        raise BadRequest("cpus contains duplicates")

    if "nprocs" in spec:
        nprocs = _as_int("nprocs", spec["nprocs"])
    elif cpus:
        nprocs = len(cpus)
    else:
        raise BadRequest("nprocs (or cpus) is required")
    if cpus and nprocs != len(cpus):
        raise BadRequest(
            f"nprocs={nprocs} disagrees with len(cpus)={len(cpus)}"
        )
    if nprocs < 1:
        raise BadRequest(f"nprocs must be >= 1, got {nprocs}")
    # an explicit consecutive placement IS the default placement — the
    # sweep runner expands empty `cpus` to range(nprocs), so the two
    # specs run the identical simulation and must share one key
    if cpus == tuple(range(nprocs)):
        cpus = ()

    config = build_config(spec.get("config"))
    if nprocs > config.num_cpus:
        raise BadRequest(
            f"nprocs={nprocs} exceeds the machine's {config.num_cpus} cpus"
        )
    if any(not 0 <= c < config.num_cpus for c in cpus):
        raise BadRequest(
            f"cpu ids must be in [0, {config.num_cpus}), got {list(cpus)}"
        )

    point = SweepPoint(
        workload=workload,
        nprocs=nprocs,
        config=config,
        cpus=cpus,
        size=size,
        variant=variant,
    )
    normalized = {
        "workload": workload,
        "nprocs": nprocs,
        "cpus": list(cpus),
        "size": size,
        "variant": variant,
    }
    return CanonPoint(point=point, key=point.key(), spec=normalized)


__all__ = [
    "BadRequest",
    "CanonPoint",
    "POINT_FIELDS",
    "REQUEST_ONLY_FIELDS",
    "build_config",
    "canonical_point",
]
