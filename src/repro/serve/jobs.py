"""Admission, coalescing, batching and execution of simulation jobs.

The service disciplines live here, mirroring the queueing-server framing
the paper's shared simulator invites:

* **Dedupe** — a point already in ``.numachine_cache`` is served without
  touching the pool at all (the content-addressed key makes the cache a
  CDN for experiments).
* **Coalescing** — N concurrent requests for the *same* cold point share
  one in-flight computation: one entry in the in-flight table, one pool
  submission, N resolved futures.
* **Admission control** — cold points enter a bounded queue; when it is
  full the caller gets :class:`Backpressure` (HTTP 429 + ``Retry-After``)
  instead of an unbounded backlog.
* **Batching** — the dispatcher drains whatever is queued, splits it
  round-robin across the free pool workers, and submits each chunk as a
  *single* pool submission (one pickle, one worker wake-up per chunk —
  a cold 16-point sweep saturates every core with ≤ ``workers``
  submissions instead of 16).
* **TTL / cancellation** — queued jobs whose deadline passes fail with
  :class:`JobExpired` (504); queued jobs all of whose waiters have
  disconnected are dropped before ever reaching the pool.
* **Drain** — :meth:`JobManager.drain` stops admissions (503 for new
  work), lets in-flight chunks finish, then shuts the pool down.

Workers are plain processes (the same ``ProcessPoolExecutor`` shape as
:mod:`repro.perf.sweep`); results flow back as JSON dicts, are written
to the shared on-disk cache by the event-loop side, and resolve every
waiting future.  Streamed runs are the one exception to caching: a run
with a :class:`~repro.obs.stream.TelemetryStream` riding it is an
*observed* run — the sampler adds events and extends quiescence time by
up to one period — so its record goes to the streaming client but never
into the cache, where it would alias the canonical record for the key.
"""

from __future__ import annotations

import asyncio
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..perf.cache import RunCache
from ..perf.record import RunRecord, collect_record
from ..perf.sweep import SweepPoint
from .canon import CanonPoint
from .metrics import ServeMetrics


class Backpressure(Exception):
    """Admission queue full; carries the suggested Retry-After seconds."""

    def __init__(self, retry_after: float) -> None:
        super().__init__(f"admission queue full; retry after {retry_after:.0f}s")
        self.retry_after = retry_after


class Draining(Exception):
    """The server is shutting down; no new jobs are admitted."""


class JobExpired(Exception):
    """A queued job's TTL passed before a worker picked it up."""


class JobFailed(Exception):
    """The simulation itself raised; the message carries the worker error."""


def default_workers() -> int:
    """Pool size: ``NUMACHINE_JOBS`` when set, else every core."""
    raw = os.environ.get("NUMACHINE_JOBS")
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


# ----------------------------------------------------------------------
# worker side (module level: must pickle under fork and spawn)
# ----------------------------------------------------------------------
def _run_one(payload: dict) -> dict:
    """Run one point in a worker; never raises (errors travel as data so
    one bad point cannot poison its batch-mates)."""
    try:
        point: SweepPoint = payload["point"]
        stream_path = payload.get("stream_path")
        from repro.system.machine import Machine
        from repro.workloads import make

        cfg = point.resolved_config()
        machine = Machine(cfg)
        obs = None
        if stream_path:
            # bridge: a TelemetryStream rides the run and appends slim
            # JSONL snapshots the server tails back to the client
            from repro.obs import Observability

            obs = Observability(
                trace=False, probes=False, stream_path=stream_path
            ).attach(machine)
        workload = make(point.workload, point.size)
        if point.cpus:
            result = workload.run(machine, cpus=list(point.cpus))
        else:
            result = workload.run(machine, nprocs=point.nprocs)
        record = collect_record(
            machine,
            workload=point.workload,
            nprocs=point.nprocs,
            parallel_time_ns=result.parallel_time_ns,
            cpus=point.cpus,
            variant=point.variant,
        )
        out = {"ok": True, "record": record.to_json()}
        if obs is not None:
            # an observed run is NOT the canonical record for this key:
            # the sampler adds its own events and its final tick extends
            # engine quiescence time by up to one period.  The event-loop
            # side therefore never caches streamed results; the sampler
            # tick count travels alongside so a consumer can reconcile
            # the observed event count with an unobserved run's.
            out["sampler_ticks"] = obs.stream.ticks
            obs.stream.close()
        return out
    except BaseException as exc:  # noqa: BLE001 - must cross the pool as data
        return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}


def _run_batch(payloads: List[dict]) -> List[dict]:
    """Worker entry for one chunk: run its points back to back."""
    return [_run_one(p) for p in payloads]


# ----------------------------------------------------------------------
# event-loop side
# ----------------------------------------------------------------------
@dataclass
class Job:
    """One cold point somewhere between admission and resolution."""

    key: str
    point: SweepPoint
    future: asyncio.Future
    stream_path: Optional[str] = None
    enqueued_at: float = 0.0
    deadline: Optional[float] = None
    submitted: bool = False
    waiters: int = 0
    spec: dict = field(default_factory=dict)
    #: sampler events the worker's TelemetryStream ran (streamed jobs only)
    sampler_ticks: Optional[int] = None


class JobManager:
    """The admission queue, in-flight table and pool dispatcher."""

    def __init__(
        self,
        workers: Optional[int] = None,
        queue_depth: int = 64,
        batch_max: int = 8,
        default_ttl_s: Optional[float] = 600.0,
        cache: Optional[RunCache] = None,
        metrics: Optional[ServeMetrics] = None,
        executor=None,
    ) -> None:
        self.workers = workers if workers is not None else default_workers()
        self.queue_depth = max(1, queue_depth)
        self.batch_max = max(1, batch_max)
        self.default_ttl_s = default_ttl_s
        self.cache = cache if cache is not None else RunCache()
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self._executor = executor  # injected in tests; else a process pool
        self._owns_executor = executor is None
        self.draining = False

        self._inflight: Dict[str, Job] = {}
        self._queue: Optional[asyncio.Queue] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._reaper: Optional[asyncio.Task] = None
        self._chunks_in_flight = 0
        self._chunk_tasks: set = set()
        self._slot_free: Optional[asyncio.Event] = None

        self.metrics.queue_depth_fn = lambda: (
            self._queue.qsize() if self._queue else 0
        )
        self.metrics.in_flight_fn = lambda: sum(
            1 for j in self._inflight.values() if j.submitted
        )
        self.metrics.draining_fn = lambda: self.draining

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind to the running loop and start dispatcher + TTL reaper."""
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.queue_depth)
        self._slot_free = asyncio.Event()
        self._slot_free.set()
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        self._dispatcher = asyncio.ensure_future(self._dispatch_loop())
        self._reaper = asyncio.ensure_future(self._reap_loop())

    # ------------------------------------------------------------------
    def lookup(self, key: str) -> Optional[RunRecord]:
        """Cache probe with metric accounting."""
        record = self.cache.get(key)
        if record is not None:
            self.metrics.cache_hits += 1
        return record

    def submit(
        self, cp: CanonPoint, stream_path: Optional[str] = None,
        ttl_s: Optional[float] = None,
    ) -> Tuple[str, object]:
        """Admit one canonical point.

        Returns ``("hit", RunRecord)`` for a cached point,
        ``("coalesced", Job)`` when the point is already in flight, or
        ``("run", Job)`` after queueing a fresh job.  Raises
        :class:`Backpressure` or :class:`Draining` instead of queueing.
        """
        record = self.lookup(cp.key)
        if record is not None:
            return "hit", record

        job = self._inflight.get(cp.key)
        if job is not None:
            self.metrics.coalesced += 1
            job.waiters += 1  # the caller must release_waiter() when done
            return "coalesced", job

        if self.draining:
            raise Draining("server is draining")
        self.metrics.cache_misses += 1
        job = self._make_job(cp, stream_path, ttl_s)
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            self.metrics.cache_misses -= 1  # never admitted, never computed
            raise Backpressure(self._retry_after()) from None
        self._inflight[cp.key] = job
        job.waiters += 1
        return "run", job

    def submit_many(
        self, points: Sequence[CanonPoint]
    ) -> List[Tuple[str, object]]:
        """Admit a sweep all-or-nothing.

        Cached and coalesced points never consume queue slots; if the
        remaining cold points do not all fit, *nothing* is queued and
        :class:`Backpressure` is raised — a partially admitted sweep
        would hang its client on the rejected half.
        """
        out: List[Tuple[str, object]] = []
        cold: List[CanonPoint] = []
        seen_cold: Dict[str, int] = {}
        for cp in points:
            record = self.lookup(cp.key)
            if record is not None:
                out.append(("hit", record))
                continue
            job = self._inflight.get(cp.key)
            if job is not None:
                self.metrics.coalesced += 1
                out.append(("coalesced", job))
                continue
            if cp.key in seen_cold:
                # duplicate inside one sweep: coalesce onto the first
                self.metrics.coalesced += 1
                out.append(("dup", seen_cold[cp.key]))
                continue
            seen_cold[cp.key] = len(out)
            out.append(("run", cp))
            cold.append(cp)

        if cold:
            if self.draining:
                raise Draining("server is draining")
            free = self.queue_depth - self._queue.qsize()
            if len(cold) > free:
                raise Backpressure(self._retry_after())
            jobs: Dict[str, Job] = {}
            for cp in cold:
                job = self._make_job(cp, None, None)
                self.metrics.cache_misses += 1
                self._queue.put_nowait(job)
                self._inflight[cp.key] = job
                jobs[cp.key] = job
            out = [
                ("run", jobs[item.key]) if src == "run" else (src, item)
                for src, item in out
            ]
        # resolve intra-sweep duplicates onto their first occurrence's job
        out = [
            ("coalesced", out[item][1]) if src == "dup" else (src, item)
            for src, item in out
        ]
        for _src, item in out:
            if isinstance(item, Job):
                item.waiters += 1  # one release_waiter() owed per entry
        return out

    @staticmethod
    def release_waiter(job: "Job") -> None:
        """A waiter is done with ``job`` (answered or disconnected); when
        the last waiter of a still-queued job leaves, the dispatcher drops
        the job instead of computing for nobody."""
        job.waiters -= 1

    def _make_job(
        self, cp: CanonPoint, stream_path: Optional[str],
        ttl_s: Optional[float],
    ) -> Job:
        now = self._loop.time()
        ttl = ttl_s if ttl_s is not None else self.default_ttl_s
        return Job(
            key=cp.key,
            point=cp.point,
            future=self._loop.create_future(),
            stream_path=stream_path,
            enqueued_at=now,
            deadline=(now + ttl) if ttl else None,
            spec=cp.spec,
        )

    def _retry_after(self) -> float:
        """A crude service-time estimate: queued points over pool width,
        floored at one second."""
        qsize = self._queue.qsize() if self._queue else self.queue_depth
        return max(1.0, 2.0 * qsize / max(1, self.workers))

    # ------------------------------------------------------------------
    # dispatcher: queue -> batched pool submissions
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            while self._chunks_in_flight >= self.workers:
                self._slot_free.clear()
                await self._slot_free.wait()
            job = await self._queue.get()
            free = self.workers - self._chunks_in_flight
            batch = [job]
            while len(batch) < self.batch_max * free:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            batch = [j for j in batch if self._still_wanted(j)]
            if not batch:
                continue
            nchunks = min(len(batch), free)
            for i in range(nchunks):
                chunk = batch[i::nchunks]
                self._submit_chunk(chunk)

    def _still_wanted(self, job: Job) -> bool:
        """Drop expired / abandoned jobs at the last gate before the pool."""
        if job.future.done():  # expired by the reaper, or cancelled
            self._inflight.pop(job.key, None)
            return False
        if job.waiters <= 0:
            self.metrics.jobs_dropped += 1
            self._inflight.pop(job.key, None)
            job.future.cancel()
            return False
        return True

    def _submit_chunk(self, chunk: List[Job]) -> None:
        payloads = [
            {"point": j.point, "stream_path": j.stream_path} for j in chunk
        ]
        for j in chunk:
            j.submitted = True
        self._chunks_in_flight += 1
        self.metrics.pool_submissions += 1
        self.metrics.batched_points += len(chunk)
        cf = self._executor.submit(_run_batch, payloads)
        fut = asyncio.wrap_future(cf, loop=self._loop)
        task = asyncio.ensure_future(self._finish_chunk(chunk, fut))
        self._chunk_tasks.add(task)
        task.add_done_callback(self._chunk_tasks.discard)

    async def _finish_chunk(self, chunk: List[Job], fut: asyncio.Future) -> None:
        try:
            results = await fut
        except BaseException as exc:  # noqa: BLE001 - broken pool etc.
            results = [
                {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
            ] * len(chunk)
        finally:
            self._chunks_in_flight -= 1
            self._slot_free.set()
        now = self._loop.time()
        for job, res in zip(chunk, results):
            self._inflight.pop(job.key, None)
            if res.get("ok"):
                record = RunRecord.from_json(res["record"])
                job.sampler_ticks = res.get("sampler_ticks")
                if job.stream_path is None:
                    # streamed runs carry the sampler's footprint (extra
                    # events, quiescence time extended by up to one tick
                    # period) and must never alias the canonical record
                    # under this key
                    self.cache.put(job.key, record)
                self.metrics.jobs_completed += 1
                self.metrics.record_latency("run", now - job.enqueued_at)
                if not job.future.done():
                    job.future.set_result(record)
            else:
                self.metrics.jobs_failed += 1
                if not job.future.done():
                    job.future.set_exception(
                        JobFailed(res.get("error", "unknown worker error"))
                    )

    # ------------------------------------------------------------------
    async def _reap_loop(self) -> None:
        """Expire queued-but-unsubmitted jobs whose deadline passed."""
        while True:
            await asyncio.sleep(0.25)
            now = self._loop.time()
            for key, job in list(self._inflight.items()):
                if job.submitted or job.future.done():
                    continue
                if job.deadline is not None and now > job.deadline:
                    self.metrics.jobs_expired += 1
                    self._inflight.pop(key, None)
                    job.future.set_exception(
                        JobExpired(f"job waited {now - job.enqueued_at:.1f}s "
                                   "in queue past its TTL")
                    )

    # ------------------------------------------------------------------
    async def drain(self, timeout: Optional[float] = 30.0) -> bool:
        """Stop admissions, finish in-flight work, shut the pool down.

        Returns True when everything finished inside the timeout.
        """
        self.draining = True
        deadline = (
            self._loop.time() + timeout if timeout is not None else None
        )
        clean = True
        while self._inflight or (self._queue and self._queue.qsize()):
            if deadline is not None and self._loop.time() > deadline:
                clean = False
                break
            await asyncio.sleep(0.05)
        for task in (self._dispatcher, self._reaper):
            if task is not None:
                task.cancel()
        if self._chunk_tasks:
            await asyncio.gather(*list(self._chunk_tasks), return_exceptions=True)
        if self._executor is not None and self._owns_executor:
            self._executor.shutdown(wait=True, cancel_futures=True)
        return clean


__all__ = [
    "Backpressure",
    "Draining",
    "Job",
    "JobExpired",
    "JobFailed",
    "JobManager",
    "default_workers",
]
