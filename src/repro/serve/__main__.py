"""``python -m repro.serve`` — run the simulation job server.

Prints one ``serving on http://host:port`` line to stdout once bound
(machine-readable: the load generator and CI parse it), logs to stderr,
and drains gracefully on SIGTERM/SIGINT: the listener closes first, new
jobs get 503, in-flight simulations finish (bounded by
``--drain-timeout``), then the pool shuts down.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys

from ..perf.cache import RunCache
from .app import Server
from .jobs import JobManager, default_workers


def _log(msg: str) -> None:
    print(f"[serve] {msg}", file=sys.stderr, flush=True)


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve simulation/sweep requests over the perf cache.",
    )
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, default=8787,
                    help="listen port (0 picks a free one; default 8787)")
    ap.add_argument("--workers", type=int, default=None,
                    help="pool processes (default: NUMACHINE_JOBS or all cores)")
    ap.add_argument("--queue-depth", type=int, default=64,
                    help="admission-queue bound; beyond it requests get 429")
    ap.add_argument("--batch-max", type=int, default=8,
                    help="max points batched into one pool submission")
    ap.add_argument("--ttl", type=float, default=600.0,
                    help="default seconds a job may wait in queue before 504")
    ap.add_argument("--drain-timeout", type=float, default=60.0,
                    help="seconds to wait for in-flight jobs on shutdown")
    return ap


async def _amain(args) -> int:
    manager = JobManager(
        workers=args.workers if args.workers else default_workers(),
        queue_depth=args.queue_depth,
        batch_max=args.batch_max,
        default_ttl_s=args.ttl,
        cache=RunCache(),
    )
    server = Server(host=args.host, port=args.port, manager=manager, log=_log)
    host, port = await server.start()
    # the one stdout line: parseable by bench_serve --spawn and CI scripts
    print(f"serving on http://{host}:{port}", flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, stop.set)

    serve_task = asyncio.ensure_future(server.serve_forever())
    await stop.wait()
    _log("signal received; draining")
    serve_task.cancel()
    clean = await server.drain_and_stop(args.drain_timeout)
    return 0 if clean else 1


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(_amain(args))
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
