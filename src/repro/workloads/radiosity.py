"""Hierarchical radiosity (SPLASH-2 'Radiosity', batch mode).

Table 2: the Room scene in batch mode.  Without SPLASH's scene files the
geometry is a deterministic box room discretized into patches; iterative
gathering reproduces Radiosity's memory character — irregular task
parallelism over patches pulled from a shared work counter, reads of every
other patch's current radiosity (all-to-all, one word per patch per task),
and convergence detection through a shared accumulator under a lock.

Form factors use a real point-to-point disk approximation with visibility
ignored (the Room is convex here), so the solver genuinely converges:
tests check the radiosity vector against a host-side Jacobi solve of the
same system.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from ..cpu.ops import Compute
from .base import (
    BarrierFactory,
    SharedArray,
    Workload,
    fetch_add,
    spinlock_acquire,
    spinlock_release,
)

Vec = Tuple[float, float, float]


class Radiosity(Workload):
    name = "radiosity"
    paper_problem = "Room scene, batch mode"

    def __init__(self, patches_per_wall: int = 4, iterations: int = 4,
                 scale: float = 1.0) -> None:
        super().__init__(scale)
        if scale != 1.0:
            patches_per_wall = max(2, int(patches_per_wall * scale))
        self.ppw = patches_per_wall
        self.iterations = iterations
        self._build_room()

    def _build_room(self) -> None:
        """Six walls of a unit box, each ppw x ppw patches."""
        ppw = self.ppw
        self.centers: List[Vec] = []
        self.normals: List[Vec] = []
        self.areas: List[float] = []
        self.emit: List[float] = []
        self.rho: List[float] = []
        walls = [
            ((0.5, 0.5, 0.0), (0, 0, 1)),   # back
            ((0.5, 0.5, 1.0), (0, 0, -1)),  # front
            ((0.0, 0.5, 0.5), (1, 0, 0)),   # left
            ((1.0, 0.5, 0.5), (-1, 0, 0)),  # right
            ((0.5, 0.0, 0.5), (0, 1, 0)),   # floor
            ((0.5, 1.0, 0.5), (0, -1, 0)),  # ceiling
        ]
        area = (1.0 / ppw) ** 2
        idx = 0
        for w, (center, normal) in enumerate(walls):
            for a in range(ppw):
                for b in range(ppw):
                    u = (a + 0.5) / ppw
                    v = (b + 0.5) / ppw
                    if normal[0]:
                        p = (center[0], u, v)
                    elif normal[1]:
                        p = (u, center[1], v)
                    else:
                        p = (u, v, center[2])
                    self.centers.append(p)
                    self.normals.append(normal)
                    self.areas.append(area)
                    # the ceiling's central patches are the light source
                    is_light = w == 5 and abs(u - 0.5) < 0.3 and abs(v - 0.5) < 0.3
                    self.emit.append(1.0 if is_light else 0.0)
                    self.rho.append(0.2 if is_light else 0.5 + 0.3 * ((idx * 7) % 5) / 5.0)
                    idx += 1
        self.n = len(self.centers)

    # -- real disk-to-point form factor ---------------------------------
    def form_factor(self, i: int, j: int) -> float:
        if i == j:
            return 0.0
        ci, cj = self.centers[i], self.centers[j]
        d = (cj[0] - ci[0], cj[1] - ci[1], cj[2] - ci[2])
        d2 = d[0] ** 2 + d[1] ** 2 + d[2] ** 2
        if d2 < 1e-12:
            return 0.0
        ni, nj = self.normals[i], self.normals[j]
        cos_i = (ni[0] * d[0] + ni[1] * d[1] + ni[2] * d[2]) / math.sqrt(d2)
        cos_j = -(nj[0] * d[0] + nj[1] * d[1] + nj[2] * d[2]) / math.sqrt(d2)
        if cos_i <= 0 or cos_j <= 0:
            return 0.0
        return cos_i * cos_j * self.areas[j] / (math.pi * d2 + self.areas[j])

    def build(self, machine, cpus: Sequence[int]) -> None:
        self.barrier = BarrierFactory(cpus)
        n = self.n
        self.rad = SharedArray(machine, n, name="rad_b")       # current B_i
        self.rad_next = SharedArray(machine, n, name="rad_bn")
        self.taskq = SharedArray(machine, 1, name="rad_task")
        self.delta = SharedArray(machine, 2, name="rad_delta")  # [lock, sum]

    def thread_program(self, tid: int, cpus: Sequence[int]):
        n = self.n
        if tid == 0:
            for i in range(n):
                yield self.rad.write(i, self.emit[i])
                yield self.rad_next.write(i, 0.0)
            yield self.taskq.write(0, 0)
            yield self.delta.write(0, 0)
            yield self.delta.write(1, 0.0)
        yield self.barrier(tid)
        for it in range(self.iterations):
            local_delta = 0.0
            # gather: claim patches from the shared queue
            while True:
                i = yield from fetch_add(self.taskq.addr(0), 1)
                if i >= n:
                    break
                gathered = 0.0
                flops = 0
                for j in range(n):
                    bj = yield self.rad.read(j)
                    if bj:
                        gathered += self.form_factor(i, j) * bj
                        flops += 25
                old = yield self.rad.read(i)
                new = self.emit[i] + self.rho[i] * gathered
                local_delta += abs(new - old)
                yield self.rad_next.write(i, new)
                yield Compute(flops)
            yield from spinlock_acquire(self.delta.addr(0))
            acc = yield self.delta.read(1)
            yield self.delta.write(1, acc + local_delta)
            yield from spinlock_release(self.delta.addr(0))
            yield self.barrier(tid)
            if tid == 0:
                # publish the new radiosities and reset the queue
                for i in range(n):
                    v = yield self.rad_next.read(i)
                    yield self.rad.write(i, v)
                yield self.taskq.write(0, 0)
                yield self.delta.write(1, 0.0)
            yield self.barrier(tid)

    # ------------------------------------------------------------------
    def radiosities(self, machine) -> List[float]:
        return [machine.read_word(self.rad.addr(i)) for i in range(self.n)]

    def reference_solution(self) -> List[float]:
        """Host-side Jacobi with the same iteration count."""
        b = list(self.emit)
        for _ in range(self.iterations):
            nxt = []
            for i in range(self.n):
                gathered = sum(
                    self.form_factor(i, j) * b[j] for j in range(self.n) if b[j]
                )
                nxt.append(self.emit[i] + self.rho[i] * gathered)
            b = nxt
        return b
