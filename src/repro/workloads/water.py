"""Water molecular dynamics (SPLASH-2 'Water-Nsquared' and 'Water-Spatial').

Table 2: 512 molecules, 3 steps.  Scaled default: 64 molecules, 2 steps.

Both variants integrate the same Lennard-Jones-style point-molecule system
(a faithful simplification of SPLASH's flexible water model — the memory
behaviour of interest is force accumulation into shared per-molecule
arrays, not the intramolecular chemistry):

* **Nsquared**: every pair within half the pair matrix; forces on *other*
  threads' molecules are accumulated under per-molecule spinlocks —
  fine-grained synchronization with all-to-all sharing.
* **Spatial**: molecules live in a 3-D cell grid; threads own cell
  regions and only interact with neighbouring cells, giving the strong
  locality that puts Water-Spatial at the top of Fig. 14.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from ..cpu.ops import Compute
from .base import (
    BarrierFactory,
    SharedArray,
    Workload,
    block_range,
    spinlock_acquire,
    spinlock_release,
)


class _WaterBase(Workload):
    paper_problem = "512 molecules, 3 steps"

    def __init__(self, nmol: int = 64, steps: int = 2, scale: float = 1.0) -> None:
        super().__init__(scale)
        if scale != 1.0:
            nmol = max(8, int(nmol * scale))
        self.n = nmol
        self.steps = steps
        self.box = 4.0
        self.cutoff = 1.4
        self.dt = 0.002
        self.sigma2 = 0.64
        self.epsilon = 1.0

    def default_positions(self) -> List[Tuple[float, float, float]]:
        side = max(2, round(self.n ** (1 / 3) + 0.49))
        out = []
        i = 0
        for a in range(side):
            for b in range(side):
                for c in range(side):
                    if i >= self.n:
                        return out
                    jitter = ((i * 29) % 13) / 13.0 * 0.1
                    out.append((
                        (a + 0.5) * self.box / side + jitter,
                        (b + 0.5) * self.box / side + jitter,
                        (c + 0.5) * self.box / side + jitter,
                    ))
                    i += 1
        return out

    def build(self, machine, cpus: Sequence[int]) -> None:
        self.barrier = BarrierFactory(cpus)
        n = self.n
        self.pos = SharedArray(machine, 3 * n, name="water_pos")
        self.vel = SharedArray(machine, 3 * n, name="water_vel")
        self.frc = SharedArray(machine, 3 * n, name="water_frc")
        self.locks = SharedArray(machine, n, name="water_locks")
        self.pos0 = self.default_positions()

    # -- the LJ pair kernel (register math) -------------------------------
    def pair_force(self, pi, pj):
        dx = pj[0] - pi[0]
        dy = pj[1] - pi[1]
        dz = pj[2] - pi[2]
        d2 = dx * dx + dy * dy + dz * dz
        if d2 > self.cutoff * self.cutoff or d2 == 0.0:
            return None
        s2 = self.sigma2 / d2
        s6 = s2 * s2 * s2
        f = 24 * self.epsilon * s6 * (2 * s6 - 1) / d2
        return (f * dx, f * dy, f * dz)

    def _init_program(self, tid: int):
        if tid == 0:
            for i, (x, y, z) in enumerate(self.pos0):
                yield self.pos.write(3 * i, x)
                yield self.pos.write(3 * i + 1, y)
                yield self.pos.write(3 * i + 2, z)
                for d in range(3):
                    yield self.vel.write(3 * i + d, 0.0)
                yield self.locks.write(i, 0)
        yield self.barrier(tid)

    def _zero_forces(self, lo: int, hi: int):
        for i in range(lo, hi):
            for d in range(3):
                yield self.frc.write(3 * i + d, 0.0)

    def _integrate(self, lo: int, hi: int):
        for i in range(lo, hi):
            for d in range(3):
                v = yield self.vel.read(3 * i + d)
                f = yield self.frc.read(3 * i + d)
                p = yield self.pos.read(3 * i + d)
                v += f * self.dt
                p += v * self.dt
                # reflective walls keep molecules in the box
                if p < 0.0:
                    p, v = -p, -v
                if p > self.box:
                    p, v = 2 * self.box - p, -v
                yield self.vel.write(3 * i + d, v)
                yield self.pos.write(3 * i + d, p)
            yield Compute(20)

    def _read_pos(self, i: int):
        x = yield self.pos.read(3 * i)
        y = yield self.pos.read(3 * i + 1)
        z = yield self.pos.read(3 * i + 2)
        return (x, y, z)

    def _add_force(self, i: int, fx: float, fy: float, fz: float, locked: bool):
        if locked:
            yield from spinlock_acquire(self.locks.addr(i))
        for d, f in enumerate((fx, fy, fz)):
            v = yield self.frc.read(3 * i + d)
            yield self.frc.write(3 * i + d, v + f)
        if locked:
            yield from spinlock_release(self.locks.addr(i))

    # ------------------------------------------------------------------
    def kinetic_energy(self, machine) -> float:
        e = 0.0
        for i in range(self.n):
            for d in range(3):
                v = machine.read_word(self.vel.addr(3 * i + d))
                e += 0.5 * v * v
        return e

    def positions(self, machine) -> List[Tuple[float, float, float]]:
        return [
            tuple(machine.read_word(self.pos.addr(3 * i + d)) for d in range(3))
            for i in range(self.n)
        ]


class WaterNsquared(_WaterBase):
    name = "water_nsq"

    def thread_program(self, tid: int, cpus: Sequence[int]):
        n = self.n
        P = len(cpus)
        lo, hi = block_range(tid, P, n)
        yield from self._init_program(tid)
        for _step in range(self.steps):
            yield from self._zero_forces(lo, hi)
            yield self.barrier(tid)
            # half the pair matrix, rows interleaved for balance
            for i in range(tid, n, P):
                pi = yield from self._read_pos(i)
                acc = [0.0, 0.0, 0.0]
                flops = 0
                for j in range(i + 1, n):
                    pj = yield from self._read_pos(j)
                    f = self.pair_force(pi, pj)
                    flops += 12
                    if f is None:
                        continue
                    acc[0] += f[0]
                    acc[1] += f[1]
                    acc[2] += f[2]
                    yield from self._add_force(j, -f[0], -f[1], -f[2], locked=True)
                    flops += 30
                yield from self._add_force(i, acc[0], acc[1], acc[2], locked=True)
                yield Compute(flops)
            yield self.barrier(tid)
            yield from self._integrate(lo, hi)
            yield self.barrier(tid)


class WaterSpatial(_WaterBase):
    name = "water_spatial"

    def __init__(self, nmol: int = 128, steps: int = 2, scale: float = 1.0) -> None:
        super().__init__(nmol, steps, scale)
        self.cells_per_side = max(2, int(self.box / self.cutoff))

    def thread_program(self, tid: int, cpus: Sequence[int]):
        n = self.n
        P = len(cpus)
        lo, hi = block_range(tid, P, n)
        cs = self.cells_per_side
        yield from self._init_program(tid)
        for _step in range(self.steps):
            yield from self._zero_forces(lo, hi)
            yield self.barrier(tid)
            # read every position once, bin into cells (replicated read-only
            # pass, like SPLASH's per-processor cell lists)
            cells: Dict[Tuple[int, int, int], List[int]] = {}
            poses = []
            for i in range(n):
                p = yield from self._read_pos(i)
                poses.append(p)
                key = tuple(
                    min(cs - 1, max(0, int(c / self.box * cs))) for c in p
                )
                cells.setdefault(key, []).append(i)
            yield Compute(4 * n)
            # forces for my molecules from neighbouring cells only
            for i in range(lo, hi):
                pi = poses[i]
                key = tuple(
                    min(cs - 1, max(0, int(c / self.box * cs))) for c in pi
                )
                acc = [0.0, 0.0, 0.0]
                flops = 0
                for dx in (-1, 0, 1):
                    for dy in (-1, 0, 1):
                        for dz in (-1, 0, 1):
                            nk = (key[0] + dx, key[1] + dy, key[2] + dz)
                            for j in cells.get(nk, ()):
                                if j == i:
                                    continue
                                f = self.pair_force(pi, poses[j])
                                flops += 12
                                if f is not None:
                                    acc[0] += f[0]
                                    acc[1] += f[1]
                                    acc[2] += f[2]
                yield from self._add_force(i, acc[0], acc[1], acc[2], locked=False)
                yield Compute(flops)
            yield self.barrier(tid)
            yield from self._integrate(lo, hi)
            yield self.barrier(tid)
