"""Parallel radix sort (SPLASH-2 'Radix').

Table 2: 262144 keys, radix 1024.  Scaled default: 4096 keys, radix 256.

Each pass over one digit: (1) every thread histograms its block of keys,
(2) the per-thread histograms are combined into global digit offsets
(thread 0, after a barrier — the serialized prefix step that limits Radix's
speedup), (3) every thread permutes its keys into the destination array at
positions claimed from shared per-(thread,digit) offsets.  The permute's
scattered remote writes are the heavy all-to-all phase that drives radix
sort's high ring utilization in Fig. 17.
"""

from __future__ import annotations

from typing import List, Sequence

from ..cpu.ops import Compute
from .base import BarrierFactory, SharedArray, Workload, block_range


class RadixSort(Workload):
    name = "radix"
    paper_problem = "262144 keys, radix 1024"

    def __init__(self, n: int = 4096, radix: int = 256, key_bits: int = 16,
                 scale: float = 1.0) -> None:
        super().__init__(scale)
        if scale != 1.0:
            n = max(radix, int(n * scale))
        self.n = n
        self.radix = radix
        self.key_bits = key_bits
        digit_bits = radix.bit_length() - 1
        self.passes = -(-key_bits // digit_bits)
        self.digit_bits = digit_bits

    def default_input(self) -> List[int]:
        mask = (1 << self.key_bits) - 1
        return [(i * 40503 + 12345) & mask for i in range(self.n)]

    def build(self, machine, cpus: Sequence[int]) -> None:
        P = len(cpus)
        self.barrier = BarrierFactory(cpus)
        self.keys_a = SharedArray(machine, self.n, name="radix_a")
        self.keys_b = SharedArray(machine, self.n, name="radix_b")
        #: per-(thread, digit) counts, then turned into write offsets
        self.hist = SharedArray(machine, P * self.radix, name="radix_hist")
        #: per-thread digit-range totals for the parallel prefix step
        self.range_totals = SharedArray(machine, P, name="radix_ranges")
        self.input = self.default_input()

    def thread_program(self, tid: int, cpus: Sequence[int]):
        P = len(cpus)
        R = self.radix
        lo, hi = block_range(tid, P, self.n)
        if tid == 0:
            for i, k in enumerate(self.input):
                yield self.keys_a.write(i, k)
        yield self.barrier(tid)
        src, dst = self.keys_a, self.keys_b
        for pas in range(self.passes):
            shift = pas * self.digit_bits
            # (1) local histogram of my block
            counts = [0] * R
            for i in range(lo, hi):
                k = yield src.read(i)
                counts[(k >> shift) & (R - 1)] += 1
            yield Compute(hi - lo)
            for d in range(R):
                if counts[d]:
                    yield self.hist.write(tid * R + d, counts[d])
                else:
                    yield self.hist.write(tid * R + d, 0)
            yield self.barrier(tid)
            # (2) parallel prefix: thread t owns digit range [dlo, dhi) and
            # first publishes its range's total, then — knowing every range
            # total — turns the counts in its range into global offsets
            dlo = tid * R // P
            dhi = (tid + 1) * R // P
            range_total = 0
            counts_view = {}
            for d in range(dlo, dhi):
                for t in range(P):
                    c = yield self.hist.read(t * R + d)
                    counts_view[(t, d)] = c
                    range_total += c
            yield self.range_totals.write(tid, range_total)
            yield Compute(dhi - dlo)
            yield self.barrier(tid)
            offset = 0
            for t in range(tid):
                rt = yield self.range_totals.read(t)
                offset += rt
            for d in range(dlo, dhi):
                for t in range(P):
                    yield self.hist.write(t * R + d, offset)
                    offset += counts_view[(t, d)]
            yield Compute(P + (dhi - dlo))
            yield self.barrier(tid)
            # (3) permute my keys into the destination array
            offsets = [0] * R
            for d in range(R):
                offsets[d] = yield self.hist.read(tid * R + d)
            for i in range(lo, hi):
                k = yield src.read(i)
                d = (k >> shift) & (R - 1)
                yield dst.write(offsets[d], k)
                offsets[d] += 1
            yield Compute(2 * (hi - lo))
            yield self.barrier(tid)
            src, dst = dst, src
        self.final = src

    # ------------------------------------------------------------------
    def result(self, machine) -> List[int]:
        return [machine.read_word(self.final.addr(i)) for i in range(self.n)]
