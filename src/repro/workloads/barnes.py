"""Barnes-Hut N-body simulation (SPLASH-2 'Barnes').

Table 2: 16384 particles.  Scaled default: 256 bodies, 2 timesteps.

Per timestep: thread 0 builds the octree over the shared body positions
(the brief serial phase), a barrier, then every thread walks the *shared*
tree to compute forces on its block of bodies (read-mostly traversal of
cells — the phase whose excellent locality gives Barnes its near-ideal
speedup in Fig. 14), then integrates its own bodies (local writes).

The tree is stored in shared arrays (node center-of-mass, mass, children
indices), so traversals generate real remote reads that the network caches
replicate — the migration effect of Fig. 15.  Physics is a real softened
gravitational kernel with the standard opening criterion; tests compare a
tiny instance against the direct O(n^2) sum.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from ..cpu.ops import Compute
from .base import BarrierFactory, SharedArray, Workload, block_range

#: tree node fields, one shared word each
_NFIELDS = 8  # [mass, comx, comy, comz, child0..3 for 2D quad? -> see below]


class _TreeBuilder:
    """Host-side octree construction (executed by thread 0's generator via
    shared writes; the geometry math itself is register work)."""

    def __init__(self, theta: float = 0.6) -> None:
        self.theta = theta


class Barnes(Workload):
    name = "barnes"
    paper_problem = "16384 particles"

    #: node record layout in the shared node arrays
    # mass, comx, comy, comz, first_child, next_sibling, is_leaf/body_index, size
    F_MASS, F_X, F_Y, F_Z, F_CHILD, F_SIB, F_BODY, F_SIZE = range(8)

    def __init__(self, nbodies: int = 256, steps: int = 2, theta: float = 0.7,
                 scale: float = 1.0) -> None:
        super().__init__(scale)
        if scale != 1.0:
            nbodies = max(16, int(nbodies * scale))
        self.n = nbodies
        self.steps = steps
        self.theta = theta
        self.dt = 0.05
        self.eps2 = 0.05

    def default_bodies(self) -> List[Tuple[float, float, float, float]]:
        """(mass, x, y, z) in a deterministic Plummer-ish cloud."""
        out = []
        for i in range(self.n):
            a = 2 * math.pi * ((i * 61) % 97) / 97.0
            b = math.pi * ((i * 31) % 89) / 89.0
            r = 0.1 + 0.9 * ((i * 17) % 101) / 101.0
            out.append((
                1.0 / self.n,
                r * math.cos(a) * math.sin(b),
                r * math.sin(a) * math.sin(b),
                r * math.cos(b),
            ))
        return out

    def build(self, machine, cpus: Sequence[int]) -> None:
        self.barrier = BarrierFactory(cpus)
        n = self.n
        # body state: pos (3n), vel (3n), acc (3n), mass(n)
        self.pos = SharedArray(machine, 3 * n, name="bh_pos")
        self.vel = SharedArray(machine, 3 * n, name="bh_vel")
        self.acc = SharedArray(machine, 3 * n, name="bh_acc")
        self.mass = SharedArray(machine, n, name="bh_mass")
        # tree nodes: generous upper bound on node count
        self.max_nodes = 4 * n + 64
        self.nodes = SharedArray(machine, self.max_nodes * _NFIELDS, name="bh_nodes")
        self.tree_meta = SharedArray(machine, 2, name="bh_meta")  # root, count
        self.bodies0 = self.default_bodies()

    # ------------------------------------------------------------------
    # host-side octree (positions already read into locals)
    # ------------------------------------------------------------------
    def _build_tree(self, masses, xs, ys, zs):
        """Returns flat node records; children linked first-child/sibling."""
        nodes: List[List[float]] = []

        def new_node(size):
            nodes.append([0.0, 0.0, 0.0, 0.0, -1.0, -1.0, -1.0, size])
            return len(nodes) - 1

        half = max(
            max(abs(v) for v in xs), max(abs(v) for v in ys),
            max(abs(v) for v in zs),
        ) + 1e-9
        root = new_node(2 * half)

        # insert bodies into an octree kept as python dicts, then flatten
        tree = {root: {"bodies": [], "children": {}, "center": (0.0, 0.0, 0.0),
                       "size": 2 * half}}

        def insert(node, b, depth=0):
            entry = tree[node]
            if depth > 40:
                entry["bodies"].append(b)
                return
            if not entry["children"] and not entry["bodies"]:
                entry["bodies"].append(b)
                return
            if not entry["children"] and entry["bodies"]:
                olds = entry["bodies"]
                entry["bodies"] = []
                for ob in olds + [b]:
                    _push_child(node, ob, depth)
                return
            _push_child(node, b, depth)

        def _push_child(node, b, depth):
            entry = tree[node]
            cx, cy, cz = entry["center"]
            octant = ((xs[b] > cx) | ((ys[b] > cy) << 1) | ((zs[b] > cz) << 2))
            child = entry["children"].get(octant)
            if child is None:
                q = entry["size"] / 4
                ncx = cx + (q if xs[b] > cx else -q)
                ncy = cy + (q if ys[b] > cy else -q)
                ncz = cz + (q if zs[b] > cz else -q)
                child = new_node(entry["size"] / 2)
                tree[child] = {"bodies": [], "children": {},
                               "center": (ncx, ncy, ncz),
                               "size": entry["size"] / 2}
                entry["children"][octant] = child
            insert(child, b, depth + 1)

        for b in range(len(xs)):
            insert(root, b)

        # compute centers of mass bottom-up and link flat children
        def finalize(node):
            entry = tree[node]
            rec = nodes[node]
            m = x = y = z = 0.0
            kids = list(entry["children"].values())
            for c in kids:
                finalize(c)
                m += nodes[c][self.F_MASS]
                x += nodes[c][self.F_X] * nodes[c][self.F_MASS]
                y += nodes[c][self.F_Y] * nodes[c][self.F_MASS]
                z += nodes[c][self.F_Z] * nodes[c][self.F_MASS]
            for b in entry["bodies"]:
                m += masses[b]
                x += xs[b] * masses[b]
                y += ys[b] * masses[b]
                z += zs[b] * masses[b]
            rec[self.F_MASS] = m
            if m > 0:
                rec[self.F_X], rec[self.F_Y], rec[self.F_Z] = x / m, y / m, z / m
            # leaf marker: single body stored directly
            if not kids and len(entry["bodies"]) == 1:
                rec[self.F_BODY] = float(entry["bodies"][0])
            elif not kids and len(entry["bodies"]) > 1:
                rec[self.F_BODY] = -2.0 - 0.0  # multi-body leaf: treat as cell mass
            # link children as first-child / sibling chain
            prev = -1.0
            for c in reversed(kids):
                nodes[c][self.F_SIB] = prev
                prev = float(c)
            rec[self.F_CHILD] = prev
            return node

        finalize(root)
        return root, nodes

    # ------------------------------------------------------------------
    def thread_program(self, tid: int, cpus: Sequence[int]):
        n = self.n
        P = len(cpus)
        lo, hi = block_range(tid, P, n)
        if tid == 0:
            for i, (m, x, y, z) in enumerate(self.bodies0):
                yield self.mass.write(i, m)
                yield self.pos.write(3 * i, x)
                yield self.pos.write(3 * i + 1, y)
                yield self.pos.write(3 * i + 2, z)
                yield self.vel.write(3 * i, 0.0)
                yield self.vel.write(3 * i + 1, 0.0)
                yield self.vel.write(3 * i + 2, 0.0)
        yield self.barrier(tid)

        for _step in range(self.steps):
            # -- tree build (thread 0, serial phase) ----------------------
            if tid == 0:
                masses, xs, ys, zs = [], [], [], []
                for i in range(n):
                    masses.append((yield self.mass.read(i)))
                    xs.append((yield self.pos.read(3 * i)))
                    ys.append((yield self.pos.read(3 * i + 1)))
                    zs.append((yield self.pos.read(3 * i + 2)))
                root, nodes = self._build_tree(masses, xs, ys, zs)
                yield Compute(20 * n)
                for idx, rec in enumerate(nodes[: self.max_nodes]):
                    for f in range(_NFIELDS):
                        yield self.nodes.write(idx * _NFIELDS + f, rec[f])
                yield self.tree_meta.write(0, float(root))
                yield self.tree_meta.write(1, float(len(nodes)))
            yield self.barrier(tid)

            # -- force computation over my bodies --------------------------
            root = int((yield self.tree_meta.read(0)))
            theta2 = self.theta * self.theta
            for i in range(lo, hi):
                px = yield self.pos.read(3 * i)
                py = yield self.pos.read(3 * i + 1)
                pz = yield self.pos.read(3 * i + 2)
                ax = ay = az = 0.0
                stack = [root]
                flops = 0
                while stack:
                    node = stack.pop()
                    base = node * _NFIELDS
                    m = yield self.nodes.read(base + self.F_MASS)
                    if m == 0.0:
                        continue
                    cx = yield self.nodes.read(base + self.F_X)
                    cy = yield self.nodes.read(base + self.F_Y)
                    cz = yield self.nodes.read(base + self.F_Z)
                    size = yield self.nodes.read(base + self.F_SIZE)
                    body = yield self.nodes.read(base + self.F_BODY)
                    dx, dy, dz = cx - px, cy - py, cz - pz
                    d2 = dx * dx + dy * dy + dz * dz + self.eps2
                    flops += 10
                    if int(body) == i and body >= 0:
                        continue  # self leaf
                    child = yield self.nodes.read(base + self.F_CHILD)
                    is_leaf = child < 0
                    if is_leaf or size * size < theta2 * d2:
                        inv = m / (d2 * math.sqrt(d2))
                        ax += dx * inv
                        ay += dy * inv
                        az += dz * inv
                        flops += 10
                    else:
                        c = int(child)
                        while c >= 0:
                            stack.append(c)
                            sib = yield self.nodes.read(c * _NFIELDS + self.F_SIB)
                            c = int(sib)
                yield Compute(flops)
                yield self.acc.write(3 * i, ax)
                yield self.acc.write(3 * i + 1, ay)
                yield self.acc.write(3 * i + 2, az)
            yield self.barrier(tid)

            # -- integrate my bodies (leapfrog) ----------------------------
            for i in range(lo, hi):
                for d in range(3):
                    v = yield self.vel.read(3 * i + d)
                    a = yield self.acc.read(3 * i + d)
                    p = yield self.pos.read(3 * i + d)
                    v += a * self.dt
                    p += v * self.dt
                    yield self.vel.write(3 * i + d, v)
                    yield self.pos.write(3 * i + d, p)
                yield Compute(12)
            yield self.barrier(tid)

    # ------------------------------------------------------------------
    def accelerations(self, machine) -> List[Tuple[float, float, float]]:
        return [
            (
                machine.read_word(self.acc.addr(3 * i)),
                machine.read_word(self.acc.addr(3 * i + 1)),
                machine.read_word(self.acc.addr(3 * i + 2)),
            )
            for i in range(self.n)
        ]


def direct_forces(bodies, eps2: float):
    """O(n^2) reference accelerations for the same (mass, x, y, z) list."""
    n = len(bodies)
    out = []
    for i in range(n):
        _, xi, yi, zi = bodies[i]
        ax = ay = az = 0.0
        for j in range(n):
            if i == j:
                continue
            mj, xj, yj, zj = bodies[j]
            dx, dy, dz = xj - xi, yj - yi, zj - zi
            d2 = dx * dx + dy * dy + dz * dz + eps2
            inv = mj / (d2 * math.sqrt(d2))
            ax += dx * inv
            ay += dy * inv
            az += dz * inv
        out.append((ax, ay, az))
    return out
