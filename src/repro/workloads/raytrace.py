"""Ray tracing (SPLASH-2 'Raytrace').

Table 2: the Teapot geometry.  Without SPLASH's model files the scene is a
deterministic arrangement of spheres plus a ground plane — same memory
character: a read-only shared scene interrogated by every ray, dynamic
distribution of image tiles through a shared task-queue counter (the only
write-shared word, claimed with fetch-and-add), and private writes of each
thread's pixels into the shared framebuffer.

Primary rays plus one shadow ray and one specular bounce per hit — real
intersection geometry; the test renders the same scene host-side and
demands pixel-exact agreement.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from ..cpu.ops import Compute
from .base import BarrierFactory, SharedArray, Workload, fetch_add

Vec = Tuple[float, float, float]


def _sub(a: Vec, b: Vec) -> Vec:
    return (a[0] - b[0], a[1] - b[1], a[2] - b[2])


def _dot(a: Vec, b: Vec) -> float:
    return a[0] * b[0] + a[1] * b[1] + a[2] * b[2]


def _scale(a: Vec, s: float) -> Vec:
    return (a[0] * s, a[1] * s, a[2] * s)


def _add(a: Vec, b: Vec) -> Vec:
    return (a[0] + b[0], a[1] + b[1], a[2] + b[2])


def _norm(a: Vec) -> Vec:
    m = math.sqrt(_dot(a, a)) or 1.0
    return _scale(a, 1.0 / m)


class Raytrace(Workload):
    name = "raytrace"
    paper_problem = "Teapot geometry"

    #: scene record: 4 words per sphere (x, y, z, r) + 1 shade word
    SPHERE_WORDS = 5

    def __init__(self, image: int = 24, nspheres: int = 12, tile: int = 4,
                 scale: float = 1.0) -> None:
        super().__init__(scale)
        if scale != 1.0:
            image = max(8, int(image * scale))
        self.image = image
        self.nspheres = nspheres
        self.tile = tile
        self.light: Vec = (5.0, 8.0, -3.0)

    def default_spheres(self) -> List[Tuple[Vec, float, float]]:
        out = []
        for i in range(self.nspheres):
            a = 2 * math.pi * i / self.nspheres
            r = 0.35 + ((i * 7) % 5) * 0.06
            out.append((
                (2.0 * math.cos(a), 0.3 + 0.25 * ((i * 3) % 4), 4.0 + 2.0 * math.sin(a)),
                r,
                0.3 + 0.7 * ((i * 11) % 9) / 9.0,
            ))
        return out

    def build(self, machine, cpus: Sequence[int]) -> None:
        self.barrier = BarrierFactory(cpus)
        npx = self.image * self.image
        self.scene = SharedArray(machine, self.nspheres * self.SPHERE_WORDS,
                                 name="rt_scene")
        self.frame = SharedArray(machine, npx, name="rt_frame")
        self.taskq = SharedArray(machine, 1, name="rt_taskq")
        self.spheres0 = self.default_spheres()

    # ------------------------------------------------------------------
    # geometry (register math)
    # ------------------------------------------------------------------
    @staticmethod
    def _hit_sphere(orig: Vec, dir: Vec, center: Vec, radius: float) -> Optional[float]:
        oc = _sub(orig, center)
        b = 2.0 * _dot(oc, dir)
        c = _dot(oc, oc) - radius * radius
        disc = b * b - 4 * c
        if disc < 0:
            return None
        t = (-b - math.sqrt(disc)) / 2.0
        if t < 1e-6:
            t = (-b + math.sqrt(disc)) / 2.0
        return t if t > 1e-6 else None

    def _primary_ray(self, px: int, py: int) -> Tuple[Vec, Vec]:
        n = self.image
        x = (px + 0.5) / n * 2 - 1
        y = 1 - (py + 0.5) / n * 2
        return (0.0, 1.0, 0.0), _norm((x * 1.2, y * 1.2, 1.0))

    def shade_with_scene(self, spheres, px: int, py: int) -> float:
        """Trace one pixel against a host-side scene list (also used by the
        reference renderer in tests)."""
        orig, d = self._primary_ray(px, py)
        colour = 0.05
        weight = 1.0
        for _bounce in range(2):
            best_t, best = None, None
            for (c, r, shade) in spheres:
                t = self._hit_sphere(orig, d, c, r)
                if t is not None and (best_t is None or t < best_t):
                    best_t, best = t, (c, r, shade)
            if best is None:
                # ground plane at y = 0
                if d[1] < -1e-9:
                    t = -orig[1] / d[1]
                    p = _add(orig, _scale(d, t))
                    check = (int(math.floor(p[0])) + int(math.floor(p[2]))) & 1
                    colour += weight * (0.6 if check else 0.25)
                else:
                    colour += weight * 0.1  # sky
                break
            c, r, shade = best
            p = _add(orig, _scale(d, best_t))
            nrm = _norm(_sub(p, c))
            ldir = _norm(_sub(self.light, p))
            # shadow ray
            lit = 1.0
            for (c2, r2, _s2) in spheres:
                if c2 == c:
                    continue
                if self._hit_sphere(_add(p, _scale(nrm, 1e-4)), ldir, c2, r2):
                    lit = 0.25
                    break
            colour += weight * shade * max(0.0, _dot(nrm, ldir)) * lit
            # specular bounce
            d = _norm(_sub(d, _scale(nrm, 2 * _dot(d, nrm))))
            orig = _add(p, _scale(nrm, 1e-4))
            weight *= 0.3
        return round(colour, 9)

    # ------------------------------------------------------------------
    def thread_program(self, tid: int, cpus: Sequence[int]):
        n = self.image
        tiles_per_side = -(-n // self.tile)
        ntiles = tiles_per_side * tiles_per_side
        if tid == 0:
            for i, (c, r, shade) in enumerate(self.spheres0):
                base = i * self.SPHERE_WORDS
                yield self.scene.write(base, c[0])
                yield self.scene.write(base + 1, c[1])
                yield self.scene.write(base + 2, c[2])
                yield self.scene.write(base + 3, r)
                yield self.scene.write(base + 4, shade)
            yield self.taskq.write(0, 0)
        yield self.barrier(tid)
        # read the scene once (it is read-only; stays resident in caches)
        spheres = []
        for i in range(self.nspheres):
            base = i * self.SPHERE_WORDS
            x = yield self.scene.read(base)
            y = yield self.scene.read(base + 1)
            z = yield self.scene.read(base + 2)
            r = yield self.scene.read(base + 3)
            s = yield self.scene.read(base + 4)
            spheres.append(((x, y, z), r, s))
        while True:
            t = yield from fetch_add(self.taskq.addr(0), 1)
            if t >= ntiles:
                break
            ty, tx = divmod(t, tiles_per_side)
            for py in range(ty * self.tile, min(n, (ty + 1) * self.tile)):
                for px in range(tx * self.tile, min(n, (tx + 1) * self.tile)):
                    colour = self.shade_with_scene(spheres, px, py)
                    yield Compute(40 * self.nspheres)
                    yield self.frame.write(py * n + px, colour)
        yield self.barrier(tid)

    # ------------------------------------------------------------------
    def framebuffer(self, machine) -> List[float]:
        n = self.image
        return [machine.read_word(self.frame.addr(i)) for i in range(n * n)]
