"""The benchmark suite registry (paper Table 2).

Maps workload names to factories at three sizes:

* ``paper`` — the problem sizes of Table 2 (documented; far too large for
  cycle-level simulation in Python, provided for completeness),
* ``bench`` — the scaled sizes the benches run (shape-preserving),
* ``test`` — tiny sizes for the unit/integration tests.

``NUMACHINE_SCALE`` (a float environment variable) multiplies the bench
sizes for users with more patience.
"""

from __future__ import annotations

import os
from typing import Dict, List

from .barnes import Barnes
from .cholesky import Cholesky
from .fft import FFT
from .fmm import FMM
from .lu import LUContiguous, LUNoncontiguous
from .ocean import Ocean
from .radiosity import Radiosity
from .radix import RadixSort
from .raytrace import Raytrace
from .water import WaterNsquared, WaterSpatial


def env_scale() -> float:
    try:
        return float(os.environ.get("NUMACHINE_SCALE", "1.0"))
    except ValueError:
        return 1.0


#: name -> (paper size description, bench factory, test factory)
SUITE: Dict[str, Dict] = {
    "lu_contig": {
        "paper": "512x512 matrix, 16x16 blocks",
        "bench": lambda: LUContiguous(n=96, block=16),
        "test": lambda: LUContiguous(n=16, block=4),
        "kind": "kernel",
    },
    "lu_noncontig": {
        "paper": "512x512 matrix, 16x16 blocks",
        "bench": lambda: LUNoncontiguous(n=96, block=16),
        "test": lambda: LUNoncontiguous(n=16, block=4),
        "kind": "kernel",
    },
    "fft": {
        "paper": "65536 complex doubles (M=16)",
        "bench": lambda: FFT(n=1024),
        "test": lambda: FFT(n=256),
        "kind": "kernel",
    },
    "radix": {
        "paper": "262144 keys, radix 1024",
        "bench": lambda: RadixSort(n=4096, radix=128),
        "test": lambda: RadixSort(n=512, radix=64),
        "kind": "kernel",
    },
    "cholesky": {
        "paper": "tk18.O input file",
        "bench": lambda: Cholesky(nblocks=16, block=8, border=2),
        "test": lambda: Cholesky(nblocks=4, block=4, border=4),
        "kind": "kernel",
    },
    "barnes": {
        "paper": "16384 particles",
        "bench": lambda: Barnes(nbodies=128, steps=1),
        "test": lambda: Barnes(nbodies=32, steps=1),
        "kind": "app",
    },
    "fmm": {
        "paper": "16384 particles",
        "bench": lambda: FMM(nparticles=96, grid=4),
        "test": lambda: FMM(nparticles=32, grid=4),
        "kind": "app",
    },
    "ocean": {
        "paper": "258x258 grid",
        "bench": lambda: Ocean(n=50, sweeps=3),
        "test": lambda: Ocean(n=12, sweeps=3),
        "kind": "app",
    },
    "water_nsq": {
        "paper": "512 molecules, 3 steps",
        "bench": lambda: WaterNsquared(nmol=48, steps=1),
        "test": lambda: WaterNsquared(nmol=16, steps=1),
        "kind": "app",
    },
    "water_spatial": {
        "paper": "512 molecules, 3 steps",
        "bench": lambda: WaterSpatial(nmol=64, steps=1),
        "test": lambda: WaterSpatial(nmol=27, steps=1),
        "kind": "app",
    },
    "raytrace": {
        "paper": "Teapot geometry",
        "bench": lambda: Raytrace(image=16, nspheres=10),
        "test": lambda: Raytrace(image=8, nspheres=6),
        "kind": "app",
    },
    "radiosity": {
        "paper": "Room scene, batch mode",
        "bench": lambda: Radiosity(patches_per_wall=3, iterations=2),
        "test": lambda: Radiosity(patches_per_wall=2, iterations=2),
        "kind": "app",
    },
}

#: Fig. 13's kernels and Fig. 14's applications, in the paper's legends
FIG13_KERNELS: List[str] = ["radix", "lu_contig", "lu_noncontig", "fft", "cholesky"]
FIG14_APPS: List[str] = [
    "water_spatial", "radiosity", "barnes", "water_nsq", "ocean", "fmm", "raytrace",
]
#: the six workloads shown in Figs. 15-18
FIG15_APPS: List[str] = ["barnes", "radix", "fft", "lu_contig", "ocean", "water_nsq"]


def make(name: str, size: str = "bench"):
    """Instantiate a suite workload at the given size."""
    entry = SUITE[name]
    wl = entry[size]()
    scale = env_scale()
    if scale != 1.0 and size == "bench":
        wl = entry["bench"]()  # factories are cheap; rebuild with scale
        wl.scale = scale
    return wl
