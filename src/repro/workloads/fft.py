"""1-D FFT, radix-sqrt(n) six-step algorithm (SPLASH-2 'FFT').

Table 2: 65536 complex doubles (M=16).  Scaled default: 4096 points.

The n-point dataset is viewed as a sqrt(n) x sqrt(n) matrix of complex
values (one simulated word each).  The six steps: transpose, per-row FFTs,
twiddle multiply, transpose, per-row FFTs, transpose.  Rows are divided in
contiguous bands across threads; the transposes are the all-to-all
communication phase whose remote traffic dominates — exactly the behaviour
that makes FFT's speedup sub-linear in Fig. 13.

The complex arithmetic is real: tests check the result against a direct
DFT (or ``numpy.fft``) of the same input.
"""

from __future__ import annotations

import cmath
import math
from typing import List, Sequence

from ..cpu.ops import Compute
from .base import BarrierFactory, SharedMatrix, Workload, block_range


def _fft_inplace(row: List[complex]) -> None:
    """Iterative radix-2 Cooley-Tukey on a Python list."""
    n = len(row)
    j = 0
    for i in range(1, n):
        bit = n >> 1
        while j & bit:
            j ^= bit
            bit >>= 1
        j |= bit
        if i < j:
            row[i], row[j] = row[j], row[i]
    length = 2
    while length <= n:
        ang = -2 * math.pi / length
        wl = complex(math.cos(ang), math.sin(ang))
        for i in range(0, n, length):
            w = 1 + 0j
            half = length >> 1
            for k in range(i, i + half):
                u = row[k]
                v = row[k + half] * w
                row[k] = u + v
                row[k + half] = u - v
                w *= wl
        length <<= 1


class FFT(Workload):
    name = "fft"
    paper_problem = "65536 complex doubles (M=16)"

    def __init__(self, n: int = 4096, scale: float = 1.0) -> None:
        super().__init__(scale)
        if scale != 1.0:
            n = int(n * scale)
        m = 1
        while m * m < n:
            m *= 2
        if m * m != n:
            raise ValueError("n must be an even power of two")
        self.n = n
        self.m = m  # matrix is m x m

    def default_input(self) -> List[complex]:
        return [
            complex(((i * 37) % 101) / 101.0, ((i * 61) % 89) / 89.0)
            for i in range(self.n)
        ]

    def build(self, machine, cpus: Sequence[int]) -> None:
        self.barrier = BarrierFactory(cpus)
        m = self.m
        self.src = SharedMatrix(machine, m, m, name="fft_src")
        self.dst = SharedMatrix(machine, m, m, name="fft_dst")
        self.input = self.default_input()

    def _read_row(self, mat: SharedMatrix, r: int):
        row = []
        for c in range(self.m):
            v = yield mat.read(r, c)
            row.append(v)
        return row

    def _write_row(self, mat: SharedMatrix, r: int, row) -> None:
        for c in range(self.m):
            yield mat.write(r, c, row[c])

    def _transpose_band(self, src: SharedMatrix, dst: SharedMatrix,
                        lo: int, hi: int):
        """dst[r][c] = src[c][r] for the thread's destination rows — the
        all-to-all step: reads stride across every other thread's band."""
        for r in range(lo, hi):
            for c in range(self.m):
                v = yield src.read(c, r)
                yield dst.write(r, c, v)

    def thread_program(self, tid: int, cpus: Sequence[int]):
        m = self.m
        lo, hi = block_range(tid, len(cpus), m)
        if tid == 0:
            for r in range(m):
                for c in range(m):
                    yield self.src.write(r, c, self.input[r * m + c])
        yield self.barrier(tid)
        # step 1: transpose src -> dst
        yield from self._transpose_band(self.src, self.dst, lo, hi)
        yield self.barrier(tid)
        # step 2: FFT each of my rows of dst
        for r in range(lo, hi):
            row = yield from self._read_row(self.dst, r)
            _fft_inplace(row)
            yield Compute(5 * m * max(1, int(math.log2(m))))
            # step 3: twiddle: dst'[r][c] = W^(r*c) * row[c]
            for c in range(m):
                w = cmath.exp(-2j * math.pi * r * c / self.n)
                row[c] *= w
            yield Compute(6 * m)
            yield from self._write_row(self.dst, r, row)
        yield self.barrier(tid)
        # step 4: transpose dst -> src
        yield from self._transpose_band(self.dst, self.src, lo, hi)
        yield self.barrier(tid)
        # step 5: FFT each of my rows of src
        for r in range(lo, hi):
            row = yield from self._read_row(self.src, r)
            _fft_inplace(row)
            yield Compute(5 * m * max(1, int(math.log2(m))))
            yield from self._write_row(self.src, r, row)
        yield self.barrier(tid)
        # step 6: transpose src -> dst (final order)
        yield from self._transpose_band(self.src, self.dst, lo, hi)
        yield self.barrier(tid)

    # ------------------------------------------------------------------
    def result(self, machine) -> List[complex]:
        """Collect the transform output (tests only)."""
        m = self.m
        out = []
        for r in range(m):
            for c in range(m):
                out.append(machine.read_word(self.dst.addr(r, c)))
        return out


def reference_dft(x: List[complex]) -> List[complex]:
    """O(n log n) reference using the same radix-2 kernel."""
    row = list(x)
    _fft_inplace(row)
    return row
