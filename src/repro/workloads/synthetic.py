"""Synthetic microbenchmarks.

Not part of SPLASH-2 — these isolate single architectural behaviours for
the unit benches, ablations, and stress tests:

* :class:`UniformAccess` — independent random reads/writes over a large
  region (bandwidth / NUMA baseline; no sharing).
* :class:`HotSpot` — all processors hammer one station's memory (the
  bisection / contention worst case the paper warns about).
* :class:`ProducerConsumer` — pairwise flag-passing (message-passing-style
  sharing; exercises ordered invalidations and SC).
* :class:`EurekaSpin` — many spinners on one word, one writer: the §3.2
  "update of shared data" motivating pattern (used by the softctl example).
* :class:`FlushStorm` — every processor flushes a dirty working set to
  remote homes simultaneously ("many processors simultaneously flush
  modified data", the flow-control stress of §2.4).
"""

from __future__ import annotations

from typing import Sequence

from ..cpu.ops import AtomicRMW, Compute, Read, SoftOp, Write
from .base import BarrierFactory, SharedArray, Workload


class UniformAccess(Workload):
    name = "uniform"

    def __init__(self, words: int = 2048, ops: int = 400, read_frac: float = 0.7,
                 scale: float = 1.0) -> None:
        super().__init__(scale)
        self.words = words
        self.ops = int(ops * scale) if scale != 1.0 else ops
        self.read_frac = read_frac

    def build(self, machine, cpus: Sequence[int]) -> None:
        self.barrier = BarrierFactory(cpus)
        self.arr = SharedArray(machine, self.words, name="uni")

    def thread_program(self, tid: int, cpus: Sequence[int]):
        yield self.barrier(tid)
        state = (tid * 2654435761 + 12345) & 0xFFFFFFFF
        for k in range(self.ops):
            state = (state * 1103515245 + 12345) & 0x7FFFFFFF
            idx = state % self.words
            if (state >> 16) % 100 < self.read_frac * 100:
                yield self.arr.read(idx)
            else:
                yield self.arr.write(idx, tid * 1000 + k)
            yield Compute(8)
        yield self.barrier(tid)


class HotSpot(Workload):
    name = "hotspot"

    def __init__(self, words: int = 64, ops: int = 200, hot_station: int = 0,
                 scale: float = 1.0) -> None:
        super().__init__(scale)
        self.words = words
        self.ops = int(ops * scale) if scale != 1.0 else ops
        self.hot_station = hot_station

    def build(self, machine, cpus: Sequence[int]) -> None:
        self.barrier = BarrierFactory(cpus)
        self.arr = SharedArray(
            machine, self.words, placement=f"local:{self.hot_station}",
            name="hot",
        )

    def thread_program(self, tid: int, cpus: Sequence[int]):
        yield self.barrier(tid)
        for k in range(self.ops):
            idx = (tid * 7 + k) % self.words
            if k % 3:
                yield self.arr.read(idx)
            else:
                yield self.arr.write(idx, k)
            yield Compute(4)
        yield self.barrier(tid)


class ProducerConsumer(Workload):
    name = "prodcons"

    def __init__(self, rounds: int = 20, payload: int = 8, scale: float = 1.0) -> None:
        super().__init__(scale)
        self.rounds = int(rounds * scale) if scale != 1.0 else rounds
        self.payload = payload

    def build(self, machine, cpus: Sequence[int]) -> None:
        self.barrier = BarrierFactory(cpus)
        pairs = len(cpus) // 2
        self.flags = SharedArray(machine, max(1, pairs), name="pc_flags")
        self.data = SharedArray(machine, max(1, pairs) * self.payload, name="pc_data")

    def thread_program(self, tid: int, cpus: Sequence[int]):
        pairs = len(cpus) // 2
        yield self.barrier(tid)
        if pairs == 0:
            return
        pair = tid % pairs
        producer = tid < pairs
        base = pair * self.payload
        if producer:
            for r in range(1, self.rounds + 1):
                for w in range(self.payload):
                    yield self.data.write(base + w, r * 100 + w)
                yield self.flags.write(pair, r)
                # wait for the consumer's ack
                while True:
                    v = yield self.flags.read(pair)
                    if v == -r:
                        break
        else:
            for r in range(1, self.rounds + 1):
                while True:
                    v = yield self.flags.read(pair)
                    if v == r:
                        break
                total = 0
                for w in range(self.payload):
                    d = yield self.data.read(base + w)
                    total += d
                expect = sum(r * 100 + w for w in range(self.payload))
                if total != expect:
                    raise AssertionError(
                        f"SC violation: consumer {tid} round {r} saw stale data "
                        f"({total} != {expect})"
                    )
                yield self.flags.write(pair, -r)
        yield self.barrier(tid)


class EurekaSpin(Workload):
    """One writer announces a result to P-1 spinners; optionally using the
    §3.2 software multicast update instead of plain invalidation."""

    name = "eureka"

    def __init__(self, announcements: int = 10, use_update: bool = False,
                 scale: float = 1.0) -> None:
        super().__init__(scale)
        self.rounds = int(announcements * scale) if scale != 1.0 else announcements
        self.use_update = use_update

    def build(self, machine, cpus: Sequence[int]) -> None:
        self.barrier = BarrierFactory(cpus)
        self.word = SharedArray(machine, 8, placement="local:0", name="eureka")
        self.acks = SharedArray(machine, 1, name="eureka_acks")

    def thread_program(self, tid: int, cpus: Sequence[int]):
        P = len(cpus)
        if tid == 0:
            yield self.word.write(0, 0)
            yield self.acks.write(0, 0)
        yield self.barrier(tid)
        for r in range(1, self.rounds + 1):
            if tid == 0:
                if self.use_update:
                    # make sure we hold a copy, then multicast the update
                    yield self.word.read(0)
                    yield SoftOp("update_shared",
                                 {"addr": self.word.addr(0), "value": r})
                else:
                    yield self.word.write(0, r)
                # wait for everyone to see it
                while True:
                    a = yield self.acks.read(0)
                    if a >= (P - 1) * r:
                        break
            else:
                while True:
                    v = yield self.word.read(0)
                    if v >= r:
                        break
                yield AtomicRMW(self.acks.addr(0), lambda x: x + 1)
        yield self.barrier(tid)


class FlushStorm(Workload):
    """Dirty a private working set of remote lines, then flush everything at
    once — the §2.4 flow-control worst case."""

    name = "flushstorm"

    def __init__(self, lines_per_cpu: int = 32, scale: float = 1.0) -> None:
        super().__init__(scale)
        self.lines = int(lines_per_cpu * scale) if scale != 1.0 else lines_per_cpu

    def build(self, machine, cpus: Sequence[int]) -> None:
        self.barrier = BarrierFactory(cpus)
        cfg = machine.config
        self.words_per_line = cfg.line_bytes // cfg.word_bytes
        # every cpu gets lines homed on the *next* station (all remote)
        self.regions = []
        for cpu in cpus:
            station = cpu // cfg.cpus_per_station
            target = (station + 1) % cfg.num_stations
            self.regions.append(machine.allocate(
                self.lines * cfg.line_bytes,
                placement=f"local:{target}",
                name=f"storm_{cpu}",
            ))
        self.line_bytes = cfg.line_bytes

    def thread_program(self, tid: int, cpus: Sequence[int]):
        region = self.regions[tid]
        yield self.barrier(tid)
        # dirty the whole set
        for i in range(self.lines):
            yield Write(region.addr(i * self.line_bytes), tid * 10000 + i)
        yield self.barrier(tid)
        # flush simultaneously via software write-backs
        for i in range(self.lines):
            yield SoftOp("writeback", {"addr": region.addr(i * self.line_bytes)})
        yield self.barrier(tid)
        # verify nothing was lost
        for i in range(self.lines):
            v = yield Read(region.addr(i * self.line_bytes))
            if v != tid * 10000 + i:
                raise AssertionError(f"flush lost data: cpu {tid} line {i} = {v}")
        yield self.barrier(tid)
