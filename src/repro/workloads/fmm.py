"""Fast Multipole Method N-body (SPLASH-2 'FMM').

Table 2: 16384 particles.  Scaled default: 128 particles, order-8
expansions on a 2-D uniform grid.

The reproduction keeps FMM's memory structure — particles binned into
cells, per-cell multipole moments built in parallel (P2M), far-field
interactions evaluated by reading *other* cells' moment arrays
(the moment reads are the all-to-all-ish sharing), and near-field
direct particle-particle sums with neighbouring cells — while
simplifying the translation chain: far cells are evaluated
multipole-to-particle (M2P) instead of M2L/L2L, which preserves both
the arithmetic (true complex multipole expansions of the 2-D log
potential) and the sharing pattern at these scales.  Tests compare the
resulting potentials against the direct O(n^2) sum.
"""

from __future__ import annotations

import cmath
import math
from typing import List, Sequence, Tuple

from ..cpu.ops import Compute
from .base import BarrierFactory, SharedArray, Workload, block_range


class FMM(Workload):
    name = "fmm"
    paper_problem = "16384 particles"

    def __init__(self, nparticles: int = 128, grid: int = 4, order: int = 8,
                 scale: float = 1.0) -> None:
        super().__init__(scale)
        if scale != 1.0:
            nparticles = max(16, int(nparticles * scale))
        self.n = nparticles
        self.grid = grid          # grid x grid cells
        self.order = order

    def default_particles(self) -> List[Tuple[complex, float]]:
        """(position, charge) pairs in the unit square."""
        out = []
        for i in range(self.n):
            x = ((i * 37) % 101) / 101.0
            y = ((i * 59) % 97) / 97.0
            q = 1.0 + ((i * 13) % 7) / 7.0
            out.append((complex(x, y), q))
        return out

    def build(self, machine, cpus: Sequence[int]) -> None:
        self.barrier = BarrierFactory(cpus)
        n, g, p = self.n, self.grid, self.order
        self.pos = SharedArray(machine, n, name="fmm_pos")      # complex
        self.chg = SharedArray(machine, n, name="fmm_chg")
        self.pot = SharedArray(machine, n, name="fmm_pot")      # complex out
        #: per cell: moment[0..p-1] (complex) + total charge
        self.moments = SharedArray(machine, g * g * (p + 1), name="fmm_mom")
        self.particles0 = self.default_particles()
        # host-side static binning (deterministic from initial positions)
        self.cell_of: List[int] = []
        self.cell_members: List[List[int]] = [[] for _ in range(g * g)]
        for i, (z, _q) in enumerate(self.particles0):
            cx = min(g - 1, int(z.real * g))
            cy = min(g - 1, int(z.imag * g))
            c = cy * g + cx
            self.cell_of.append(c)
            self.cell_members[c].append(i)

    def cell_center(self, c: int) -> complex:
        g = self.grid
        cx, cy = c % g, c // g
        return complex((cx + 0.5) / g, (cy + 0.5) / g)

    def _adjacent(self, a: int, b: int) -> bool:
        g = self.grid
        ax, ay = a % g, a // g
        bx, by = b % g, b // g
        return abs(ax - bx) <= 1 and abs(ay - by) <= 1

    def thread_program(self, tid: int, cpus: Sequence[int]):
        n, g, p = self.n, self.grid, self.order
        P = len(cpus)
        ncells = g * g
        if tid == 0:
            for i, (z, q) in enumerate(self.particles0):
                yield self.pos.write(i, z)
                yield self.chg.write(i, q)
        yield self.barrier(tid)

        # -- P2M: each thread builds moments for its block of cells -------
        clo, chi = block_range(tid, P, ncells)
        for c in range(clo, chi):
            zc = self.cell_center(c)
            mom = [0j] * p
            total = 0.0
            flops = 0
            for i in self.cell_members[c]:
                z = yield self.pos.read(i)
                q = yield self.chg.read(i)
                dz = z - zc
                term = q + 0j
                for k in range(p):
                    mom[k] += term
                    term *= dz
                total += q
                flops += 4 * p
            base = c * (p + 1)
            for k in range(p):
                yield self.moments.write(base + k, mom[k])
            yield self.moments.write(base + p, total)
            yield Compute(flops)
        yield self.barrier(tid)

        # -- evaluation: far cells by M2P, near cells by P2P ---------------
        plo, phi = block_range(tid, P, n)
        for i in range(plo, phi):
            zi = yield self.pos.read(i)
            acc = 0j
            my_cell = self.cell_of[i]
            flops = 0
            for c in range(ncells):
                if self._adjacent(my_cell, c):
                    # near field: direct pairwise
                    for j in self.cell_members[c]:
                        if j == i:
                            continue
                        zj = yield self.pos.read(j)
                        qj = yield self.chg.read(j)
                        acc += qj * cmath.log(zi - zj)
                        flops += 20
                else:
                    # far field: evaluate the cell's multipole expansion
                    zc = self.cell_center(c)
                    base = c * (p + 1)
                    total = yield self.moments.read(base + p)
                    if total == 0.0:
                        continue
                    dz = zi - zc
                    acc += total * cmath.log(dz)
                    inv = 1.0 / dz
                    powk = inv
                    for k in range(1, p):
                        mk = yield self.moments.read(base + k)
                        acc -= mk * powk / k
                        powk *= inv
                    flops += 10 * p
            # the physical potential is the real part (the imaginary
            # part is branch-cut dependent and not meaningful)
            yield self.pot.write(i, acc.real)
            yield Compute(flops)
        yield self.barrier(tid)

    # ------------------------------------------------------------------
    def potentials(self, machine) -> List[float]:
        return [machine.read_word(self.pot.addr(i)) for i in range(self.n)]


def direct_potentials(particles: List[Tuple[complex, float]]) -> List[float]:
    out = []
    for i, (zi, _qi) in enumerate(particles):
        acc = 0.0
        for j, (zj, qj) in enumerate(particles):
            if i != j:
                acc += qj * math.log(abs(zi - zj))
        out.append(acc)
    return out
