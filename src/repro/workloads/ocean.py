"""Ocean current simulation (SPLASH-2 'Ocean', contiguous partitions).

Table 2: 258x258 grid.  Scaled default: 34x34 (grid size = 2^k + 2 with a
one-cell border, matching SPLASH's convention).

The computational core reproduced here is the red-black Gauss-Seidel
(SOR) solver that dominates Ocean's execution: threads own contiguous bands
of rows; every half-sweep updates one colour using the four neighbours, so
the only communication is the band-boundary rows (nearest-neighbour
sharing — low ring traffic, good speedup).  Convergence is decided by a
global residual reduction accumulated under a spinlock, and sweeps are
separated by barriers.

The arithmetic is a real Poisson solve: tests check the residual actually
drops below tolerance.
"""

from __future__ import annotations

from typing import Sequence

from ..cpu.ops import Compute
from .base import (
    BarrierFactory,
    SharedArray,
    SharedMatrix,
    Workload,
    block_range,
    spinlock_acquire,
    spinlock_release,
)


class Ocean(Workload):
    name = "ocean"
    paper_problem = "258x258 grid"

    def __init__(self, n: int = 34, sweeps: int = 6, omega: float = 1.4,
                 scale: float = 1.0) -> None:
        super().__init__(scale)
        if scale != 1.0:
            n = max(10, int(n * scale))
        self.n = n
        self.sweeps = sweeps
        self.omega = omega

    def rhs(self, i: int, j: int) -> float:
        return ((i * 13 + j * 7) % 11 - 5) / 11.0

    def build(self, machine, cpus: Sequence[int]) -> None:
        self.barrier = BarrierFactory(cpus)
        n = self.n
        self.grid = SharedMatrix(machine, n, n, name="ocean_grid")
        self.residual = SharedArray(machine, 2, name="ocean_res")  # [lock, sum]
        self.h2 = 1.0 / ((n - 1) * (n - 1))

    def thread_program(self, tid: int, cpus: Sequence[int]):
        n = self.n
        P = len(cpus)
        lo, hi = block_range(tid, P, n - 2)
        lo, hi = lo + 1, hi + 1          # interior rows only
        if tid == 0:
            for i in range(n):
                for j in range(n):
                    yield self.grid.write(i, j, 0.0)
            yield self.residual.write(0, 0)
            yield self.residual.write(1, 0.0)
        yield self.barrier(tid)
        omega = self.omega
        for sweep in range(self.sweeps):
            local_res = 0.0
            for colour in (0, 1):
                for i in range(lo, hi):
                    flops = 0
                    for j in range(1 + (i + colour) % 2, n - 1, 2):
                        up = yield self.grid.read(i - 1, j)
                        down = yield self.grid.read(i + 1, j)
                        left = yield self.grid.read(i, j - 1)
                        right = yield self.grid.read(i, j + 1)
                        old = yield self.grid.read(i, j)
                        gs = 0.25 * (up + down + left + right
                                     - self.h2 * self.rhs(i, j))
                        new = old + omega * (gs - old)
                        local_res += abs(new - old)
                        yield self.grid.write(i, j, new)
                        flops += 10
                    yield Compute(flops)
                yield self.barrier(tid)
            # global residual reduction under the spinlock
            yield from spinlock_acquire(self.residual.addr(0))
            acc = yield self.residual.read(1)
            yield self.residual.write(1, acc + local_res)
            yield from spinlock_release(self.residual.addr(0))
            yield self.barrier(tid)
            if tid == 0:
                yield self.residual.write(1, 0.0)
            yield self.barrier(tid)

    # ------------------------------------------------------------------
    def residual_norm(self, machine) -> float:
        """Max-norm of the discrete Poisson residual (tests)."""
        n = self.n
        g = [
            [machine.read_word(self.grid.addr(i, j)) for j in range(n)]
            for i in range(n)
        ]
        worst = 0.0
        for i in range(1, n - 1):
            for j in range(1, n - 1):
                r = (g[i - 1][j] + g[i + 1][j] + g[i][j - 1] + g[i][j + 1]
                     - 4 * g[i][j] - self.h2 * self.rhs(i, j))
                worst = max(worst, abs(r))
        return worst
