"""Workloads: shared-memory programming layer + the SPLASH-2-like suite."""

from .base import (
    BarrierFactory,
    SharedArray,
    SharedMatrix,
    Workload,
    WorkloadResult,
    block_range,
    fetch_add,
    spinlock_acquire,
    spinlock_release,
)
from .suite import FIG13_KERNELS, FIG14_APPS, FIG15_APPS, SUITE, make

__all__ = [
    "BarrierFactory",
    "SharedArray",
    "SharedMatrix",
    "Workload",
    "WorkloadResult",
    "block_range",
    "fetch_add",
    "spinlock_acquire",
    "spinlock_release",
    "FIG13_KERNELS",
    "FIG14_APPS",
    "FIG15_APPS",
    "SUITE",
    "make",
]
