"""Shared-memory programming layer for workloads.

Workload *programs* are generators over :mod:`repro.cpu.ops`.  This module
provides the conveniences real SPLASH-2 code gets from its runtime:

* :class:`SharedArray` / :class:`SharedMatrix` — typed views over an
  allocated region, yielding word addresses;
* :class:`BarrierFactory` — numbered hardware barriers over a CPU set;
* :func:`spinlock_acquire` / :func:`spinlock_release` — test-and-set locks
  with spin-read backoff (generating the real coherence traffic locks cost);
* :func:`fetch_add` — atomic counters for task queues;
* :class:`Workload` — the interface every kernel/app implements, carrying
  the paper's Table 2 problem-size defaults and a scale factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..cpu.ops import AtomicRMW, Barrier, Read, Write
from ..system.machine import Machine


class SharedArray:
    """A 1-D array of 8-byte words in simulated shared memory."""

    def __init__(self, machine: Machine, n: int, placement="round_robin",
                 name: Optional[str] = None) -> None:
        self.n = n
        self.word = machine.config.word_bytes
        self.region = machine.allocate(n * self.word, placement=placement, name=name)

    def addr(self, i: int) -> int:
        return self.region.addr(i * self.word)

    def read(self, i: int) -> Read:
        return Read(self.addr(i))

    def write(self, i: int, v) -> Write:
        return Write(self.addr(i), v)


class SharedMatrix:
    """A 2-D row-major matrix of words (used by LU, Ocean, FFT)."""

    def __init__(self, machine: Machine, rows: int, cols: int,
                 placement="round_robin", name: Optional[str] = None) -> None:
        self.rows = rows
        self.cols = cols
        self.word = machine.config.word_bytes
        self.region = machine.allocate(
            rows * cols * self.word, placement=placement, name=name
        )

    def addr(self, r: int, c: int) -> int:
        return self.region.addr((r * self.cols + c) * self.word)

    def read(self, r: int, c: int) -> Read:
        return Read(self.addr(r, c))

    def write(self, r: int, c: int, v) -> Write:
        return Write(self.addr(r, c), v)


class BarrierFactory:
    """Hands out consecutively numbered barriers over a fixed CPU set.

    SPMD programs hit the same textual barriers in the same order, so each
    thread keeps its own position counter (keyed by ``tid``); the i-th
    barrier executed by every thread is barrier id ``i``.  The id's parity
    selects which of the two sense-alternating hardware barrier registers
    is used (see :class:`repro.cpu.processor.Processor`).
    """

    def __init__(self, cpus: Sequence[int]) -> None:
        self.cpus = tuple(cpus)
        self._position: Dict[int, int] = {}

    def __call__(self, tid: int = 0) -> Barrier:
        bid = self._position.get(tid, 0)
        self._position[tid] = bid + 1
        return Barrier(bid, self.cpus)


def _tas(_old):
    return 1


def spinlock_acquire(addr: int):
    """Generator fragment: acquire a test-and-set spinlock.

    Spins with shared reads between TAS attempts (test-and-test-and-set), so
    waiting costs cache hits, not coherence storms."""
    while True:
        old = yield AtomicRMW(addr, _tas)
        if old == 0:
            return
        while True:
            v = yield Read(addr)
            if v == 0:
                break


def spinlock_release(addr: int):
    """Generator fragment: release a spinlock."""
    yield Write(addr, 0)


def fetch_add(addr: int, delta: int = 1):
    """Generator fragment: atomic fetch-and-add; returns the old value."""
    old = yield AtomicRMW(addr, lambda v, d=delta: v + d)
    return old


@dataclass
class WorkloadResult:
    """What a workload run produces, fed to the benches."""

    name: str
    nprocs: int
    parallel_time_ns: float
    machine: Machine


class Workload:
    """Base class for SPLASH-2-like kernels and applications.

    Subclasses define :meth:`build` (allocate shared data on ``machine``)
    and :meth:`thread_program` (the per-CPU generator).  ``scale`` shrinks
    the Table 2 problem sizes so cycle-level simulation stays tractable;
    1.0 would be the paper's sizes.
    """

    #: paper problem size (Table 2), for documentation in benches
    paper_problem = ""
    name = "workload"

    def __init__(self, scale: float = 1.0) -> None:
        self.scale = scale

    # -- interface ------------------------------------------------------
    def build(self, machine: Machine, cpus: Sequence[int]) -> None:
        raise NotImplementedError

    def thread_program(self, tid: int, cpus: Sequence[int]) -> Iterator:
        raise NotImplementedError

    # -- driver ---------------------------------------------------------
    def run(
        self,
        machine: Machine,
        nprocs: Optional[int] = None,
        cpus: Optional[Sequence[int]] = None,
    ) -> WorkloadResult:
        """Run on ``nprocs`` consecutive CPUs, or an explicit ``cpus`` list
        (e.g. spread across stations to exercise the whole hierarchy)."""
        if cpus is not None:
            cpus = list(cpus)
        else:
            cpus = list(range(nprocs or machine.config.num_cpus))
        self.build(machine, cpus)
        programs = {
            cpu: self.thread_program(tid, cpus) for tid, cpu in enumerate(cpus)
        }
        result = machine.run(programs)
        return WorkloadResult(
            name=self.name,
            nprocs=len(cpus),
            parallel_time_ns=machine.parallel_time_ns(result),
            machine=machine,
        )


def block_range(tid: int, nthreads: int, n: int) -> Tuple[int, int]:
    """Contiguous block partition of [0, n) for thread ``tid``."""
    per = -(-n // nthreads)
    lo = min(tid * per, n)
    hi = min(lo + per, n)
    return lo, hi
