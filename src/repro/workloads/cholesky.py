"""Sparse Cholesky factorization (SPLASH-2 'Cholesky').

Table 2: the ``tk18.O`` input.  We do not have SPLASH's matrix files, so a
deterministic synthetic sparse SPD matrix with the same *parallelism
structure* is factored instead: block-diagonal-with-border ("arrowhead") —
``nblocks`` independent dense diagonal blocks coupled by a dense border.
Its elimination tree is a star: every diagonal block factors independently
(the parallel phase, like tk18's subtrees), then the border columns — which
depend on everything — serialize at the end, which is exactly why Cholesky
has the *worst* speedup curve of the Fig. 13 kernels.

Threads claim columns from a shared task queue (atomic fetch-and-add) in a
block-interleaved order, spin (with backoff) on per-column done flags for
their dependencies, perform the real left-looking updates, and publish.
Storage is packed by column (contiguous cache lines per column) with
line-padded done flags — mirroring SPLASH's supernodal layout in the ways
the memory system sees.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from ..cpu.ops import Compute, Read, Write
from .base import BarrierFactory, SharedArray, Workload, fetch_add


class Cholesky(Workload):
    name = "cholesky"
    paper_problem = "tk18.O input file"

    def __init__(self, nblocks: int = 12, block: int = 6, border: int = 6,
                 scale: float = 1.0) -> None:
        super().__init__(scale)
        if scale != 1.0:
            nblocks = max(2, int(nblocks * scale))
        self.nb = nblocks
        self.bs = block
        self.w = border
        self.n = nblocks * block + border

    # ------------------------------------------------------------------
    # structure helpers
    # ------------------------------------------------------------------
    def block_of(self, j: int) -> int:
        """Diagonal block index of column j, or -1 for border columns."""
        return j // self.bs if j < self.nb * self.bs else -1

    def col_rows(self, j: int) -> List[int]:
        """Structurally nonzero rows i >= j of column j (incl. fill-in)."""
        body = self.nb * self.bs
        if j < body:
            blk = j // self.bs
            block_end = (blk + 1) * self.bs
            return list(range(j, block_end)) + list(range(body, self.n))
        return list(range(j, self.n))

    def deps(self, j: int) -> List[int]:
        """Columns k < j that update column j."""
        body = self.nb * self.bs
        if j < body:
            blk = j // self.bs
            return list(range(blk * self.bs, j))
        return list(range(j))   # border columns depend on everything

    def task_to_column(self, t: int) -> int:
        """Task order: round-robin across diagonal blocks (exposes the
        inter-block parallelism), then the border columns in order."""
        body = self.nb * self.bs
        if t < body:
            blk = t % self.nb
            return blk * self.bs + t // self.nb
        return t

    # ------------------------------------------------------------------
    def default_input(self) -> List[List[float]]:
        """Dense view of the arrowhead SPD matrix (for verification)."""
        n = self.n
        body = self.nb * self.bs
        a = [[0.0] * n for _ in range(n)]

        def couple(i, j, v):
            a[i][j] = v
            a[j][i] = v

        for j in range(n):
            a[j][j] = 4.0 * (self.bs + self.w) + ((j * 7) % 5)
        for blk in range(self.nb):
            lo, hi = blk * self.bs, (blk + 1) * self.bs
            for j in range(lo, hi):
                for i in range(j + 1, hi):
                    couple(i, j, 1.0 / (1 + i - j) * (1 + ((i + j) % 3) * 0.25))
        for j in range(body):
            for i in range(body, n):
                couple(i, j, 0.5 / (1 + (i - body + j) % 5))
        for j in range(body, n):
            for i in range(j + 1, n):
                couple(i, j, 0.25 / (1 + i - j))
        return a

    def build(self, machine, cpus: Sequence[int]) -> None:
        self.barrier = BarrierFactory(cpus)
        cfg = machine.config
        # packed column storage: column j occupies len(col_rows(j)) words
        self._col_base: List[int] = []
        self._col_len: List[int] = []
        total = 0
        for j in range(self.n):
            self._col_base.append(total)
            ln = len(self.col_rows(j))
            self._col_len.append(ln)
            total += ln
        self.store = SharedArray(machine, total, name="chol_cols")
        self.flag_stride = cfg.line_bytes
        self.done_region = machine.allocate(
            self.n * cfg.line_bytes, name="chol_done"
        )
        self.task = SharedArray(machine, 1, name="chol_task")
        self.input = self.default_input()
        # row -> slot maps per column (host-side, derived from structure)
        self._row_slot = [
            {i: s for s, i in enumerate(self.col_rows(j))} for j in range(self.n)
        ]

    def _elem_addr(self, i: int, j: int) -> int:
        return self.store.addr(self._col_base[j] + self._row_slot[j][i])

    def _done_addr(self, j: int) -> int:
        return self.done_region.addr(j * self.flag_stride)

    # ------------------------------------------------------------------
    def thread_program(self, tid: int, cpus: Sequence[int]):
        n = self.n
        if tid == 0:
            for j in range(n):
                for i in self.col_rows(j):
                    yield Write(self._elem_addr(i, j), self.input[i][j])
                yield Write(self._done_addr(j), 0)
            yield self.task.write(0, 0)
        yield self.barrier(tid)
        while True:
            t = yield from fetch_add(self.task.addr(0), 1)
            if t >= n:
                break
            j = self.task_to_column(t)
            # wait for dependencies (spin with backoff)
            for k in self.deps(j):
                while True:
                    flag = yield Read(self._done_addr(k))
                    if flag:
                        break
                    yield Compute(60)
            rows = self.col_rows(j)
            col = []
            for i in rows:
                v = yield Read(self._elem_addr(i, j))
                col.append(v)
            # left-looking: col -= L[rows, k] * L[j, k] for each dep column
            for k in self.deps(j):
                slot_k = self._row_slot[k]
                ljk = yield Read(self._elem_addr(j, k))
                if ljk == 0.0:
                    continue
                flops = 0
                for idx, i in enumerate(rows):
                    if i in slot_k:
                        lik = yield Read(self._elem_addr(i, k))
                        col[idx] -= lik * ljk
                        flops += 2
                yield Compute(flops)
            piv = math.sqrt(col[0])
            col[0] = piv
            for idx in range(1, len(col)):
                col[idx] /= piv
            yield Compute(2 * len(col))
            for idx, i in enumerate(rows):
                yield Write(self._elem_addr(i, j), col[idx])
            yield Write(self._done_addr(j), 1)
        yield self.barrier(tid)

    # ------------------------------------------------------------------
    def result_factor(self, machine) -> List[List[float]]:
        L = [[0.0] * self.n for _ in range(self.n)]
        for j in range(self.n):
            for i in self.col_rows(j):
                L[i][j] = machine.read_word(self._elem_addr(i, j))
        return L


def verify_cholesky(a: List[List[float]], L: List[List[float]], tol: float = 1e-6) -> float:
    """Max abs error of L @ L.T against ``a`` (lower triangle)."""
    n = len(a)
    err = 0.0
    for i in range(n):
        for j in range(i + 1):
            s = sum(L[i][k] * L[j][k] for k in range(j + 1))
            err = max(err, abs(s - a[i][j]))
    return err
