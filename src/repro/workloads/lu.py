"""Blocked dense LU factorization (SPLASH-2 'LU', both layouts).

Table 2: 512x512 matrix, 16x16 blocks.  Scaled: an ``n x n`` matrix of
``b x b`` blocks.  Block (I, J) is owned by thread ``(I + J*nb) mod P`` —
the modified BlockOwner the paper's footnote says it substituted for the
stock SPLASH-2 one ("for the sake of other SPLASH-2 experimenters, the
BlockOwner routine was changed").  Unlike a 2-D scatter it interleaves
owners so processors on one station share remote blocks, which is what
feeds LU's network-cache hit rate in Fig. 15.

The algorithm is the standard right-looking blocked factorization without
pivoting; every arithmetic value really flows through the simulated memory
system, so the result can be checked against ``numpy.linalg`` in tests.

Memory behaviour matches the blocked original: a block's worth of operands
is loaded (one simulated read per word), the O(b^3) arithmetic happens in
registers (charged as Compute cycles), and results are stored back (one
write per word).

* **LU-Contiguous** allocates each block contiguously on its owner's
  station ("block-major", high locality).
* **LU-Noncontiguous** uses one global row-major array with round-robin
  page placement (poor locality, heavier ring traffic) — which is why its
  speedup curve sits below the contiguous one in Fig. 13.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..cpu.ops import Compute, ReadRun, WriteRun
from .base import BarrierFactory, SharedMatrix, Workload


class _LUBase(Workload):
    paper_problem = "512x512 matrix, 16x16 blocks"

    def __init__(self, n: int = 64, block: int = 8, scale: float = 1.0) -> None:
        super().__init__(scale)
        if scale != 1.0:
            n = max(2 * block, int(n * scale) // block * block)
        if n % block:
            raise ValueError("matrix size must be a multiple of the block size")
        self.n = n
        self.b = block
        self.nb = n // block
        self.input: List[List[float]] = []

    # -- owner map (the paper's modified BlockOwner) ----------------------
    def owner(self, I: int, J: int, nthreads: int) -> int:
        return (I + J * self.nb) % nthreads

    def _default_input(self) -> List[List[float]]:
        # deterministic diagonally dominant matrix: LU-stable without pivots
        n = self.n
        a = [[((i * 131 + j * 17) % 23) / 23.0 + (n if i == j else 0.0)
              for j in range(n)] for i in range(n)]
        return a

    def build(self, machine, cpus: Sequence[int]) -> None:
        self.barrier = BarrierFactory(cpus)
        self.input = self._default_input()
        self._alloc(machine, cpus)

    # subclasses supply element addressing over their layout
    def _alloc(self, machine, cpus) -> None:
        raise NotImplementedError

    def _addr(self, i: int, j: int) -> int:
        raise NotImplementedError

    # -- block helpers ----------------------------------------------------
    # Both layouts store a block row (fixed i, j varying within the block)
    # contiguously, so a block moves as one hit-run op per row: the
    # processor batches the hits line by line instead of one generator
    # round-trip per word (same misses, same traffic, same per-word values).
    def _read_block(self, I: int, J: int):
        b = self.b
        vals = []
        for i in range(b):
            row = yield ReadRun(self._addr(I * b + i, J * b), b)
            vals.append(row)
        return vals

    def _write_block(self, I: int, J: int, vals) -> None:
        b = self.b
        for i in range(b):
            yield WriteRun(self._addr(I * b + i, J * b), tuple(vals[i]))

    def thread_program(self, tid: int, cpus: Sequence[int]):
        b, nb = self.b, self.nb
        P = len(cpus)
        if tid == 0:
            # initialize the matrix (master thread, inside the timed section
            # as in the paper's 'parallel section' definition); one run per
            # block row — the contiguity unit shared by both layouts
            for i in range(self.n):
                row = self.input[i]
                for J in range(nb):
                    yield WriteRun(self._addr(i, J * b), tuple(row[J * b:(J + 1) * b]))
        yield self.barrier(tid)
        for K in range(nb):
            # factor the diagonal block
            if self.owner(K, K, P) == tid:
                akk = yield from self._read_block(K, K)
                for k in range(b):
                    piv = akk[k][k]
                    for i in range(k + 1, b):
                        akk[i][k] /= piv
                        for j in range(k + 1, b):
                            akk[i][j] -= akk[i][k] * akk[k][j]
                yield Compute(2 * b * b * b // 3)
                yield from self._write_block(K, K, akk)
            yield self.barrier(tid)
            # perimeter blocks
            my_perimeter = []
            for I in range(K + 1, nb):
                if self.owner(I, K, P) == tid:
                    my_perimeter.append(("col", I))
                if self.owner(K, I, P) == tid:
                    my_perimeter.append(("row", I))
            if my_perimeter:
                akk = yield from self._read_block(K, K)
                for which, I in my_perimeter:
                    if which == "col":
                        aik = yield from self._read_block(I, K)
                        # solve X * U_kk = A_ik
                        for j in range(b):
                            for i in range(b):
                                s = aik[i][j]
                                for k in range(j):
                                    s -= aik[i][k] * akk[k][j]
                                aik[i][j] = s / akk[j][j]
                        yield Compute(b * b * b)
                        yield from self._write_block(I, K, aik)
                    else:
                        akj = yield from self._read_block(K, I)
                        # solve L_kk * X = A_kj
                        for j in range(b):
                            for i in range(b):
                                s = akj[i][j]
                                for k in range(i):
                                    s -= akk[i][k] * akj[k][j]
                                akj[i][j] = s
                        yield Compute(b * b * b)
                        yield from self._write_block(K, I, akj)
            yield self.barrier(tid)
            # interior updates
            for I in range(K + 1, nb):
                for J in range(K + 1, nb):
                    if self.owner(I, J, P) != tid:
                        continue
                    lik = yield from self._read_block(I, K)
                    ukj = yield from self._read_block(K, J)
                    aij = yield from self._read_block(I, J)
                    for i in range(b):
                        row = lik[i]
                        tgt = aij[i]
                        for k in range(b):
                            lk = row[k]
                            if lk:
                                urow = ukj[k]
                                for j in range(b):
                                    tgt[j] -= lk * urow[j]
                    yield Compute(2 * b * b * b)
                    yield from self._write_block(I, J, aij)
            yield self.barrier(tid)


class LUContiguous(_LUBase):
    """Blocks allocated contiguously, each on its owner's station."""

    name = "lu_contig"

    def _alloc(self, machine, cpus) -> None:
        b, nb = self.b, self.nb
        cfg = machine.config
        P = len(cpus)
        self._blocks: Dict[Tuple[int, int], object] = {}
        for I in range(nb):
            for J in range(nb):
                owner_cpu = cpus[self.owner(I, J, P)]
                station = owner_cpu // cfg.cpus_per_station
                self._blocks[(I, J)] = machine.allocate(
                    b * b * cfg.word_bytes,
                    placement=f"local:{station}",
                    name=f"lu_blk_{I}_{J}",
                )
        self._word = cfg.word_bytes

    def _addr(self, i: int, j: int) -> int:
        b = self.b
        I, J = i // b, j // b
        return self._blocks[(I, J)].addr(((i % b) * b + (j % b)) * self._word)


class LUNoncontiguous(_LUBase):
    """One global row-major array, round-robin page placement."""

    name = "lu_noncontig"

    def _alloc(self, machine, cpus) -> None:
        self._m = SharedMatrix(machine, self.n, self.n, placement="round_robin",
                               name="lu_matrix")

    def _addr(self, i: int, j: int) -> int:
        return self._m.addr(i, j)


def reference_lu(a: List[List[float]]) -> List[List[float]]:
    """In-place LU (no pivoting) of a copy, for verification."""
    n = len(a)
    m = [row[:] for row in a]
    for k in range(n):
        for i in range(k + 1, n):
            m[i][k] /= m[k][k]
            for j in range(k + 1, n):
                m[i][j] -= m[i][k] * m[k][j]
    return m
