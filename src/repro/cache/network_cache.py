"""The network cache (NC) and its coherence engine (paper §3.1.4, Fig. 6).

The NC is a large direct-mapped DRAM cache shared by all processors on a
station, holding lines whose home memory is remote.  It provides the
paper's four effects, all measured by this module's statistics:

* **migration** — a line fetched by one processor is later hit by another;
* **caching** — a line written back / retained from a processor's own
  earlier use is hit again by that processor;
* **combining** — concurrent requests to the same remote line collapse into
  a single network request: later requesters are NACKed while the line is
  locked, and their retries hit locally once the response arrives;
* **coherence localization** — lines in LV/LI state are granted, read and
  written entirely within the station without contacting the home memory.

It also supplies the station's snooping-equivalent functionality: remote
interventions are answered from NC DRAM or by a bus intervention to the
owning secondary cache, and invalidations for ejected lines are broadcast
to all four processors.

A ``bypass`` mode (config ``nc_enabled=False``) turns the NC into a pure
forwarding agent with no storage — the baseline for the NC ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.states import LineState
from ..interconnect.packet import MsgType, Packet, acquire_packet
from ..interconnect.ring import fusion_enabled
from ..sim.engine import Engine, SimulationError, ns_to_ticks
from ..sim.fifo import Fifo
from ..sim.stats import StatGroup
from .nc_array import NCArray, NCLine


@dataclass(slots=True)
class NCPending:
    """In-flight transaction record for a locked NC line."""

    kind: str                      # 'fetch' | 'local_intervention' | 'intervention'
    op: Optional[MsgType] = None   # original processor request type
    cpu: Optional[int] = None      # global cpu id of the requester
    data: Optional[List] = None
    data_exclusive: bool = False
    inv_follows: Optional[bool] = None
    inv_arrived: bool = False
    copy_invalidated: bool = False  # a foreign invalidation hit us mid-flight
    combined: Set[int] = field(default_factory=set)
    retries: int = 0
    exclusive: bool = False        # for intervention kinds
    orig_pkt: Optional[Packet] = None
    first_issue: int = 0           # tick of the first (non-retry) issue
    phase: Optional[int] = None    # requester's phase register (§3.3 monitor)


class NetworkCache:
    """Per-station network cache: storage, plumbing and shared machinery.

    Like :class:`~repro.memory.memory_module.MemoryModule`, the coherence
    state machine lives in a protocol plug-in (:mod:`repro.protocol`): a
    subclass supplies the transition handlers and declares them in
    ``DISPATCH``.  This base keeps the NC array, the service loop, the
    intervention/bypass machinery, softctl handlers and the send helpers.
    """

    #: (MsgType name, handler method name) pairs — the protocol subclass's
    #: transition table, consumed by ``_dispatch`` and the elaborator
    DISPATCH: tuple = ()

    def __init__(self, engine: Engine, config, station) -> None:
        self.engine = engine
        self.config = config
        self.station = station
        self.station_id = station.station_id
        self.codec = station.codec
        self.enabled = config.nc_enabled
        self.array = NCArray(
            f"S{self.station_id}.nc", config.nc_size_bytes, config.line_bytes
        )
        from ..system.bus import OrderedPort

        self.out_port = OrderedPort(engine, station.bus)
        self.in_fifo = Fifo(f"S{self.station_id}.nc.in", capacity=None)
        self._busy = False
        self.stats = StatGroup(f"S{self.station_id}.nc")
        self.monitor = None
        #: transaction tracer (repro.obs), or None when tracing is off
        self.tracer = None
        #: invariant checker (repro.verify), or None when checking is off
        self.verifier = None
        self._tag_ticks = ns_to_ticks(config.nc_tag_ns)
        self._handlers = None  # mtype -> bound handler, built on first dispatch
        # hot-path tick values cached once (see MemoryModule)
        self._cmd_ticks = config.cmd_bus_ticks
        self._line_ticks = config.line_bus_ticks
        self._line_flits = config.line_flits
        self._nc_read = ns_to_ticks(config.nc_dram_read_ns)
        self._nc_write = ns_to_ticks(config.nc_dram_write_ns)
        #: bypass-mode pending records keyed by (line_addr, cpu)
        self._bypass_pending: Dict[Tuple[int, Optional[int]], NCPending] = {}
        self._retry_ticks = 4 * config.nack_retry_cpu_cycles * config.cpu_cycle_ticks
        # hot request-path counters, bound lazily on first use so the stat
        # group's contents (and creation order) match the original exactly
        self._ctr_requests = None
        self._ctr_hits = None
        self._ctr_misses = None
        self._ctr_caching_hits = None
        self._ctr_migration_hits = None
        self._ctr_nacks = None
        self._ctr_conflict_nacks = None
        #: service-done relay fusion (NUMACHINE_FUSE): the zero-extra done
        #: event is merged into _service (see _service); the negative
        #: content key keeps the done event's tie-break position identical
        #: in both modes, which is what makes the merge exact
        self.fused = fusion_enabled()
        self.events_fused = 0
        self._done_key = ~engine.alloc_uid()
        engine.blocked_watchers.append(self._blocked_reason)

    # ==================================================================
    # serialization plumbing (mirrors the memory module)
    # ==================================================================
    def handle(self, pkt: Packet) -> None:
        tr = self.tracer
        if tr is not None:
            tr.stamp_pkt(pkt, "nc.in", self.engine.now)
        self.in_fifo.push(pkt, self.engine.now)
        self._pump()

    def _pump(self) -> None:
        if self._busy or self.in_fifo.empty:
            return
        self._busy = True
        # Engine.schedule inlined (_tag_ticks is a non-negative constant):
        # every packet entering the NC passes through here
        engine = self.engine
        pkt = self.in_fifo.pop(engine.now)
        seq = engine._seq + 1
        engine._seq = seq
        engine._push((engine.now + self._tag_ticks, 1, seq, self._service, pkt))

    def _service(self, pkt: Packet) -> None:
        tr = self.tracer
        if tr is not None:
            tr.stamp_pkt(pkt, "nc.svc", self.engine.now)
        extra = self._dispatch(pkt)
        v = self.verifier
        if v is not None:
            v.nc_event(self, pkt)
        # The done event carries this module's content key: unique (the
        # _busy flag serializes services) and adjacent below any counter
        # key, so a zero-extra done always pops immediately after this
        # event — which is why the fused path may run its body inline.
        engine = self.engine
        if extra:
            engine.schedule_keyed_at(
                engine.now + extra, self._done_key, self._service_done,
                priority=1,
            )
        elif self.fused:
            self.events_fused += 1
            self._busy = False
            self._pump()
        else:
            engine.schedule_keyed_at(
                engine.now, self._done_key, self._service_done, priority=1
            )

    def _service_done(self) -> None:
        self._busy = False
        self._pump()

    def _dispatch(self, pkt: Packet) -> int:
        if self.monitor is not None:
            self.monitor.record_nc_txn(self.station_id, pkt, self.array.probe(pkt.addr))
        mtype = pkt.mtype
        if pkt.meta.get("local"):
            if mtype is MsgType.WRITE_BACK:
                return self._on_local_writeback(pkt)
            return self._on_local_request(pkt)
        handlers = self._handlers
        if handlers is None:
            # built lazily once per instance from the protocol subclass's
            # DISPATCH declaration (see MemoryModule._dispatch)
            handlers = self._handlers = {
                MsgType[name]: getattr(self, fn) for name, fn in type(self).DISPATCH
            }
        handler = handlers.get(mtype)
        if handler is None:
            from ..softctl import ops as softops

            return softops.nc_dispatch(self, pkt)
        return handler(pkt)

    # ==================================================================
    # request accounting (hit/miss/migration/caching counters)
    # ==================================================================
    def _count_hit_kind(self, line: NCLine, cpu: int) -> None:
        ctr = self._ctr_requests
        if ctr is None:
            ctr = self._ctr_requests = self.stats.counter("requests")
        ctr.value += 1
        ctr = self._ctr_hits
        if ctr is None:
            ctr = self._ctr_hits = self.stats.counter("hits")
        ctr.value += 1
        if line.brought_by is not None and line.brought_by == cpu:
            ctr = self._ctr_caching_hits
            if ctr is None:
                ctr = self._ctr_caching_hits = self.stats.counter("caching_hits")
            ctr.value += 1
        else:
            ctr = self._ctr_migration_hits
            if ctr is None:
                ctr = self._ctr_migration_hits = self.stats.counter("migration_hits")
            ctr.value += 1

    def _count_resolution(self, pkt: Packet, hit: bool, line, cpu) -> None:
        ctr = self._ctr_requests
        if ctr is None:
            ctr = self._ctr_requests = self.stats.counter("requests")
        ctr.value += 1
        if hit:
            ctr = self._ctr_hits
            if ctr is None:
                ctr = self._ctr_hits = self.stats.counter("hits")
            ctr.value += 1
            if line is not None and line.brought_by is not None and line.brought_by == cpu:
                ctr = self._ctr_caching_hits
                if ctr is None:
                    ctr = self._ctr_caching_hits = self.stats.counter("caching_hits")
                ctr.value += 1
            else:
                ctr = self._ctr_migration_hits
                if ctr is None:
                    ctr = self._ctr_migration_hits = self.stats.counter("migration_hits")
                ctr.value += 1
        else:
            ctr = self._ctr_misses
            if ctr is None:
                ctr = self._ctr_misses = self.stats.counter("misses")
            ctr.value += 1

    # ==================================================================
    # local write-backs (dirty L2 evictions of remote lines)
    # ==================================================================
    def _forward_wb_home(self, addr: int, data: List) -> None:
        home = self.config.home_station(addr)
        wb = Packet(
            mtype=MsgType.WRITE_BACK, addr=addr,
            src_station=self.station_id,
            dest_mask=self.codec.station_mask(home),
            data=list(data), flits=self._line_flits,
        )
        self.stats.counter("wb_forwarded").incr()
        self._send_packet(wb, has_data=True)

    # ==================================================================
    # interventions from the home memory
    # ==================================================================
    def _on_intervention(self, pkt: Packet) -> int:
        exclusive = pkt.mtype is MsgType.INTERVENTION_EX
        if pkt.meta.get("false_remote"):
            self.stats.counter("false_remotes").incr()
        if not self.enabled:
            self._broadcast_intervention(pkt, exclusive)
            return 0
        line = self.array.probe(pkt.addr)
        if line is None or line.state is LineState.GI or (
            line.locked and line.pending is not None and line.pending.kind == "fetch"
        ):
            self._broadcast_intervention(pkt, exclusive)
            return 0
        if line.locked:
            # an intervention is already being serviced; home will retry
            self._send_simple(MsgType.NACK_INTERVENTION, pkt)
            return 0
        if line.state is LineState.LV or (
            line.state is LineState.GV and line.data is not None
        ):
            data = list(line.data)
            self._answer_intervention(pkt, data, exclusive, line)
            return self._nc_read_ticks()
        if line.state is LineState.LI:
            owner_idx = line.proc_mask.bit_length() - 1
            line.locked = True
            line.pending = NCPending(
                kind="intervention", exclusive=exclusive, orig_pkt=pkt
            )
            owner = self.station.cpus[owner_idx]
            self.out_port.send(
                0, self._cmd_ticks,
                lambda start, c=owner, a=pkt.addr, e=exclusive: c.handle_intervention(
                    a, e, lambda data, a2=a: self._local_intervention_done(a2, data)
                ),
            )
            return 0
        self._send_simple(MsgType.NACK_INTERVENTION, pkt)
        return 0

    def _broadcast_intervention(self, pkt: Packet, exclusive: bool) -> None:
        """NC lost (or never had) the owner info: ask every processor.

        The responder's copy is always *taken away* (exclusive against the
        processor) even for a read intervention: with no NC entry to record
        the would-be-downgraded sharer, a kept shared copy could never be
        invalidated again.  The reply to requester and home still follows
        the requested (shared/exclusive) semantics."""
        self.stats.counter("intervention_broadcasts").incr()
        cpus = list(self.station.cpus)
        results: List[Optional[List]] = []

        def on_reply(data, a=pkt.addr) -> None:
            results.append(data)
            if len(results) == len(cpus):
                found = next((d for d in results if d is not None), None)
                if found is not None:
                    self._answer_intervention(pkt, list(found), exclusive, None)
                else:
                    # Nothing here (any write-back is still in flight and will
                    # reach home on its own): bounce so the requester retries.
                    self._send_simple(MsgType.NACK_INTERVENTION, pkt)

        self.out_port.send(
            0, self._cmd_ticks,
            lambda start: [
                c.handle_intervention(pkt.addr, True, on_reply) for c in cpus
            ],
        )

    def _answer_intervention(
        self, pkt: Packet, data: List, exclusive: bool, line: Optional[NCLine]
    ) -> None:
        home = pkt.meta["home"]
        req_station = pkt.meta["req_station"]
        prefetch = bool(pkt.meta.get("prefetch"))
        if exclusive:
            if line is not None:
                self._invalidate_local(pkt.addr, line.proc_mask, keep=None)
                line.proc_mask = 0
                line.state = LineState.GI
                line.data = None
            if req_station == home:
                resp = Packet(
                    mtype=MsgType.DATA_RESP_EX, addr=pkt.addr,
                    src_station=self.station_id,
                    dest_mask=self.codec.station_mask(home),
                    requester=pkt.requester, data=data,
                    flits=self._line_flits,
                    meta={"to_home": True, "txn": pkt.meta.get("txn")},
                )
                self._send_packet(resp, has_data=True)
            else:
                resp = Packet(
                    mtype=MsgType.DATA_RESP_EX, addr=pkt.addr,
                    src_station=self.station_id,
                    dest_mask=self.codec.station_mask(req_station),
                    requester=pkt.requester, data=data,
                    flits=self._line_flits,
                    meta={"inv_follows": False, "prefetch": prefetch},
                )
                self._send_packet(resp, has_data=True)
                ack = Packet(
                    mtype=MsgType.XFER_ACK, addr=pkt.addr,
                    src_station=self.station_id,
                    dest_mask=self.codec.station_mask(home),
                    requester=pkt.requester,
                    meta={"txn": pkt.meta.get("txn")},
                )
                self._send_packet(ack, has_data=False)
        else:
            if line is not None:
                line.state = LineState.GV
                line.data = list(data)
            if req_station == home:
                resp = Packet(
                    mtype=MsgType.DATA_RESP, addr=pkt.addr,
                    src_station=self.station_id,
                    dest_mask=self.codec.station_mask(home),
                    requester=pkt.requester, data=data,
                    flits=self._line_flits,
                    meta={"to_home": True, "txn": pkt.meta.get("txn")},
                )
                self._send_packet(resp, has_data=True)
            else:
                resp = Packet(
                    mtype=MsgType.DATA_RESP, addr=pkt.addr,
                    src_station=self.station_id,
                    dest_mask=self.codec.station_mask(req_station),
                    requester=pkt.requester, data=data,
                    flits=self._line_flits,
                    meta={"inv_follows": False, "prefetch": prefetch},
                )
                self._send_packet(resp, has_data=True)
                copy = Packet(
                    mtype=MsgType.DATA_RESP, addr=pkt.addr,
                    src_station=self.station_id,
                    dest_mask=self.codec.station_mask(home),
                    requester=pkt.requester, data=list(data),
                    flits=self._line_flits,
                    meta={"to_home": True, "txn": pkt.meta.get("txn")},
                )
                self._send_packet(copy, has_data=True)

    def _local_intervention_done(self, addr: int, data, from_wb: bool = False) -> None:
        line = self.array.probe(addr)
        if line is None or line.pending is None:
            return
        p = line.pending
        if data is None:
            # crossed with the owner's write-back; it will land here shortly
            return
        if p.kind == "local_intervention":
            line.locked = False
            line.pending = None
            if p.exclusive:
                # ownership moves between local caches; NC stays LI
                line.state = LineState.LI
                line.proc_mask = 1 << self._local_index(p.cpu)
                line.data = None
                self._grant_cpu(p.cpu, addr, list(data), exclusive=True)
            else:
                line.state = LineState.LV
                line.data = list(data)
                line.proc_mask |= 1 << self._local_index(p.cpu)
                self._grant_cpu(p.cpu, addr, list(data), exclusive=False)
        elif p.kind == "intervention":
            line.locked = False
            pkt = p.orig_pkt
            line.pending = None
            self._answer_intervention(pkt, list(data), p.exclusive, line)
        v = self.verifier
        if v is not None:
            v.nc_settled(self, addr)

    # ==================================================================
    # bypass mode (NC ablation)
    # ==================================================================
    def _bypass_local_request(self, pkt: Packet) -> int:
        cpu = pkt.requester
        key = (pkt.addr, cpu)
        self.stats.counter("requests").incr()
        self.stats.counter("misses").incr()
        if key in self._bypass_pending:
            # the processor retried while the fetch is still outstanding
            self._nack_cpu(cpu, pkt.addr)
            return 0
        p = NCPending(kind="fetch", op=pkt.mtype, cpu=cpu,
                      first_issue=self.engine.now,
                      phase=pkt.meta.get("phase"))
        self._bypass_pending[key] = p
        self._send_home(pkt.addr, pkt.mtype, cpu, retry=False, phase=p.phase)
        return 0

    def _bypass_on_data(self, pkt: Packet) -> int:
        key = (pkt.addr, pkt.requester)
        p = self._bypass_pending.get(key)
        if p is None:
            return 0
        p.data = list(pkt.data)
        p.data_exclusive = pkt.mtype is MsgType.DATA_RESP_EX
        p.inv_follows = bool(pkt.meta.get("inv_follows"))
        self._bypass_maybe_complete(key, p)
        return 0

    def _bypass_on_invalidate(self, pkt: Packet) -> int:
        writer = pkt.meta.get("writer_station") == self.station_id
        completed = False
        if writer:
            key = (pkt.addr, pkt.requester)
            p = self._bypass_pending.get(key)
            if p is not None and p.op in (
                MsgType.READ_EX, MsgType.UPGRADE, MsgType.SPECIAL_READ
            ):
                p.inv_arrived = True
                self._invalidate_local_all(pkt.addr, keep=p.cpu)
                self._bypass_maybe_complete(key, p)
                completed = True
        if not completed:
            self._invalidate_local_all(pkt.addr)
        return 0

    def _bypass_maybe_complete(self, key, p: NCPending) -> None:
        cfg = self.config
        if p.op is MsgType.READ:
            if p.data is None:
                return
        elif p.op is MsgType.UPGRADE and p.data is None:
            if not p.inv_arrived:
                return
            del self._bypass_pending[key]
            if self._cpu_has_copy(p.cpu, key[0]):
                self._grant_cpu(p.cpu, key[0], None, exclusive=True)
            else:
                self.stats.counter("special_reads").incr()
                p2 = NCPending(kind="fetch", op=MsgType.SPECIAL_READ,
                               cpu=p.cpu, phase=p.phase)
                self._bypass_pending[key] = p2
                self._send_home(key[0], MsgType.SPECIAL_READ, p.cpu,
                                retry=False, phase=p.phase)
            return
        else:
            if p.data is None:
                return
            if cfg.sc_locking and p.inv_follows and not p.inv_arrived:
                return
        del self._bypass_pending[key]
        self._grant_cpu(
            p.cpu, key[0], list(p.data),
            exclusive=p.op is not MsgType.READ,
        )

    # ==================================================================
    # eviction
    # ==================================================================
    def _eject(self, occupant: NCLine) -> None:
        """Direct-mapped replacement (fig 6 'Ejection' edges).

        Shared local copies (LV/GV) are invalidated on ejection: once the
        entry is gone (and possibly re-created for the same line) the NC can
        no longer name those sharers, so a later invalidation would miss
        them.  A dirty local copy (LI) is deliberately *kept* — losing only
        the directory info is what seeds the paper's false remote requests
        (§4.6, Table 3); it stays safe because interventions for untracked
        lines are broadcast to all processors."""
        self.stats.counter("ejections").incr()
        if occupant.state is LineState.LV:
            # NC is the owner of record: the data must go home
            if occupant.data is None:
                raise SimulationError(f"ejecting LV {occupant!r} without data")
            self._invalidate_local(occupant.addr, occupant.proc_mask, keep=None)
            self._forward_wb_home(occupant.addr, occupant.data)
        elif occupant.state is LineState.GV:
            self._invalidate_local(occupant.addr, occupant.proc_mask, keep=None)
        elif occupant.state is LineState.LI:
            self.stats.counter("li_info_lost").incr()
        self.array.evict(occupant.addr)

    # ==================================================================
    # softctl support
    # ==================================================================
    def _on_multicast_data(self, pkt: Packet) -> int:
        """Software multicast update (§3.2): adopt the new data, invalidating
        any local secondary-cache copies."""
        line = self.array.probe(pkt.addr)
        if line is None:
            occupant = self.array.occupant(pkt.addr)
            if occupant is not None and occupant.locked:
                return 0  # drop; multicasts are best-effort placement
            if occupant is not None:
                self._eject(occupant)
            line = NCLine(addr=pkt.addr, state=LineState.GV)
            self.array.insert(line)
        if line.locked:
            return 0
        self._invalidate_local(pkt.addr, line.proc_mask, keep=None)
        line.proc_mask = 0
        line.state = LineState.GV
        line.data = list(pkt.data)
        line.brought_by = None
        self.stats.counter("multicast_fills").incr()
        return self._nc_write_ticks()

    def _on_kill(self, pkt: Packet) -> int:
        """Software kill: drop every local copy, dirty or not (§3.2)."""
        line = self.array.probe(pkt.addr)
        self._invalidate_local_all(pkt.addr, include_dirty=True)
        if line is not None and not line.locked:
            self.array.evict(pkt.addr)
        self.stats.counter("kills").incr()
        return 0

    # ==================================================================
    # helpers
    # ==================================================================
    def _local_index(self, global_cpu: int) -> int:
        return global_cpu % self.config.cpus_per_station

    def _cpu_has_copy(self, global_cpu: Optional[int], line_addr: int) -> bool:
        if global_cpu is None:
            return False
        cpu = self.station.cpu_by_global(global_cpu)
        line = cpu.l2.lookup(line_addr, touch=False)
        return line is not None and line.state.readable

    def _nack_cpu(self, cpu: int, addr: int) -> None:
        c = self.station.cpu_by_global(cpu)
        self.out_port.send(
            0, self._cmd_ticks,
            lambda start, cc=c, a=addr: cc.nack_from_module(a),
        )

    def _grant_cpu(
        self, cpu: int, addr: int, data: Optional[List], exclusive: bool,
        delay: int = 0,
    ) -> None:
        c = self.station.cpu_by_global(cpu)
        ticks = self._cmd_ticks + (
            self._line_ticks if data is not None else 0
        )

        self.out_port.send(
            delay, ticks,
            lambda start, cc=c, a=addr, d=data, e=exclusive: cc.complete_fill(
                a, d, exclusive=e
            ),
        )

    def _invalidate_local(self, addr: int, proc_mask: int, keep: Optional[int]) -> None:
        if keep is not None:
            proc_mask &= ~(1 << self._local_index(keep))
        if proc_mask == 0:
            return
        victims = [
            self.station.cpus[i]
            for i in range(self.config.cpus_per_station)
            if proc_mask & (1 << i)
        ]
        v = self.verifier
        if v is not None:
            v.note_local_inval(self.station_id, addr, [c.cpu_id for c in victims])
        self.out_port.send(
            0, self._cmd_ticks,
            lambda start, vs=victims, a=addr: [
                c.invalidate_line(a, only_shared=True) for c in vs
            ],
        )

    def _invalidate_local_all(
        self, addr: int, keep: Optional[int] = None, include_dirty: bool = False
    ) -> None:
        """Broadcast invalidation to every local processor.  Shared copies
        only, unless ``include_dirty`` (software kill): a dirty copy means
        this station owns the line, which a current invalidation can never
        target — see _on_invalidate."""
        victims = [
            c for c in self.station.cpus
            if keep is None or c.cpu_id != keep
        ]
        v = self.verifier
        if v is not None:
            v.note_local_inval(self.station_id, addr, [c.cpu_id for c in victims])
        self.out_port.send(
            0, self._cmd_ticks,
            lambda start, vs=victims, a=addr, d=include_dirty: [
                c.invalidate_line(a, only_shared=not d) for c in vs
            ],
        )

    def _send_home(
        self, addr: int, op: MsgType, cpu: Optional[int], retry: bool,
        prefetch: bool = False, phase: Optional[int] = None,
    ) -> None:
        home = self.config.home_station(addr)
        req = acquire_packet(
            op, addr,
            self.station_id,
            self.codec.station_mask(home),
            requester=cpu,
        )
        meta = req.meta
        meta["retry"] = retry
        meta["prefetch"] = prefetch
        if phase is not None:
            # the requester's phase identifier travels with the transaction
            # so the home station's monitor can attribute it (§3.3)
            meta["phase"] = phase
        self._send_packet(req, has_data=False)

    def _send_simple(self, mtype: MsgType, orig: Packet) -> None:
        home = orig.meta.get("home", orig.src_station)
        pkt = Packet(
            mtype=mtype, addr=orig.addr,
            src_station=self.station_id,
            dest_mask=self.codec.station_mask(home),
            requester=orig.requester,
            meta={"txn": orig.meta.get("txn")},
        )
        self._send_packet(pkt, has_data=False)

    def _send_packet(self, pkt: Packet, has_data: bool, delay: int = 0) -> None:
        ticks = self._cmd_ticks + (
            self._line_ticks if has_data else 0
        )
        self.out_port.send(
            delay, ticks, lambda start, p=pkt: self.station.ring_interface.send(p)
        )

    def _nc_read_ticks(self) -> int:
        return self._nc_read

    def _nc_write_ticks(self) -> int:
        return self._nc_write

    def _blocked_reason(self) -> Optional[str]:
        stuck = [
            line for line in self.array.lines()
            if line.locked and line.pending is not None and line.pending.kind == "fetch"
        ]
        if stuck:
            return (
                f"S{self.station_id} NC has {len(stuck)} lines locked awaiting "
                f"remote responses: {stuck[:3]}"
            )
        if self._bypass_pending:
            return (
                f"S{self.station_id} NC(bypass) has {len(self._bypass_pending)} "
                "outstanding fetches"
            )
        return None
