"""Caches: L1/L2 arrays and the network cache with its protocol engine."""

from .base import CacheArray, CacheLine
from .nc_array import NCArray, NCLine
from .network_cache import NetworkCache

__all__ = ["CacheArray", "CacheLine", "NCArray", "NCLine", "NetworkCache"]
