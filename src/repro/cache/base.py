"""Generic cache array used for L1 and L2 (secondary) caches.

The R4400's secondary cache is direct-mapped; the array nevertheless
supports set-associativity with LRU so experiments can vary it.  Lines
carry real data words — the simulator moves actual values through the
coherence protocol, which is how the test suite can assert that sequential
consistency holds (stale data is a test failure, not a silent inaccuracy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.states import CacheState


@dataclass(slots=True)
class CacheLine:
    addr: int
    state: CacheState
    data: List = field(default_factory=list)

    def __repr__(self) -> str:
        return f"CacheLine({self.addr:#x} {self.state.value})"


class CacheArray:
    """A set-associative write-back cache array with LRU replacement.

    Sets materialize lazily: a 1 MB L2 has 16K sets, and a 64-processor
    machine builds 128 cache arrays, so eagerly allocating every set dict
    dominates machine construction time for short runs and sweeps.
    """

    __slots__ = ("name", "line_bytes", "assoc", "num_sets", "_sets")

    def __init__(
        self,
        name: str,
        size_bytes: int,
        line_bytes: int,
        assoc: int = 1,
    ) -> None:
        if size_bytes % (line_bytes * assoc):
            raise ValueError(f"{name}: size not a multiple of line*assoc")
        self.name = name
        self.line_bytes = line_bytes
        self.assoc = assoc
        self.num_sets = size_bytes // (line_bytes * assoc)
        # set index -> insertion-ordered dict addr -> CacheLine; last = MRU.
        # Sets are created on first install and never removed.
        self._sets: Dict[int, Dict[int, CacheLine]] = {}

    def set_index(self, line_addr: int) -> int:
        return (line_addr // self.line_bytes) % self.num_sets

    # ------------------------------------------------------------------
    def lookup(self, line_addr: int, touch: bool = True) -> Optional[CacheLine]:
        s = self._sets.get((line_addr // self.line_bytes) % self.num_sets)
        if s is None:
            return None
        line = s.get(line_addr)
        if line is not None and touch and len(s) > 1:
            s.pop(line_addr)
            s[line_addr] = line  # move to MRU
        return line

    def install(
        self, line_addr: int, state: CacheState, data: Optional[List]
    ) -> Optional[CacheLine]:
        """Insert / replace a line; returns the evicted victim, if any.

        A returned victim in DIRTY state must be written back by the caller.
        """
        idx = (line_addr // self.line_bytes) % self.num_sets
        s = self._sets.get(idx)
        if s is None:
            s = self._sets[idx] = {}
        victim = None
        existing = s.pop(line_addr, None)
        if existing is None and len(s) >= self.assoc:
            lru_addr = next(iter(s))
            victim = s.pop(lru_addr)
        line = existing or CacheLine(addr=line_addr, state=state)
        line.state = state
        if data is not None:
            line.data = data
        s[line_addr] = line
        return victim

    def remove(self, line_addr: int) -> Optional[CacheLine]:
        s = self._sets.get((line_addr // self.line_bytes) % self.num_sets)
        if s is None:
            return None
        return s.pop(line_addr, None)

    def invalidate(self, line_addr: int) -> Optional[CacheLine]:
        """Drop a line (coherence invalidation); returns it if present."""
        return self.remove(line_addr)

    def downgrade(self, line_addr: int) -> Optional[CacheLine]:
        """DIRTY -> SHARED (ownership surrendered, data kept)."""
        line = self.lookup(line_addr, touch=False)
        if line is not None and line.state is CacheState.DIRTY:
            line.state = CacheState.SHARED
        return line

    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets.values())

    def lines(self):
        # set-index order, matching the eager-list behaviour exactly
        for idx in sorted(self._sets):
            yield from self._sets[idx].values()
