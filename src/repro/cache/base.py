"""Generic cache array used for L1 and L2 (secondary) caches.

The R4400's secondary cache is direct-mapped; the array nevertheless
supports set-associativity with LRU so experiments can vary it.  Lines
carry real data words — the simulator moves actual values through the
coherence protocol, which is how the test suite can assert that sequential
consistency holds (stale data is a test failure, not a silent inaccuracy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.states import CacheState


@dataclass
class CacheLine:
    addr: int
    state: CacheState
    data: List = field(default_factory=list)

    def __repr__(self) -> str:
        return f"CacheLine({self.addr:#x} {self.state.value})"


class CacheArray:
    """A set-associative write-back cache array with LRU replacement."""

    def __init__(
        self,
        name: str,
        size_bytes: int,
        line_bytes: int,
        assoc: int = 1,
    ) -> None:
        if size_bytes % (line_bytes * assoc):
            raise ValueError(f"{name}: size not a multiple of line*assoc")
        self.name = name
        self.line_bytes = line_bytes
        self.assoc = assoc
        self.num_sets = size_bytes // (line_bytes * assoc)
        # each set is an insertion-ordered dict addr -> CacheLine; last = MRU
        self._sets: List[Dict[int, CacheLine]] = [dict() for _ in range(self.num_sets)]

    def set_index(self, line_addr: int) -> int:
        return (line_addr // self.line_bytes) % self.num_sets

    # ------------------------------------------------------------------
    def lookup(self, line_addr: int, touch: bool = True) -> Optional[CacheLine]:
        s = self._sets[self.set_index(line_addr)]
        line = s.get(line_addr)
        if line is not None and touch:
            s.pop(line_addr)
            s[line_addr] = line  # move to MRU
        return line

    def install(
        self, line_addr: int, state: CacheState, data: Optional[List]
    ) -> Optional[CacheLine]:
        """Insert / replace a line; returns the evicted victim, if any.

        A returned victim in DIRTY state must be written back by the caller.
        """
        s = self._sets[self.set_index(line_addr)]
        victim = None
        existing = s.pop(line_addr, None)
        if existing is None and len(s) >= self.assoc:
            lru_addr = next(iter(s))
            victim = s.pop(lru_addr)
        line = existing or CacheLine(addr=line_addr, state=state)
        line.state = state
        if data is not None:
            line.data = data
        s[line_addr] = line
        return victim

    def remove(self, line_addr: int) -> Optional[CacheLine]:
        return self._sets[self.set_index(line_addr)].pop(line_addr, None)

    def invalidate(self, line_addr: int) -> Optional[CacheLine]:
        """Drop a line (coherence invalidation); returns it if present."""
        return self.remove(line_addr)

    def downgrade(self, line_addr: int) -> Optional[CacheLine]:
        """DIRTY -> SHARED (ownership surrendered, data kept)."""
        line = self.lookup(line_addr, touch=False)
        if line is not None and line.state is CacheState.DIRTY:
            line.state = CacheState.SHARED
        return line

    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def lines(self):
        for s in self._sets:
            yield from s.values()
