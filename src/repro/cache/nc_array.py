"""Network-cache storage array (paper §3.1.4).

The NC is direct-mapped: DRAM holds line data (large and cheap), SRAM holds
tags, the LV/LI/GV/GI state, the per-line processor mask, and the lock bit.
Unlike the secondary caches the NC does *not* enforce inclusion — ejecting
an entry silently forgets directory information about lines still cached in
local L2s, which is exactly what produces the paper's rare *false remote
requests* (Table 3).

``brought_by`` remembers which processor's miss (or write-back) last filled
the line, so hit statistics can be split into the paper's *migration*
(another processor benefits) and *caching* (the same processor benefits)
effects of Fig. 15.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..core.states import LineState


@dataclass(slots=True)
class NCLine:
    """One NC slot's contents (tag + SRAM state + DRAM data)."""

    addr: int
    state: LineState
    proc_mask: int = 0
    locked: bool = False
    pending: Optional[Any] = None
    data: Optional[List] = None
    brought_by: Optional[int] = None

    @property
    def data_valid(self) -> bool:
        """NC DRAM holds usable data (LV or GV)."""
        return self.state in (LineState.LV, LineState.GV) and self.data is not None

    def __repr__(self) -> str:
        lock = "*" if self.locked else ""
        return f"NCLine({self.addr:#x} {self.state.value}{lock} pmask={self.proc_mask:#b})"


class NCArray:
    """Direct-mapped slot array: slot index -> occupant."""

    def __init__(self, name: str, size_bytes: int, line_bytes: int) -> None:
        self.name = name
        self.line_bytes = line_bytes
        self.num_slots = size_bytes // line_bytes
        self._slots: Dict[int, NCLine] = {}

    def slot_index(self, line_addr: int) -> int:
        return (line_addr // self.line_bytes) % self.num_slots

    def probe(self, line_addr: int) -> Optional[NCLine]:
        """Tag-matching lookup: the occupant only if it IS this line."""
        occupant = self._slots.get(self.slot_index(line_addr))
        if occupant is not None and occupant.addr == line_addr:
            return occupant
        return None

    def occupant(self, line_addr: int) -> Optional[NCLine]:
        """Whatever currently sits in this line's slot (tag may differ)."""
        return self._slots.get(self.slot_index(line_addr))

    def insert(self, line: NCLine) -> Optional[NCLine]:
        """Place ``line`` in its slot; returns the displaced occupant (a
        *different* line whose ejection the caller must handle), if any."""
        idx = self.slot_index(line.addr)
        displaced = self._slots.get(idx)
        if displaced is not None and displaced.addr == line.addr:
            displaced = None
        self._slots[idx] = line
        return displaced

    def evict(self, line_addr: int) -> Optional[NCLine]:
        idx = self.slot_index(line_addr)
        occupant = self._slots.get(idx)
        if occupant is not None and occupant.addr == line_addr:
            return self._slots.pop(idx)
        return None

    def occupancy(self) -> int:
        return len(self._slots)

    def lines(self):
        return list(self._slots.values())
