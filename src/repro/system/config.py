"""Machine configuration (the paper's simulator "parameter file", §4.2).

All timing is given in nanoseconds and converted to integer engine ticks.
Defaults model the 64-processor prototype: 150 MHz R4400 CPUs, 50 MHz
station buses and rings, 1 MB secondary caches, >=4 MB network caches, a
4 stations x 4 rings geometry, 64-byte cache lines.

The prototype also let system software constrain component latencies and
bandwidths at boot time for experimentation (§3.2); here that is simply
this dataclass — every knob the benches and ablations turn lives in it.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..interconnect.routing import Geometry
from ..sim.engine import ns_to_ticks


@dataclass
class MachineConfig:
    # ---- geometry ------------------------------------------------------
    geometry: Geometry = dataclasses.field(default_factory=lambda: Geometry((4, 4)))

    # ---- clocks --------------------------------------------------------
    cpu_clock_ns: float = 20 / 3      # 150 MHz R4400
    bus_cycle_ns: float = 20.0        # 50 MHz station bus
    ring_slot_ns: float = 20.0        # 50 MHz rings: one packet per slot
    ring_hop_ns: float = 20.0         # link traversal, node to node

    # ---- line / datapath widths -----------------------------------------
    line_bytes: int = 64
    word_bytes: int = 8
    bus_width_bytes: int = 8          # FutureBus-style 64-bit data path
    ring_width_bytes: int = 8         # bit-parallel ring, 64-bit

    # ---- caches ----------------------------------------------------------
    l1_size_bytes: int = 16 * 1024            # R4400 on-chip primary
    l2_size_bytes: int = 1024 * 1024          # 1 MB secondary cache
    nc_size_bytes: int = 4 * 1024 * 1024      # >= sum of station L2s
    l1_hit_cpu_cycles: int = 1
    l2_hit_cpu_cycles: int = 6

    # ---- fixed latencies (ns) -------------------------------------------
    l2_miss_detect_ns: float = 140.0  # miss determination + external agent out
    cpu_fill_ns: float = 110.0        # external agent in + L2/L1 fill + restart
    bus_arb_ns: float = 20.0          # arbitration overlap per transaction
    mem_fifo_ns: float = 20.0         # memory module input FIFO
    dram_read_ns: float = 140.0       # DRAM line read (interleaved banks, page mode)
    dram_write_ns: float = 120.0      # line write (posted)
    dir_sram_ns: float = 40.0         # directory lookup+update (overlaps DRAM)
    nc_tag_ns: float = 40.0           # NC SRAM tag/state check
    nc_dram_read_ns: float = 200.0    # NC line read (DRAM, slower than SRAM L2)
    nc_dram_write_ns: float = 140.0
    pkt_gen_ns: float = 20.0          # ring interface packet generator
    handler_ns: float = 40.0          # ring interface packet handler
    iri_switch_ns: float = 20.0       # inter-ring interface FIFO hop
    seq_point_ns: float = 450.0       # ordering delay at a sequencing point

    # ---- protocol options (ablations) -------------------------------------
    #: coherence protocol plug-in name ("numachine", "msi"); empty means
    #: "defer to NUMACHINE_PROTOCOL, default numachine" (repro.protocol)
    protocol: str = ""
    nc_enabled: bool = True           # network cache present
    sc_locking: bool = True           # hold data until ordered invalidation
    optimistic_upgrade: bool = True   # ack-only upgrade answers (§2.3/§4.6)
    exact_sharers: bool = False       # full station sets instead of OR-masks

    # ---- deadlock / flow control ------------------------------------------
    nonsink_limit: int = 16           # nonsinkables a station may have in flight
    ring_in_fifo_capacity: int = 256
    iri_fifo_capacity: int = 256

    # ---- processor model ---------------------------------------------------
    cpu_batch: int = 16               # cache hits executed per scheduler event
    nack_retry_cpu_cycles: int = 24   # backoff before retrying a NACKed request
    #: multiplier on Compute() cycles.  The benches scale problem sizes far
    #: below Table 2, which deflates the compute-to-communication ratio; the
    #: speedup benches raise this to restore the paper's balance (documented
    #: in EXPERIMENTS.md as the 'computation scaling' substitution).
    compute_scale: float = 1.0

    # ---- memory map ----------------------------------------------------------
    page_bytes: int = 4096
    station_mem_bytes: int = 1 << 27  # 128 MB address range per station

    # ======================================================================
    # derived quantities (ticks, counts)
    # ======================================================================
    @property
    def cpu_cycle_ticks(self) -> int:
        return ns_to_ticks(self.cpu_clock_ns)

    @property
    def bus_cycle_ticks(self) -> int:
        return ns_to_ticks(self.bus_cycle_ns)

    @property
    def ring_slot_ticks(self) -> int:
        return ns_to_ticks(self.ring_slot_ns)

    @property
    def ring_hop_ticks(self) -> int:
        return ns_to_ticks(self.ring_hop_ns)

    @property
    def line_words(self) -> int:
        return self.line_bytes // self.word_bytes

    @property
    def line_flits(self) -> int:
        """Ring slots for a line-carrying message: header + data flits."""
        return 1 + self.line_bytes // self.ring_width_bytes

    @property
    def line_bus_ticks(self) -> int:
        """Bus time for a cache line of data."""
        return (self.line_bytes // self.bus_width_bytes) * self.bus_cycle_ticks

    @property
    def cmd_bus_ticks(self) -> int:
        """Bus time for an address/command beat."""
        return self.bus_cycle_ticks

    @property
    def num_stations(self) -> int:
        return self.geometry.num_stations

    @property
    def num_cpus(self) -> int:
        return self.geometry.num_processors

    @property
    def cpus_per_station(self) -> int:
        return self.geometry.processors_per_station

    # ---- address helpers --------------------------------------------------
    def line_addr(self, addr: int) -> int:
        return addr & ~(self.line_bytes - 1)

    def home_station(self, addr: int) -> int:
        station = addr // self.station_mem_bytes
        if station >= self.num_stations:
            raise ValueError(f"address {addr:#x} beyond physical memory")
        return station

    def station_base(self, station_id: int) -> int:
        return station_id * self.station_mem_bytes

    # ---- convenience constructors ------------------------------------------
    @classmethod
    def prototype(cls) -> "MachineConfig":
        """The 64-processor 4x4 prototype with full-size caches."""
        return cls()

    @classmethod
    def small(cls, stations_per_ring: int = 2, rings: int = 2, cpus: int = 2) -> "MachineConfig":
        """A scaled-down machine for tests: small caches force capacity and
        conflict behaviour to show up at tiny working-set sizes."""
        return cls(
            geometry=Geometry((stations_per_ring, rings), processors_per_station=cpus),
            l1_size_bytes=1024,
            l2_size_bytes=8 * 1024,
            nc_size_bytes=32 * 1024,
            station_mem_bytes=1 << 22,
        )

    def validate(self) -> None:
        if self.protocol:
            from ..protocol import get_protocol

            get_protocol(self.protocol)  # raises ValueError when unknown
        if self.line_bytes % self.word_bytes:
            raise ValueError("line size must be a multiple of the word size")
        if self.l2_size_bytes % self.line_bytes or self.nc_size_bytes % self.line_bytes:
            raise ValueError("cache sizes must be whole numbers of lines")
        if self.page_bytes % self.line_bytes:
            raise ValueError("page size must be a multiple of the line size")
        if self.station_mem_bytes % self.page_bytes:
            raise ValueError("per-station memory must be whole pages")
