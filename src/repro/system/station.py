"""One NUMAchine station (paper Fig. 2): four processor modules, a memory
module, a network cache and a ring interface on a shared bus.

The station also owns the packet *dispatch*: ring packets delivered by the
local ring interface are routed to the memory module (for lines homed
here), the network cache (for remote lines), or processor registers
(barrier writes and interrupts).
"""

from __future__ import annotations

from typing import List

from ..cpu.processor import Processor
from ..interconnect.packet import MsgType, Packet
from ..interconnect.routing import RoutingMaskCodec
from ..sim.engine import Engine, SimulationError, ns_to_ticks
from .bus import Bus


class Station:
    def __init__(
        self,
        engine: Engine,
        config,
        codec: RoutingMaskCodec,
        station_id: int,
        protocol=None,
    ) -> None:
        if protocol is None:
            # direct constructions (unit tests) resolve the plug-in themselves
            from ..protocol import resolve_protocol

            protocol = resolve_protocol(config)
        self.engine = engine
        self.config = config
        self.codec = codec
        self.station_id = station_id
        self.protocol = protocol
        self.bus = Bus(
            engine, f"S{station_id}.bus", arb_ticks=ns_to_ticks(config.bus_arb_ns)
        )
        self.cpus: List[Processor] = [
            Processor(engine, config, station_id * config.cpus_per_station + i, self)
            for i in range(config.cpus_per_station)
        ]
        self.memory = protocol.memory_class(engine, config, self)
        self.nc = protocol.nc_class(engine, config, self)
        from .io import IOModule

        self.io = IOModule(engine, config, self)
        self.ring_interface = None   # wired by the Machine
        self._peers = None           # all stations; wired by the Machine
        # home-routing constants, bound once: module_for runs per request
        self._station_mem_bytes = config.station_mem_bytes
        self._num_stations = config.num_stations
        # dispatch constants, bound once: deliver_from_ring runs per packet
        # and its register fan-outs iterate over whole-machine cpu lists
        self._cpus_per_station = config.cpus_per_station
        self._gid_base = station_id * self._cpus_per_station

    def peer(self, station_id: int) -> "Station":
        return self._peers[station_id]

    # ------------------------------------------------------------------
    def module_for(self, addr: int):
        """The on-station module responsible for ``addr``: the memory module
        when this station is its home, else the network cache."""
        station = addr // self._station_mem_bytes
        if station == self.station_id:
            return self.memory
        if station >= self._num_stations:
            raise ValueError(f"address {addr:#x} beyond physical memory")
        return self.nc

    def cpu_by_global(self, global_cpu: int) -> Processor:
        idx = global_cpu % self.config.cpus_per_station
        cpu = self.cpus[idx]
        if cpu.cpu_id != global_cpu:
            raise SimulationError(
                f"cpu {global_cpu} is not on station {self.station_id}"
            )
        return cpu

    # ------------------------------------------------------------------
    def deliver_from_ring(self, pkt: Packet) -> None:
        """Dispatch a packet that the ring interface moved over the bus."""
        mtype = pkt.mtype
        if mtype is MsgType.BARRIER_WRITE:
            bit = pkt.meta["bit"]
            sense = pkt.meta["sense"]
            base = self._gid_base
            top = base + self._cpus_per_station
            cpus = self.cpus
            for gid in pkt.meta["cpus"]:
                if base <= gid < top:
                    cpus[gid - base].barrier_write(bit, sense)
            return
        if mtype is MsgType.INTERRUPT:
            cps = self._cpus_per_station
            proc_mask = pkt.meta.get("proc_mask", (1 << cps) - 1)
            bits = pkt.meta.get("bits", 1)
            for i in range(cps):
                if proc_mask & (1 << i):
                    self.cpus[i].raise_interrupt(bits)
            return
        if mtype is MsgType.UNCACHED_RESP:
            self.cpu_by_global(pkt.requester).complete_uncached(pkt.addr, pkt.data)
            return
        home_here = self.config.home_station(pkt.addr) == self.station_id
        if home_here:
            self.memory.handle(pkt)
        else:
            self.nc.handle(pkt)
