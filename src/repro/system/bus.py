"""The station bus (paper §2, Fig. 2).

All modules on a station — processors, the memory module, the network
cache, and the ring interface — share one bus using the FutureBus
mechanical/electrical spec with custom control.  The model is an arbitrated
serial resource: a transaction asks for the bus for a duration (command
beat, optionally followed by line-data beats); grants are FIFO.

The network cache obviates snooping (§3.1.4), so the bus is purely
point-to-point-with-broadcast-data: a responding module's single data
transfer can be picked up by both the requesting processor and the
memory/NC ("the processor forwards a copy to the requesting processor and
to the memory module" rides one transaction).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Tuple

from ..sim.engine import Engine
from ..sim.stats import BusyTracker, Counter

_PRIO_NORMAL = Engine.PRIO_NORMAL


class Bus:
    """A single arbitrated station bus.

    :meth:`request` queues a transaction of ``duration`` ticks; when the
    transfer *completes*, ``on_complete(start_tick)`` is invoked.  A fixed
    arbitration cost is charged per transaction (it does not occupy the data
    path and so is not counted as busy time when overlapped).
    """

    __slots__ = ("engine", "name", "arb_ticks", "_queue", "_busy", "busy", "transactions")

    def __init__(self, engine: Engine, name: str, arb_ticks: int) -> None:
        self.engine = engine
        self.name = name
        self.arb_ticks = arb_ticks
        self._queue: Deque[Tuple[int, Callable[[int], None]]] = deque()
        self._busy = False
        self.busy = BusyTracker(f"{name}.busy")
        self.transactions = Counter(f"{name}.transactions")

    def request(self, duration: int, on_complete: Callable[[int], None]) -> None:
        """Queue a transaction occupying the bus for ``duration`` ticks."""
        self._queue.append((duration, on_complete))
        if not self._busy:
            self._grant()

    def _grant(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        duration, on_complete = self._queue.popleft()
        arb = self.arb_ticks
        engine = self.engine
        self.busy.busy += duration
        self.transactions.value += 1
        # Engine.schedule inlined (arb and duration are non-negative): a
        # grant per transaction makes this the busiest scheduling site
        now = engine.now
        seq = engine._seq + 1
        engine._seq = seq
        engine._push(
            (now + arb + duration, _PRIO_NORMAL, seq, self._complete,
             (now + arb, on_complete))
        )

    def _complete(self, arg) -> None:
        start, on_complete = arg
        on_complete(start)
        self._grant()

    def utilization(self, now: int) -> float:
        return self.busy.utilization(now)

    def start_window(self, now: int) -> None:
        self.busy.start_window(now)


class OrderedPort:
    """A module's output FIFO onto the bus (the memory module's "Out FIFO"
    of Fig. 10).

    Coherence correctness requires that a module's bus actions reach the
    bus *in issue order* even when some are delayed by DRAM access time —
    e.g. a data grant being prepared must not be overtaken by a later
    intervention for the same line.  Actions enter this FIFO when issued
    and are handed to the bus arbiter in order, each no earlier than its
    ready time.
    """

    __slots__ = ("engine", "bus", "_queue", "_busy")

    def __init__(self, engine: Engine, bus: Bus) -> None:
        self.engine = engine
        self.bus = bus
        self._queue: Deque[Tuple[int, int, Callable[[int], None]]] = deque()
        self._busy = False

    def send(self, delay: int, duration: int, on_complete: Callable[[int], None]) -> None:
        """Issue a bus transaction of ``duration`` ticks that becomes ready
        ``delay`` ticks from now; ``on_complete(start)`` fires when the bus
        transfer finishes."""
        self._queue.append((self.engine.now + delay, duration, on_complete))
        self._pump()

    def _pump(self) -> None:
        if self._busy or not self._queue:
            return
        self._busy = True
        ready, duration, cb = self._queue.popleft()
        # Engine.schedule_at inlined; when >= now by construction
        engine = self.engine
        now = engine.now
        if ready < now:
            ready = now
        seq = engine._seq + 1
        engine._seq = seq
        engine._push((ready, _PRIO_NORMAL, seq, self._issue, (duration, cb)))

    def _issue(self, arg) -> None:
        # Bus.request inlined — one issue per bus transaction
        bus = self.bus
        bus._queue.append(arg)
        if not bus._busy:
            bus._grant()
        # the bus queue itself is FIFO, so the next item may be released as
        # soon as this one has entered it
        self._busy = False
        self._pump()
