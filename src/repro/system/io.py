"""The station I/O module (paper Fig. 2, §3.2).

Each station carries an I/O module connecting disks and other devices.
What matters to the memory system — and what §3.2 describes — is the
interaction pattern: system software issues a device request *naming the
processor to interrupt and the bit pattern to write into its interrupt
register on completion*; the device then moves data to/from memory by DMA
(coherent block transfers through the memory module) and finally raises
the requested interrupt.  That is what this module implements; platter
physics is reduced to a fixed device latency plus a per-byte transfer rate.

Programs drive it through ``SoftOp("io_read"| "io_write", ...)`` (see
:mod:`repro.softctl.ops`), or directly via :meth:`IOModule.submit`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..interconnect.packet import MsgType, Packet
from ..sim.engine import Engine, ns_to_ticks
from ..sim.stats import StatGroup


@dataclass
class IORequest:
    """One DMA transfer between a device and physical memory."""

    kind: str                 # 'read' (device -> memory) | 'write' (memory -> device)
    addr: int                 # line-aligned physical base
    nlines: int
    notify_cpu: int           # global cpu id to interrupt on completion
    intr_bits: int = 1
    #: device-side payload: for 'read', the lines to deposit; for 'write',
    #: filled in with the lines read from memory
    payload: Optional[List[List]] = None


class IOModule:
    """A DMA-capable I/O controller on one station's bus.

    Requests queue at the device; each costs ``device_latency_ns`` seek/
    setup time plus ``byte_time_ns`` per byte, then the data moves over the
    station bus to/from the local memory module (remote targets ride the
    ordinary coherent block machinery of the memory modules).
    """

    def __init__(self, engine: Engine, config, station,
                 device_latency_ns: float = 5000.0,
                 byte_time_ns: float = 2.0) -> None:
        self.engine = engine
        self.config = config
        self.station = station
        self.device_ticks = ns_to_ticks(device_latency_ns)
        self.byte_ticks = ns_to_ticks(byte_time_ns)
        self._queue: List[IORequest] = []
        self._busy = False
        self.stats = StatGroup(f"S{station.station_id}.io")

    # ------------------------------------------------------------------
    def submit(self, request: IORequest) -> None:
        self._queue.append(request)
        self.stats.counter("requests").incr()
        self._pump()

    def _pump(self) -> None:
        if self._busy or not self._queue:
            return
        self._busy = True
        req = self._queue.pop(0)
        transfer = self.device_ticks + self.byte_ticks * req.nlines * self.config.line_bytes
        self.engine.schedule(transfer, self._transfer_done, req)

    def _transfer_done(self, req: IORequest) -> None:
        cfg = self.config
        mem = self.station.memory
        if req.kind == "read":
            # device -> memory: kill cached copies, then deposit the lines
            payload = req.payload or [[0] * cfg.line_words] * req.nlines
            for i in range(req.nlines):
                la = req.addr + i * cfg.line_bytes
                kill = Packet(
                    mtype=MsgType.KILL, addr=la,
                    src_station=self.station.station_id, dest_mask=0,
                    requester=req.notify_cpu, meta={"local": True},
                )
                mem.handle(kill)
                data = payload[i % len(payload)]
                self.engine.schedule(
                    0, lambda a=la, d=list(data), m=mem: m.write_line(a, d)
                )
            busy = req.nlines * ns_to_ticks(cfg.dram_write_ns)
        else:
            # memory -> device: collect current coherent contents
            req.payload = []
            for i in range(req.nlines):
                la = req.addr + i * cfg.line_bytes
                req.payload.append(self._coherent_line(la))
            busy = req.nlines * ns_to_ticks(cfg.dram_read_ns)
        self.stats.counter(f"{req.kind}s").incr()
        self.engine.schedule(busy, self._interrupt, req)

    def _coherent_line(self, la: int) -> List:
        """Device reads see the coherent view: a dirty cached copy wins."""
        from ..core.states import CacheState, LineState

        for cpu in self.station.cpus:
            line = cpu.l2.lookup(la, touch=False)
            if line is not None and line.state is CacheState.DIRTY:
                return list(line.data)
        ncl = self.station.nc.array.probe(la)
        if ncl is not None and ncl.state is LineState.LV and ncl.data:
            return list(ncl.data)
        home = self.config.home_station(la)
        return self.station.peer(home).memory.read_line(la)

    def _interrupt(self, req: IORequest) -> None:
        cfg = self.config
        target_station = req.notify_cpu // cfg.cpus_per_station
        if target_station == self.station.station_id:
            self.station.cpus[req.notify_cpu % cfg.cpus_per_station].raise_interrupt(
                req.intr_bits
            )
        else:
            intr = Packet(
                mtype=MsgType.INTERRUPT, addr=0,
                src_station=self.station.station_id,
                dest_mask=self.station.codec.station_mask(target_station),
                requester=req.notify_cpu,
                meta={
                    "proc_mask": 1 << (req.notify_cpu % cfg.cpus_per_station),
                    "bits": req.intr_bits,
                },
            )
            self.station.bus.request(
                cfg.cmd_bus_ticks,
                lambda start, p=intr: self.station.ring_interface.send(p),
            )
        self.stats.counter("interrupts").incr()
        self._busy = False
        self._pump()
