"""Whole-machine assembly and run loop — the public entry point.

Typical use::

    from repro import Machine, MachineConfig

    machine = Machine(MachineConfig.small())
    region = machine.allocate(4096)
    def program(cpu_id):
        def gen():
            v = yield Read(region.addr(0))
            yield Write(region.addr(8), v + 1)
        return gen()
    result = machine.run({0: program(0)})
    print(result.time_ns, result.speedup_base)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..interconnect.topology import Interconnect, build_interconnect
from ..interconnect.interfaces import StationRingInterface
from ..interconnect.ring import fusion_enabled
from ..sim.engine import DeadlockError, Engine, ns_to_ticks, ticks_to_ns
from .address_map import AddressMap, PageAttributes, Region
from .config import MachineConfig
from .station import Station


@dataclass
class RunResult:
    """Measurements from one simulation run."""

    time_ticks: int
    time_ns: float
    events: int
    cpu_finish_ns: Dict[int, float] = field(default_factory=dict)

    def __repr__(self) -> str:
        return f"RunResult(time={self.time_ns:.0f}ns events={self.events})"


class Machine:
    """A complete NUMAchine instance."""

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.config = config or MachineConfig()
        self.config.validate()
        # simulation backend: "auto" | "interp" | "elab"; an explicit
        # argument beats NUMACHINE_BACKEND (validated here, applied in run)
        from ..elab import backend as _backend

        self._backend_pref = backend
        _backend.backend_name(backend)
        # transit fusion (NUMACHINE_FUSE): resolved once at construction so
        # every component and the elaborated core agree for the machine's
        # whole lifetime even if the environment changes later
        self.fused = fusion_enabled()
        # coherence protocol plug-in (NUMACHINE_PROTOCOL / config.protocol):
        # resolved once here so every layer agrees for the machine's lifetime
        from ..protocol import resolve_protocol

        self.protocol = resolve_protocol(self.config)
        self.protocol_name = self.protocol.name
        self._elab_applied = False
        self._elab_failed = False
        # which elab variant is in place: None | "plain" | "instr"
        self._elab_variant = None
        self.engine = Engine(num_cpus=self.config.num_cpus)
        self.net: Interconnect = build_interconnect(self.engine, self.config)
        self.codec = self.net.codec
        self.stations: List[Station] = [
            Station(self.engine, self.config, self.codec, s, protocol=self.protocol)
            for s in range(self.config.num_stations)
        ]
        # attach station ring interfaces
        for station in self.stations:
            ring, pos = self.net.local_ring_for(station.station_id)
            sri = StationRingInterface(
                self.engine,
                self.codec,
                station.station_id,
                ring,
                pos,
                pkt_gen_ticks=ns_to_ticks(self.config.pkt_gen_ns),
                handler_ticks=ns_to_ticks(self.config.handler_ns),
                bus_granter=station.bus.request,
                deliver=station.deliver_from_ring,
                nonsink_limit=self.config.nonsink_limit,
                in_fifo_capacity=self.config.ring_in_fifo_capacity,
                line_bus_ticks=self.config.line_bus_ticks,
                cmd_bus_ticks=self.config.cmd_bus_ticks,
                seq_ticks=ns_to_ticks(self.config.seq_point_ns),
            )
            ring.attach(pos, sri)
            station.ring_interface = sri
        for station in self.stations:
            station._peers = self.stations
        self.cpus = [cpu for st in self.stations for cpu in st.cpus]
        self.memory_map = AddressMap(self.config)
        for cpu in self.cpus:
            cpu.page_attrs = self.memory_map.attrs_for
        self.monitor = None  # set via attach_monitor()
        self.obs = None  # set via attach_observability()
        self.verifier = None  # set via attach_verifier()
        self.watchdog = None  # set via attach_watchdog()
        self.fault = None  # set via attach_fault()

    # ------------------------------------------------------------------
    # memory allocation
    # ------------------------------------------------------------------
    def allocate(
        self,
        nbytes: int,
        placement="round_robin",
        name: Optional[str] = None,
        attrs: Optional[PageAttributes] = None,
    ) -> Region:
        return self.memory_map.allocate(nbytes, placement, name, attrs)

    # ------------------------------------------------------------------
    # monitoring
    # ------------------------------------------------------------------
    def attach_monitor(self, monitor) -> None:
        """Install a :class:`repro.monitor.Monitor` across all modules."""
        self._ensure_interp()
        self.monitor = monitor
        for st in self.stations:
            st.memory.monitor = monitor
            st.nc.monitor = monitor

    def attach_observability(self, obs) -> None:
        """Install a :class:`repro.obs.Observability` layer (transaction
        tracer + time-series probes + optional telemetry stream) across all
        components.

        Observability does *not* force the interpreted backend: the next
        :meth:`run` selects the instrumented elab variant, which carries
        the tracer stamps and telemetry inline (see repro.elab.backend).
        The revert here only re-points the component classes while the
        engine is drained, so the swap to the instrumented core is legal.
        """
        self._ensure_interp()
        obs.attach(self)

    def attach_verifier(self, verifier=None):
        """Install a :class:`repro.verify.CoherenceChecker` across all
        components (null-object pattern: zero cost when not attached, and
        bit-identical event streams when attached)."""
        self._ensure_interp()
        if verifier is None:
            from ..verify import CoherenceChecker

            verifier = CoherenceChecker()
        verifier.attach(self)
        return verifier

    def attach_watchdog(self, watchdog=None, **kwargs):
        """Install a :class:`repro.fault.Watchdog` bounding simulated
        time and/or event count; overruns raise a diagnostic
        :class:`repro.fault.WatchdogError` instead of hanging."""
        if watchdog is None:
            from ..fault import Watchdog

            watchdog = Watchdog(self, **kwargs)
        return watchdog.attach()

    def attach_fault(self, plan):
        """Apply a :class:`repro.fault.FaultPlan` via a
        :class:`repro.fault.FaultInjector`; must be called before
        :meth:`run`."""
        self._ensure_interp()
        from ..fault import FaultInjector

        self.fault = FaultInjector(plan).attach(self)
        return self.fault

    # ------------------------------------------------------------------
    # backend (interpreted vs elaborated core)
    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        """The backend currently in place: ``"elab"`` when the generated
        specialized core is active, else ``"interp"``."""
        return "elab" if self._elab_applied else "interp"

    @property
    def backend_variant(self) -> Optional[str]:
        """Which elab variant is active: ``"plain"``, ``"instr"``, or
        ``None`` when running interpreted."""
        return self._elab_variant if self._elab_applied else None

    def _ensure_interp(self) -> None:
        from ..elab import backend as _backend

        _backend.ensure_interp(self)

    def obs_snapshot(self, include_wall: bool = True) -> dict:
        """The unified metrics snapshot (see :mod:`repro.obs.registry`);
        works with or without an attached observability layer."""
        from ..obs.registry import snapshot

        return snapshot(self, include_wall=include_wall)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        programs: Dict[int, object],
        max_events: Optional[int] = None,
        until_ns: Optional[float] = None,
    ) -> RunResult:
        """Run the given per-CPU generator programs to completion.

        ``programs`` maps global cpu ids to generators.  Raises
        :class:`DeadlockError` if the event queue drains while any program
        is still blocked (a protocol bug or a genuinely deadlocked workload).
        """
        # apply the selected backend (specialized core unless hooks demand
        # the interpreted one); a no-op while events are in flight
        from ..elab import backend as _backend

        _backend.sync(self)
        # a 64-CPU machine running 16 programs behaves like a 16-CPU run for
        # event-population purposes; refine the scheduler choice before any
        # event exists (no-op unless the engine is fresh and on auto-select)
        self.engine.size_hint(len(programs))
        for cpu_id, program in programs.items():
            self.cpus[cpu_id].set_program(program)
        if self.obs is not None:
            self.obs.arm()
        until = ns_to_ticks(until_ns) if until_ns is not None else None
        start_events = self.engine.events_run
        while True:
            self.engine.run(until=until, max_events=max_events)
            if self.engine.pending == 0:
                break
            if until is not None or max_events is not None:
                break
        if self.obs is not None:
            # flush the final telemetry-stream line (no-op without a stream)
            self.obs.finish_run()
        try:
            self.engine.check_quiescent()
        except DeadlockError as exc:
            raise self._deadlock(exc) from None
        running = [
            cpu for cpu in self.cpus if cpu.program is not None and not cpu.done
        ]
        if self.engine.pending == 0 and running:
            raise self._deadlock(
                DeadlockError(
                    f"programs never finished on cpus {[c.cpu_id for c in running]}"
                )
            )
        if self.engine.pending == 0 and self.verifier is not None:
            self.verifier.assert_quiescent()
        finish = {
            cpu.cpu_id: ticks_to_ns(cpu.finished_at)
            for cpu in self.cpus
            if cpu.finished_at is not None
        }
        return RunResult(
            time_ticks=self.engine.now,
            time_ns=ticks_to_ns(self.engine.now),
            events=self.engine.events_run - start_events,
            cpu_finish_ns=finish,
        )

    def _deadlock(self, exc: DeadlockError) -> DeadlockError:
        """Enrich a drained-queue deadlock with the watchdog's diagnostic
        dump when a watchdog is attached (already-wrapped errors pass
        through unchanged)."""
        if self.watchdog is None:
            return exc
        from ..fault import WatchdogError

        if isinstance(exc, WatchdogError):
            return exc
        return self.watchdog.deadlock_error(exc)

    # ------------------------------------------------------------------
    # metrics used by the benches (Figs. 15-18, Table 3)
    # ------------------------------------------------------------------
    def parallel_time_ns(self, result: RunResult) -> float:
        """Parallel-section time: until the last participating CPU finished
        (the paper's 'master completes wait() for all children')."""
        if not result.cpu_finish_ns:
            return result.time_ns
        return max(result.cpu_finish_ns.values())

    def nc_stats(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for st in self.stations:
            for name, c in st.nc.stats.counters.items():
                out[name] = out.get(name, 0) + c.value
        return out

    def memory_stats(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for st in self.stations:
            for name, c in st.memory.stats.counters.items():
                out[name] = out.get(name, 0) + c.value
        return out

    def nc_hit_rate(self) -> Dict[str, float]:
        s = self.nc_stats()
        total = s.get("hits", 0) + s.get("misses", 0)
        if total == 0:
            return {"total": 0.0, "migration": 0.0, "caching": 0.0}
        return {
            "total": s.get("hits", 0) / total,
            "migration": s.get("migration_hits", 0) / total,
            "caching": s.get("caching_hits", 0) / total,
        }

    def nc_combining_rate(self) -> float:
        s = self.nc_stats()
        total = s.get("hits", 0) + s.get("misses", 0)
        if total == 0:
            return 0.0
        return s.get("combined_requests", 0) / total

    def false_remote_rate(self) -> float:
        s = self.nc_stats()
        total = s.get("requests", 0)
        if total == 0:
            return 0.0
        return s.get("false_remotes", 0) / total

    def special_read_count(self) -> int:
        return self.nc_stats().get("special_reads", 0)

    def throughput(self) -> Dict[str, float]:
        """Simulator throughput meter: events processed, wall-clock seconds
        spent inside the event loop, and events per second (host-dependent;
        reported by the engine microbench and the perf harness)."""
        return self.engine.throughput()

    def event_counts(self) -> Dict[str, object]:
        """Event accounting across the transit-fusion axis.

        ``events`` is what the engine actually ran (macro-events when
        ``NUMACHINE_FUSE=on``); ``fused`` is the number of hop events
        fusion elided; ``cancels`` the repair tombstones the engine
        popped; ``hop_equivalent = events + fused - cancels`` is the
        hop-by-hop event count this run is exactly equivalent to — with
        fusion off it equals ``events``, and a fused run reproduces the
        unfused run's ``events`` here bit-exactly (see ring.py)."""
        fused = 0
        for ring in self.net.rings.values():
            fused += ring.events_fused
        for iri in self.net.iris:
            fused += iri.events_fused
        for st in self.stations:
            fused += st.ring_interface.events_fused
            fused += st.nc.events_fused
            fused += st.memory.events_fused
        events = self.engine.events_run
        cancels = self.engine.cancels
        return {
            "fuse": "on" if self.fused else "off",
            "events": events,
            "fused": fused,
            "cancels": cancels,
            "hop_equivalent": events + fused - cancels,
        }

    def utilizations(self) -> Dict[str, float]:
        now = self.engine.now
        bus = [st.bus.utilization(now) for st in self.stations]
        local = [r.utilization(now) for r in self.net.local_rings]
        out = {
            "bus": sum(bus) / len(bus),
            "local_ring": sum(local) / len(local),
        }
        if self.codec.geometry.num_levels > 1:
            out["central_ring"] = self.net.central_ring.utilization(now)
        return out

    def ring_interface_delays(self) -> Dict[str, float]:
        """Average delays in ring-clock cycles (paper Fig. 18)."""
        slot = self.config.ring_slot_ticks

        def mean(accs) -> float:
            total = sum(a.total for a in accs)
            count = sum(a.count for a in accs)
            return (total / count / slot) if count else 0.0

        send = [st.ring_interface.stats.accumulator("send_delay") for st in self.stations]
        d_sink = [
            st.ring_interface.stats.accumulator("down_delay_sink") for st in self.stations
        ]
        d_nonsink = [
            st.ring_interface.stats.accumulator("down_delay_nonsink")
            for st in self.stations
        ]
        out = {
            "send": mean(send),
            "down_sinkable": mean(d_sink),
            "down_nonsinkable": mean(d_nonsink),
        }
        if self.net.iris:
            out["iri_up"] = mean([iri.stats.accumulator("up_delay") for iri in self.net.iris])
            out["iri_down"] = mean(
                [iri.stats.accumulator("down_delay") for iri in self.net.iris]
            )
        return out

    # ------------------------------------------------------------------
    # debugging / verification helpers
    # ------------------------------------------------------------------
    def flush_all_dirty(self) -> None:
        """Test helper: push every dirty L2 line's data into its home
        memory's backing store *without* simulating traffic."""
        from ..core.states import CacheState, LineState

        for cpu in self.cpus:
            for line in cpu.l2.lines():
                if line.state is CacheState.DIRTY:
                    home = self.stations[self.config.home_station(line.addr)]
                    home.memory.write_line(line.addr, line.data)
        for st in self.stations:
            for line in st.nc.array.lines():
                if line.state is LineState.LV and line.data is not None:
                    home = self.stations[self.config.home_station(line.addr)]
                    home.memory.write_line(line.addr, line.data)

    def read_word(self, addr: int):
        """Coherent debug read: the most up-to-date value of a word,
        honouring owner caches over memory."""
        from ..core.states import CacheState, LineState

        cfg = self.config
        la = cfg.line_addr(addr)
        idx = (addr % cfg.line_bytes) // cfg.word_bytes
        for cpu in self.cpus:
            line = cpu.l2.lookup(la, touch=False)
            if line is not None and line.state is CacheState.DIRTY:
                return line.data[idx]
        for st in self.stations:
            nline = st.nc.array.probe(la)
            if nline is not None and nline.state is LineState.LV and nline.data:
                return nline.data[idx]
        return self.stations[cfg.home_station(addr)].memory.read_line(la)[idx]
