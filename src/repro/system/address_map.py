"""Physical address map and page placement (paper §2, §4.3).

The machine has a flat physical address space: each station owns a
contiguous range (``config.station_mem_bytes``).  The allocator hands out
page-aligned regions under a placement policy:

* ``round_robin`` — consecutive pages rotate across stations; the paper's
  (deliberately pessimistic) default for the speedup measurements.
* ``local:<k>`` / an integer — all pages on one station ("private pages"
  placed with their processor, the optimisation §4.3 mentions).
* ``block`` — split the region into one contiguous chunk per station.

Per-page attributes (§3.2 software-managed caching) ride along: caching
enabled/disabled, hardware coherence on/off, exclusive-only, update-vs-
invalidate — consulted by the softctl layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union


@dataclass
class PageAttributes:
    cacheable: bool = True
    hw_coherent: bool = True
    exclusive_only: bool = False
    update_protocol: bool = False


@dataclass
class Region:
    """One allocation: the list of page base addresses backing it, in
    region order (virtually contiguous from the workload's viewpoint)."""

    name: str
    nbytes: int
    pages: List[int]
    page_bytes: int
    attrs: PageAttributes = field(default_factory=PageAttributes)

    def addr(self, offset: int) -> int:
        """Physical address of a byte offset into the region."""
        if not 0 <= offset < self.nbytes:
            raise IndexError(f"{self.name}: offset {offset} out of range")
        return self.pages[offset // self.page_bytes] + offset % self.page_bytes


class AddressMap:
    """Page allocator over the stations' physical ranges."""

    def __init__(self, config) -> None:
        self.config = config
        # Stagger each station's first frame so that equal offsets on
        # different stations (which alias to the same direct-mapped network
        # cache slot, since station strides are NC-size multiples) are not
        # handed out together — mimicking a real OS's scattered page frames.
        stagger = max(
            config.page_bytes,
            (config.nc_size_bytes // max(1, config.num_stations))
            // config.page_bytes * config.page_bytes,
        )
        self._next_page: List[int] = [
            config.station_base(s) + s * stagger
            for s in range(config.num_stations)
        ]
        self._rr_cursor = 0
        self.regions: Dict[str, Region] = {}
        self._anon = 0
        #: page base -> PageAttributes for pages with non-default attributes
        self._page_attrs: Dict[int, PageAttributes] = {}

    def _take_page(self, station: int) -> int:
        cfg = self.config
        addr = self._next_page[station]
        limit = cfg.station_base(station) + cfg.station_mem_bytes
        if addr + cfg.page_bytes > limit:
            raise MemoryError(f"station {station} out of physical memory")
        self._next_page[station] = addr + cfg.page_bytes
        return addr

    def allocate(
        self,
        nbytes: int,
        placement: Union[str, int] = "round_robin",
        name: Optional[str] = None,
        attrs: Optional[PageAttributes] = None,
    ) -> Region:
        cfg = self.config
        if name is None:
            name = f"region{self._anon}"
            self._anon += 1
        npages = -(-nbytes // cfg.page_bytes)
        pages: List[int] = []
        if isinstance(placement, int):
            pages = [self._take_page(placement) for _ in range(npages)]
        elif placement == "round_robin":
            for _ in range(npages):
                pages.append(self._take_page(self._rr_cursor))
                self._rr_cursor = (self._rr_cursor + 1) % cfg.num_stations
        elif placement.startswith("local:"):
            station = int(placement.split(":", 1)[1])
            pages = [self._take_page(station) for _ in range(npages)]
        elif placement == "block":
            per = -(-npages // cfg.num_stations)
            s = 0
            for i in range(npages):
                pages.append(self._take_page(s))
                if (i + 1) % per == 0:
                    s = min(s + 1, cfg.num_stations - 1)
        else:
            raise ValueError(f"unknown placement {placement!r}")
        region = Region(
            name=name, nbytes=npages * cfg.page_bytes, pages=pages,
            page_bytes=cfg.page_bytes, attrs=attrs or PageAttributes(),
        )
        self.regions[name] = region
        if attrs is not None:
            for page in pages:
                self._page_attrs[page] = region.attrs
        return region

    _DEFAULT_ATTRS = PageAttributes()

    def attrs_for(self, addr: int) -> PageAttributes:
        """Per-page software-managed caching attributes (§3.2)."""
        page = addr - addr % self.config.page_bytes
        return self._page_attrs.get(page, self._DEFAULT_ATTRS)
