"""System assembly: configuration, buses, stations, address map, machine."""

from .address_map import AddressMap, PageAttributes, Region
from .bus import Bus
from .config import MachineConfig
from .machine import Machine, RunResult
from .station import Station

__all__ = [
    "AddressMap",
    "PageAttributes",
    "Region",
    "Bus",
    "MachineConfig",
    "Machine",
    "RunResult",
    "Station",
]
