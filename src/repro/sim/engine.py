"""Discrete-event simulation engine.

The engine is the substrate every NUMAchine component is built on.  Time is
kept in integer *ticks*; the machine configuration maps nanoseconds to ticks
(``TICKS_PER_NS = 3``) so that the 150 MHz CPU clock (6.67 ns) and the 50 MHz
bus/ring clocks (20 ns) are both exact integer periods and no floating-point
drift can reorder events.

Only *misses* and interconnect activity are event-driven; cache hits are
resolved synchronously inside the processor model (see
:mod:`repro.cpu.processor`), so the cost of a simulation run is proportional
to the number of messages exchanged, not to the number of cycles simulated.

The event loop is the hottest code in the whole simulator: every message,
bus grant and FIFO pump passes through :meth:`Engine.run`.  Scheduling is
*pluggable* (see :mod:`repro.sim.sched`): the default is a calendar queue
whose per-event cost does not grow with the number of pending events — the
property that keeps the full 64-processor machine affordable — with the
binary heap retained as the reference implementation, selectable via the
``NUMACHINE_SCHED`` environment variable (or the ``scheduler=`` argument).
Event *ordering* is identical under every scheduler — the total order of
``(time, priority, seq)`` keys — so runs are bit-identical whichever is
active; the engine dispatches to a loop specialised for the scheduler in
use so neither pays an indirection per event.

Components on the very hottest paths (bus grants, memory/NC pumps) inline
``Engine.schedule`` by bumping ``engine._seq`` themselves and handing the
finished event tuple to ``engine._push`` — the single scheduler-agnostic
insertion point.

Content-derived sequence keys
-----------------------------

The ``seq`` slot of an event tuple is normally allocated from the global
counter, which makes every event's scheduling *position* part of the
simulation's tie-break order.  That is exactly wrong for transit fusion
(:mod:`repro.interconnect.ring`): a fused macro-event is scheduled earlier
in the stream than the hop-by-hop event it replaces, so a counter seq
would perturb every later same-tick tie.  Events that fusion may elide or
reschedule therefore carry *content-derived* keys instead — values
computed from stable identity (:meth:`Engine.alloc_uid`, position, flit
count) that are identical no matter when the event was pushed:

* ``PRIO_ARRIVAL`` events (ring arrivals and their tail-lag bounces) use
  **positive** content keys; the counter is never used at that priority.
* ``PRIO_NORMAL`` content keys are **negative** (bitwise-not of a
  uid-based code), so they can never collide with counter values and sort
  as a deterministic block ahead of counter-keyed events at the same tick.

Uniqueness per ``(time, priority)`` is the scheduling site's obligation —
link occupancy spaces ring arrivals, module ``busy`` flags serialize
service loops — and is what keeps event tuples totally ordered without
ever comparing callbacks.
"""

from __future__ import annotations

import heapq
import os as _os
import time as _time
from functools import partial as _partial
from typing import Any, Callable, Optional

from .sched import HeapScheduler, make_scheduler

#: Integer ticks per nanosecond.  3 makes both a 6.67ns CPU cycle (20 ticks)
#: and a 20ns bus/ring cycle (60 ticks) exact.
TICKS_PER_NS = 3

_heappush = heapq.heappush
_heappop = heapq.heappop
_perf_counter = _time.perf_counter


def ns_to_ticks(ns: float) -> int:
    """Convert a duration in nanoseconds to integer engine ticks."""
    return round(ns * TICKS_PER_NS)


def ticks_to_ns(ticks: int) -> float:
    """Convert engine ticks back to nanoseconds."""
    return ticks / TICKS_PER_NS


class SimulationError(RuntimeError):
    """Raised for fatal simulation-model errors (protocol violations etc.)."""


class DeadlockError(SimulationError):
    """Raised when the event queue drains while work remains outstanding."""


class Cancellable:
    """Handle for an event scheduled via :meth:`Engine.schedule_cancellable_at`.

    Event tuples are immutable once pushed and neither scheduler supports
    removal, so cancellation is a *tombstone*: the handle rides in the
    tuple's callback slot and, once cancelled, fires as a no-op when the
    scheduler eventually pops it.  Neither the heap nor the calendar queue
    has to locate the tuple, which is what makes :meth:`Engine.cancel` O(1)
    and scheduler-agnostic.  A tombstone still counts as one (empty) event
    when popped; ``Engine.cancels`` lets accounting subtract them back out.
    """

    __slots__ = ("fn", "alive")

    def __init__(self, fn: Callable[..., None]) -> None:
        self.fn = fn
        self.alive = True

    def __call__(self, arg: Any = None) -> None:
        if self.alive:
            # firing consumes the handle: a later cancel() must report the
            # event as already gone instead of counting a phantom tombstone
            self.alive = False
            if arg is None:
                self.fn()
            else:
                self.fn(arg)

    # A repaired-then-refused transit can push a replacement event at the
    # exact (time, priority, key) of its cancelled tombstone, so tuple
    # comparison can reach the callback slot.  Such ties only ever involve
    # at most one *live* event (content keys are unique among live events),
    # so their relative order is unobservable: compare as neither-less.
    def __lt__(self, other: Any) -> bool:
        return False

    def __gt__(self, other: Any) -> bool:
        return False


class Engine:
    """A priority-queue discrete event scheduler.

    Events are ``(time, priority, seq, callback, arg)`` tuples.  ``seq`` is a
    monotonically increasing tie-breaker so same-time events run in schedule
    order, which makes runs exactly reproducible.  ``priority`` lets packet
    *arrival* events run before *injection* events at the same instant, which
    is how the slotted rings give through-traffic priority over new packets.
    """

    __slots__ = (
        "now",
        "_sched",
        "_queue",
        "_push",
        "_auto_sched",
        "_seq",
        "_uid",
        "_events_run",
        "_cancels",
        "_running",
        "blocked_watchers",
        "wall_time_s",
        "watchdog",
    )

    #: Priorities (lower runs first at equal time).
    PRIO_ARRIVAL = 0
    PRIO_NORMAL = 1
    PRIO_INJECT = 2

    def __init__(
        self, scheduler: Optional[str] = None, num_cpus: Optional[int] = None
    ) -> None:
        self.now: int = 0
        # num_cpus is a sizing hint for scheduler auto-selection only; it
        # never changes simulation results (schedulers are bit-identical)
        self._auto_sched = not (scheduler or _os.environ.get("NUMACHINE_SCHED"))
        self._sched = make_scheduler(scheduler, num_cpus)
        self._bind_scheduler()
        self._seq: int = 0
        self._uid: int = 0
        self._events_run: int = 0
        self._cancels: int = 0
        self._running = False
        #: Set by components that are blocked waiting for something; checked
        #: on drain to distinguish completion from deadlock.
        self.blocked_watchers: list[Callable[[], Optional[str]]] = []
        #: cumulative wall-clock seconds spent inside :meth:`run`
        self.wall_time_s: float = 0.0
        #: liveness watchdog (repro.fault.Watchdog), or None when disabled
        self.watchdog = None

    def _bind_scheduler(self) -> None:
        if isinstance(self._sched, HeapScheduler):
            # heap fast path: pushes go straight to the C heappush bound to
            # the underlying list — zero Python frames per insertion
            self._queue: Optional[list] = self._sched._queue
            self._push: Callable[[tuple], None] = _partial(_heappush, self._queue)
        else:
            self._queue = None
            self._push = self._sched.push

    @property
    def scheduler_name(self) -> str:
        """Name of the active scheduler (``calendar`` or ``heap``)."""
        return self._sched.name

    def size_hint(self, num_cpus: int) -> None:
        """Refine the scheduler auto-selection with a better estimate of the
        active-processor count (e.g. the number of programs actually handed
        to :meth:`Machine.run`, which may be far below the machine size).

        Only acts when the choice was automatic (no ``scheduler=`` argument
        and no ``NUMACHINE_SCHED``) and the engine is still fresh — nothing
        scheduled, nothing run — so the swap can never reorder anything.
        Scheduler choice is invisible in results either way (bit-identical);
        this only picks the faster implementation for the event population
        the run will actually generate.
        """
        if not self._auto_sched or self._seq or self._events_run or self._sched:
            return
        sched = make_scheduler(None, num_cpus)
        if sched.name != self._sched.name:
            self._sched = sched
            self._bind_scheduler()

    def alloc_uid(self) -> int:
        """Allocate a small identity integer for a component that schedules
        content-keyed events (see the module docstring).  Deterministic by
        construction order, which is itself fixed by the machine topology —
        so the same component gets the same uid in every run and backend."""
        uid = self._uid
        self._uid = uid + 1
        return uid

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: int,
        callback: Callable[..., None],
        arg: Any = None,
        priority: int = PRIO_NORMAL,
    ) -> None:
        """Run ``callback(arg)`` (or ``callback()`` if arg is None) after
        ``delay`` ticks."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        seq = self._seq + 1
        self._seq = seq
        self._push((self.now + delay, priority, seq, callback, arg))

    def schedule_at(
        self,
        when: int,
        callback: Callable[..., None],
        arg: Any = None,
        priority: int = PRIO_NORMAL,
    ) -> None:
        """Run ``callback`` at absolute tick ``when`` (>= now)."""
        if when < self.now:
            raise SimulationError(f"schedule_at in the past: {when} < {self.now}")
        seq = self._seq + 1
        self._seq = seq
        self._push((when, priority, seq, callback, arg))

    def schedule_cancellable_at(
        self,
        when: int,
        callback: Callable[..., None],
        arg: Any = None,
        priority: int = PRIO_NORMAL,
    ) -> Cancellable:
        """Like :meth:`schedule_at` but returns a :class:`Cancellable`
        handle accepted by :meth:`cancel`.  Costs one small wrapper object
        per event; reserve it for events that may genuinely be revoked
        (e.g. fused ring transits invalidated by ``halt_link``)."""
        if when < self.now:
            raise SimulationError(f"schedule_at in the past: {when} < {self.now}")
        handle = Cancellable(callback)
        seq = self._seq + 1
        self._seq = seq
        self._push((when, priority, seq, handle, arg))
        return handle

    def schedule_keyed_at(
        self,
        when: int,
        key: int,
        callback: Callable[..., None],
        arg: Any = None,
        priority: int = PRIO_ARRIVAL,
    ) -> None:
        """Schedule with a *content-derived* seq key instead of the global
        counter (see the module docstring).  The caller guarantees ``key``
        is unique among events pending at ``(when, priority)``."""
        if when < self.now:
            raise SimulationError(f"schedule_at in the past: {when} < {self.now}")
        self._push((when, priority, key, callback, arg))

    def schedule_cancellable_keyed_at(
        self,
        when: int,
        key: int,
        callback: Callable[..., None],
        arg: Any = None,
        priority: int = PRIO_ARRIVAL,
    ) -> Cancellable:
        """Content-keyed variant of :meth:`schedule_cancellable_at`."""
        if when < self.now:
            raise SimulationError(f"schedule_at in the past: {when} < {self.now}")
        handle = Cancellable(callback)
        self._push((when, priority, key, handle, arg))
        return handle

    def cancel(self, handle: Cancellable) -> bool:
        """Revoke a pending cancellable event in O(1), under any scheduler.

        Returns ``True`` if the event had not yet fired or been cancelled.
        The tombstoned tuple stays queued (it pops as a no-op), so
        ``pending`` and ``events_run`` still see it; :attr:`cancels` counts
        how many such empty pops are in flight or already drained.
        """
        if handle.alive:
            handle.alive = False
            self._cancels += 1
            return True
        return False

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Process events until the queue drains or limits are reached.

        Returns the number of events processed in this call.

        With a watchdog attached the loop runs in chunks of
        ``watchdog.interval`` events, giving the watchdog a chance to bound
        runaway time/event growth between chunks; without one this is a
        single uninterrupted :meth:`_run_core` call (the hot path pays only
        this attribute load).
        """
        wd = self.watchdog
        if wd is None:
            return self._run_core(until, max_events)
        if max_events is not None:
            max_events = max(1, max_events)
        processed = 0
        interval = wd.interval
        while True:
            step = interval
            if max_events is not None:
                remaining = max_events - processed
                if remaining <= 0:
                    break
                if remaining < step:
                    step = remaining
            n = self._run_core(until, step)
            processed += n
            wd.check(self, processed)
            if n < step:
                break
        return processed

    def _run_core(
        self, until: Optional[int] = None, max_events: Optional[int] = None
    ) -> int:
        processed = 0
        # limit semantics match the original post-increment check: any
        # max_events <= 0 still lets exactly one event run.
        limit = -1 if max_events is None else max(1, max_events)
        queue = self._queue
        self._running = True
        wall_start = _perf_counter()
        try:
            if queue is not None:
                # ---------------- binary heap (reference) ----------------
                pop = _heappop
                if until is None and limit < 0:
                    # common case: drain with no limits — no per-event checks
                    while queue:
                        when, _prio, _seq, callback, arg = pop(queue)
                        self.now = when
                        if arg is None:
                            callback()
                        else:
                            callback(arg)
                        processed += 1
                elif until is None:
                    while queue:
                        when, _prio, _seq, callback, arg = pop(queue)
                        self.now = when
                        if arg is None:
                            callback()
                        else:
                            callback(arg)
                        processed += 1
                        if processed == limit:
                            break
                else:
                    while queue:
                        when = queue[0][0]
                        if when > until:
                            self.now = until
                            break
                        when, _prio, _seq, callback, arg = pop(queue)
                        self.now = when
                        if arg is None:
                            callback()
                        else:
                            callback(arg)
                        processed += 1
                        if processed == limit:
                            break
            else:
                # ---------------- calendar queue (default) ----------------
                # The bucket drain is inlined: the active bucket is consumed
                # left-to-right by index, so the per-event cost is a list
                # index plus bookkeeping — independent of how many events
                # are pending.  Callbacks may push while we drain; pushes
                # into the active bucket keep its tail sorted (sched.push),
                # so re-reading _cur/_cur_i each iteration is sufficient.
                sched = self._sched
                if until is None and limit < 0:
                    while True:
                        i = sched._cur_i
                        cur = sched._cur
                        if i >= len(cur):
                            if not sched._advance():
                                break
                            cur = sched._cur
                            i = 0
                        sched._cur_i = i + 1
                        when, _prio, _seq, callback, arg = cur[i]
                        self.now = when
                        if arg is None:
                            callback()
                        else:
                            callback(arg)
                        processed += 1
                else:
                    while True:
                        i = sched._cur_i
                        cur = sched._cur
                        if i >= len(cur):
                            if not sched._advance():
                                break
                            cur = sched._cur
                            i = 0
                        when = cur[i][0]
                        if until is not None and when > until:
                            self.now = until
                            break
                        sched._cur_i = i + 1
                        when, _prio, _seq, callback, arg = cur[i]
                        self.now = when
                        if arg is None:
                            callback()
                        else:
                            callback(arg)
                        processed += 1
                        if processed == limit:
                            break
        finally:
            self._running = False
            self._events_run += processed
            self.wall_time_s += _perf_counter() - wall_start
        return processed

    def check_quiescent(self) -> None:
        """After a drain, raise :class:`DeadlockError` if any registered
        watcher reports outstanding blocked work."""
        if self._sched:
            return
        reasons = []
        for watcher in self.blocked_watchers:
            reason = watcher()
            if reason:
                reasons.append(reason)
        if reasons:
            raise DeadlockError(
                "event queue drained with blocked work:\n  " + "\n  ".join(reasons)
            )

    @property
    def pending(self) -> int:
        """Number of events currently queued."""
        return len(self._sched)

    @property
    def events_run(self) -> int:
        """Total events processed over the engine's lifetime."""
        return self._events_run

    @property
    def cancels(self) -> int:
        """Lifetime count of events revoked via :meth:`cancel`.  Each one
        eventually drains as an empty pop that still increments
        ``events_run``; subtract this when comparing event totals against a
        run that never cancelled anything."""
        return self._cancels

    @property
    def events_per_sec(self) -> float:
        """Lifetime event throughput (simulated events per wall-clock second
        spent inside :meth:`run`)."""
        if self.wall_time_s <= 0.0:
            return 0.0
        return self._events_run / self.wall_time_s

    def throughput(self) -> dict:
        """Wall-time / throughput meter snapshot for perf tracking."""
        return {
            "events_run": self._events_run,
            "wall_time_s": self.wall_time_s,
            "events_per_sec": self.events_per_sec,
            "scheduler": self._sched.name,
        }
