"""Pluggable event schedulers: binary heap and calendar queue.

The engine's event order is the total order of ``(time, priority, seq)``
keys; any scheduler that pops events in exactly that order produces
bit-identical simulations.  Two implementations are provided:

* :class:`HeapScheduler` — the reference implementation, a thin wrapper
  around :mod:`heapq`.  O(log n) per operation with a very small constant
  (the heap itself lives in C).

* :class:`CalendarQueue` — a bucketed timing wheel.  Events hash into
  buckets of ``width`` ticks by absolute time (``time // width``); a bucket
  is sorted lazily, once, when the clock reaches it, and then drained by a
  moving index — O(1) per event regardless of how many events are pending,
  which is what keeps per-event cost flat as the machine grows to the full
  64-processor configuration.  The default width is the bus/ring cycle
  (60 ticks): almost all of the simulator's delays are small multiples of
  it, so a bucket holds a handful of near-simultaneous events.

The active scheduler is chosen by the ``NUMACHINE_SCHED`` environment
variable (``calendar`` or ``heap``), or — when the variable is unset —
automatically from the machine size: ``heapq``'s C implementation wins on
small machines where the pending-event population is modest, while the
calendar's flat per-event cost wins once a 32-processor-or-larger machine
keeps thousands of events in flight (the crossover is empirical, measured
on the hot-spot microbench; :data:`AUTO_CALENDAR_MIN_CPUS`).  Either way
the choice is *invisible in the results*: the cross-scheduler determinism
test in ``tests/test_engine_determinism.py`` pins the bit-identical
contract.  See :func:`scheduler_name` / :func:`make_scheduler`.

Implementation notes on the calendar queue
------------------------------------------

Future buckets are plain unsorted lists in a dict keyed by bucket index; a
small auxiliary heap of bucket indices finds the next non-empty bucket
(its size is the number of *distinct pending buckets* — a dozen or so —
not the number of events).  When the drain reaches a bucket, the bucket is
sorted once (Timsort, in C) and consumed left to right via ``_cur_i``.

An insert can land in the *active* bucket mid-drain (``delay == 0``
events, bus grants within the current cycle...).  ``bisect.insort`` with
``lo=_cur_i`` keeps the not-yet-consumed tail sorted; the clamp to
``_cur_i`` is exactly heap semantics: a new event whose key precedes
everything still pending runs next, and time never moves backwards because
keys are never scheduled in the past.

Drained bucket lists are recycled through a small free list (`_list_pool`)
— the calendar's "event record" pool: steady-state operation allocates no
per-event containers beyond the event tuples themselves.

Cancellation
------------

Neither scheduler supports removing a pushed event — the heap would need a
position index and the calendar would have to search a bucket.  Instead the
engine cancels by *tombstone* (:class:`repro.sim.engine.Cancellable`): the
event's callback slot holds a handle that turns the pop into a no-op once
revoked.  Both schedulers drain tombstones naturally in key order, so the
mechanism is O(1) and needs nothing scheduler-specific here.
"""

from __future__ import annotations

import os
from bisect import insort
from heapq import heappop as _heappop, heappush as _heappush
from typing import Optional

__all__ = [
    "CalendarQueue",
    "HeapScheduler",
    "SCHEDULERS",
    "make_scheduler",
    "scheduler_name",
]

#: default calendar bucket width in ticks — the 50 MHz bus/ring cycle
DEFAULT_BUCKET_TICKS = 60

#: retained empty bucket lists (recycled event-record containers)
_LIST_POOL_MAX = 64


class HeapScheduler:
    """Reference scheduler: a binary heap of event tuples."""

    name = "heap"

    __slots__ = ("_queue",)

    def __init__(self) -> None:
        self._queue: list = []

    # ``push`` is the attribute the engine binds at its hot sites; for the
    # heap it is the C heappush partially applied to the queue, installed
    # by Engine (see Engine.__init__) — this method exists for direct use.
    def push(self, ev: tuple) -> None:
        _heappush(self._queue, ev)

    def pop(self) -> tuple:
        return _heappop(self._queue)

    def peek_time(self) -> Optional[int]:
        q = self._queue
        return q[0][0] if q else None

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)


class CalendarQueue:
    """O(1) calendar-queue scheduler (see module docstring)."""

    name = "calendar"

    __slots__ = (
        "_width",
        "_buckets",
        "_bheap",
        "_cur",
        "_cur_i",
        "_cur_bi",
        "_list_pool",
    )

    def __init__(self, width: int = DEFAULT_BUCKET_TICKS) -> None:
        if width <= 0:
            raise ValueError(f"bucket width must be positive, got {width}")
        self._width = width
        self._buckets: dict = {}      # bucket index -> unsorted event list
        self._bheap: list = []        # pending bucket indices (min-heap)
        self._cur: list = []          # active bucket, sorted, draining
        self._cur_i = 0               # next unconsumed slot in _cur
        self._cur_bi = -1             # bucket index of _cur
        self._list_pool: list = []    # recycled bucket lists

    # ------------------------------------------------------------------
    # The event count is *not* maintained per operation — ``__len__`` sums
    # bucket sizes on demand (buckets are few and it is only called from
    # probes / ``Engine.pending``), which keeps push/pop free of counter
    # bookkeeping on the hot path.
    def push(self, ev: tuple) -> None:
        bi = ev[0] // self._width
        b = self._buckets.get(bi)
        if b is not None:
            b.append(ev)
            return
        if bi == self._cur_bi and self._cur_i < len(self._cur):
            # lands in the bucket being drained: keep the pending tail
            # sorted; never insert before the drain point (heap semantics
            # — see module docstring)
            insort(self._cur, ev, self._cur_i)
            return
        pool = self._list_pool
        if pool:
            b = pool.pop()
            b.append(ev)
        else:
            b = [ev]
        self._buckets[bi] = b
        _heappush(self._bheap, bi)

    # ------------------------------------------------------------------
    def _advance(self) -> bool:
        """Retire the drained active bucket and promote the next one.

        Returns False when no events remain.
        """
        cur = self._cur
        if cur:
            cur.clear()
            if len(self._list_pool) < _LIST_POOL_MAX:
                self._list_pool.append(cur)
        if not self._bheap:
            self._cur = []
            self._cur_i = 0
            self._cur_bi = -1
            return False
        bi = _heappop(self._bheap)
        b = self._buckets.pop(bi)
        b.sort()
        self._cur = b
        self._cur_i = 0
        self._cur_bi = bi
        return True

    def pop(self) -> tuple:
        i = self._cur_i
        cur = self._cur
        if i >= len(cur):
            if not self._advance():
                raise IndexError("pop from empty scheduler")
            cur = self._cur
            i = 0
        self._cur_i = i + 1
        return cur[i]

    def peek_time(self) -> Optional[int]:
        if self._cur_i >= len(self._cur) and not self._advance():
            return None
        return self._cur[self._cur_i][0]

    def __len__(self) -> int:
        n = len(self._cur) - self._cur_i
        for b in self._buckets.values():
            n += len(b)
        return n

    def __bool__(self) -> bool:
        # future buckets are never empty, so _bheap is the whole story
        return self._cur_i < len(self._cur) or bool(self._bheap)


SCHEDULERS = {
    "heap": HeapScheduler,
    "calendar": CalendarQueue,
}

#: machine size at which the calendar queue starts beating the C heap
#: (empirical crossover on the hot-spot microbench; see module docstring)
AUTO_CALENDAR_MIN_CPUS = 32


def scheduler_name(
    override: Optional[str] = None, num_cpus: Optional[int] = None
) -> str:
    """Resolve the scheduler choice: explicit override, else the
    ``NUMACHINE_SCHED`` environment variable, else auto-select from the
    machine size (``calendar`` at :data:`AUTO_CALENDAR_MIN_CPUS` processors
    and above, or when the size is unknown; ``heap`` below)."""
    name = override or os.environ.get("NUMACHINE_SCHED")
    if not name:
        if num_cpus is not None and num_cpus < AUTO_CALENDAR_MIN_CPUS:
            name = "heap"
        else:
            name = "calendar"
    name = name.strip().lower()
    if name not in SCHEDULERS:
        raise ValueError(
            f"unknown scheduler {name!r} (choose from {sorted(SCHEDULERS)})"
        )
    return name


def make_scheduler(
    override: Optional[str] = None, num_cpus: Optional[int] = None
):
    """Build the scheduler selected by ``override`` / ``NUMACHINE_SCHED`` /
    machine-size auto-selection."""
    return SCHEDULERS[scheduler_name(override, num_cpus)]()
