"""Discrete-event simulation substrate: engine, FIFOs, statistics."""

from .engine import (
    TICKS_PER_NS,
    DeadlockError,
    Engine,
    SimulationError,
    ns_to_ticks,
    ticks_to_ns,
)
from .fifo import Fifo, FifoFullError
from .stats import Accumulator, BusyTracker, Counter, StatGroup

__all__ = [
    "TICKS_PER_NS",
    "DeadlockError",
    "Engine",
    "SimulationError",
    "ns_to_ticks",
    "ticks_to_ns",
    "Fifo",
    "FifoFullError",
    "Accumulator",
    "BusyTracker",
    "Counter",
    "StatGroup",
]
