"""Bounded FIFOs with occupancy statistics and backpressure signalling.

Every NUMAchine module moves packets through FIFOs (processor external
agent, memory module, ring interfaces, inter-ring interfaces).  The paper's
flow control halts an upstream ring when an interface input FIFO nears
capacity; :class:`Fifo` exposes that via a high-water threshold and
``on_space`` callbacks so producers can resume.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional

from .stats import Accumulator, Counter


class FifoFullError(RuntimeError):
    """Raised on a forced push into a full FIFO (a model bug, not a protocol
    condition — protocol code must check :meth:`Fifo.full` first)."""


class Fifo:
    """A bounded FIFO of ``(item, enqueue_time)`` entries.

    Parameters
    ----------
    name:
        Diagnostic / statistics label.
    capacity:
        Maximum entries; ``None`` means unbounded.
    high_water:
        Occupancy at which :attr:`pressured` becomes true (defaults to
        ``capacity - 2`` as a ring-latency safety margin, mirroring the
        hardware's early-stop threshold).
    """

    __slots__ = (
        "name",
        "capacity",
        "high_water",
        "_items",
        "_on_space",
        "max_depth",
        "wait_time",
        "pushes",
        "stalls",
        "_depth_area",
        "_last_change",
    )

    def __init__(
        self,
        name: str,
        capacity: Optional[int] = None,
        high_water: Optional[int] = None,
    ) -> None:
        self.name = name
        self.capacity = capacity
        if high_water is None and capacity is not None:
            high_water = max(1, capacity - 2)
        self.high_water = high_water
        self._items: Deque[tuple[Any, int]] = deque()
        self._on_space: List[Callable[[], None]] = []
        self.max_depth = 0
        self.wait_time = Accumulator(f"{name}.wait")
        self.pushes = Counter(f"{name}.pushes")
        self.stalls = Counter(f"{name}.stalls")
        # time-weighted occupancy: integral of depth over time, advanced at
        # every mutation so mean_depth(now) is exact at any instant
        self._depth_area = 0
        self._last_change = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    @property
    def pressured(self) -> bool:
        """True once occupancy reaches the high-water mark."""
        return self.high_water is not None and len(self._items) >= self.high_water

    @property
    def empty(self) -> bool:
        return not self._items

    def push(self, item: Any, now: int) -> None:
        items = self._items
        if self.capacity is not None and len(items) >= self.capacity:
            raise FifoFullError(f"{self.name} overflow (capacity={self.capacity})")
        self._depth_area += len(items) * (now - self._last_change)
        self._last_change = now
        items.append((item, now))
        self.pushes.value += 1
        depth = len(items)
        if depth > self.max_depth:
            self.max_depth = depth

    def peek(self) -> Any:
        return self._items[0][0]

    def pop(self, now: int) -> Any:
        self._depth_area += len(self._items) * (now - self._last_change)
        self._last_change = now
        item, enq = self._items.popleft()
        # Accumulator.add inlined: pop is on every packet's path
        wt = self.wait_time
        sample = now - enq
        wt.count += 1
        wt.total += sample
        if wt.min is None or sample < wt.min:
            wt.min = sample
        if wt.max is None or sample > wt.max:
            wt.max = sample
        if self._on_space:
            waiters, self._on_space = self._on_space, []
            for cb in waiters:
                cb()
        return item

    def when_space(self, callback: Callable[[], None]) -> None:
        """Invoke ``callback`` after the next pop frees an entry."""
        self._on_space.append(callback)
        self.stalls.incr()

    def mean_depth(self, now: int) -> float:
        """Time-weighted mean occupancy over [0, now]."""
        if now <= 0:
            return float(len(self._items))
        area = self._depth_area + len(self._items) * (now - self._last_change)
        return area / now

    def stats_snapshot(self, now: int) -> dict:
        """Flat occupancy/wait statistics for the metrics registry."""
        return {
            "depth": len(self._items),
            "capacity": self.capacity,
            "max_depth": self.max_depth,
            "mean_depth": self.mean_depth(now),
            "pushes": self.pushes.value,
            "stalls": self.stalls.value,
            "wait_mean_ticks": self.wait_time.mean,
            "wait_count": self.wait_time.count,
        }

    def drain(self) -> List[Any]:
        """Remove and return all items (no wait-time accounting); test helper."""
        items = [it for it, _ in self._items]
        self._items.clear()
        return items

    def __repr__(self) -> str:
        return f"Fifo({self.name}: {len(self._items)}/{self.capacity})"
