"""Statistics primitives shared by every monitored component.

These model the paper's monitoring substrate in a simulation-friendly way:
counters, mean/max accumulators for delays, busy-time trackers for
utilization, and binned histograms.  All are incremental (O(1) per sample)
so they can be left enabled during large runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


class Counter:
    """A named integer event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def incr(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Accumulator:
    """Streaming sum / count / min / max for latency-style samples."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def add(self, sample: int) -> None:
        self.count += 1
        self.total += sample
        if self.min is None or sample < self.min:
            self.min = sample
        if self.max is None or sample > self.max:
            self.max = sample

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None

    def __repr__(self) -> str:
        return f"Accumulator({self.name}: n={self.count} mean={self.mean:.2f})"


class BusyTracker:
    """Tracks total busy ticks of a resource for utilization reporting.

    Components call :meth:`add_busy` with each occupancy interval; utilization
    over a window is ``busy / elapsed``.  Supports resetting at the start of
    the parallel section so utilization covers only the measured region, the
    way the paper reports it.
    """

    __slots__ = ("name", "busy", "_window_start")

    def __init__(self, name: str) -> None:
        self.name = name
        self.busy = 0
        self._window_start = 0

    def add_busy(self, ticks: int) -> None:
        self.busy += ticks

    def start_window(self, now: int) -> None:
        self.busy = 0
        self._window_start = now

    def utilization(self, now: int) -> float:
        elapsed = now - self._window_start
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy / elapsed)

    def __repr__(self) -> str:
        return f"BusyTracker({self.name}: busy={self.busy})"


@dataclass
class StatGroup:
    """A component's bag of named statistics, lazily created."""

    owner: str
    counters: Dict[str, Counter] = field(default_factory=dict)
    accumulators: Dict[str, Accumulator] = field(default_factory=dict)
    busy: Dict[str, BusyTracker] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(f"{self.owner}.{name}")
        return c

    def accumulator(self, name: str) -> Accumulator:
        a = self.accumulators.get(name)
        if a is None:
            a = self.accumulators[name] = Accumulator(f"{self.owner}.{name}")
        return a

    def busy_tracker(self, name: str) -> BusyTracker:
        b = self.busy.get(name)
        if b is None:
            b = self.busy[name] = BusyTracker(f"{self.owner}.{name}")
        return b

    def reset(self) -> None:
        for c in self.counters.values():
            c.reset()
        for a in self.accumulators.values():
            a.reset()

    def snapshot(self) -> Dict[str, float]:
        """Flat name -> value view, for reports and tests."""
        out: Dict[str, float] = {}
        for name, c in self.counters.items():
            out[name] = c.value
        for name, a in self.accumulators.items():
            out[f"{name}.mean"] = a.mean
            out[f"{name}.count"] = a.count
        return out
