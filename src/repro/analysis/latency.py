"""Contention-free request latencies (paper Table 1).

Sets up each of the nine scenarios of Table 1 on an otherwise idle
prototype machine and measures a single request's latency end-to-end
(processor issue to restart), exactly how the paper's numbers are defined:
64-byte cache line fills for reads and interventions, permission-only
upgrades.

``PAPER_TABLE1`` records the published values; :func:`measure_table1`
returns the simulated ones for comparison.  ``analytic_estimate`` gives the
back-of-envelope sum of pipeline components, useful when re-calibrating
timing parameters.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..cpu.ops import Read, Write
from ..system.config import MachineConfig
from ..system.machine import Machine

#: Table 1 of the paper, in nanoseconds and 150 MHz CPU cycles.
PAPER_TABLE1 = {
    ("local", "read"): (668, 100),
    ("local", "upgrade"): (284, 43),
    ("local", "intervention"): (717, 108),
    ("remote_same_ring", "read"): (1652, 248),
    ("remote_same_ring", "upgrade"): (1167, 175),
    ("remote_same_ring", "intervention"): (1656, 249),
    ("remote_diff_ring", "read"): (1908, 286),
    ("remote_diff_ring", "upgrade"): (1508, 226),
    ("remote_diff_ring", "intervention"): (1932, 290),
}

SCENARIOS = list(PAPER_TABLE1.keys())


def _drain(machine: Machine, programs) -> None:
    machine.run(programs)


def _last_latency(machine: Machine, cpu: int, kind: str) -> float:
    acc = machine.cpus[cpu].stats.accumulator(f"{kind}_latency")
    from ..sim.engine import ticks_to_ns

    if acc.count == 0:
        raise RuntimeError(f"no {kind} latency recorded on cpu {cpu}")
    return ticks_to_ns(acc.max)


def _reset_latency(machine: Machine, cpu: int, kind: str) -> None:
    machine.cpus[cpu].stats.accumulator(f"{kind}_latency").reset()


def measure_scenario(
    locality: str, kind: str, config: Optional[MachineConfig] = None
) -> float:
    """Measure one Table 1 cell in nanoseconds on an idle machine."""
    config = config or MachineConfig.prototype()
    machine = Machine(config)
    cfg = machine.config
    if locality == "local":
        home = 0
    elif locality == "remote_same_ring":
        home = 1                       # station 1 shares ring 0 with station 0
    else:
        home = cfg.geometry.station_id((0,) * (cfg.geometry.num_levels - 1) + (1,))
    region = machine.allocate(cfg.line_bytes, placement=f"local:{home}")
    addr = region.addr(0)
    requester = 0                       # cpu 0 lives on station 0

    def single(op):
        def gen():
            yield op
        return gen()

    if kind == "read":
        if locality == "local":
            pass                        # cold line: LV at home memory
        _reset_latency(machine, requester, "read")
        _drain(machine, {requester: single(Read(addr))})
        return _last_latency(machine, requester, "read")

    if kind == "upgrade":
        # obtain a shared copy first, then request write permission
        _drain(machine, {requester: single(Read(addr))})
        _reset_latency(machine, requester, "write")
        _drain(machine, {requester: single(Write(addr, 1))})
        return _last_latency(machine, requester, "write")

    if kind == "intervention":
        # a processor on the home station holds the line dirty
        owner = home * cfg.cpus_per_station
        if owner == requester:
            owner += 1
        _drain(machine, {owner: single(Write(addr, 7))})
        _reset_latency(machine, requester, "read")
        _drain(machine, {requester: single(Read(addr))})
        return _last_latency(machine, requester, "read")

    raise ValueError(f"unknown kind {kind}")


def measure_table1(config: Optional[MachineConfig] = None) -> Dict:
    """All nine cells; each on a fresh idle machine."""
    out = {}
    for locality, kind in SCENARIOS:
        out[(locality, kind)] = measure_scenario(locality, kind, config)
    return out


def analytic_estimate(config: MachineConfig, locality: str, kind: str) -> float:
    """Pipeline-sum estimate of one cell (no contention, no queueing)."""
    cfg = config
    bus = cfg.bus_cycle_ns
    cmd = bus
    data = (cfg.line_bytes // cfg.bus_width_bytes) * bus
    arb = cfg.bus_arb_ns
    # processor-side fixed costs
    cpu_side = cfg.l2_miss_detect_ns + cfg.cpu_fill_ns
    # one local memory access leg
    mem_read = cfg.dir_sram_ns + cfg.dram_read_ns

    if locality == "local":
        if kind == "read":
            return cpu_side + (arb + cmd) + mem_read + (arb + cmd + data)
        if kind == "upgrade":
            return cpu_side + (arb + cmd) + cfg.dir_sram_ns + (arb + cmd)
        # intervention: memory -> owner cpu -> bus data to requester+memory
        return (
            cpu_side
            + (arb + cmd)              # request to memory
            + cfg.dir_sram_ns
            + (arb + cmd)              # intervention to owner
            + cfg.l2_hit_cpu_cycles * cfg.cpu_clock_ns
            + (arb + cmd + data)       # owner drives data
            + (arb + cmd + data)       # memory/NC forwards to requester
        )

    # remote legs: through the NC, the rings, and the home station bus
    hops_same = 2 * cfg.ring_hop_ns    # one hop each way (adjacent stations)
    if locality == "remote_same_ring":
        ring = 2 * (cfg.pkt_gen_ns + cfg.handler_ns) + hops_same
    else:
        # ascend + central + descend, both directions
        ring = 2 * (cfg.pkt_gen_ns + cfg.handler_ns) + hops_same + 4 * (
            cfg.iri_switch_ns + cfg.ring_hop_ns
        )
    data_flits = (cfg.line_flits - 1) * cfg.ring_slot_ns
    nc = cfg.nc_tag_ns + cfg.nc_dram_write_ns + cfg.nc_dram_read_ns
    if kind == "read":
        return (
            cpu_side + (arb + cmd) + nc + ring + data_flits
            + (arb + cmd) + mem_read + (arb + cmd + data)  # home bus legs
            + (arb + cmd + data)                            # NC -> cpu
        )
    if kind == "upgrade":
        # dataless both ways; the ordered invalidation passes the
        # sequencing point (ordering delay) before the NC releases the ack
        return (
            cpu_side + (arb + cmd) + cfg.nc_tag_ns + ring
            + (arb + cmd) + cfg.dir_sram_ns + (arb + cmd)
            + cfg.seq_point_ns
            + 2 * cfg.ring_hop_ns
            + (arb + cmd)
        )
    # remote intervention: home forwards to its own bus owner
    return (
        cpu_side + (arb + cmd) + nc + ring + data_flits
        + (arb + cmd) + cfg.dir_sram_ns
        + (arb + cmd) + cfg.l2_hit_cpu_cycles * cfg.cpu_clock_ns
        + (arb + cmd + data)
        + (arb + cmd + data)
    )


def render_table1(measured: Dict, config: MachineConfig) -> str:
    """Side-by-side paper vs measured table."""
    lines = [
        f"{'scenario':<28}{'paper ns':>10}{'sim ns':>10}{'ratio':>8}"
    ]
    for key in SCENARIOS:
        paper_ns, _cycles = PAPER_TABLE1[key]
        sim = measured[key]
        lines.append(
            f"{key[0] + '/' + key[1]:<28}{paper_ns:>10}{sim:>10.0f}"
            f"{sim / paper_ns:>8.2f}"
        )
    return "\n".join(lines)
