"""Analysis: the Table 1 latency harness and run reporting."""

from .latency import (
    PAPER_TABLE1,
    SCENARIOS,
    analytic_estimate,
    measure_scenario,
    measure_table1,
    render_table1,
)
from .report import cpu_latency_summary, format_report, machine_report

__all__ = [
    "PAPER_TABLE1",
    "SCENARIOS",
    "analytic_estimate",
    "measure_scenario",
    "measure_table1",
    "render_table1",
    "cpu_latency_summary",
    "format_report",
    "machine_report",
]
