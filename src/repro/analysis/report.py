"""Run reports: one text summary of everything the machine measured.

``machine_report`` collects the statistics the paper's evaluation section
is built from (parallel time, NC effects, path utilizations, ring-interface
delays, protocol corner-case counts) into one dict / formatted block —
used by the examples and handy in interactive exploration.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..system.machine import Machine, RunResult


def machine_report(machine: Machine, result: Optional[RunResult] = None) -> Dict:
    """All headline measurements of a completed run, as one flat dict."""
    nc = machine.nc_stats()
    mem = machine.memory_stats()
    hit = machine.nc_hit_rate()
    out = {
        "parallel_time_us": (
            machine.parallel_time_ns(result) / 1e3 if result is not None else None
        ),
        "nc_hit_rate": hit["total"],
        "nc_migration_rate": hit["migration"],
        "nc_caching_rate": hit["caching"],
        "nc_combining_rate": machine.nc_combining_rate(),
        "false_remote_rate": machine.false_remote_rate(),
        "special_reads": machine.special_read_count(),
        "nc_requests": nc.get("requests", 0),
        "nc_ejections": nc.get("ejections", 0),
        "memory_nacks": mem.get("nacks", 0),
        "invalidations_sent": mem.get("invalidates_sent", 0),
    }
    out.update({f"util_{k}": v for k, v in machine.utilizations().items()})
    out.update(
        {f"delay_{k}_cycles": v for k, v in machine.ring_interface_delays().items()}
    )
    return out


def format_report(report: Dict) -> str:
    """Human-readable block, aligned keys, percentages rendered as such."""
    lines = []
    for key, value in report.items():
        if value is None:
            continue
        if key.startswith(("nc_", "false_", "util_")) and isinstance(value, float):
            rendered = f"{value:.1%}"
        elif isinstance(value, float):
            rendered = f"{value:,.2f}"
        else:
            rendered = f"{value:,}"
        lines.append(f"{key:<28} {rendered:>12}")
    return "\n".join(lines)


def cpu_latency_summary(machine: Machine) -> Dict[str, float]:
    """Mean request latencies (ns) over all processors, by request kind."""
    from ..sim.engine import ticks_to_ns

    sums: Dict[str, list] = {}
    for cpu in machine.cpus:
        for kind in ("read", "write", "rmw"):
            acc = cpu.stats.accumulators.get(f"{kind}_latency")
            if acc is not None and acc.count:
                entry = sums.setdefault(kind, [0, 0])
                entry[0] += acc.total
                entry[1] += acc.count
    return {
        kind: ticks_to_ns(total) / count for kind, (total, count) in sums.items()
    }
