"""A structured snapshot of one finished simulation run.

Everything the figure/table benches read off a :class:`Machine` after a
workload completes, flattened into plain dicts and scalars so it can be
pickled across a process pool, JSON-round-tripped through the on-disk
cache, and compared for exact equality between runs (the determinism
regression tests rely on that).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Optional, Tuple

from ..sim.engine import ticks_to_ns


@dataclass
class RunRecord:
    """Results of one ``(workload, nprocs, config)`` simulation point."""

    workload: str
    nprocs: int
    #: explicit cpu placement, or () when consecutive cpus 0..nprocs-1 ran
    cpus: Tuple[int, ...] = ()
    #: free-form label distinguishing config variants in the cache key
    variant: str = ""
    #: coherence-protocol plug-in the machine ran (repro.protocol)
    protocol: str = "numachine"

    # ---- timing -------------------------------------------------------
    parallel_time_ns: float = 0.0
    time_ns: float = 0.0
    time_ticks: int = 0

    # ---- throughput meter (host-dependent; excluded from determinism
    # comparisons and from the cache key) -------------------------------
    events: int = 0
    wall_s: float = 0.0
    events_per_sec: float = 0.0

    # ---- aggregated statistics ---------------------------------------
    nc_stats: Dict[str, int] = field(default_factory=dict)
    memory_stats: Dict[str, int] = field(default_factory=dict)
    nc_hit_rate: Dict[str, float] = field(default_factory=dict)
    nc_combining_rate: float = 0.0
    false_remote_rate: float = 0.0
    special_reads: int = 0
    utilizations: Dict[str, float] = field(default_factory=dict)
    ring_delays: Dict[str, float] = field(default_factory=dict)

    # ---- observability summary (repro.obs); empty when no Observability
    # layer was attached to the machine ---------------------------------
    obs: Dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        d = asdict(self)
        d["cpus"] = list(self.cpus)
        return d

    @classmethod
    def from_json(cls, d: dict) -> "RunRecord":
        d = dict(d)
        d["cpus"] = tuple(d.get("cpus", ()))
        return cls(**d)

    def deterministic_view(self) -> dict:
        """Everything except the host-dependent wall-clock fields; two runs
        of the same point must agree on this exactly."""
        d = self.to_json()
        d.pop("wall_s", None)
        d.pop("events_per_sec", None)
        return d


def collect_record(
    machine,
    workload: str,
    nprocs: int,
    parallel_time_ns: float,
    cpus: Optional[Tuple[int, ...]] = None,
    variant: str = "",
) -> RunRecord:
    """Harvest a :class:`RunRecord` from a machine that just finished a run."""
    engine = machine.engine
    obs_layer = getattr(machine, "obs", None)
    obs_summary: Dict = {}
    if obs_layer is not None:
        if obs_layer.tracer is not None:
            obs_summary["trace"] = obs_layer.tracer.summary()
        if obs_layer.probes is not None:
            obs_summary["probes"] = {
                "samples": obs_layer.probes.samples,
                "series": len(obs_layer.probes.probes),
                "period_ticks": obs_layer.probes.period_ticks,
            }
    return RunRecord(
        workload=workload,
        nprocs=nprocs,
        cpus=tuple(cpus) if cpus else (),
        variant=variant,
        protocol=getattr(machine, "protocol_name", "numachine"),
        parallel_time_ns=parallel_time_ns,
        time_ns=ticks_to_ns(engine.now),
        time_ticks=engine.now,
        events=engine.events_run,
        wall_s=engine.wall_time_s,
        events_per_sec=engine.events_per_sec,
        nc_stats=machine.nc_stats(),
        memory_stats=machine.memory_stats(),
        nc_hit_rate=machine.nc_hit_rate(),
        nc_combining_rate=machine.nc_combining_rate(),
        false_remote_rate=machine.false_remote_rate(),
        special_reads=machine.special_read_count(),
        utilizations=machine.utilizations(),
        ring_delays=machine.ring_interface_delays(),
        obs=obs_summary,
    )
