"""Performance harness: structured run records, an on-disk result cache,
and a parallel sweep runner.

The paper's evaluation (§4) is a grid of independent simulations —
``(workload, processor count, machine configuration)`` points.  Each point
is deterministic, so two things follow:

* points can be fanned out across OS processes with no coordination
  (``NUMACHINE_JOBS`` controls the worker count), and
* a point's results can be memoized on disk and reused until the code,
  configuration or scaling knobs change (``.numachine_cache``).

:class:`~repro.perf.record.RunRecord` captures everything the benches read
off a finished :class:`~repro.system.machine.Machine` in one picklable,
JSON-serializable object, so a run's results can cross a process boundary
or a cache file without dragging the machine along.
"""

from .record import RunRecord, collect_record
from .cache import RunCache, config_fingerprint, point_key, CACHE_SCHEMA
from .sweep import SweepPoint, default_jobs, run_point, run_sweep

__all__ = [
    "RunRecord",
    "collect_record",
    "RunCache",
    "config_fingerprint",
    "point_key",
    "CACHE_SCHEMA",
    "SweepPoint",
    "default_jobs",
    "run_point",
    "run_sweep",
]
