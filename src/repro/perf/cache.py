"""On-disk memoization of sweep results.

Every simulation point is deterministic given the machine configuration,
the workload name/size knobs and the code itself, so results are cached in
JSON files keyed by a digest of exactly those inputs:

* a fingerprint of every :class:`MachineConfig` field (geometry included),
* the workload name, processor count, cpu placement and variant label,
* the ``NUMACHINE_SCALE`` problem-size multiplier (it changes the workload
  built by :func:`repro.workloads.make` without touching the config),
* the package version (:data:`repro.__version__`) and a cache schema
  number — bump either and every old entry is ignored.

Environment knobs:

* ``NUMACHINE_CACHE_DIR`` — cache directory (default ``.numachine_cache``
  under the current working directory).
* ``NUMACHINE_CACHE=0``   — disable reads *and* writes (every point runs).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Optional

from .record import RunRecord

#: bump when the RunRecord layout or key derivation changes
CACHE_SCHEMA = 2


def _repro_version() -> str:
    from repro import __version__

    return __version__


def config_fingerprint(config) -> str:
    """Stable digest over every configuration field, nested dataclasses
    included."""
    payload = json.dumps(
        dataclasses.asdict(config), sort_keys=True, default=str
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def point_key(
    config,
    workload: str,
    nprocs: int,
    cpus=(),
    variant: str = "",
) -> str:
    """Cache key for one sweep point (see module docstring for contents)."""
    payload = json.dumps(
        {
            "schema": CACHE_SCHEMA,
            "version": _repro_version(),
            "config": config_fingerprint(config),
            "workload": workload,
            "nprocs": nprocs,
            "cpus": list(cpus),
            "variant": variant,
            "scale": os.environ.get("NUMACHINE_SCALE", "1.0"),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class RunCache:
    """A directory of ``<key>.json`` result files."""

    def __init__(self, root: Optional[Path] = None, enabled: Optional[bool] = None) -> None:
        if root is None:
            root = Path(os.environ.get("NUMACHINE_CACHE_DIR", ".numachine_cache"))
        self.root = Path(root)
        if enabled is None:
            enabled = os.environ.get("NUMACHINE_CACHE", "1") != "0"
        self.enabled = enabled
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[RunRecord]:
        if not self.enabled:
            return None
        path = self._path(key)
        try:
            with open(path) as fh:
                payload = json.load(fh)
            record = RunRecord.from_json(payload["record"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, key: str, record: RunRecord) -> None:
        if not self.enabled:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        tmp = path.with_suffix(".tmp")
        payload = {"schema": CACHE_SCHEMA, "record": record.to_json()}
        with open(tmp, "w") as fh:
            json.dump(payload, fh)
        os.replace(tmp, path)  # atomic vs concurrent workers

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
