"""On-disk memoization of sweep results.

Every simulation point is deterministic given the machine configuration,
the workload name/size knobs and the code itself, so results are cached in
JSON files keyed by a digest of exactly those inputs:

* a fingerprint of every :class:`MachineConfig` field (geometry included),
* the workload name, processor count, cpu placement and variant label,
* the resolved coherence protocol (``config.protocol`` falling back to
  ``NUMACHINE_PROTOCOL``) — a semantic axis: different protocols produce
  different event streams and statistics,
* the ``NUMACHINE_SCALE`` problem-size multiplier (it changes the workload
  built by :func:`repro.workloads.make` without touching the config),
* the package version (:data:`repro.__version__`) and a cache schema
  number — bump either and every old entry is ignored.

Environment knobs:

* ``NUMACHINE_CACHE_DIR`` — cache directory (default ``.numachine_cache``
  under the current working directory).
* ``NUMACHINE_CACHE=0``   — disable reads *and* writes (every point runs).
* ``NUMACHINE_CACHE_MAX_MB`` — size cap for the cache directory (default
  256 MB).  When a write pushes the directory past the cap, the
  least-recently-used entries are evicted (reads refresh an entry's
  timestamp).  ``python -m repro.perf.cache --prune`` applies the same
  policy on demand; ``--stats`` and ``--clear`` are also available.

The execution-strategy knobs — backend (``NUMACHINE_BACKEND``), event
scheduler (``NUMACHINE_SCHED``), packet pooling (``NUMACHINE_POOL``) and
transit fusion (``NUMACHINE_FUSE``) — are **in the key** even though all
of them are bit-identical by contract on the canonical surface
(pinned by ``tests/test_engine_determinism.py`` and
``tests/test_elab_backend.py``).  A cached record also stores wall-clock
throughput, and *that* is not strategy-invariant; keying on the strategy
keeps a perf comparison between backends honest instead of silently
serving one backend's timings as the other's.  The specialized-core
*module* store under ``<cache>/elab/`` (:mod:`repro.elab.store`) shares
this directory, cap and CLI.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Optional

from ..interconnect.ring import fusion_mode
from ..protocol import resolve_protocol_name
from .record import RunRecord

#: bump when the RunRecord layout or key derivation changes
CACHE_SCHEMA = 6

#: default size cap for the cache directory, in bytes
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


def _max_bytes() -> int:
    raw = os.environ.get("NUMACHINE_CACHE_MAX_MB")
    if not raw:
        return DEFAULT_MAX_BYTES
    return max(0, int(float(raw) * 1024 * 1024))


def _repro_version() -> str:
    from repro import __version__

    return __version__


def config_fingerprint(config) -> str:
    """Stable digest over every configuration field, nested dataclasses
    included."""
    payload = json.dumps(
        dataclasses.asdict(config), sort_keys=True, default=str
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def point_key(
    config,
    workload: str,
    nprocs: int,
    cpus=(),
    variant: str = "",
) -> str:
    """Cache key for one sweep point (see module docstring for contents)."""
    payload = json.dumps(
        {
            "schema": CACHE_SCHEMA,
            "version": _repro_version(),
            "config": config_fingerprint(config),
            "workload": workload,
            "nprocs": nprocs,
            "cpus": list(cpus),
            "variant": variant,
            "scale": os.environ.get("NUMACHINE_SCALE", "1.0"),
            # coherence protocol: a *semantic* axis (different event
            # streams and stats), resolved with the machine's precedence
            "protocol": resolve_protocol_name(config),
            # execution strategy: bit-identical results, different timings
            "backend": os.environ.get("NUMACHINE_BACKEND", "auto"),
            "sched": os.environ.get("NUMACHINE_SCHED", "auto"),
            "pool": os.environ.get("NUMACHINE_POOL", "1"),
            "fuse": fusion_mode(),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class RunCache:
    """A directory of ``<key>.json`` result files."""

    def __init__(
        self,
        root: Optional[Path] = None,
        enabled: Optional[bool] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        if root is None:
            root = Path(os.environ.get("NUMACHINE_CACHE_DIR", ".numachine_cache"))
        self.root = Path(root)
        if enabled is None:
            enabled = os.environ.get("NUMACHINE_CACHE", "1") != "0"
        self.enabled = enabled
        self.max_bytes = _max_bytes() if max_bytes is None else max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[RunRecord]:
        if not self.enabled:
            return None
        path = self._path(key)
        try:
            with open(path) as fh:
                payload = json.load(fh)
            record = RunRecord.from_json(payload["record"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        try:
            os.utime(path)  # refresh: LRU eviction keys off mtime
        except OSError:
            pass
        return record

    def put(self, key: str, record: RunRecord) -> None:
        if not self.enabled:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        payload = {"schema": CACHE_SCHEMA, "record": record.to_json()}
        # write-to-temp + atomic rename, with a *per-writer-unique* temp
        # name: a shared `<key>.tmp` lets two concurrent writers of the
        # same key interleave writes and publish a torn entry — with many
        # server workers and sweep processes sharing one cache directory
        # that race is routine, not exotic.  Readers racing LRU eviction
        # simply see ENOENT, which `get` already treats as a miss.
        fd, tmp = tempfile.mkstemp(
            prefix=f".{key[:16]}.", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)  # atomic: readers see old, new, or ENOENT
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.prune()

    # ------------------------------------------------------------------
    def _entries(self):
        """(mtime, size, path) for every entry, oldest first."""
        out = []
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    st = path.stat()
                except OSError:
                    continue
                out.append((st.st_mtime, st.st_size, path))
        out.sort()
        return out

    def size_bytes(self) -> int:
        return sum(size for _, size, _ in self._entries())

    def prune(self, max_bytes: Optional[int] = None) -> int:
        """Evict least-recently-used entries until the directory fits the
        cap; returns the number of entries removed.  Also sweeps temp
        files abandoned by crashed writers (older than a minute — live
        writers rename theirs away within milliseconds)."""
        cap = self.max_bytes if max_bytes is None else max_bytes
        if self.root.is_dir():
            horizon = time.time() - 60.0
            for tmp in self.root.glob(".*.tmp"):
                try:
                    if tmp.stat().st_mtime < horizon:
                        tmp.unlink()
                except OSError:
                    continue
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        removed = 0
        for _, size, path in entries:
            if total <= cap:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            removed += 1
        self.evictions += removed
        return removed

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed


# ----------------------------------------------------------------------
# command-line maintenance: python -m repro.perf.cache --prune | --stats
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    import argparse

    ap = argparse.ArgumentParser(
        prog="python -m repro.perf.cache",
        description="Inspect and maintain the on-disk sweep-result cache.",
    )
    ap.add_argument("--dir", default=None, help="cache directory (default: "
                    "$NUMACHINE_CACHE_DIR or .numachine_cache)")
    ap.add_argument("--prune", action="store_true",
                    help="evict least-recently-used entries past the size cap")
    ap.add_argument("--max-mb", type=float, default=None,
                    help="size cap in MB for --prune (default: "
                    "$NUMACHINE_CACHE_MAX_MB or 256)")
    ap.add_argument("--clear", action="store_true", help="delete every entry")
    ap.add_argument("--stats", action="store_true",
                    help="print entry count and total size")
    args = ap.parse_args(argv)

    from ..elab import store as elab_store

    root = Path(args.dir) if args.dir else None
    cache = RunCache(root=root, enabled=True)
    if args.max_mb is not None:
        cache.max_bytes = int(args.max_mb * 1024 * 1024)
    did = False
    if args.clear:
        print(f"cleared {cache.clear()} entries from {cache.root}")
        print(f"cleared {elab_store.clear(root)} generated modules from "
              f"{elab_store.elab_dir(root)}")
        did = True
    if args.prune:
        removed = cache.prune()
        print(f"pruned {removed} entries from {cache.root} "
              f"(cap {cache.max_bytes // (1024 * 1024)} MB)")
        removed = elab_store.prune(cache.max_bytes, root)
        print(f"pruned {removed} generated modules from "
              f"{elab_store.elab_dir(root)}")
        did = True
    if args.stats or not did:
        entries = cache._entries()
        total = sum(size for _, size, _ in entries)
        print(f"{cache.root}: {len(entries)} entries, {total / 1e6:.2f} MB "
              f"(schema {CACHE_SCHEMA}, cap {cache.max_bytes // (1024 * 1024)} MB)")
        by_proto: dict = {}
        for _, _, path in entries:
            try:
                with open(path) as fh:
                    rec = json.load(fh).get("record", {})
            except (OSError, ValueError):
                continue
            name = rec.get("protocol", "?")
            by_proto[name] = by_proto.get(name, 0) + 1
        if by_proto:
            print("  by protocol: " + ", ".join(
                f"{k}={v}" for k, v in sorted(by_proto.items())
            ))
        es = elab_store.stats(root)
        print(f"{es['dir']}: {es['modules']} generated modules, "
              f"{es['bytes'] / 1e6:.2f} MB")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
