"""Cross-checkout performance ledger — ``BENCH_history.jsonl``.

``BENCH_engine.json`` / ``BENCH_scale.json`` hold only the *latest*
measurement; regressions that creep in over several PRs are invisible in
them.  The ledger is the longitudinal record: every benchmark run appends
one self-describing JSONL line — when, on what host, at which git commit,
under which backend, how many events/second — so trends are a ``jq`` (or
pandas) one-liner away and a checkout's history survives result-file
overwrites.

Entries are append-only and host-stamped: rates from different hosts are
not comparable (see ``bench_scale.host_fingerprint``), so any consumer
should group by the ``host`` fingerprint before drawing trend lines.
Each entry also stamps the ambient transit-fusion mode (``NUMACHINE_FUSE``
at append time); a bench that sweeps both modes in one process carries the
per-point mode inside its ``result`` payload as well, since event counts
and wall rates are not comparable across fusion modes.

Schema 4 adds ``kind``: ``"simulation"`` for the engine/scale/figure
benches, ``"serving"`` for the job-server soak (``bench_serve.py`` —
rps, hit ratio, p99), so the longitudinal trajectory covers serving as
well as simulation and consumers can split the two without guessing
from bench names.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from pathlib import Path
from typing import List, Optional

from ..interconnect.ring import fusion_mode
from ..protocol import resolve_protocol_name

#: bump when the per-line layout changes incompatibly
LEDGER_SCHEMA = 4

#: default ledger location: the repository root
DEFAULT_PATH = Path(__file__).resolve().parents[3] / "BENCH_history.jsonl"


def host_fingerprint() -> dict:
    """The host identity wall-clock rates belong to."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }


def git_sha(cwd: Optional[Path] = None) -> Optional[str]:
    """The current commit, from CI metadata or git itself; None outside a
    repository (ledgers must work from an unpacked tarball too)."""
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            cwd=str(cwd or Path(__file__).resolve().parents[3]),
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def make_entry(bench: str, result: dict, kind: str = "simulation") -> dict:
    """One ledger line: provenance envelope around a bench's summary."""
    if kind not in ("simulation", "serving"):
        raise ValueError(f"unknown ledger entry kind {kind!r}")
    return {
        "schema": LEDGER_SCHEMA,
        "ts": time.time(),
        "date": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "bench": bench,
        "kind": kind,
        "git_sha": git_sha(),
        "host": host_fingerprint(),
        "fuse": fusion_mode(),
        "protocol": resolve_protocol_name(),
        "result": result,
    }


def append_entry(
    bench: str,
    result: dict,
    path: Optional[Path] = None,
    kind: str = "simulation",
) -> dict:
    """Append one entry for ``bench`` to the ledger; returns the entry.

    Never raises on I/O problems (a read-only checkout must not break a
    benchmark run); the entry is still returned for inspection.
    """
    entry = make_entry(bench, result, kind=kind)
    target = Path(path) if path is not None else DEFAULT_PATH
    try:
        with open(target, "a") as fh:
            json.dump(entry, fh, sort_keys=True, separators=(",", ":"))
            fh.write("\n")
    except OSError:
        pass
    return entry


def read_ledger(path: Optional[Path] = None) -> List[dict]:
    """All parseable ledger entries, in file order (torn tails skipped)."""
    target = Path(path) if path is not None else DEFAULT_PATH
    out: List[dict] = []
    try:
        with open(target) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    out.append(json.loads(line))
                except json.JSONDecodeError:
                    continue
    except OSError:
        pass
    return out


__all__ = [
    "LEDGER_SCHEMA",
    "DEFAULT_PATH",
    "append_entry",
    "git_sha",
    "host_fingerprint",
    "make_entry",
    "read_ledger",
]
