"""Parallel sweep runner.

A *sweep point* is one independent simulation: a workload name (resolved
through the suite registry), a processor count or explicit cpu placement,
and a machine configuration.  :func:`run_sweep` resolves points against the
on-disk cache, fans the misses out over a :class:`ProcessPoolExecutor`
(``NUMACHINE_JOBS`` workers; serial when 1), and returns
:class:`RunRecord` results in input order.

Workers receive the pickled :class:`MachineConfig` and rebuild machine and
workload from scratch, so every point is bit-identical to a serial run —
the engine's ``(time, priority, seq)`` ordering never crosses a process
boundary.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .cache import RunCache, point_key
from .record import RunRecord, collect_record


def default_jobs() -> int:
    """Worker-process count from ``NUMACHINE_JOBS`` (default 1: serial)."""
    try:
        jobs = int(os.environ.get("NUMACHINE_JOBS", "1"))
    except ValueError:
        return 1
    return max(1, jobs)


@dataclass
class SweepPoint:
    """One independent ``(workload, nprocs, config)`` simulation."""

    workload: str
    nprocs: int
    #: a MachineConfig; None means MachineConfig.prototype()
    config: object = None
    #: explicit cpu placement (e.g. spread across stations); empty means
    #: consecutive cpus 0..nprocs-1
    cpus: Tuple[int, ...] = field(default_factory=tuple)
    #: suite size to instantiate ("bench" or "test")
    size: str = "bench"
    #: label folded into the cache key for ablation variants
    variant: str = ""

    def resolved_config(self):
        if self.config is not None:
            return self.config
        from repro.system.config import MachineConfig

        return MachineConfig.prototype()

    def key(self) -> str:
        return point_key(
            self.resolved_config(),
            f"{self.workload}@{self.size}",
            self.nprocs,
            self.cpus,
            self.variant,
        )


def _run_point(point: SweepPoint) -> dict:
    """Worker entry: run one point, return the record as a JSON dict.

    Module-level so it pickles under the fork *and* spawn start methods.
    """
    from repro.system.machine import Machine
    from repro.workloads import make

    cfg = point.resolved_config()
    machine = Machine(cfg)
    workload = make(point.workload, point.size)
    if point.cpus:
        result = workload.run(machine, cpus=list(point.cpus))
    else:
        result = workload.run(machine, nprocs=point.nprocs)
    record = collect_record(
        machine,
        workload=point.workload,
        nprocs=point.nprocs,
        parallel_time_ns=result.parallel_time_ns,
        cpus=point.cpus,
        variant=point.variant,
    )
    return record.to_json()


def run_point(point: SweepPoint, cache: Optional[RunCache] = None) -> RunRecord:
    """Run (or fetch from cache) a single sweep point."""
    return run_sweep([point], jobs=1, cache=cache)[0]


def run_sweep(
    points: Sequence[SweepPoint],
    jobs: Optional[int] = None,
    cache: Optional[RunCache] = None,
) -> List[RunRecord]:
    """Run every point, reusing cached results; output order matches input.

    ``jobs=None`` reads ``NUMACHINE_JOBS``; ``cache=None`` builds the
    default :class:`RunCache` (honouring ``NUMACHINE_CACHE[_DIR]``).
    """
    if jobs is None:
        jobs = default_jobs()
    if cache is None:
        cache = RunCache()

    points = list(points)
    results: List[Optional[RunRecord]] = [None] * len(points)
    missing: List[int] = []
    keys: List[str] = []
    for i, point in enumerate(points):
        key = point.key()
        keys.append(key)
        hit = cache.get(key)
        if hit is not None:
            results[i] = hit
        else:
            missing.append(i)

    if missing:
        todo = [points[i] for i in missing]
        if jobs <= 1 or len(todo) == 1:
            fresh = [_run_point(p) for p in todo]
        else:
            with ProcessPoolExecutor(max_workers=min(jobs, len(todo))) as pool:
                fresh = list(pool.map(_run_point, todo))
        for i, payload in zip(missing, fresh):
            record = RunRecord.from_json(payload)
            cache.put(keys[i], record)
            results[i] = record

    return results  # type: ignore[return-value]
