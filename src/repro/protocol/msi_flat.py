"""A flat full-map MSI directory protocol — the ablation baseline.

This plug-in strips out everything that makes the NUMAchine protocol
hierarchical, so ablation runs can price those mechanisms:

* **exact full-map directory** — ``DirEntry.proc_mask`` is reinterpreted
  as a *global* CPU bitmask (one bit per processor in the machine), not a
  per-station mask.  Invalidations go exactly to sharer stations, never
  over-delivered;
* **no network cache** — the NC runs in bypass (pure forwarding) mode:
  no combining, no migration/caching hits, no coherence localization;
* **three stable states** — LV = uncached at home (mask empty), GV =
  shared (mask lists every cacher), GI = modified (mask holds exactly the
  owner's bit).  The per-station LI state is unused; local dirty owners on
  the home station are GI like everyone else.

What is *kept* from the host machine model: NACK-and-retry on locked
lines, the ordered-multicast invalidation transport (the return to home
still unlocks the writer, fig 7), interventions for modified lines, and
the write-back races those imply.  The directory's station routing mask is
maintained in parallel with the full map so the base send helpers work
unchanged; ownership of truth sits in ``proc_mask``.
"""

from __future__ import annotations

from typing import Optional

from ..cache.network_cache import NetworkCache
from ..core.directory import DirEntry
from ..core.states import LineState
from ..interconnect.packet import MsgType, Packet
from ..memory.memory_module import MemoryModule, Pending
from ..sim.engine import SimulationError
from .base import CoherenceProtocol


class MsiMemory(MemoryModule):
    """Home directory of the flat MSI protocol (full-map, exact)."""

    DISPATCH = (
        ("READ", "_on_read"),
        ("READ_EX", "_on_read_ex"),
        ("UPGRADE", "_on_upgrade"),
        ("SPECIAL_READ", "_on_special_read"),
        ("WRITE_BACK", "_on_write_back"),
        ("DATA_RESP", "_on_data_home"),
        ("DATA_RESP_EX", "_on_data_home"),
        ("INVALIDATE", "_on_invalidate_return"),
        ("PREFETCH", "_on_read"),
        ("XFER_ACK", "_on_xfer_ack"),
        ("NACK_INTERVENTION", "_on_nack_intervention"),
        ("READ_UNCACHED", "_on_read_uncached"),
        ("WRITE_UNCACHED", "_on_write_uncached"),
    )

    # ------------------------------------------------------------------
    # full-map helpers (proc_mask bits are *global* cpu ids here)
    # ------------------------------------------------------------------
    def _owner_cpu(self, entry: DirEntry, addr: int) -> int:
        mask = entry.proc_mask
        if mask == 0:
            raise SimulationError(
                f"modified line {addr:#x} with an empty owner map"
            )
        return mask.bit_length() - 1

    def _station_of(self, global_cpu: int) -> int:
        return global_cpu // self.config.cpus_per_station

    def _remote_sharer_route(self, entry: DirEntry, keep: int) -> int:
        """Routing mask covering every *remote* station with a sharer other
        than ``keep`` — exact per station, derived from the full map."""
        cps = self.config.cpus_per_station
        mask = entry.proc_mask & ~(1 << keep)
        route = 0
        while mask:
            cpu = mask.bit_length() - 1
            mask &= ~(1 << cpu)
            station = cpu // cps
            if station != self.station_id:
                route |= self.codec.station_mask(station)
        return route

    def _invalidate_home_local(
        self, addr: int, entry: DirEntry, keep: Optional[int]
    ) -> None:
        """Invalidate home-station L2 copies over the bus, clearing their
        bits from the full map (``keep`` is a *global* cpu id)."""
        cps = self.config.cpus_per_station
        base = self.station_id * cps
        local_mask = (entry.proc_mask >> base) & ((1 << cps) - 1)
        if keep is not None and base <= keep < base + cps:
            local_mask &= ~(1 << (keep - base))
        if local_mask == 0:
            return
        victims = [
            self.station.cpus[i] for i in range(cps) if local_mask & (1 << i)
        ]
        v = self.verifier
        if v is not None:
            v.note_local_inval(self.station_id, addr, [c.cpu_id for c in victims])
        entry.proc_mask &= ~(local_mask << base)
        self.out_port.send(
            0, self._cmd_ticks,
            lambda start, vs=victims, a=addr: [c.invalidate_line(a) for c in vs],
        )

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def _on_read(self, pkt: Packet, entry: DirEntry, local: bool) -> int:
        if entry.locked:
            return self._nack(pkt, local)
        if entry.state is not LineState.GI:
            # LV (uncached) or GV (shared): serve from DRAM, grow the map
            data = self.read_line(pkt.addr)
            dram = self._dram_read_ticks()
            if pkt.requester is not None:
                entry.proc_mask |= 1 << pkt.requester
            entry.state = LineState.GV if entry.proc_mask else LineState.LV
            if local:
                self._respond_local(pkt, data, exclusive=False, delay=dram)
            else:
                self.directory.add_station(entry, pkt.src_station)
                self.directory.add_station(entry, self.station_id)
                self._send_data(pkt, data, exclusive=False, delay=dram)
            return dram
        # GI: exactly one owner, found in the full map
        owner_cpu = self._owner_cpu(entry, pkt.addr)
        owner_station = self._station_of(owner_cpu)
        if owner_station == self.station_id:
            # dirty in a home-station L2: bus intervention
            self._lock(entry, Pending(
                kind="fetch", req_type=pkt.mtype, requester=pkt.requester,
                req_station=pkt.src_station, is_local=local, grant="data",
            ))
            self._msi_local_intervention(pkt.addr, owner_cpu, exclusive=False)
            return 0
        false_remote = owner_station == pkt.src_station and not local
        if false_remote:
            self.stats.counter("false_remote_bounces").incr()
        self._lock(entry, Pending(
            kind="fetch", req_type=pkt.mtype, requester=pkt.requester,
            req_station=pkt.src_station, is_local=local, grant="data",
        ))
        self._send_intervention(
            pkt, owner_station, exclusive=False, false_remote=false_remote
        )
        return 0

    # ------------------------------------------------------------------
    # writes (read-exclusive)
    # ------------------------------------------------------------------
    def _on_read_ex(self, pkt: Packet, entry: DirEntry, local: bool) -> int:
        if entry.locked:
            return self._nack(pkt, local)
        if entry.state is not LineState.GI:
            return self._grant_exclusive(pkt, entry, local)
        owner_cpu = self._owner_cpu(entry, pkt.addr)
        owner_station = self._station_of(owner_cpu)
        if owner_station == self.station_id:
            self._lock(entry, Pending(
                kind="fetch", req_type=pkt.mtype, requester=pkt.requester,
                req_station=pkt.src_station, is_local=local, grant="data",
            ))
            self._msi_local_intervention(pkt.addr, owner_cpu, exclusive=True)
            return 0
        false_remote = owner_station == pkt.src_station and not local
        if false_remote:
            self.stats.counter("false_remote_bounces").incr()
        self._lock(entry, Pending(
            kind="fetch", req_type=pkt.mtype, requester=pkt.requester,
            req_station=pkt.src_station, is_local=local, grant="data",
        ))
        self._send_intervention(
            pkt, owner_station, exclusive=True, false_remote=false_remote
        )
        return 0

    def _grant_exclusive(self, pkt: Packet, entry: DirEntry, local: bool) -> int:
        """LV/GV -> GI, invalidating every other sharer in the full map."""
        requester = pkt.requester
        dram = self._dram_read_ticks()
        remote_route = self._remote_sharer_route(entry, keep=requester)
        if remote_route:
            # Ordered multicast invalidation; completion at its return.
            if not local:
                # fig 7: the data goes out first, the invalidation follows
                self._send_data(pkt, self.read_line(pkt.addr), exclusive=True,
                                inv_follows=True, delay=dram)
            self._lock(entry, Pending(
                kind="inv", req_type=pkt.mtype, requester=requester,
                req_station=pkt.src_station, is_local=local, grant="data",
            ))
            self._send_invalidate(pkt, entry, remote_route)
            return dram
        # sharers (if any) are all on the home station: bus invalidation
        self._invalidate_home_local(pkt.addr, entry, keep=requester)
        entry.state = LineState.GI
        entry.proc_mask = 1 << requester
        if local:
            self.directory.set_station(entry, self.station_id)
            self._respond_local(pkt, self.read_line(pkt.addr), exclusive=True,
                                delay=dram)
        else:
            self.directory.set_station(entry, pkt.src_station)
            self._send_data(pkt, self.read_line(pkt.addr), exclusive=True,
                            inv_follows=False, delay=dram)
        return dram

    # ------------------------------------------------------------------
    # upgrades: flat MSI is pessimistic — always answered with data
    # ------------------------------------------------------------------
    def _on_upgrade(self, pkt: Packet, entry: DirEntry, local: bool) -> int:
        if entry.locked:
            return self._nack(pkt, local)
        self.stats.counter("upgrade_data_sent").incr()
        data_pkt = Packet(
            mtype=MsgType.READ_EX, addr=pkt.addr,
            src_station=pkt.src_station, dest_mask=0,
            requester=pkt.requester, meta=dict(pkt.meta),
        )
        return self._on_read_ex(data_pkt, entry, local)

    def _on_special_read(self, pkt: Packet, entry: DirEntry, local: bool) -> int:
        """The requester owns the line but its data never arrived (the
        ordered invalidation beat the direct data and the copy was lost)."""
        if entry.locked:
            return self._nack(pkt, local)
        self.stats.counter("special_reads_served").incr()
        data = self.read_line(pkt.addr)
        dram = self._dram_read_ticks()
        if local:
            self._respond_local(pkt, data, exclusive=True, delay=dram)
        else:
            self._send_data(pkt, data, exclusive=True, inv_follows=False,
                            delay=dram)
        return dram

    # ------------------------------------------------------------------
    # write-backs and returning data
    # ------------------------------------------------------------------
    def _on_write_back(self, pkt: Packet, entry: DirEntry, local: bool) -> int:
        self.write_line(pkt.addr, pkt.data)
        if entry.locked:
            pending = entry.pending
            if pending is not None and pending.kind == "awaiting_wb":
                # the intervention already resolved empty-handed; this
                # write-back is its real answer — rerun the blocked request
                self._unlock(entry)
                self._complete_after_wb(pkt.addr, entry, pending)
            elif pending is not None and pending.kind == "fetch":
                # The write-back crossed an intervention that is STILL in
                # flight.  Completing the round now would let that stale
                # intervention catch the new grantee and take its copy away
                # (its answers would then be dropped on the txn guard),
                # stranding the map on an owner with no copy — a livelock.
                # Note the arrival and close the round only when the
                # intervention's own answer (data or NACK) returns.
                pending.extra["wb_arrived"] = True
            # kind "inv": the in-flight transition owns state and map
            return self._dram_write_ticks()
        # the owner returned the line: home holds the only copy again
        entry.state = LineState.LV
        entry.proc_mask = 0
        self.directory.set_station(entry, self.station_id)
        return self._dram_write_ticks()

    def _complete_after_wb(self, addr: int, entry: DirEntry, pending: Pending) -> None:
        req = Packet(
            mtype=pending.req_type, addr=addr,
            src_station=pending.req_station, dest_mask=0,
            requester=pending.requester,
            meta={"local": pending.is_local, "retry": True},
        )
        entry.state = LineState.LV
        entry.proc_mask = 0
        self.directory.set_station(entry, self.station_id)
        self.handle(req)

    def _on_data_home(self, pkt: Packet, entry: DirEntry, local: bool) -> int:
        """Intervention answers returning to home."""
        if not self._txn_matches(pkt, entry):
            self.stats.counter("stale_answers").incr()
            self.write_line(pkt.addr, pkt.data)
            return self._dram_write_ticks()
        pending = entry.pending
        self.write_line(pkt.addr, pkt.data)
        exclusive = pkt.mtype is MsgType.DATA_RESP_EX
        self._unlock(entry)
        requester_bit = (
            (1 << pending.requester) if pending.requester is not None else 0
        )
        if exclusive:
            entry.state = LineState.GI
            entry.proc_mask = requester_bit
            if pending.is_local:
                self.directory.set_station(entry, self.station_id)
                self._respond_local_pending(pkt.addr, pending, pkt.data,
                                            exclusive=True)
            else:
                self.directory.set_station(entry, pending.req_station)
        else:
            # the old owner's copy was taken by the intervention broadcast:
            # the new map holds exactly the requester
            entry.state = LineState.GV if requester_bit else LineState.LV
            entry.proc_mask = requester_bit
            self.directory.add_station(entry, self.station_id)
            self.directory.add_station(entry, pending.req_station)
            if pending.is_local:
                self._respond_local_pending(pkt.addr, pending, pkt.data,
                                            exclusive=False)
        return self._dram_write_ticks()

    def _on_xfer_ack(self, pkt: Packet, entry: DirEntry, local: bool) -> int:
        """Ownership moved directly between remote stations."""
        if self._txn_matches(pkt, entry):
            pending = entry.pending
            self._unlock(entry)
            entry.state = LineState.GI
            entry.proc_mask = (
                (1 << pending.requester) if pending.requester is not None else 0
            )
            self.directory.set_station(entry, pending.req_station)
        return 0

    def _on_nack_intervention(self, pkt: Packet, entry: DirEntry, local: bool) -> int:
        """The owner could not supply data and no write-back is coming:
        bounce the original requester so it retries from scratch."""
        if not self._txn_matches(pkt, entry):
            self.stats.counter("stale_answers").incr()
            return 0
        pending = entry.pending
        self._unlock(entry)
        if pending.extra.get("wb_arrived"):
            # the owner's write-back crossed the intervention and already
            # landed here: home holds the line — serve the blocked request
            # from DRAM instead of bouncing the requester at a dead owner
            self._complete_after_wb(pkt.addr, entry, pending)
            return 0
        if pending.is_local:
            cpu = self.station.cpu_by_global(pending.requester)
            self.out_port.send(
                0, self._cmd_ticks,
                lambda start, c=cpu, a=pkt.addr: c.nack_from_module(a),
            )
        else:
            nack = Packet(
                mtype=MsgType.NACK, addr=pkt.addr,
                src_station=self.station_id,
                dest_mask=self.codec.station_mask(pending.req_station),
                requester=pending.requester,
            )
            self._send_packet(nack, has_data=False)
        return 0

    # ------------------------------------------------------------------
    # invalidation return (the unlock signal)
    # ------------------------------------------------------------------
    def _on_invalidate_return(self, pkt: Packet, entry: DirEntry, local: bool) -> int:
        if not (entry.locked and entry.pending is not None
                and entry.pending.kind == "inv"):
            # exact delivery: memory-side invalidations always match a
            # pending write; anything else is a late duplicate to drop
            self.stats.counter("stray_invalidates").incr()
            return 0
        pending = entry.pending
        self._unlock(entry)
        self._invalidate_home_local(pkt.addr, entry, keep=pending.requester)
        entry.state = LineState.GI
        entry.proc_mask = (
            (1 << pending.requester) if pending.requester is not None else 0
        )
        if pending.is_local:
            self.directory.set_station(entry, self.station_id)
            self._respond_local_pending(
                pkt.addr, pending, self.read_line(pkt.addr), exclusive=True,
                delay=self._dram_read_ticks(),
            )
        else:
            self.directory.set_station(entry, pending.req_station)
        return 0

    # ------------------------------------------------------------------
    # home-station bus interventions
    # ------------------------------------------------------------------
    def _msi_local_intervention(
        self, addr: int, owner_cpu: int, exclusive: bool
    ) -> None:
        cpu = self.station.cpus[self._local_index(owner_cpu)]
        self.out_port.send(
            0, self._cmd_ticks,
            lambda start, c=cpu, a=addr, e=exclusive: c.handle_intervention(
                a, e,
                lambda data, a2=a, e2=e: self._local_intervention_done(a2, e2, data),
            ),
        )

    def _local_intervention_done(self, addr: int, exclusive: bool, data) -> None:
        entry = self.directory.entry(addr)
        pending = entry.pending
        if pending is None:
            return
        if data is None:
            if pending.extra.get("wb_arrived"):
                # the crossed write-back already landed: rerun right away
                self._unlock(entry)
                self._complete_after_wb(addr, entry, pending)
                return
            # crossed with the owner's write-back; it is already in our FIFO
            pending.kind = "awaiting_wb"
            return
        self.write_line(addr, data)
        self._unlock(entry)
        requester_bit = (
            (1 << pending.requester) if pending.requester is not None else 0
        )
        if exclusive:
            entry.state = LineState.GI
            entry.proc_mask = requester_bit
            if pending.is_local:
                self.directory.set_station(entry, self.station_id)
                self._respond_local_pending(addr, pending, list(data),
                                            exclusive=True)
            else:
                self.directory.set_station(entry, pending.req_station)
                fake = Packet(
                    mtype=MsgType.READ_EX, addr=addr,
                    src_station=pending.req_station, dest_mask=0,
                    requester=pending.requester,
                )
                self._send_data(fake, list(data), exclusive=True,
                                inv_follows=False)
        else:
            # the old owner downgraded to shared and keeps its copy
            entry.state = LineState.GV
            entry.proc_mask |= requester_bit
            if pending.is_local:
                self.directory.set_station(entry, self.station_id)
                self._respond_local_pending(addr, pending, list(data),
                                            exclusive=False)
            else:
                self.directory.add_station(entry, self.station_id)
                self.directory.add_station(entry, pending.req_station)
                fake = Packet(
                    mtype=MsgType.READ, addr=addr,
                    src_station=pending.req_station, dest_mask=0,
                    requester=pending.requester,
                )
                self._send_data(fake, list(data), exclusive=False)
        v = self.verifier
        if v is not None:
            v.mem_settled(self, addr)


class MsiNC(NetworkCache):
    """Flat MSI has no network cache: a pure forwarding agent.

    Reuses the base bypass machinery (also exercised by the
    ``nc_enabled=False`` ablation): every local miss goes straight to the
    home station, responses complete the matching pending record, and
    remote interventions are answered by a processor broadcast."""

    DISPATCH = (
        ("DATA_RESP", "_on_data"),
        ("DATA_RESP_EX", "_on_data"),
        ("NACK", "_on_nack"),
        ("INVALIDATE", "_on_invalidate"),
        ("INTERVENTION", "_on_intervention"),
        ("INTERVENTION_EX", "_on_intervention"),
        ("MULTICAST_DATA", "_on_multicast_data"),
        ("KILL", "_on_kill"),
    )

    def __init__(self, engine, config, station) -> None:
        super().__init__(engine, config, station)
        # forwarding-only regardless of the machine-level NC knob
        self.enabled = False

    def _on_local_request(self, pkt: Packet) -> int:
        return self._bypass_local_request(pkt)

    def _on_local_writeback(self, pkt: Packet) -> int:
        self._forward_wb_home(pkt.addr, pkt.data)
        return 0

    def _on_data(self, pkt: Packet) -> int:
        return self._bypass_on_data(pkt)

    def _on_invalidate(self, pkt: Packet) -> int:
        return self._bypass_on_invalidate(pkt)

    def _on_multicast_data(self, pkt: Packet) -> int:
        """Software update multicast (§3.2) without an NC to adopt it: the
        base handler invalidates L2 copies via the NC line's processor mask,
        which a bypass NC never populates — it would invalidate nobody and
        leave spinners reading stale copies forever.  Here sharer tracking
        lives solely in home's full map, so broadcast-invalidate every local
        copy; re-reads refetch the updated line from home (which adopted the
        data on the multicast's arrival there)."""
        self._invalidate_local_all(pkt.addr)
        self.stats.counter("multicast_fills").incr()
        return 0

    def _on_nack(self, pkt: Packet) -> int:
        p = self._bypass_pending.get((pkt.addr, pkt.requester))
        if p is not None:
            p.retries += 1
            self.engine.schedule(
                self._retry_ticks,
                lambda a=pkt.addr, c=pkt.requester, o=p.op, ph=p.phase:
                    self._send_home(a, o, c, retry=True, phase=ph),
            )
        return 0


class MsiFlatProtocol(CoherenceProtocol):
    """Flat full-map MSI directory: the hierarchy ablation baseline."""

    name = "msi"
    memory_class = MsiMemory
    nc_class = MsiNC

    #: GI -> LV happens on every owner write-back (exact map, no
    #: hierarchical epoch rules): no transition pair is illegal per se
    illegal_mem = frozenset()
    illegal_nc = frozenset()
    #: unreachable — the NC holds no lines in bypass mode
    valid_nc_states = (LineState.LV, LineState.GV)
    conformance_invariants = (
        "legal-transition",
        "locked-liveness",
        "full-map-coverage",
        "single-owner",
        "sc-blocking",
        "single-writer",
        "writer-reader-exclusion",
        "nonsink-priority",
    )

    # ------------------------------------------------------------------
    def check_mem_masks(self, checker, mem, la: int, entry, pkt: Optional[Packet]) -> None:
        state = entry.state
        where = f"mem@S{mem.station_id}"
        mask = entry.proc_mask
        if state is not LineState.GI:
            # LV/GV: the full map must cover every readable L2 copy in the
            # whole machine (modulo invalidations still on a bus or ring)
            checker._count("full-map-coverage")
            for cpu in checker.machine.cpus:
                line = cpu.l2.lookup(la, touch=False)
                if line is None or not line.state.readable:
                    continue
                if (mask >> cpu.cpu_id) & 1:
                    continue
                sid = cpu.station.station_id
                pend = checker._pending_inval.get((sid, la))
                if pend is not None and cpu.cpu_id in pend:
                    continue
                if checker._inval_inflight.get((sid, la)):
                    continue
                checker._violate(
                    "full-map-coverage",
                    f"P{cpu.cpu_id} holds {line.state.value} but the full "
                    f"map {mask:#x} does not cover it",
                    la=la, where=where, pkt=pkt,
                )
        else:
            checker._count("single-owner")
            if mask == 0 or (mask & (mask - 1)):
                checker._violate(
                    "single-owner",
                    f"modified line with owner map {mask:#x} "
                    "(expected exactly one bit)",
                    la=la, where=where, pkt=pkt,
                )

    def check_nc_masks(self, checker, nc, la: int, line, pkt: Optional[Packet]) -> None:
        # the NC is a pure forwarder: it holds no lines to check
        return
