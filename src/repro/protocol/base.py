"""The pluggable coherence-protocol interface.

A :class:`CoherenceProtocol` bundles everything the rest of the system
needs to know about one coherence scheme:

* **engine classes** — ``memory_class`` / ``nc_class`` subclass the
  protocol-agnostic :class:`~repro.memory.memory_module.MemoryModule` and
  :class:`~repro.cache.network_cache.NetworkCache` plumbing (FIFOs,
  serialization, bus ports, stat groups, packet send helpers) and supply
  the coherence state machines themselves;
* **transition tables** — each engine class declares a ``DISPATCH`` class
  attribute, a tuple of ``(MsgType name, handler name)`` pairs.  It is the
  single source of truth for dispatch: the interpreted ``_dispatch`` builds
  its handler dict from it, and the build-time elaborator
  (:mod:`repro.elab.codegen`) compiles it into a dense
  ``MsgType.value``-indexed tuple;
* **directory/mask policy** — what the per-line ``proc_mask`` and routing
  mask *mean* is protocol-specific (NUMAchine: inexact hierarchical masks;
  flat MSI: an exact global full map), so the invariant checker
  (:mod:`repro.verify.checker`) delegates its mask-coverage checks here;
* **conformance suite** — ``conformance_invariants`` names the invariant
  counters a canonical checked run must exercise for the plug-in to be
  considered conformant (see :func:`repro.protocol.run_conformance`).

Selection is per-machine: ``MachineConfig.protocol`` wins over the
``NUMACHINE_PROTOCOL`` environment variable, default ``numachine``; the
:class:`~repro.system.machine.Machine` resolves the plug-in once at
construction and every layer (stations, checker, elaborator, perf cache,
observability) reads it from there.
"""

from __future__ import annotations

from typing import Optional


class CoherenceProtocol:
    """Base class / interface for coherence-protocol plug-ins.

    Subclasses are stateless singletons registered in
    :mod:`repro.protocol`; all per-run state lives in the engine-class
    instances they name.
    """

    #: registry key, also the value of ``NUMACHINE_PROTOCOL``
    name: str = "?"
    #: MemoryModule subclass implementing the home-directory state machine
    memory_class: Optional[type] = None
    #: NetworkCache subclass implementing the NC-side state machine
    nc_class: Optional[type] = None

    #: (pre, post) LineState pairs illegal between two *unlocked*
    #: observations of the same home-directory line
    illegal_mem: frozenset = frozenset()
    #: same, for network-cache lines
    illegal_nc: frozenset = frozenset()
    #: NC line states that constitute a stable "this station holds a valid
    #: copy" claim (used by the single-writer invariant)
    valid_nc_states: tuple = ()
    #: invariant counters a conformant canonical run must exercise
    conformance_invariants: tuple = ()

    # ------------------------------------------------------------------
    # checker policy hooks (read-only; called with the line *unlocked*)
    # ------------------------------------------------------------------
    def check_mem_masks(self, checker, mem, la, entry, pkt) -> None:
        """Assert the home directory's masks cover reality for ``la``.

        ``checker`` is the attached
        :class:`~repro.verify.checker.CoherenceChecker`; implementations
        use its ``_count`` / ``_violate`` helpers and its in-flight
        invalidation shadow sets, and must never mutate simulation state.
        """

    def check_nc_masks(self, checker, nc, la, line, pkt) -> None:
        """Assert the network cache's processor mask covers reality."""

    # ------------------------------------------------------------------
    # introspection (docs, elaborator, tests)
    # ------------------------------------------------------------------
    def transition_tables(self) -> dict:
        """The declared ``(MsgType name, handler name)`` dispatch tables."""
        return {
            "memory": tuple(self.memory_class.DISPATCH),
            "nc": tuple(self.nc_class.DISPATCH),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CoherenceProtocol {self.name}>"
