"""NUMAchine's two-level hierarchical write-back invalidate protocol.

This is the paper's protocol (Fig. 5/6), extracted verbatim from the
memory-module and network-cache engines so it can be compared against
alternative plug-ins.  Its signature features:

* **inexact hierarchical routing masks** — the home directory ORs one bit
  per ring level per sharer, so invalidation multicasts may over-deliver
  (cheap directory, filtered at the receivers, §2.3);
* **per-station processor masks** — local sharers are named exactly
  within a station, globally only "some station on this ring" is known;
* **NACK-and-retry on locked lines** — nothing queues at home; combining
  happens in the network cache;
* **ordered-multicast invalidation** — the writer proceeds when the
  multicast returns to the home station (fig 7), downstream sharers see
  it later (ack-free);
* **network-cache effects** — combining, migration, caching and
  coherence localization, plus false-remote recovery (§4.6) via
  interventions and special reads.

The two engine classes below hold *only* the state machines; all
serialization plumbing, bypass machinery, softctl handlers and packet
helpers stay in the protocol-agnostic base classes.
"""

from __future__ import annotations

from typing import Optional

from ..cache.network_cache import NCLine, NCPending, NetworkCache
from ..core.directory import DirEntry
from ..core.states import LineState
from ..interconnect.packet import MsgType, Packet
from ..memory.memory_module import MemoryModule, Pending
from ..sim.engine import SimulationError
from .base import CoherenceProtocol


class NumachineMemory(MemoryModule):
    """Home memory directory: the memory side of the two-level protocol."""

    #: (MsgType name, handler name) — the single source of truth for both
    #: the interpreted dispatch dict and the elaborator's dense table
    DISPATCH = (
        ("READ", "_on_read"),
        ("READ_EX", "_on_read_ex"),
        ("UPGRADE", "_on_upgrade"),
        ("SPECIAL_READ", "_on_special_read"),
        ("WRITE_BACK", "_on_write_back"),
        ("DATA_RESP", "_on_data_home"),
        ("DATA_RESP_EX", "_on_data_home"),
        ("INVALIDATE", "_on_invalidate_return"),
        ("PREFETCH", "_on_read"),
        ("XFER_ACK", "_on_xfer_ack"),
        ("NACK_INTERVENTION", "_on_nack_intervention"),
        ("READ_UNCACHED", "_on_read_uncached"),
        ("WRITE_UNCACHED", "_on_write_uncached"),
    )

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def _on_read(self, pkt: Packet, entry: DirEntry, local: bool) -> int:
        if entry.locked:
            return self._nack(pkt, local)
        st = entry.state
        if st in (LineState.LV, LineState.GV):
            data = self.read_line(pkt.addr)
            dram = self._dram_read_ticks()
            if local:
                entry.proc_mask |= 1 << self._local_index(pkt.requester)
                self._respond_local(pkt, data, exclusive=False, delay=dram)
            else:
                entry.state = LineState.GV
                self.directory.add_station(entry, pkt.src_station)
                self.directory.add_station(entry, self.station_id)
                self._send_data(pkt, data, exclusive=False, delay=dram)
            return dram
        if st is LineState.LI:
            # dirty in a local secondary cache: bus intervention
            self._lock(entry, Pending(
                kind="fetch",
                req_type=pkt.mtype,
                requester=pkt.requester,
                req_station=pkt.src_station,
                is_local=local,
                grant="data",
            ))
            self._local_intervention(pkt.addr, entry, exclusive=False)
            return 0
        # GI: a remote network cache owns the line
        owner = self._owner_station(entry)
        if owner == pkt.src_station and not local:
            # false remote: requester's own station still owns it (§4.6)
            self.stats.counter("false_remote_bounces").incr()
            self._lock(entry, Pending(
                kind="fetch", req_type=pkt.mtype, requester=pkt.requester,
                req_station=pkt.src_station, is_local=False, grant="data",
            ))
            self._send_intervention(pkt, owner, exclusive=False, false_remote=True)
            return 0
        self._lock(entry, Pending(
            kind="fetch", req_type=pkt.mtype, requester=pkt.requester,
            req_station=pkt.src_station, is_local=local, grant="data",
        ))
        self._send_intervention(pkt, owner, exclusive=False)
        return 0

    # ------------------------------------------------------------------
    # writes (read-exclusive)
    # ------------------------------------------------------------------
    def _on_read_ex(self, pkt: Packet, entry: DirEntry, local: bool) -> int:
        if entry.locked:
            return self._nack(pkt, local)
        st = entry.state
        if st is LineState.LV:
            return self._grant_exclusive_from_valid(pkt, entry, local, had_remote=False)
        if st is LineState.GV:
            return self._grant_exclusive_from_valid(pkt, entry, local, had_remote=True)
        if st is LineState.LI:
            self._lock(entry, Pending(
                kind="fetch", req_type=pkt.mtype, requester=pkt.requester,
                req_station=pkt.src_station, is_local=local, grant="data",
            ))
            self._local_intervention(pkt.addr, entry, exclusive=True)
            return 0
        # GI: forward to the owning station
        owner = self._owner_station(entry)
        if owner == pkt.src_station and not local:
            self.stats.counter("false_remote_bounces").incr()
            self._lock(entry, Pending(
                kind="fetch", req_type=pkt.mtype, requester=pkt.requester,
                req_station=pkt.src_station, is_local=False, grant="data",
            ))
            self._send_intervention(pkt, owner, exclusive=True, false_remote=True)
            return 0
        self._lock(entry, Pending(
            kind="fetch", req_type=pkt.mtype, requester=pkt.requester,
            req_station=pkt.src_station, is_local=local, grant="data",
        ))
        self._send_intervention(pkt, owner, exclusive=True)
        return 0

    def _grant_exclusive_from_valid(
        self, pkt: Packet, entry: DirEntry, local: bool, had_remote: bool
    ) -> int:
        """LV/GV -> exclusive grant, invalidating all other copies."""
        grant = "ack" if pkt.mtype is MsgType.UPGRADE else "data"
        remote_mask = self._remote_sharers(entry)
        if had_remote and remote_mask:
            # Ordered multicast invalidation; completion at its return (§2.3).
            if not local and grant == "data":
                # fig 7: data goes out first, the invalidation follows
                self._send_data(pkt, self.read_line(pkt.addr), exclusive=True,
                                inv_follows=True, delay=self._dram_read_ticks())
            self._lock(entry, Pending(
                kind="inv", req_type=pkt.mtype, requester=pkt.requester,
                req_station=pkt.src_station, is_local=local, grant=grant,
            ))
            self._send_invalidate(pkt, entry, remote_mask)
            return self._dram_read_ticks() if grant == "data" else 0
        # only local copies: invalidate over the bus and answer immediately
        self._invalidate_local(pkt.addr, entry, keep=pkt.requester if local else None)
        if local:
            idx = self._local_index(pkt.requester)
            entry.state = LineState.LI
            entry.proc_mask = 1 << idx
            self.directory.set_station(entry, self.station_id)
            if grant == "ack" and self._cpu_has_copy(pkt.requester, pkt.addr):
                self._respond_local(pkt, None, exclusive=True)
                return 0
            self._respond_local(
                pkt, self.read_line(pkt.addr), exclusive=True,
                delay=self._dram_read_ticks(),
            )
            return self._dram_read_ticks()
        entry.state = LineState.GI
        entry.proc_mask = 0
        self.directory.set_station(entry, pkt.src_station)
        if grant == "ack":
            # upgrade with no other sharers: a lone invalidate acts as the ack
            # (no lock is held, so home is excluded from the multicast)
            self._send_invalidate(pkt, entry, 0, include_home=False)
            return 0
        self._send_data(pkt, self.read_line(pkt.addr), exclusive=True,
                        inv_follows=False, delay=self._dram_read_ticks())
        return self._dram_read_ticks()

    # ------------------------------------------------------------------
    # upgrades (write permission without data)
    # ------------------------------------------------------------------
    def _on_upgrade(self, pkt: Packet, entry: DirEntry, local: bool) -> int:
        if entry.locked:
            return self._nack(pkt, local)
        st = entry.state
        if st in (LineState.LV, LineState.GV):
            requester_station = self.station_id if local else pkt.src_station
            may_have = local or self.directory.may_have_copy(entry, requester_station)
            if self.config.optimistic_upgrade and may_have:
                return self._grant_exclusive_from_valid(
                    pkt, entry, local, had_remote=(st is LineState.GV)
                )
            # pessimistic (or known-stale): answer with data like a READ_EX
            self.stats.counter("upgrade_data_sent").incr()
            data_pkt = Packet(
                mtype=MsgType.READ_EX, addr=pkt.addr,
                src_station=pkt.src_station, dest_mask=0,
                requester=pkt.requester, meta=dict(pkt.meta),
            )
            return self._on_read_ex(data_pkt, entry, local)
        # The requester's copy is long gone (LI/GI): fall back to READ_EX.
        self.stats.counter("upgrade_fallback").incr()
        data_pkt = Packet(
            mtype=MsgType.READ_EX, addr=pkt.addr,
            src_station=pkt.src_station, dest_mask=0,
            requester=pkt.requester, meta=dict(pkt.meta),
        )
        return self._on_read_ex(data_pkt, entry, local)

    def _on_special_read(self, pkt: Packet, entry: DirEntry, local: bool) -> int:
        """§4.6: the requester owns the line but never received data."""
        if entry.locked:
            return self._nack(pkt, local)
        self.stats.counter("special_reads_served").incr()
        data = self.read_line(pkt.addr)
        dram = self._dram_read_ticks()
        if local:
            self._respond_local(pkt, data, exclusive=True, delay=dram)
        else:
            self._send_data(pkt, data, exclusive=True, inv_follows=False, delay=dram)
        return dram

    # ------------------------------------------------------------------
    # write-backs and returning data
    # ------------------------------------------------------------------
    def _on_write_back(self, pkt: Packet, entry: DirEntry, local: bool) -> int:
        self.write_line(pkt.addr, pkt.data)
        if entry.locked and entry.pending is not None and entry.pending.kind in (
            "awaiting_wb",
            "fetch",
        ):
            # the write-back crossed our intervention: complete the request
            pending = entry.pending
            self._unlock(entry)
            self._complete_after_wb(pkt, entry, pending)
            return self._dram_write_ticks()
        if local:
            # dirty secondary-cache eviction on the home station
            entry.state = LineState.LV
            if pkt.requester is not None:
                entry.proc_mask &= ~(1 << self._local_index(pkt.requester))
            self.directory.set_station(entry, self.station_id)
        else:
            # a network cache ejected its (exclusively held) copy
            entry.state = LineState.GV
            self.directory.add_station(entry, self.station_id)
        return self._dram_write_ticks()

    def _complete_after_wb(self, pkt: Packet, entry: DirEntry, pending: Pending) -> None:
        req = Packet(
            mtype=pending.req_type, addr=pkt.addr,
            src_station=pending.req_station, dest_mask=0,
            requester=pending.requester,
            meta={"local": pending.is_local, "retry": True},
        )
        # The line is now plain valid; rerun the request against fresh state.
        # Keep the old sharer mask (L2s at the ejecting station may retain
        # shared copies), just fold in the home station.
        entry.state = LineState.LV if pending.is_local else LineState.GV
        entry.proc_mask = 0
        self.directory.add_station(entry, self.station_id)
        self.handle(req)

    def _on_data_home(self, pkt: Packet, entry: DirEntry, local: bool) -> int:
        """A copy of the line returning to its home (intervention answers)."""
        if not self._txn_matches(pkt, entry):
            # stray copy (e.g. late duplicate); just absorb the data
            self.stats.counter("stale_answers").incr()
            self.write_line(pkt.addr, pkt.data)
            return self._dram_write_ticks()
        pending = entry.pending
        self.write_line(pkt.addr, pkt.data)
        exclusive = pkt.mtype is MsgType.DATA_RESP_EX
        self._unlock(entry)
        if exclusive:
            # ownership moved to the pending requester
            if pending.is_local:
                idx = self._local_index(pending.requester)
                entry.state = LineState.LI
                entry.proc_mask = 1 << idx
                self.directory.set_station(entry, self.station_id)
                self._respond_local_pending(pkt.addr, pending, pkt.data, exclusive=True)
            else:
                entry.state = LineState.GI
                entry.proc_mask = 0
                self.directory.set_station(entry, pending.req_station)
        else:
            entry.state = LineState.GV
            self.directory.add_station(entry, self.station_id)
            self.directory.add_station(entry, pending.req_station)
            if pending.is_local:
                idx = self._local_index(pending.requester)
                entry.proc_mask |= 1 << idx
                self._respond_local_pending(pkt.addr, pending, pkt.data, exclusive=False)
        return self._dram_write_ticks()

    def _on_xfer_ack(self, pkt: Packet, entry: DirEntry, local: bool) -> int:
        """Ownership-transfer notification from the old owner's NC."""
        if self._txn_matches(pkt, entry):
            pending = entry.pending
            self._unlock(entry)
            entry.state = LineState.GI
            entry.proc_mask = 0
            self.directory.set_station(entry, pending.req_station)
        return 0

    def _on_nack_intervention(self, pkt: Packet, entry: DirEntry, local: bool) -> int:
        """The owner's NC could not supply data and no write-back is coming:
        bounce the original requester so it retries from scratch."""
        if not self._txn_matches(pkt, entry):
            self.stats.counter("stale_answers").incr()
            return 0
        pending = entry.pending
        self._unlock(entry)
        if pending.is_local:
            cpu = self.station.cpu_by_global(pending.requester)
            self.out_port.send(
                0, self._cmd_ticks,
                lambda start, c=cpu, a=pkt.addr: c.nack_from_module(a),
            )
        else:
            nack = Packet(
                mtype=MsgType.NACK, addr=pkt.addr,
                src_station=self.station_id,
                dest_mask=self.codec.station_mask(pending.req_station),
                requester=pending.requester,
            )
            self._send_packet(nack, has_data=False)
        return 0

    # ------------------------------------------------------------------
    # invalidation return (the unlock signal, paper fig 7)
    # ------------------------------------------------------------------
    def _on_invalidate_return(self, pkt: Packet, entry: DirEntry, local: bool) -> int:
        if not (entry.locked and entry.pending is not None and entry.pending.kind == "inv"):
            # an invalidation for a line this memory no longer tracks as
            # pending: invalidate local copies (inexact-mask delivery)
            if entry.proc_mask and entry.state in (LineState.LV, LineState.GV):
                self._invalidate_local(pkt.addr, entry, keep=None)
                entry.state = LineState.GI
            self.stats.counter("stray_invalidates").incr()
            return 0
        pending = entry.pending
        self._unlock(entry)
        keep = pending.requester if pending.is_local else None
        self._invalidate_local(pkt.addr, entry, keep=keep)
        if pending.is_local:
            idx = self._local_index(pending.requester)
            entry.state = LineState.LI
            entry.proc_mask = 1 << idx
            self.directory.set_station(entry, self.station_id)
            if pending.grant == "ack" and self._cpu_has_copy(pending.requester, pkt.addr):
                self._respond_local_pending(pkt.addr, pending, None, exclusive=True)
            else:
                self._respond_local_pending(
                    pkt.addr, pending, self.read_line(pkt.addr), exclusive=True,
                    delay=self._dram_read_ticks(),
                )
        else:
            entry.state = LineState.GI
            entry.proc_mask = 0
            self.directory.set_station(entry, pending.req_station)
        return 0


class NumachineNC(NetworkCache):
    """Network cache state machine: combining, migration, caching and
    coherence localization (fig 6)."""

    DISPATCH = (
        ("DATA_RESP", "_on_data"),
        ("DATA_RESP_EX", "_on_data"),
        ("NACK", "_on_nack"),
        ("INVALIDATE", "_on_invalidate"),
        ("INTERVENTION", "_on_intervention"),
        ("INTERVENTION_EX", "_on_intervention"),
        ("MULTICAST_DATA", "_on_multicast_data"),
        ("KILL", "_on_kill"),
    )

    # ==================================================================
    # local processor requests
    # ==================================================================
    def _on_local_request(self, pkt: Packet) -> int:
        if not self.enabled:
            return self._bypass_local_request(pkt)
        line = self.array.probe(pkt.addr)
        op = pkt.mtype
        cpu = pkt.requester
        if line is not None and line.locked:
            p = line.pending
            if p is not None and p.kind == "fetch" and cpu != p.cpu:
                p.combined.add(cpu)
            ctr = self._ctr_nacks
            if ctr is None:
                ctr = self._ctr_nacks = self.stats.counter("nacks")
            ctr.value += 1
            self._nack_cpu(cpu, pkt.addr)
            return 0
        if line is None:
            occupant = self.array.occupant(pkt.addr)
            if occupant is not None and occupant.locked:
                ctr = self._ctr_conflict_nacks
                if ctr is None:
                    ctr = self._ctr_conflict_nacks = self.stats.counter(
                        "conflict_nacks"
                    )
                ctr.value += 1
                self._nack_cpu(cpu, pkt.addr)
                return 0
            if occupant is not None:
                self._eject(occupant)
            line = NCLine(addr=pkt.addr, state=LineState.GI)
            self.array.insert(line)
            return self._start_fetch(line, op, pkt)
        st = line.state
        if st is LineState.GI:
            return self._start_fetch(line, op, pkt)
        if st is LineState.GV:
            if op is MsgType.READ:
                return self._serve_hit(line, cpu)
            # write permission must come from home; NC already has the data,
            # so a dataless upgrade suffices (the response combines with it)
            return self._start_fetch(line, MsgType.UPGRADE, pkt)
        if st is LineState.LV:
            if op is MsgType.READ:
                return self._serve_hit(line, cpu)
            # coherence localization: grant exclusivity without home traffic
            self._count_resolution(pkt, hit=True, line=line, cpu=cpu)
            self._invalidate_local(pkt.addr, line.proc_mask, keep=cpu)
            line.state = LineState.LI
            line.proc_mask = 1 << self._local_index(cpu)
            if self._cpu_has_copy(cpu, pkt.addr):
                self._grant_cpu(cpu, pkt.addr, None, exclusive=True)
                line.data = None
                return 0
            data = list(line.data) if line.data is not None else None
            if data is None:
                raise SimulationError(f"LV NC line {pkt.addr:#x} without data")
            line.data = None
            self._grant_cpu(cpu, pkt.addr, data, exclusive=True,
                            delay=self._nc_read_ticks())
            return self._nc_read_ticks()
        # LI: dirty in a local secondary cache
        owner_idx = line.proc_mask.bit_length() - 1
        if line.proc_mask == 0:
            raise SimulationError(f"NC LI line {pkt.addr:#x} with empty proc mask")
        exclusive = op is not MsgType.READ
        self._count_resolution(pkt, hit=True, line=line, cpu=cpu)
        line.locked = True
        line.pending = NCPending(
            kind="local_intervention", op=op, cpu=cpu, exclusive=exclusive
        )
        owner = self.station.cpus[owner_idx]
        self.out_port.send(
            0, self._cmd_ticks,
            lambda start, c=owner, a=pkt.addr, e=exclusive: c.handle_intervention(
                a, e, lambda data, a2=a: self._local_intervention_done(a2, data)
            ),
        )
        return 0

    def _start_fetch(self, line: NCLine, op: MsgType, pkt: Packet) -> int:
        cpu = pkt.requester
        self._count_resolution(pkt, hit=False, line=line, cpu=cpu)
        line.locked = True
        line.pending = NCPending(
            kind="fetch", op=op, cpu=cpu, first_issue=self.engine.now,
            phase=pkt.meta.get("phase"),
        )
        if pkt.meta.get("prefetch"):
            line.pending.cpu = None
            line.pending.op = MsgType.READ
        self._send_home(line.addr, op,
                        cpu, retry=False, prefetch=bool(pkt.meta.get("prefetch")),
                        phase=line.pending.phase)
        return 0

    def _serve_hit(self, line: NCLine, cpu: int) -> int:
        self._count_hit_kind(line, cpu)
        line.proc_mask |= 1 << self._local_index(cpu)
        data = list(line.data) if line.data is not None else None
        if data is None:
            raise SimulationError(f"NC hit on {line!r} without data")
        self._grant_cpu(cpu, line.addr, data, exclusive=False,
                        delay=self._nc_read_ticks())
        return self._nc_read_ticks()

    # ==================================================================
    # local write-backs (dirty L2 evictions of remote lines)
    # ==================================================================
    def _on_local_writeback(self, pkt: Packet) -> int:
        if not self.enabled:
            self._forward_wb_home(pkt.addr, pkt.data)
            return 0
        line = self.array.probe(pkt.addr)
        cpu = pkt.requester
        if line is not None and line.locked:
            p = line.pending
            if p is not None and p.kind in ("local_intervention", "intervention"):
                # the write-back crossed our bus intervention; use its data
                self._local_intervention_done(pkt.addr, pkt.data, from_wb=True)
                return self._nc_write_ticks()
            if p is not None and p.kind == "fetch":
                # stale WB racing a new fetch; push home so nothing is lost
                self._forward_wb_home(pkt.addr, pkt.data)
                return 0
        if line is not None:
            # normal case: LI -> LV (fig 6 LocalWrBack edge)
            line.data = list(pkt.data)
            line.state = LineState.LV
            if cpu is not None:
                line.proc_mask &= ~(1 << self._local_index(cpu))
            line.brought_by = cpu
            return self._nc_write_ticks()
        occupant = self.array.occupant(pkt.addr)
        if occupant is None:
            # re-adopt the line: home still believes this station owns it
            line = NCLine(
                addr=pkt.addr, state=LineState.LV, data=list(pkt.data),
                brought_by=cpu,
            )
            self.array.insert(line)
            return self._nc_write_ticks()
        # slot busy with another line: hand the data back to home memory
        self._forward_wb_home(pkt.addr, pkt.data)
        return 0

    # ==================================================================
    # responses from the network
    # ==================================================================
    def _on_data(self, pkt: Packet) -> int:
        if not self.enabled:
            return self._bypass_on_data(pkt)
        line = self.array.probe(pkt.addr)
        if line is None or not line.locked or line.pending is None:
            self.stats.counter("stray_data").incr()
            return 0
        p = line.pending
        p.data = list(pkt.data)
        p.data_exclusive = pkt.mtype is MsgType.DATA_RESP_EX
        p.inv_follows = bool(pkt.meta.get("inv_follows"))
        self._maybe_complete(line)
        return self._nc_write_ticks()

    def _on_nack(self, pkt: Packet) -> int:
        if not self.enabled:
            key = (pkt.addr, pkt.requester)
            p = self._bypass_pending.get(key)
            if p is not None:
                p.retries += 1
                self.engine.schedule(
                    self._retry_ticks,
                    lambda a=pkt.addr, c=pkt.requester, o=p.op, ph=p.phase:
                        self._send_home(a, o, c, retry=True, phase=ph),
                )
            return 0
        line = self.array.probe(pkt.addr)
        if line is None or not line.locked or line.pending is None:
            return 0
        p = line.pending
        p.retries += 1
        self.stats.counter("remote_retries").incr()
        # linear-capped backoff keeps NACK storms from flooding the rings
        self.engine.schedule(
            self._retry_ticks * min(p.retries, 8),
            lambda l=line: self._resend_fetch(l),
        )
        # the NACK carried no payload and is referenced by nothing past this
        # dispatch; recycle it (home memory draws its NACKs from the pool)
        from ..interconnect.packet import release_packet

        release_packet(pkt)
        return 0

    def _resend_fetch(self, line: NCLine) -> None:
        p = line.pending
        if p is None or p.kind != "fetch":
            return
        self._send_home(line.addr, p.op, p.cpu, retry=True,
                        prefetch=(p.cpu is None), phase=p.phase)

    def _on_invalidate(self, pkt: Packet) -> int:
        line = self.array.probe(pkt.addr) if self.enabled else None
        if not self.enabled:
            return self._bypass_on_invalidate(pkt)
        if line is None:
            # ejected from the NC: broadcast to all four processors (§2.3)
            self.stats.counter("invalidate_broadcasts").incr()
            self._invalidate_local_all(pkt.addr)
            return 0
        if line.locked and line.pending is not None and line.pending.kind == "fetch":
            p = line.pending
            ours = (
                pkt.meta.get("writer_station") == self.station_id
                and pkt.requester == p.cpu
                and p.op in (MsgType.READ_EX, MsgType.UPGRADE, MsgType.SPECIAL_READ)
            )
            if ours:
                p.inv_arrived = True
                self._invalidate_local(pkt.addr, line.proc_mask, keep=p.cpu)
                # ours implies a write op, so p.cpu is a real cpu id (prefetch
                # pendings are forced to READ)
                line.proc_mask &= 1 << self._local_index(p.cpu)
                self._maybe_complete(line)
            else:
                # someone else's write beat us: our copies are now stale
                p.copy_invalidated = True
                self._invalidate_local(pkt.addr, line.proc_mask, keep=None)
                line.proc_mask = 0
                line.data = None
            return 0
        if line.state is LineState.GV:
            self._invalidate_local(pkt.addr, line.proc_mask, keep=None)
            line.proc_mask = 0
            line.state = LineState.GI
            line.data = None
            self.stats.counter("invalidations_applied").incr()
            return 0
        if line.state in (LineState.LV, LineState.LI):
            # This station owns the line exclusively, so the home directory
            # is GI pointing here and cannot have issued a *current*
            # invalidation: this one is from an older write epoch, still in
            # flight when ownership moved.  Ignoring it is the only safe
            # action — applying it would destroy the current dirty data.
            self.stats.counter("invalidate_stale_owner").incr()
            return 0
        # GI: the inexact routing mask over-delivered; nothing to do (§2.3)
        self.stats.counter("invalidate_ignored_gi").incr()
        return 0

    # ==================================================================
    # fetch completion
    # ==================================================================
    def _maybe_complete(self, line: NCLine) -> None:
        p = line.pending
        if p is None or p.kind != "fetch":
            return
        op = p.op
        cfg = self.config
        if op is MsgType.READ:
            if p.data is None:
                return
            line.locked = False
            line.pending = None
            line.state = LineState.GV
            line.data = list(p.data)
            line.brought_by = p.cpu
            if p.cpu is not None:
                line.proc_mask = 1 << self._local_index(p.cpu)
                self._grant_cpu(p.cpu, line.addr, list(p.data), exclusive=False)
            else:
                line.proc_mask = 0
                self.stats.counter("prefetch_fills").incr()
            self.stats.counter("combined_requests").incr(len(p.combined))
            return
        if op in (MsgType.READ_EX, MsgType.SPECIAL_READ):
            if p.data is None:
                return
            if cfg.sc_locking and p.inv_follows and not p.inv_arrived:
                return
            line.locked = False
            line.pending = None
            line.state = LineState.LI
            line.data = None
            line.brought_by = p.cpu
            line.proc_mask = 1 << self._local_index(p.cpu)
            self._grant_cpu(p.cpu, line.addr, list(p.data), exclusive=True)
            self.stats.counter("combined_requests").incr(len(p.combined))
            return
        if op is MsgType.UPGRADE:
            if p.data is not None:
                # home fell back to sending data (stale-sharer path)
                if cfg.sc_locking and p.inv_follows and not p.inv_arrived:
                    return
                line.locked = False
                line.pending = None
                line.state = LineState.LI
                line.data = None
                line.brought_by = p.cpu
                line.proc_mask = 1 << self._local_index(p.cpu)
                self._grant_cpu(p.cpu, line.addr, list(p.data), exclusive=True)
                self.stats.counter("combined_requests").incr(len(p.combined))
                return
            if not p.inv_arrived:
                return
            # ack-only grant: do we still hold valid data anywhere? (§4.6)
            if not p.copy_invalidated and self._cpu_has_copy(p.cpu, line.addr):
                line.locked = False
                line.pending = None
                line.state = LineState.LI
                line.data = None
                line.brought_by = p.cpu
                line.proc_mask = 1 << self._local_index(p.cpu)
                self._grant_cpu(p.cpu, line.addr, None, exclusive=True)
                self.stats.counter("combined_requests").incr(len(p.combined))
                return
            if not p.copy_invalidated and line.data is not None:
                data = list(line.data)
                line.locked = False
                line.pending = None
                line.state = LineState.LI
                line.data = None
                line.brought_by = p.cpu
                line.proc_mask = 1 << self._local_index(p.cpu)
                self._grant_cpu(p.cpu, line.addr, data, exclusive=True)
                self.stats.counter("combined_requests").incr(len(p.combined))
                return
            # ownership granted but no valid data anywhere on the station:
            # the rare special read request of §4.6
            self.stats.counter("special_reads").incr()
            p.op = MsgType.SPECIAL_READ
            p.inv_arrived = False
            self._send_home(line.addr, MsgType.SPECIAL_READ, p.cpu,
                            retry=False, phase=p.phase)
            return


class NumachineProtocol(CoherenceProtocol):
    """The paper's hierarchical write-back invalidate protocol."""

    name = "numachine"
    memory_class = NumachineMemory
    nc_class = NumachineNC

    #: (pre, post) pairs illegal between two *unlocked* observations —
    #: a valid-global line can never silently become home-exclusive
    illegal_mem = frozenset(
        {(LineState.GV, LineState.LV), (LineState.GI, LineState.LV)}
    )
    illegal_nc = frozenset(
        {(LineState.GV, LineState.LV), (LineState.GI, LineState.LV)}
    )
    valid_nc_states = (LineState.LV, LineState.GV)
    conformance_invariants = (
        "legal-transition",
        "locked-liveness",
        "proc-mask-coverage",
        "routing-mask-coverage",
        "sc-blocking",
        "single-writer",
        "writer-reader-exclusion",
        "nonsink-priority",
    )

    # ------------------------------------------------------------------
    # checker mask policy (moved verbatim from verify.checker)
    # ------------------------------------------------------------------
    def check_mem_masks(self, checker, mem, la: int, entry, pkt: Optional[Packet]) -> None:
        state = entry.state
        where = f"mem@S{mem.station_id}"
        if state in self.valid_nc_states:  # LV or GV: memory's copy is valid
            checker._count("proc-mask-coverage")
            pend = checker._pending_inval.get((mem.station_id, la))
            mask = entry.proc_mask
            for i, cpu in enumerate(mem.station.cpus):
                line = cpu.l2.lookup(la, touch=False)
                if line is None or not line.state.readable:
                    continue
                if (mask >> i) & 1:
                    continue
                if pend is not None and cpu.cpu_id in pend:
                    continue
                checker._violate(
                    "proc-mask-coverage",
                    f"P{cpu.cpu_id} holds {line.state.value} but proc_mask "
                    f"{mask:#b} does not cover it",
                    la=la, where=where, pkt=pkt,
                )
        if state is LineState.GV:
            checker._count("routing-mask-coverage")
            for st in checker.machine.stations:
                if st.station_id == mem.station_id or not st.nc.enabled:
                    continue
                nline = st.nc.array.probe(la)
                if nline is None or nline.locked or nline.state not in self.valid_nc_states:
                    # a locked NC line is mid-transaction: its recorded state
                    # is not yet a stable claim the home mask must cover
                    continue
                if mem.directory.may_have_copy(entry, st.station_id):
                    continue
                if checker._inval_inflight.get((st.station_id, la)):
                    continue  # stale copy with its invalidation in flight
                checker._violate(
                    "routing-mask-coverage",
                    f"S{st.station_id} NC holds {nline.state.value} but the "
                    f"routing mask would not deliver an invalidation there",
                    la=la, where=where, pkt=pkt,
                )
        elif state is LineState.GI:
            checker._count("routing-mask-coverage")
            if mem.directory.sharer_mask(entry) == 0:
                checker._violate(
                    "routing-mask-coverage",
                    "GI line with an empty owner mask",
                    la=la, where=where, pkt=pkt,
                )

    def check_nc_masks(self, checker, nc, la: int, line, pkt: Optional[Packet]) -> None:
        if line.state not in self.valid_nc_states:
            return
        checker._count("proc-mask-coverage")
        pend = checker._pending_inval.get((nc.station_id, la))
        mask = line.proc_mask
        for i, cpu in enumerate(nc.station.cpus):
            l2 = cpu.l2.lookup(la, touch=False)
            if l2 is None or not l2.state.readable:
                continue
            if (mask >> i) & 1:
                continue
            if pend is not None and cpu.cpu_id in pend:
                continue
            checker._violate(
                "proc-mask-coverage",
                f"P{cpu.cpu_id} holds {l2.state.value} but NC proc_mask "
                f"{mask:#b} does not cover it",
                la=la, where=f"nc@S{nc.station_id}", pkt=pkt,
            )
