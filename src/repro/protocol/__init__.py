"""Pluggable coherence protocols.

The machine resolves a :class:`~repro.protocol.base.CoherenceProtocol`
plug-in once at construction (see :func:`resolve_protocol`) and the whole
stack — stations, invariant checker, elaborator, perf cache, fuzzer,
observability — reads it from ``machine.protocol`` / ``machine.protocol_name``.

Selection precedence: ``MachineConfig.protocol`` (when non-empty) over the
``NUMACHINE_PROTOCOL`` environment variable, default ``"numachine"``.

Registered plug-ins:

``numachine``
    The paper's two-level hierarchical write-back invalidate protocol
    (inexact routing masks, NACK-and-retry, ordered-multicast
    invalidation, full network-cache function).  The default.

``msi``
    A flat full-map MSI directory: the home tracks every sharer exactly
    in a global CPU bitmap, invalidations are exact, and the network
    cache is disabled (no combining/migration/caching).  The ablation
    baseline for "what does NUMAchine's protocol buy?".
"""

from __future__ import annotations

import os

from .base import CoherenceProtocol
from .msi_flat import MsiFlatProtocol
from .numachine import NumachineProtocol

PROTOCOLS: dict[str, CoherenceProtocol] = {
    p.name: p for p in (NumachineProtocol(), MsiFlatProtocol())
}

DEFAULT_PROTOCOL = "numachine"

__all__ = [
    "CoherenceProtocol",
    "PROTOCOLS",
    "DEFAULT_PROTOCOL",
    "get_protocol",
    "resolve_protocol_name",
    "resolve_protocol",
    "canonical_surface",
    "run_conformance",
]


def get_protocol(name: str) -> CoherenceProtocol:
    """Return the registered plug-in called ``name`` (case-insensitive)."""
    key = str(name).strip().lower()
    try:
        return PROTOCOLS[key]
    except KeyError:
        known = ", ".join(sorted(PROTOCOLS))
        raise ValueError(f"unknown coherence protocol {name!r} (known: {known})") from None


def resolve_protocol_name(config=None) -> str:
    """Resolve the active protocol name for ``config``.

    Precedence: ``config.protocol`` (non-empty) > ``NUMACHINE_PROTOCOL``
    environment variable > :data:`DEFAULT_PROTOCOL`.  The result is
    validated against the registry.
    """
    name = ""
    if config is not None:
        name = getattr(config, "protocol", "") or ""
    if not name:
        name = os.environ.get("NUMACHINE_PROTOCOL", "") or ""
    if not name:
        name = DEFAULT_PROTOCOL
    return get_protocol(name).name


def resolve_protocol(config=None) -> CoherenceProtocol:
    """Resolve and return the active plug-in for ``config``."""
    return get_protocol(resolve_protocol_name(config))


def canonical_surface(machine) -> dict:
    """The protocol-sensitive result surface of a finished run.

    This is what the default protocol's bit-identity tests (and
    ``bench_ablations --check``) pin against
    ``tests/data/protocol_fingerprints.json``: final simulated time,
    the hop-equivalent event count (invariant across transit-fusion
    modes and backends), every NC / memory counter that fired, resource
    utilizations and ring-interface delay means.  Wall-clock fields are
    deliberately excluded — the surface must be deterministic.
    """
    ec = machine.event_counts()
    return {
        "now": machine.engine.now,
        "hop_equivalent": ec["hop_equivalent"],
        "nc_stats": machine.nc_stats(),
        "memory_stats": machine.memory_stats(),
        "utilizations": machine.utilizations(),
        "ring_delays": machine.ring_interface_delays(),
    }


def run_conformance(name: str, nprocs: int = 16, *, workload=None):
    """Run the protocol's conformance suite: a canonical checked run.

    Builds a ``nprocs``-processor machine with protocol ``name``, attaches
    the runtime :class:`~repro.verify.checker.CoherenceChecker`, drives the
    hot-spot workload to completion, asserts quiescence, and requires every
    invariant the plug-in declares in ``conformance_invariants`` to have
    actually been exercised (checked at least once, not merely not
    violated).

    Returns the dict of per-invariant check counts.  Raises
    :class:`~repro.verify.checker.InvariantViolation` on any violation and
    :class:`AssertionError` if a declared invariant never fired.

    ``nprocs`` defaults to 16 because a single-station machine (P=4)
    never exercises the cross-station invariants.
    """
    # Lazy imports: repro.system.machine imports this package at module load.
    from ..system.config import MachineConfig
    from ..system.machine import Machine
    from ..verify.checker import CoherenceChecker
    from ..workloads.synthetic import HotSpot

    proto = get_protocol(name)
    config = MachineConfig.prototype()
    config.protocol = proto.name
    machine = Machine(config)
    checker = machine.attach_verifier(CoherenceChecker(max_locked_ticks=3_000_000))
    wl = workload if workload is not None else HotSpot(words=16, ops=40)
    wl.run(machine, nprocs=nprocs)
    checker.assert_quiescent()
    missing = [
        inv for inv in proto.conformance_invariants if not checker.checks.get(inv)
    ]
    if missing:
        raise AssertionError(
            f"protocol {proto.name!r}: declared conformance invariants never "
            f"exercised: {missing} (checks={checker.checks})"
        )
    return dict(checker.checks)
