"""The processor module (paper §3.1.1).

Models an R4400-class CPU: in-order, blocking on its single outstanding
memory request, with an on-chip primary cache (L1) and an external 1 MB
secondary cache (L2).  The external agent's FIFOs and formatting overhead
are folded into the fixed ``l2_miss_detect`` / ``cpu_fill`` latencies.

Execution is driven by a workload generator (see :mod:`repro.cpu.ops`).
Cache hits are resolved synchronously in batches of ``config.cpu_batch``
ops per scheduler event — the fast path that keeps simulation cost
proportional to misses.  An invalidation arriving mid-batch takes effect at
the next batch boundary (tens of CPU cycles), far below the protocol's
latency scale; tests that check sequential-consistency litmus outcomes run
with ``cpu_batch=1`` where batching cannot reorder anything.

The module also carries the interrupt register, the two (sense-alternating)
barrier registers, and the phase-identifier register of §3.2/§3.3.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..cache.base import CacheArray, CacheLine
from ..core.states import CacheState
from ..interconnect.packet import MsgType, Packet, next_pid
from ..sim.engine import Engine, SimulationError, ns_to_ticks
from ..sim.stats import StatGroup
from . import ops as O


class Processor:
    """One CPU + L1 + L2 + external agent."""

    def __init__(self, engine: Engine, config, cpu_id: int, station) -> None:
        self.engine = engine
        self.config = config
        self.cpu_id = cpu_id                      # global id
        self.station = station
        self.l1 = CacheArray(
            f"P{cpu_id}.l1", config.l1_size_bytes, config.line_bytes
        )
        self.l2 = CacheArray(
            f"P{cpu_id}.l2", config.l2_size_bytes, config.line_bytes
        )
        self.stats = StatGroup(f"P{cpu_id}")
        self.program = None
        self.finished_at: Optional[int] = None
        self.started = False
        self._resume_value: Any = None
        self._pending: Optional[dict] = None
        self._run: Optional[dict] = None          # active ReadRun/WriteRun
        self._request_start = 0
        # registers (§3.2)
        self.interrupt_reg = 0
        self.barrier_regs = [0, 0]                # sense-alternating pair
        self._barrier_wait: Optional[tuple] = None
        self.phase = 0
        self.on_finish: Optional[Callable[["Processor"], None]] = None
        self.on_interrupt: Optional[Callable[[int], None]] = None
        #: per-page software caching attributes accessor (set by Machine)
        self.page_attrs: Optional[Callable[[int], object]] = None
        #: transaction tracer (repro.obs), or None when tracing is off
        self.tracer = None
        #: invariant checker (repro.verify), or None when checking is off
        self.verifier = None
        # timing in ticks
        self._cpu = config.cpu_cycle_ticks
        self._l1_hit = config.l1_hit_cpu_cycles * self._cpu
        self._l2_hit = config.l2_hit_cpu_cycles * self._cpu
        self._miss_detect = ns_to_ticks(config.l2_miss_detect_ns)
        self._fill = ns_to_ticks(config.cpu_fill_ns)
        self._retry = config.nack_retry_cpu_cycles * self._cpu
        self._cmd_ticks = config.cmd_bus_ticks
        self._line_ticks = config.line_bus_ticks
        # hit-path address helpers and counters, bound once: these run for
        # every batched cache hit, not just for misses
        self._line_mask = config.line_bytes - 1
        self._word_bytes = config.word_bytes
        self._reads_ctr = self.stats.counter("reads")
        self._writes_ctr = self.stats.counter("writes")
        self._rmws_ctr = self.stats.counter("rmws")
        self._program_send = None
        # per-kind miss counters, created lazily on first use so the stat
        # group's contents match the original creation order exactly
        self._miss_ctrs: Dict[str, Any] = {}
        engine.blocked_watchers.append(self._blocked_reason)

    # ==================================================================
    # program control
    # ==================================================================
    def set_program(self, program) -> None:
        self.program = program
        self._program_send = getattr(program, "send", None)
        self.finished_at = None
        self.started = False
        self.engine.schedule(0, self._step)

    @property
    def done(self) -> bool:
        return self.finished_at is not None

    # ==================================================================
    # the execution loop
    # ==================================================================
    def _next_op(self):
        if not self.started:
            self.started = True
            return next(self.program)
        value, self._resume_value = self._resume_value, None
        send = self._program_send
        if send is None:
            # plain iterators are fine for programs that ignore read values
            return next(self.program)
        return send(value)

    def _finish(self, extra_ticks: int) -> None:
        self.finished_at = self.engine.now + extra_ticks
        if self.on_finish is not None:
            self.engine.schedule(extra_ticks, lambda: self.on_finish(self))

    def _step(self) -> None:
        if self.program is None or self.done:
            return
        cfg = self.config
        schedule = self.engine.schedule
        next_op = self._next_op
        try_read = self._try_read
        try_write = self._try_write
        Read, Write, Compute, AtomicRMW = O.Read, O.Write, O.Compute, O.AtomicRMW
        acc = 0
        run = self._run
        if run is not None:
            acc = self._advance_run(run, 0)
            if acc is None:
                return
        for _ in range(cfg.cpu_batch):
            try:
                op = next_op()
            except StopIteration:
                self._finish(acc)
                return
            cls = type(op)
            if cls is Read:
                hit, ticks, value = try_read(op.addr)
                if hit:
                    acc += ticks
                    self._resume_value = value
                    continue
                schedule(acc, self._issue, ("read", op.addr, None))
                return
            if cls is Write:
                hit, ticks = try_write(op.addr, op.value)
                if hit:
                    acc += ticks
                    continue
                schedule(acc, self._issue, ("write", op.addr, op.value))
                return
            if cls is Compute:
                acc += int(op.cycles * cfg.compute_scale) * self._cpu
                continue
            if cls is O.ReadRun:
                stride = op.stride or self._word_bytes
                run = self._run = {
                    "kind": "read", "addr": op.addr, "stride": stride,
                    "end": op.addr + op.count * stride,
                    "out": [], "values": None, "vi": 0, "awaiting": False,
                }
                acc = self._advance_run(run, acc)
                if acc is None:
                    return
                continue
            if cls is O.WriteRun:
                stride = op.stride or self._word_bytes
                vals = op.values
                run = self._run = {
                    "kind": "write", "addr": op.addr, "stride": stride,
                    "end": op.addr + len(vals) * stride,
                    "out": None, "values": vals, "vi": 0, "awaiting": False,
                }
                acc = self._advance_run(run, acc)
                if acc is None:
                    return
                continue
            if cls is AtomicRMW:
                hit, ticks, old = self._try_rmw(op.addr, op.fn)
                if hit:
                    acc += ticks
                    self._resume_value = old
                    continue
                schedule(acc, self._issue, ("rmw", op.addr, op.fn))
                return
            if cls is O.Barrier:
                schedule(acc, self._do_barrier, op)
                return
            if cls is O.Phase:
                self.phase = op.pid
                continue
            if cls is O.SoftOp:
                schedule(acc, self._do_softop, op)
                return
            raise SimulationError(f"unknown op {op!r} from program on P{self.cpu_id}")
        schedule(max(acc, 1), self._step)

    # ------------------------------------------------------------------
    # cache fast paths
    # ------------------------------------------------------------------
    def _word_index(self, addr: int) -> int:
        return (addr & self._line_mask) // self._word_bytes

    def _try_read(self, addr: int):
        la = addr & ~self._line_mask
        l1 = self.l1.lookup(la)
        line = self.l2.lookup(la)
        if line is not None and line.state.readable:
            self._reads_ctr.value += 1
            if l1 is not None:
                return True, self._l1_hit, line.data[(addr & self._line_mask) // self._word_bytes]
            self.l1.install(la, line.state, None)
            return True, self._l2_hit, line.data[(addr & self._line_mask) // self._word_bytes]
        return False, 0, None

    def _try_write(self, addr: int, value):
        la = addr & ~self._line_mask
        line = self.l2.lookup(la)
        if line is not None and line.state.writable:
            self._writes_ctr.value += 1
            l1 = self.l1.lookup(la)
            ticks = self._l1_hit if l1 is not None else self._l2_hit
            if l1 is None:
                self.l1.install(la, line.state, None)
            line.data[(addr & self._line_mask) // self._word_bytes] = value
            return True, ticks
        return False, 0

    def _try_rmw(self, addr: int, fn):
        la = addr & ~self._line_mask
        line = self.l2.lookup(la)
        if line is not None and line.state.writable:
            self._rmws_ctr.value += 1
            idx = (addr & self._line_mask) // self._word_bytes
            old = line.data[idx]
            line.data[idx] = fn(old)
            return True, self._l2_hit, old
        return False, 0, None

    # ------------------------------------------------------------------
    # hit-run batching (ReadRun / WriteRun)
    # ------------------------------------------------------------------
    def _advance_run(self, run: dict, acc: int):
        """Advance the active access run by whole cache lines.

        Hits are charged closed-form per line: the first touch pays the
        L1-or-L2 hit latency, every further word covered by the run pays an
        L1 hit — identical, tick for tick, to yielding the same accesses one
        op at a time, but at one Python iteration per line.  Counters and
        data movement also match the word-by-word loop exactly.

        Returns the accumulated tick count when the run completes; returns
        ``None`` when it suspended (a miss was issued through the normal
        miss path, or the per-event line budget ran out and a continuation
        was scheduled) — the caller must return immediately.
        """
        stride = run["stride"]
        wb = self._word_bytes
        if stride % wb:
            raise SimulationError(
                f"run stride {stride} is not a multiple of the word size"
            )
        addr = run["addr"]
        end = run["end"]
        read = run["kind"] == "read"
        if run["awaiting"]:
            # the word that missed was completed by the fill; consume it
            run["awaiting"] = False
            if read:
                run["out"].append(self._resume_value)
                self._resume_value = None
            else:
                run["vi"] += 1
            addr += stride
        lmask = self._line_mask
        l1 = self.l1
        l2 = self.l2
        l1_hit = self._l1_hit
        step = stride // wb
        # each line consumed in one iteration counts as one batched op
        budget = self.config.cpu_batch
        while addr < end:
            if budget <= 0:
                run["addr"] = addr
                self.engine.schedule(max(acc, 1), self._step)
                return None
            budget -= 1
            la = addr & ~lmask
            line = l2.lookup(la)
            if line is None or not (
                line.state.readable if read else line.state.writable
            ):
                run["addr"] = addr
                run["awaiting"] = True
                if read:
                    self.engine.schedule(acc, self._issue, ("read", addr, None))
                else:
                    self.engine.schedule(
                        acc, self._issue, ("write", addr, run["values"][run["vi"]])
                    )
                return None
            # accesses of this run that land on this line
            span = min(end, la + lmask + 1) - addr
            n = (span + stride - 1) // stride
            if l1.lookup(la) is not None:
                acc += n * l1_hit
            else:
                l1.install(la, line.state, None)
                acc += self._l2_hit + (n - 1) * l1_hit
            w0 = (addr & lmask) // wb
            data = line.data
            if read:
                self._reads_ctr.value += n
                if step == 1:
                    run["out"].extend(data[w0:w0 + n])
                else:
                    run["out"].extend(data[w0:w0 + (n - 1) * step + 1:step])
            else:
                self._writes_ctr.value += n
                vi = run["vi"]
                vals = run["values"]
                if step == 1:
                    data[w0:w0 + n] = vals[vi:vi + n]
                else:
                    data[w0:w0 + (n - 1) * step + 1:step] = vals[vi:vi + n]
                run["vi"] = vi + n
            addr += n * stride
        self._run = None
        if read:
            self._resume_value = run["out"]
        return acc

    # ------------------------------------------------------------------
    # miss path
    # ------------------------------------------------------------------
    def _issue(self, spec) -> None:
        kind, addr, payload = spec
        la = self.config.line_addr(addr)
        attrs = self.page_attrs(addr) if self.page_attrs is not None else None
        if attrs is not None and not attrs.cacheable:
            self._issue_uncached(kind, addr, payload)
            return
        self._pending = {
            "kind": kind,
            "addr": addr,
            "la": la,
            "payload": payload,
            "tries": 0,
            "exclusive_only": bool(attrs is not None and attrs.exclusive_only),
        }
        self._request_start = self.engine.now
        ctr = self._miss_ctrs.get(kind)
        if ctr is None:
            ctr = self._miss_ctrs[kind] = self.stats.counter(f"{kind}_misses")
        ctr.value += 1
        tr = self.tracer
        if tr is not None:
            tr.begin(self.cpu_id, kind, la, self.engine.now)
        v = self.verifier
        if v is not None:
            v.cpu_issue(self, la)
        self.engine.schedule(self._miss_detect, self._send_request)

    def _send_request(self) -> None:
        p = self._pending
        if p is None:
            return
        la = p["la"]
        line = self.l2.lookup(la, touch=False)
        kind = p["kind"]
        # the line may have arrived or changed while we waited; re-evaluate
        if kind == "read" and line is not None and line.state.readable:
            self._complete_locally()
            return
        if kind in ("write", "rmw") and line is not None and line.state.writable:
            self._complete_locally()
            return
        if kind == "read":
            # exclusive-only pages (§3.2 software-managed caching) never
            # take shared copies: a single cache owns the line at a time
            mtype = MsgType.READ_EX if p.get("exclusive_only") else MsgType.READ
        elif line is not None and line.state is CacheState.SHARED:
            mtype = MsgType.UPGRADE
        else:
            mtype = MsgType.READ_EX
        pkt = p.get("pkt")
        if pkt is None:
            pkt = Packet(
                mtype=mtype,
                addr=la,
                src_station=self.station.station_id,
                dest_mask=0,
                requester=self.cpu_id,
                meta={"local": True, "retry": False, "phase": self.phase},
            )
            p["pkt"] = pkt
        else:
            # NACKed and re-issued: the module dropped the previous attempt
            # synchronously (locked lines are never queued), so the same
            # packet object is safe to resend.  A fresh pid keeps every
            # network attempt distinguishable; the request type is
            # re-evaluated because the line may have turned SHARED meanwhile.
            pkt.mtype = mtype
            pkt.pid = next_pid()
            pkt.meta["retry"] = True
        target = self.station.module_for(la)
        tr = self.tracer
        if tr is not None:
            tr.stamp(self.cpu_id, "cpu.send", self.engine.now)
        self.station.bus.request(
            self._cmd_ticks, lambda start, t=target, k=pkt: t.handle(k)
        )

    def _complete_locally(self) -> None:
        """The miss resolved while queued (e.g. a fill raced ahead)."""
        p = self._pending
        self._pending = None
        tr = self.tracer
        if tr is not None:
            # no network transaction and no latency sample: drop the trace
            tr.abandon(self.cpu_id)
        v = self.verifier
        if v is not None:
            v.cpu_local_complete(self)
        la, addr = p["la"], p["addr"]
        line = self.l2.lookup(la)
        idx = self._word_index(addr)
        if p["kind"] == "read":
            self._resume_value = line.data[idx]
        elif p["kind"] == "write":
            line.data[idx] = p["payload"]
        else:
            old = line.data[idx]
            line.data[idx] = p["payload"](old)
            self._resume_value = old
        self.engine.schedule(self._l2_hit, self._step)

    # ------------------------------------------------------------------
    # responses from memory / network cache
    # ------------------------------------------------------------------
    def complete_fill(self, la: int, data: Optional[List], exclusive: bool) -> None:
        p = self._pending
        if p is None or p["la"] != la:
            # a grant we no longer wait for (e.g. duplicate); install data
            if data is not None:
                self._install(la, data, exclusive)
                v = self.verifier
                if v is not None:
                    v.cpu_fill(self, la, exclusive, consumed=False)
            return
        self._pending = None
        if data is None:
            # upgrade ack: promote the shared copy in place
            line = self.l2.lookup(la)
            if line is None or not line.state.readable:
                raise SimulationError(
                    f"P{self.cpu_id}: upgrade ack for {la:#x} without a copy"
                )
            line.state = CacheState.DIRTY
            l1 = self.l1.lookup(la, touch=False)
            if l1 is not None:
                l1.state = CacheState.DIRTY
        else:
            self._install(la, data, exclusive)
        v = self.verifier
        if v is not None:
            v.cpu_fill(self, la, exclusive, consumed=True)
        line = self.l2.lookup(la)
        addr, idx = p["addr"], self._word_index(p["addr"])
        if p["kind"] == "read":
            self._resume_value = line.data[idx]
        elif p["kind"] == "write":
            if not exclusive:
                raise SimulationError("write completed without exclusivity")
            line.data[idx] = p["payload"]
        else:  # rmw
            old = line.data[idx]
            line.data[idx] = p["payload"](old)
            self._resume_value = old
        # permission-only acks restart quickly; line fills pay the full
        # external-agent + cache-fill pipeline
        restart = self._fill if data is not None else 2 * self._cpu
        self.stats.accumulator(f"{p['kind']}_latency").add(
            self.engine.now + restart - self._request_start
        )
        tr = self.tracer
        if tr is not None:
            # closed at the same instant the latency accumulator samples, so
            # a trace's span-chain total equals the recorded latency exactly
            tr.finish(self.cpu_id, self.engine.now + restart)
        self.engine.schedule(restart, self._step)

    def _install(self, la: int, data: List, exclusive: bool) -> None:
        state = CacheState.DIRTY if exclusive else CacheState.SHARED
        victim = self.l2.install(la, state, list(data))
        self.l1.install(la, state, None)
        if victim is not None:
            self.l1.invalidate(victim.addr)
            if victim.state is CacheState.DIRTY:
                self._write_back(victim)

    def _write_back(self, victim: CacheLine) -> None:
        self.stats.counter("writebacks").incr()
        target = self.station.module_for(victim.addr)
        wb = Packet(
            mtype=MsgType.WRITE_BACK,
            addr=victim.addr,
            src_station=self.station.station_id,
            dest_mask=0,
            requester=self.cpu_id,
            data=list(victim.data),
            meta={"local": True},
        )
        self.station.bus.request(
            self._cmd_ticks + self._line_ticks,
            lambda start, t=target, k=wb: t.handle(k),
        )

    # ------------------------------------------------------------------
    # uncached word accesses (cacheable=False pages, §3.2)
    # ------------------------------------------------------------------
    def _issue_uncached(self, kind: str, addr: int, payload) -> None:
        self.stats.counter("uncached_ops").incr()
        home = self.config.home_station(addr)
        local = home == self.station.station_id
        if kind == "rmw":
            raise SimulationError("atomic RMW requires a cacheable page")
        if kind == "write":
            pkt = Packet(
                mtype=MsgType.WRITE_UNCACHED, addr=addr,
                src_station=self.station.station_id, dest_mask=0,
                requester=self.cpu_id, data=payload, meta={"local": local},
            )
            # posted write: the program continues as soon as it is sent
            self._dispatch_uncached(pkt, local, home)
            self.engine.schedule(self._cpu, self._step)
            return
        self._pending = {"kind": "ucread", "addr": addr, "la": None,
                         "payload": None, "tries": 0}
        self._request_start = self.engine.now
        pkt = Packet(
            mtype=MsgType.READ_UNCACHED, addr=addr,
            src_station=self.station.station_id, dest_mask=0,
            requester=self.cpu_id, meta={"local": local},
        )
        self._dispatch_uncached(pkt, local, home)

    def _dispatch_uncached(self, pkt: Packet, local: bool, home: int) -> None:
        if local:
            self.station.bus.request(
                self._cmd_ticks,
                lambda start, p=pkt: self.station.memory.handle(p),
            )
        else:
            pkt.dest_mask = self.station.codec.station_mask(home)
            self.station.bus.request(
                self._cmd_ticks,
                lambda start, p=pkt: self.station.ring_interface.send(p),
            )

    def complete_uncached(self, addr: int, value) -> None:
        p = self._pending
        if p is None or p["kind"] != "ucread" or p["addr"] != addr:
            return
        self._pending = None
        self._resume_value = value
        self.stats.accumulator("uncached_latency").add(
            self.engine.now - self._request_start
        )
        self.engine.schedule(2 * self._cpu, self._step)

    def nack_from_module(self, la: int) -> None:
        p = self._pending
        if p is None or p["la"] != la:
            return
        p["tries"] += 1
        self.stats.counter("retries").incr()
        tr = self.tracer
        if tr is not None:
            tr.retry(self.cpu_id, self.engine.now)
        self.engine.schedule(self._retry, self._send_request)

    # ------------------------------------------------------------------
    # coherence actions against this CPU's caches
    # ------------------------------------------------------------------
    def invalidate_line(self, la: int, only_shared: bool = False) -> None:
        v = self.verifier
        if v is not None:
            v.cpu_invalidated(self, la)
        if only_shared:
            line = self.l2.lookup(la, touch=False)
            if line is not None and line.state is CacheState.DIRTY:
                # a dirty copy means this processor owns the line; the
                # invalidation is from an older epoch (see the NC's
                # stale-owner rule) and must not destroy the data
                self.stats.counter("stale_invalidations_ignored").incr()
                return
        self.l1.invalidate(la)
        self.l2.invalidate(la)
        self.stats.counter("invalidations_received").incr()

    def handle_intervention(
        self, la: int, exclusive: bool, respond: Callable[[Optional[List]], None]
    ) -> None:
        """Memory/NC asks for this CPU's dirty copy.  Responds over the bus
        with the data (or None if the copy is gone — a write-back race)."""
        line = self.l2.lookup(la, touch=False)
        if line is None or line.state is not CacheState.DIRTY:
            respond(None)
            return
        data = list(line.data)
        if exclusive:
            self.invalidate_line(la)
        else:
            self.l2.downgrade(la)
            l1 = self.l1.lookup(la, touch=False)
            if l1 is not None:
                l1.state = CacheState.SHARED
        self.stats.counter("interventions").incr()
        # the CPU drives the data onto the bus
        self.station.bus.request(
            self._cmd_ticks + self._line_ticks,
            lambda start, d=data: respond(d),
        )

    # ------------------------------------------------------------------
    # barriers / interrupts (§3.2)
    # ------------------------------------------------------------------
    def _do_barrier(self, op: O.Barrier) -> None:
        sense = op.bid & 1
        full = 0
        for c in op.cpus:
            full |= 1 << c
        stations = sorted({c // self.config.cpus_per_station for c in op.cpus})
        pkt = Packet(
            mtype=MsgType.BARRIER_WRITE,
            addr=0,
            src_station=self.station.station_id,
            dest_mask=self.station.codec.combine(stations),
            requester=self.cpu_id,
            meta={"cpus": tuple(op.cpus), "bit": 1 << self.cpu_id, "sense": sense},
        )
        self._barrier_wait = (sense, full)
        self.stats.counter("barriers").incr()
        self.station.bus.request(
            self._cmd_ticks,
            lambda start, k=pkt: self.station.ring_interface.send(k),
        )
        self._check_barrier()

    def barrier_write(self, bit: int, sense: int) -> None:
        self.barrier_regs[sense] |= bit
        self._check_barrier()

    def _check_barrier(self) -> None:
        if self._barrier_wait is None:
            return
        sense, full = self._barrier_wait
        if self.barrier_regs[sense] & full == full:
            self.barrier_regs[sense] &= ~full
            self._barrier_wait = None
            # one cycle to notice the register (local spin, no traffic)
            self.engine.schedule(self._cpu, self._step)

    def raise_interrupt(self, bits: int) -> None:
        self.interrupt_reg |= bits
        if self.on_interrupt is not None:
            self.on_interrupt(bits)

    def read_interrupt_reg(self) -> int:
        """Reading clears the register (§3.2)."""
        v = self.interrupt_reg
        self.interrupt_reg = 0
        return v

    # ------------------------------------------------------------------
    def _do_softop(self, op: O.SoftOp) -> None:
        from ..softctl import ops as softops

        softops.cpu_softop(self, op)

    def resume(self, value: Any = None, delay: int = 0) -> None:
        """Used by softctl completions to restart the program."""
        self._resume_value = value
        self.engine.schedule(delay, self._step)

    def _blocked_reason(self) -> Optional[str]:
        if self.done or self.program is None:
            return None
        if self._pending is not None:
            return (
                f"P{self.cpu_id} blocked on {self._pending['kind']} "
                f"{self._pending['la']:#x}"
            )
        if self._barrier_wait is not None:
            return f"P{self.cpu_id} blocked at barrier"
        return None
