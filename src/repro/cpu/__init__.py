"""Processor modules: the generator-driven R4400 model and its ops."""

from .ops import AtomicRMW, Barrier, Compute, Phase, Read, ReadRun, SoftOp, Write, WriteRun
from .processor import Processor

__all__ = [
    "AtomicRMW",
    "Barrier",
    "Compute",
    "Phase",
    "Read",
    "ReadRun",
    "SoftOp",
    "Write",
    "WriteRun",
    "Processor",
]
