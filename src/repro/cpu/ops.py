"""Operations a workload program may yield to its processor.

Workloads are Python generators — the execution-driven front-end replacing
the paper's Mint/MIPS-binary combination.  A program yields one op at a
time; for :class:`Read` and :class:`AtomicRMW` the loaded / previous value
is sent back into the generator, so kernels can be real data-dependent
algorithms::

    def worker(ctx):
        v = yield Read(a.addr(i))
        yield Write(b.addr(i), v + 1)
        yield Barrier(0, ctx.all_cpus)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Tuple


@dataclass(frozen=True, slots=True)
class Read:
    """Load one word; the value is sent back into the generator."""

    addr: int


@dataclass(frozen=True, slots=True)
class Write:
    """Store one word."""

    addr: int
    value: Any


@dataclass(frozen=True, slots=True)
class ReadRun:
    """Load ``count`` words starting at ``addr``; the list of values is sent
    back into the generator.

    This is the *hit-run batching* op: the processor walks the run one cache
    line at a time and charges each line's worth of hits in a single
    closed-form time advance (first touch pays the L1-or-L2 hit cost, the
    rest of the line's words pay L1 hits), so a long run of hits costs one
    Python step per line instead of one generator round-trip per word.  A
    miss anywhere in the run suspends it, goes through the ordinary miss
    path, and the run resumes after the fill — misses, coherence traffic and
    per-op counters are exactly those of the equivalent word-by-word loop.

    ``stride`` is the byte distance between consecutive accesses; ``0``
    (default) means one word.  It must be a multiple of the word size.

    The addresses are computed arithmetically from ``addr``, so the run
    must cover a *physically contiguous* range — do not let a run straddle
    a region page boundary unless the backing pages are known adjacent
    (runs whose region offset is a multiple of the run's byte length never
    straddle, since the page size is a power of two).
    """

    addr: int
    count: int
    stride: int = 0


@dataclass(frozen=True, slots=True)
class WriteRun:
    """Store ``values`` to consecutive words starting at ``addr`` (same
    closed-form hit batching as :class:`ReadRun`)."""

    addr: int
    values: Tuple
    stride: int = 0


@dataclass(frozen=True, slots=True)
class AtomicRMW:
    """Atomic read-modify-write (LL/SC-style): the line is acquired
    exclusively, ``fn(old)`` is stored, and ``old`` is sent back.
    Used for spinlocks (test-and-set) and fetch-and-add counters."""

    addr: int
    fn: Callable[[Any], Any]


@dataclass(frozen=True, slots=True)
class Compute:
    """Local computation costing ``cycles`` CPU cycles (no memory traffic)."""

    cycles: int


@dataclass(frozen=True, slots=True)
class Barrier:
    """Hardware barrier over ``cpus`` (global ids) using the per-processor
    barrier registers and a multicast register write (§3.2)."""

    bid: int
    cpus: Tuple[int, ...]


@dataclass(frozen=True, slots=True)
class Phase:
    """Set the processor's phase-identifier register (monitoring, §3.3)."""

    pid: int


@dataclass(frozen=True, slots=True)
class SoftOp:
    """A system-software operation exposing low-level hardware control
    (§3.2): coherence bypass, kill/invalidate/writeback/prefetch, block
    operations, multicast updates, in-cache zero/copy."""

    kind: str
    args: dict = field(default_factory=dict)
