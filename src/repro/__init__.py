"""repro — a reproduction of *The NUMAchine Multiprocessor*.

A cycle-level behavioural simulator of the NUMAchine architecture:
hierarchical slotted rings with inexact routing masks, the two-level
LV/LI/GV/GI write-back/invalidate coherence protocol, per-station network
caches, sinkable/nonsinkable deadlock avoidance, monitoring hardware, and
the software-visible control surface of section 3.2 — plus SPLASH-2-like
workloads and the benches that regenerate every table and figure of the
paper's evaluation.
"""

from .cpu import AtomicRMW, Barrier, Compute, Phase, Read, ReadRun, SoftOp, Write, WriteRun
from .interconnect import Geometry, MsgType, Packet
from .obs import Observability
from .sim import DeadlockError, Engine, SimulationError
from .system import Machine, MachineConfig, RunResult

__version__ = "0.1.0"

__all__ = [
    "AtomicRMW",
    "Barrier",
    "Compute",
    "Phase",
    "Read",
    "ReadRun",
    "SoftOp",
    "Write",
    "WriteRun",
    "Geometry",
    "MsgType",
    "Packet",
    "DeadlockError",
    "Engine",
    "SimulationError",
    "Machine",
    "MachineConfig",
    "Observability",
    "RunResult",
]
