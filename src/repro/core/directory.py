"""Directory storage for memory modules and network caches (paper §2.3).

The two-level directory is:

* **network level** (home memory): a full directory of *routing masks* per
  cache line — which stations may hold copies.  Because masks OR together
  (inexactly), the per-line cost grows only logarithmically with machine
  size.
* **station level**: a *processor mask* per line — which local processors
  hold copies.  Memory modules keep processor masks for local processors;
  network caches keep them for lines cached from remote homes.

Entries also carry the L/G + V/I state and the lock bit.  The directory is
conceptually SRAM; here it is a dict from line address to
:class:`DirEntry`, created on first touch (untouched memory is LV with no
sharers).

An ``exact_sharers`` option replaces the OR-mask with a true station set —
the ablation used by ``bench_ablation_routing_masks`` to measure what the
paper's inexactness costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Set

from ..interconnect.routing import RoutingMaskCodec
from .states import LineState


@dataclass
class DirEntry:
    """One cache line's directory state.

    ``routing_mask`` is the network-level sharer encoding; when the owning
    module runs in *exact* mode, ``exact_stations`` carries the true set and
    the mask is derived from it on read.  ``pending`` holds the in-flight
    transaction record while the line is locked.
    """

    state: LineState
    routing_mask: int = 0
    proc_mask: int = 0
    locked: bool = False
    pending: Optional[Any] = None
    exact_stations: Optional[Set[int]] = None

    def __repr__(self) -> str:
        lock = "*" if self.locked else ""
        return (
            f"DirEntry({self.state.value}{lock} rmask={self.routing_mask:#b} "
            f"pmask={self.proc_mask:#b})"
        )


class Directory:
    """Per-module directory: line address -> :class:`DirEntry`."""

    def __init__(
        self,
        codec: RoutingMaskCodec,
        home_station: int,
        default_state: LineState,
        exact_sharers: bool = False,
    ) -> None:
        self.codec = codec
        self.home_station = home_station
        self.default_state = default_state
        self.exact_sharers = exact_sharers
        self._entries: Dict[int, DirEntry] = {}

    def entry(self, line_addr: int) -> DirEntry:
        e = self._entries.get(line_addr)
        if e is None:
            e = DirEntry(state=self.default_state)
            if self.exact_sharers:
                e.exact_stations = set()
            self._entries[line_addr] = e
        return e

    def peek(self, line_addr: int) -> Optional[DirEntry]:
        """Look without creating (tests / monitoring)."""
        return self._entries.get(line_addr)

    def drop(self, line_addr: int) -> None:
        self._entries.pop(line_addr, None)

    # ------------------------------------------------------------------
    # sharer-set operations, mask-encoded or exact
    # ------------------------------------------------------------------
    def add_station(self, entry: DirEntry, station_id: int) -> None:
        entry.routing_mask |= self.codec.station_mask(station_id)
        if entry.exact_stations is not None:
            entry.exact_stations.add(station_id)

    def set_station(self, entry: DirEntry, station_id: int) -> None:
        entry.routing_mask = self.codec.station_mask(station_id)
        if entry.exact_stations is not None:
            entry.exact_stations = {station_id}

    def clear_stations(self, entry: DirEntry) -> None:
        entry.routing_mask = 0
        if entry.exact_stations is not None:
            entry.exact_stations = set()

    def sharer_mask(self, entry: DirEntry) -> int:
        """The mask used to address sharers.  In exact mode this is the OR
        of exactly the true sharer stations (still mask-encoded for the ring,
        but never wider than the true set union — the per-line *storage* in
        exact mode is the full set, which is what the ablation costs out)."""
        if entry.exact_stations is not None:
            return self.codec.combine(entry.exact_stations)
        return entry.routing_mask

    def may_have_copy(self, entry: DirEntry, station_id: int) -> bool:
        """Would the directory route an invalidation to ``station_id``?
        Inexact masks can say yes for stations that hold nothing."""
        if entry.exact_stations is not None:
            return station_id in entry.exact_stations
        if entry.routing_mask == 0:
            return False
        return self.codec.selects(entry.routing_mask, station_id)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def lines(self):
        return self._entries.items()
