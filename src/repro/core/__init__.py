"""The paper's core contribution: coherence states and the two-level directory.

The protocol engines themselves live with their hardware:
:mod:`repro.memory.memory_module` (memory side, Fig. 5) and
:mod:`repro.cache.network_cache` (network-cache side, Fig. 6).
"""

from .directory import DirEntry, Directory
from .states import CacheState, LineState

__all__ = ["DirEntry", "Directory", "CacheState", "LineState"]
