"""Coherence state definitions (paper §2.3).

Memory modules and network caches keep four basic states per cache line,
encoded in hardware by a local/global (L/G) bit and a valid/invalid (V/I)
bit, each with a *locked* version used while the line undergoes a
transition:

``LV`` (local valid)
    valid copies exist only on this station; the memory (or NC) *and* the
    secondary caches named by the processor mask hold valid data.
``LI`` (local invalid)
    the only valid copy is dirty in exactly one local secondary cache
    (named by the processor mask).
``GV`` (global valid)
    the memory (or NC) holds a valid copy shared by several stations
    (named by the routing mask in the home directory).
``GI`` (global invalid)
    no valid copy on this station.  In the *home memory* GI additionally
    means a remote network cache (named by the routing mask) holds the
    line in LV or LI state.

Secondary (L2) caches use the standard write-back-invalidate three states.
The network cache has a fifth pseudo-state, ``NOT_IN`` (tag mismatch /
never cached), shown in Fig. 6 of the paper.
"""

from __future__ import annotations

import enum


class LineState(enum.Enum):
    """Directory state of a line in a memory module or network cache."""

    LV = "LV"
    LI = "LI"
    GV = "GV"
    GI = "GI"

    @property
    def is_local(self) -> bool:
        return self in (LineState.LV, LineState.LI)

    @property
    def is_valid(self) -> bool:
        """Whether the memory/NC itself holds valid data."""
        return self in (LineState.LV, LineState.GV)


class CacheState(enum.Enum):
    """Secondary-cache (L2) line state: write-back invalidate MSI."""

    INVALID = "I"
    SHARED = "S"
    DIRTY = "D"

    @property
    def readable(self) -> bool:
        return self is not CacheState.INVALID

    @property
    def writable(self) -> bool:
        return self is CacheState.DIRTY
