"""Coherence state definitions (paper §2.3).

Memory modules and network caches keep four basic states per cache line,
encoded in hardware by a local/global (L/G) bit and a valid/invalid (V/I)
bit, each with a *locked* version used while the line undergoes a
transition:

``LV`` (local valid)
    valid copies exist only on this station; the memory (or NC) *and* the
    secondary caches named by the processor mask hold valid data.
``LI`` (local invalid)
    the only valid copy is dirty in exactly one local secondary cache
    (named by the processor mask).
``GV`` (global valid)
    the memory (or NC) holds a valid copy shared by several stations
    (named by the routing mask in the home directory).
``GI`` (global invalid)
    no valid copy on this station.  In the *home memory* GI additionally
    means a remote network cache (named by the routing mask) holds the
    line in LV or LI state.

Secondary (L2) caches use the standard write-back-invalidate three states.
The network cache has a fifth pseudo-state, ``NOT_IN`` (tag mismatch /
never cached), shown in Fig. 6 of the paper.
"""

from __future__ import annotations

import enum


class LineState(enum.Enum):
    """Directory state of a line in a memory module or network cache.

    ``is_local`` / ``is_valid`` are precomputed member attributes (not
    properties): they are consulted on every directory action, and a plain
    attribute load is several times cheaper than a property call.
    """

    LV = "LV"
    LI = "LI"
    GV = "GV"
    GI = "GI"

    # identity hash (enum equality is identity); the default Enum.__hash__
    # is a Python-level function that shows up in dispatch-dict lookups
    __hash__ = object.__hash__


for _ls in LineState:
    _ls.is_local = _ls.value in ("LV", "LI")
    #: whether the memory/NC itself holds valid data
    _ls.is_valid = _ls.value in ("LV", "GV")


class CacheState(enum.Enum):
    """Secondary-cache (L2) line state: write-back invalidate MSI.

    ``readable`` / ``writable`` are precomputed member attributes, checked
    on every cache hit in the processor fast path.
    """

    INVALID = "I"
    SHARED = "S"
    DIRTY = "D"

    __hash__ = object.__hash__


for _cs in CacheState:
    _cs.readable = _cs.value != "I"
    _cs.writable = _cs.value == "D"
