"""Fig. 17: average utilization of the communication paths — station bus,
local rings, central ring — per workload.

The paper's reading: 'none of these components is likely to become a
performance bottleneck' (all averages below ~65%, with the bus highest and
the central ring lowest for most codes).
"""

from harness import max_procs, paper_note, print_series, run_points, sweep_point

from repro.workloads import FIG15_APPS

#: approximate bars from Fig. 17 (percent, 64 processors): bus / local / central
PAPER_FIG17 = {
    "barnes": (35, 10, 8), "radix": (65, 25, 20), "fft": (45, 18, 15),
    "lu_contig": (30, 10, 8), "ocean": (25, 8, 5), "water_nsq": (30, 12, 9),
}


def test_fig17_utilizations(benchmark):
    procs = max_procs()

    def run_all():
        records = run_points(
            [sweep_point(name, procs, spread=True) for name in FIG15_APPS]
        )
        return {r.workload: r.utilizations for r in records}

    utils = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [name, 100 * u["bus"], 100 * u["local_ring"], 100 * u["central_ring"]]
        for name, u in utils.items()
    ]
    print_series(
        f"Fig. 17: average utilization at P={procs} (percent)",
        ["workload", "bus", "local ring", "central ring"],
        rows,
    )
    for name in FIG15_APPS:
        b, l, c = PAPER_FIG17[name]
        paper_note(f"{name}: ~{b}/{l}/{c}% at 64 processors")

    for name, u in utils.items():
        # the paper's conclusion: no component saturates
        assert u["bus"] < 0.85, (name, u)
        assert u["local_ring"] < 0.85, (name, u)
        assert u["central_ring"] < 0.85, (name, u)
        # the bus sees all local traffic too, so it runs hottest
        assert u["bus"] >= u["local_ring"] * 0.5, (name, u)
    # real traffic flowed everywhere
    assert any(u["central_ring"] > 0.005 for u in utils.values())
