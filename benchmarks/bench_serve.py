"""Load generator and soak gate for the simulation job server.

Drives ``python -m repro.serve`` with closed-loop clients through four
phases and records per-phase latency histograms:

* **cold**  — N distinct points (fresh cache) pulled from a shared work
  queue: measures cold throughput and that batching keeps the pool busy.
* **hot**   — the same points requested round-robin for a duration:
  every answer should be a cache hit; this is the phase the hit-ratio
  and p99 gates apply to.
* **mixed** — hot traffic with a cold point injected every K requests:
  the realistic steady state of a shared lab server.
* **burst** — M simultaneous one-shot connections for one cached point:
  the "many concurrent cached readers" acceptance check.

By default the bench spawns its own server subprocess on a free port
with a fresh cache directory (so cold really is cold), SIGTERMs it at
the end and verifies the drain was clean; ``--port`` targets an already
running server instead (no lifecycle checks then).

Results land in ``BENCH_serve.json`` and a slim digest is appended to
``BENCH_history.jsonl`` with ``kind="serving"`` (ledger schema 4), so
serving performance is trended longitudinally alongside the simulation
benches.  Wall-clock gates are host-bound: the hard gates are *zero
5xx*, *zero hangs*, *clean drain* and *hot hit ratio ≥ --min-hit-ratio*;
the cached-p99 target (``--p99-ms``) is advisory off the recorded host,
exactly like the throughput baselines in ``bench_scale.py``.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py              # quick
    PYTHONPATH=src python benchmarks/bench_serve.py --soak 45    # CI soak
"""

from __future__ import annotations

import argparse
import asyncio
import itertools
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.perf import ledger
from repro.serve.client import HttpClient

RESULT_FILE = Path(__file__).resolve().parents[1] / "BENCH_serve.json"

#: bump when the result layout changes incompatibly
BENCH_SCHEMA = 1


def percentile(samples, p: float) -> float:
    if not samples:
        return 0.0
    xs = sorted(samples)
    idx = min(len(xs) - 1, max(0, round(p * (len(xs) - 1))))
    return xs[idx]


class PhaseStats:
    """Latency histogram and outcome counters for one phase."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.latencies_s = []
        self.statuses = {}
        self.sources = {}          # X-Cache: hit / coalesced / run
        self.retries_429 = 0
        self.hangs = 0
        self.errors = 0            # transport-level failures
        self.started = 0.0
        self.duration_s = 0.0

    def add(self, status: int, source, dt: float) -> None:
        self.latencies_s.append(dt)
        self.statuses[status] = self.statuses.get(status, 0) + 1
        if source:
            self.sources[source] = self.sources.get(source, 0) + 1

    @property
    def requests(self) -> int:
        return len(self.latencies_s)

    @property
    def errors_5xx(self) -> int:
        return sum(n for s, n in self.statuses.items() if s >= 500)

    def hit_ratio(self) -> float:
        answered = sum(
            n for s, n in self.statuses.items() if s == 200
        )
        return (self.sources.get("hit", 0) / answered) if answered else 0.0

    def summary(self) -> dict:
        ms = [dt * 1000.0 for dt in self.latencies_s]
        return {
            "requests": self.requests,
            "duration_s": round(self.duration_s, 3),
            "rps": round(self.requests / self.duration_s, 2)
            if self.duration_s else 0.0,
            "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
            "sources": dict(sorted(self.sources.items())),
            "hit_ratio": round(self.hit_ratio(), 4),
            "retries_429": self.retries_429,
            "hangs": self.hangs,
            "transport_errors": self.errors,
            "latency_ms": {
                "mean": round(sum(ms) / len(ms), 3) if ms else 0.0,
                "p50": round(percentile(ms, 0.50), 3),
                "p90": round(percentile(ms, 0.90), 3),
                "p99": round(percentile(ms, 0.99), 3),
                "max": round(max(ms), 3) if ms else 0.0,
            },
        }


# ----------------------------------------------------------------------
# request plan
# ----------------------------------------------------------------------
def point_specs(n: int, tag: str = "serve") -> list:
    """N distinct cheap points: tiny FFT/radix runs split over variants
    so every one is its own cache key."""
    specs = []
    for i in range(n):
        specs.append({
            "workload": "fft" if i % 2 == 0 else "radix",
            "nprocs": (1, 2, 4)[i % 3],
            "size": "test",
            "variant": f"{tag}-{i}",
        })
    return specs


async def _one_request(client, spec, stats, timeout_s):
    t0 = time.monotonic()
    try:
        status, headers, _body = await asyncio.wait_for(
            client.request_json("POST", "/run", spec), timeout_s
        )
    except asyncio.TimeoutError:
        stats.hangs += 1
        await client.close()
        return None
    except (OSError, asyncio.IncompleteReadError, ConnectionResetError):
        stats.errors += 1
        await client.close()
        return None
    stats.add(status, headers.get("x-cache"), time.monotonic() - t0)
    if status == 429:
        stats.retries_429 += 1
        retry = min(float(headers.get("retry-after", "1") or 1), 2.0)
        await asyncio.sleep(retry)
    return status


async def run_cold_phase(host, port, specs, clients, stats, timeout_s):
    """Pull distinct points off a shared queue until none remain."""
    queue = asyncio.Queue()
    for spec in specs:
        queue.put_nowait(spec)

    async def worker():
        client = HttpClient(host, port)
        while True:
            try:
                spec = queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            # keep retrying one point until it lands (429s back off)
            while True:
                status = await _one_request(client, spec, stats, timeout_s)
                if status is None or status < 500 and status != 429:
                    break
                if status >= 500:
                    break
        await client.close()

    stats.started = time.monotonic()
    await asyncio.gather(*[worker() for _ in range(min(clients, len(specs)))])
    stats.duration_s = time.monotonic() - stats.started


async def run_timed_phase(
    host, port, pick, clients, stats, duration_s, timeout_s
):
    """Closed-loop clients issuing ``pick()`` specs for a fixed duration."""
    stop = asyncio.get_running_loop().time() + duration_s

    async def worker():
        client = HttpClient(host, port)
        while asyncio.get_running_loop().time() < stop:
            await _one_request(client, pick(), stats, timeout_s)
        await client.close()

    stats.started = time.monotonic()
    await asyncio.gather(*[worker() for _ in range(clients)])
    stats.duration_s = time.monotonic() - stats.started


async def run_burst_phase(host, port, spec, n, stats, timeout_s):
    """N simultaneous one-shot connections for one (cached) point."""
    async def one():
        client = HttpClient(host, port)
        await _one_request(client, spec, stats, timeout_s)
        await client.close()

    stats.started = time.monotonic()
    await asyncio.gather(*[one() for _ in range(n)])
    stats.duration_s = time.monotonic() - stats.started


# ----------------------------------------------------------------------
# server lifecycle
# ----------------------------------------------------------------------
class SpawnedServer:
    """``python -m repro.serve`` as a child process, log captured."""

    def __init__(self, log_path: Path, cache_dir: str, workers=None) -> None:
        self.log_path = log_path
        env = dict(os.environ, NUMACHINE_CACHE_DIR=cache_dir)
        cmd = [sys.executable, "-m", "repro.serve", "--port", "0"]
        if workers:
            cmd += ["--workers", str(workers)]
        self.proc = subprocess.Popen(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        banner = self.proc.stdout.readline().strip()
        try:
            self.port = int(banner.rsplit(":", 1)[1])
        except (IndexError, ValueError):
            self.proc.kill()
            raise RuntimeError(f"server did not announce a port: {banner!r}")
        self._log = open(log_path, "w")
        self._log.write(banner + "\n")
        self._pump = threading.Thread(target=self._drain, daemon=True)
        self._pump.start()

    def _drain(self) -> None:
        for line in self.proc.stdout:
            self._log.write(line)
            self._log.flush()

    def stop(self, timeout: float = 90.0) -> int:
        """SIGTERM and wait; the exit code is the drain verdict (0=clean)."""
        self.proc.send_signal(signal.SIGTERM)
        try:
            code = self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            code = -9
        self._pump.join(timeout=5)
        self._log.close()
        return code


# ----------------------------------------------------------------------
async def run_bench(args, host: str, port: int) -> dict:
    specs = point_specs(args.cold_points)
    phases = {}

    cold = PhaseStats("cold")
    await run_cold_phase(host, port, specs, args.clients, cold,
                         args.timeout)
    phases["cold"] = cold.summary()
    print(f"[cold ] {cold.requests} requests in {cold.duration_s:.2f}s "
          f"({cold.summary()['rps']} rps, sources {cold.sources})")

    hot = PhaseStats("hot")
    cycle = itertools.cycle(specs)
    await run_timed_phase(host, port, lambda: next(cycle), args.clients,
                          hot, args.hot_seconds, args.timeout)
    phases["hot"] = hot.summary()
    print(f"[hot  ] {hot.requests} requests in {hot.duration_s:.2f}s "
          f"({phases['hot']['rps']} rps, hit ratio {hot.hit_ratio():.3f}, "
          f"p99 {phases['hot']['latency_ms']['p99']}ms)")

    mixed = PhaseStats("mixed")
    fresh = itertools.count()
    req = itertools.count()

    def pick_mixed():
        if next(req) % args.mixed_cold_every == 0:
            return point_specs(1, tag=f"mixed-{next(fresh)}")[0]
        return next(cycle)

    await run_timed_phase(host, port, pick_mixed, args.clients, mixed,
                          args.mixed_seconds, args.timeout)
    phases["mixed"] = mixed.summary()
    print(f"[mixed] {mixed.requests} requests in {mixed.duration_s:.2f}s "
          f"({phases['mixed']['rps']} rps, sources {mixed.sources})")

    burst = PhaseStats("burst")
    await run_burst_phase(host, port, specs[0], args.burst, burst,
                          args.timeout)
    phases["burst"] = burst.summary()
    print(f"[burst] {burst.requests} concurrent cached requests in "
          f"{burst.duration_s:.2f}s "
          f"(statuses {phases['burst']['statuses']})")

    client = HttpClient(host, port)
    _s, _h, server_stats = await client.request_json("GET", "/stats")
    await client.close()

    all_phases = [cold, hot, mixed, burst]
    return {
        "phases": phases,
        "server_stats": server_stats,
        "totals": {
            "requests": sum(p.requests for p in all_phases),
            "errors_5xx": sum(p.errors_5xx for p in all_phases),
            "hangs": sum(p.hangs for p in all_phases),
            "transport_errors": sum(p.errors for p in all_phases),
        },
        "_hot": hot,
    }


def evaluate_gates(result: dict, args, drain_code) -> dict:
    hot = result["phases"]["hot"]
    totals = result["totals"]
    gates = {
        "errors_5xx": totals["errors_5xx"],
        "hangs": totals["hangs"],
        "transport_errors": totals["transport_errors"],
        "hot_hit_ratio": hot["hit_ratio"],
        "min_hit_ratio": args.min_hit_ratio,
        "clean_drain": drain_code == 0 if drain_code is not None else None,
        "hot_p99_ms": hot["latency_ms"]["p99"],
        "p99_target_ms": args.p99_ms,
        "p99_within_target": hot["latency_ms"]["p99"] <= args.p99_ms,
    }
    hard_fail = (
        totals["errors_5xx"] > 0
        or totals["hangs"] > 0
        or totals["transport_errors"] > 0
        or hot["hit_ratio"] < args.min_hit_ratio
        or gates["clean_drain"] is False
    )
    gates["pass"] = not hard_fail
    return gates


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--soak", type=float, default=None, metavar="SECONDS",
                    help="total timed-phase budget; splits 60/40 across "
                    "hot/mixed (CI uses --soak 45)")
    ap.add_argument("--hot-seconds", type=float, default=5.0)
    ap.add_argument("--mixed-seconds", type=float, default=5.0)
    ap.add_argument("--clients", type=int, default=8,
                    help="closed-loop clients per phase (default 8)")
    ap.add_argument("--cold-points", type=int, default=16,
                    help="distinct points in the cold sweep (default 16)")
    ap.add_argument("--mixed-cold-every", type=int, default=25,
                    help="inject a fresh cold point every N mixed requests")
    ap.add_argument("--burst", type=int, default=200,
                    help="simultaneous one-shot cached requests (default "
                    "200; the acceptance soak uses 1000)")
    ap.add_argument("--timeout", type=float, default=120.0,
                    help="per-request hang timeout in seconds")
    ap.add_argument("--min-hit-ratio", type=float, default=0.95,
                    help="hard gate on the hot phase hit ratio")
    ap.add_argument("--p99-ms", type=float, default=50.0,
                    help="advisory cached-p99 target (host-bound)")
    ap.add_argument("--port", type=int, default=None,
                    help="target an already-running server instead of "
                    "spawning one (lifecycle gates skipped)")
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--workers", type=int, default=None,
                    help="worker processes for the spawned server")
    ap.add_argument("--server-log", default=None,
                    help="server log path (spawned mode; default "
                    "serve_soak.log next to --out)")
    ap.add_argument("--out", default=str(RESULT_FILE))
    ap.add_argument("--no-ledger", action="store_true")
    args = ap.parse_args(argv)

    if args.soak is not None:
        args.hot_seconds = args.soak * 0.6
        args.mixed_seconds = args.soak * 0.4

    out_path = Path(args.out)
    log_path = Path(args.server_log) if args.server_log else (
        out_path.parent / "serve_soak.log"
    )

    spawned, cache_dir, drain_code = None, None, None
    if args.port is None:
        cache_dir = tempfile.mkdtemp(prefix="numachine_serve_bench_")
        spawned = SpawnedServer(log_path, cache_dir, workers=args.workers)
        host, port = "127.0.0.1", spawned.port
        print(f"spawned server on port {port} (cache {cache_dir}, "
              f"log {log_path})")
    else:
        host, port = args.host, args.port

    try:
        result = asyncio.run(run_bench(args, host, port))
    finally:
        if spawned is not None:
            drain_code = spawned.stop()
            print(f"server drain exit code: {drain_code}")
        if cache_dir is not None:
            shutil.rmtree(cache_dir, ignore_errors=True)

    result.pop("_hot")
    gates = evaluate_gates(result, args, drain_code)
    payload = {
        "schema": BENCH_SCHEMA,
        "host": ledger.host_fingerprint(),
        "args": {
            "clients": args.clients, "cold_points": args.cold_points,
            "hot_seconds": args.hot_seconds,
            "mixed_seconds": args.mixed_seconds, "burst": args.burst,
        },
        **result,
        "gates": gates,
    }
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out_path}")

    if not args.no_ledger:
        hot = result["phases"]["hot"]
        ledger.append_entry("serve_soak", {
            "hot_rps": hot["rps"],
            "hot_hit_ratio": hot["hit_ratio"],
            "hot_p99_ms": hot["latency_ms"]["p99"],
            "cold_points": args.cold_points,
            "cold_rps": result["phases"]["cold"]["rps"],
            "burst": args.burst,
            "errors_5xx": result["totals"]["errors_5xx"],
            "clean_drain": gates["clean_drain"],
        }, kind="serving")

    if not gates["p99_within_target"]:
        print(f"ADVISORY: hot p99 {gates['hot_p99_ms']}ms over the "
              f"{args.p99_ms}ms target (host-bound; hard only on the "
              "recorded host)")
    if not gates["pass"]:
        print("FAIL: " + json.dumps(
            {k: v for k, v in gates.items() if k != "pass"}))
        return 1
    print(f"PASS: {result['totals']['requests']} requests, "
          f"0 5xx / 0 hangs, hot hit ratio {gates['hot_hit_ratio']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
