"""Fig. 14: parallel speedup for the SPLASH-2 applications.

Water-Spatial, Radiosity, Barnes, Water-Nsquared, Ocean, FMM and Raytrace
at the scaled Table 2 sizes.  The paper's headline: 'highly parallelizable
applications such as Barnes and Water show excellent speedups, as high as
57' (at 64 processors); the assertions require the same character — the
embarrassingly parallel apps near-linear, everything comfortably above 1.
"""

from harness import paper_note, print_series, proc_sweep, speedup_curves

from repro.workloads import FIG14_APPS, SUITE

#: approximate 64-processor speedups read off Fig. 14
PAPER_FIG14_64P = {
    "water_spatial": 57, "radiosity": 50, "barnes": 48, "water_nsq": 45,
    "ocean": 38, "fmm": 36, "raytrace": 30,
}


def test_fig14_app_speedups(benchmark):
    procs = proc_sweep()

    def run_all():
        return speedup_curves(FIG14_APPS, procs)

    curves = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [[name] + [curves[name][p] for p in procs] for name in FIG14_APPS]
    print_series(
        "Fig. 14: application parallel speedup (scaled problems)",
        ["application"] + [f"P={p}" for p in procs],
        rows,
    )
    for name in FIG14_APPS:
        paper_note(
            f"{name}: paper problem '{SUITE[name]['paper']}', "
            f"~{PAPER_FIG14_64P[name]}x at 64 processors"
        )

    top = procs[-1]
    for name in FIG14_APPS:
        assert curves[name][top] > 1.5, f"{name} barely scaled: {curves[name]}"
        # monotone-ish: the top-P point is the best or near-best
        best = max(curves[name].values())
        assert curves[name][top] >= 0.7 * best
    # the paper's 'excellent speedup' group stays near-linear
    for name in ("water_spatial", "raytrace", "fmm"):
        assert curves[name][top] > 0.55 * top, (name, curves[name])
