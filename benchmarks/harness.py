"""Shared harness for the paper-reproduction benches.

Every bench regenerates one table or figure from the paper's evaluation
(§4): it runs the scaled workloads on the prototype machine configuration,
prints the same rows/series the paper reports side by side with the
published values, and asserts the qualitative *shape* (who wins, rough
factors, orderings) rather than absolute numbers — our substrate is a
simulator with scaled problem sizes, not the authors' testbed.

Environment knobs:

* ``NUMACHINE_MAX_PROCS``  — top of the processor sweep (default 16;
  set 64 for the full prototype curves, at ~10x the wall time).
* ``NUMACHINE_SCALE``      — multiplies workload problem sizes.
* ``NUMACHINE_COMPUTE_SCALE`` — Compute-cycle multiplier restoring the
  paper's compute/communication balance at scaled-down problem sizes
  (default 32; documented in EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Tuple

from repro import Machine, MachineConfig
from repro.workloads import SUITE, make


def compute_scale() -> float:
    try:
        return float(os.environ.get("NUMACHINE_COMPUTE_SCALE", "32"))
    except ValueError:
        return 32.0


def max_procs() -> int:
    try:
        return int(os.environ.get("NUMACHINE_MAX_PROCS", "16"))
    except ValueError:
        return 16


def proc_sweep() -> List[int]:
    top = max_procs()
    out = []
    p = 1
    while p <= top:
        out.append(p)
        p *= 2
    return out


def bench_config(**overrides) -> MachineConfig:
    cfg = MachineConfig.prototype()
    cfg.compute_scale = compute_scale()
    for key, value in overrides.items():
        setattr(cfg, key, value)
    return cfg


def spread_cpus(config: MachineConfig, nprocs: int) -> List[int]:
    """``nprocs`` CPUs spread over the whole hierarchy: stations are taken
    evenly across all rings, filling each chosen station with pairs first —
    so both the intra-station sharing and the central-ring traffic of the
    paper's 64-processor runs appear at smaller processor counts."""
    per = config.cpus_per_station
    nstations = config.num_stations
    if nprocs >= nstations * 2:
        per_station = max(2, -(-nprocs // nstations))
        stations = list(range(nstations))
    else:
        per_station = 2 if nprocs >= 2 else 1
        count = max(1, nprocs // per_station)
        step = max(1, nstations // count)
        stations = list(range(0, nstations, step))[:count]
    cpus: List[int] = []
    for s in stations:
        for i in range(min(per_station, per)):
            if len(cpus) < nprocs:
                cpus.append(s * per + i)
    # top up from remaining slots if rounding left us short
    s = 0
    while len(cpus) < nprocs:
        for c in range(s * per, (s + 1) * per):
            if c not in cpus and len(cpus) < nprocs:
                cpus.append(c)
        s = (s + 1) % nstations
    return sorted(cpus)


def run_workload(
    name: str,
    nprocs: int,
    config: Optional[MachineConfig] = None,
    spread: bool = False,
) -> Tuple[Machine, float]:
    """Run one suite workload; returns (machine, parallel_time_ns)."""
    cfg = config or bench_config()
    machine = Machine(cfg)
    workload = make(name, "bench")
    if spread:
        result = workload.run(machine, cpus=spread_cpus(cfg, nprocs))
    else:
        result = workload.run(machine, nprocs=nprocs)
    return machine, result.parallel_time_ns


def speedup_curve(
    name: str, procs: Iterable[int], config_factory=bench_config
) -> Dict[int, float]:
    """Parallel speedup vs the workload's own single-processor run."""
    base = None
    out: Dict[int, float] = {}
    for p in procs:
        _m, t = run_workload(name, p, config_factory())
        if base is None:
            base = t
        out[p] = base / t
    return out


def print_series(title: str, header: List[str], rows: List[List]) -> None:
    print()
    print(f"== {title} ==")
    widths = [max(len(str(h)), 10) for h in header]
    print("  ".join(f"{h:>{w}}" for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(
            f"{(f'{v:.2f}' if isinstance(v, float) else str(v)):>{w}}"
            for v, w in zip(row, widths)
        ))


def paper_note(text: str) -> None:
    print(f"   [paper] {text}")
