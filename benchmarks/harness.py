"""Shared harness for the paper-reproduction benches.

Every bench regenerates one table or figure from the paper's evaluation
(§4): it runs the scaled workloads on the prototype machine configuration,
prints the same rows/series the paper reports side by side with the
published values, and asserts the qualitative *shape* (who wins, rough
factors, orderings) rather than absolute numbers — our substrate is a
simulator with scaled problem sizes, not the authors' testbed.

Runs go through :mod:`repro.perf`: each ``(workload, nprocs, config)``
point is memoized in the on-disk result cache and independent points fan
out across worker processes.

Environment knobs:

* ``NUMACHINE_MAX_PROCS``  — top of the processor sweep (default 16;
  set 64 for the full prototype curves, at ~10x the wall time).
* ``NUMACHINE_SCALE``      — multiplies workload problem sizes.
* ``NUMACHINE_COMPUTE_SCALE`` — Compute-cycle multiplier restoring the
  paper's compute/communication balance at scaled-down problem sizes
  (default 32; documented in EXPERIMENTS.md).
* ``NUMACHINE_JOBS``       — worker processes for independent sweep
  points (default 1: serial).
* ``NUMACHINE_CACHE`` / ``NUMACHINE_CACHE_DIR`` — result cache control
  (set ``NUMACHINE_CACHE=0`` to force fresh runs).
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, Iterable, List, Optional, Tuple

from repro import Machine, MachineConfig
from repro.perf import RunRecord, SweepPoint, run_sweep
from repro.workloads import make


def compute_scale() -> float:
    try:
        return float(os.environ.get("NUMACHINE_COMPUTE_SCALE", "32"))
    except ValueError:
        return 32.0


def max_procs() -> int:
    try:
        return int(os.environ.get("NUMACHINE_MAX_PROCS", "16"))
    except ValueError:
        return 16


def proc_sweep() -> List[int]:
    top = max_procs()
    out = []
    p = 1
    while p <= top:
        out.append(p)
        p *= 2
    return out


_CONFIG_FIELDS = frozenset(f.name for f in dataclasses.fields(MachineConfig))


def bench_config(**overrides) -> MachineConfig:
    cfg = MachineConfig.prototype()
    cfg.compute_scale = compute_scale()
    for key, value in overrides.items():
        if key not in _CONFIG_FIELDS:
            raise ValueError(
                f"unknown MachineConfig field {key!r}; valid fields: "
                f"{', '.join(sorted(_CONFIG_FIELDS))}"
            )
        setattr(cfg, key, value)
    return cfg


def spread_cpus(config: MachineConfig, nprocs: int) -> List[int]:
    """``nprocs`` CPUs spread over the whole hierarchy: stations are taken
    evenly across all rings, filling each chosen station with pairs first —
    so both the intra-station sharing and the central-ring traffic of the
    paper's 64-processor runs appear at smaller processor counts."""
    per = config.cpus_per_station
    nstations = config.num_stations
    if nprocs >= nstations * 2:
        per_station = max(2, -(-nprocs // nstations))
        stations = list(range(nstations))
    else:
        per_station = 2 if nprocs >= 2 else 1
        count = max(1, nprocs // per_station)
        step = max(1, nstations // count)
        stations = list(range(0, nstations, step))[:count]
    cpus: List[int] = []
    taken = set()  # membership mirror of `cpus`: keeps the top-up loop O(n)
    for s in stations:
        for i in range(min(per_station, per)):
            if len(cpus) < nprocs:
                c = s * per + i
                cpus.append(c)
                taken.add(c)
    # top up from remaining slots if rounding left us short
    s = 0
    while len(cpus) < nprocs:
        for c in range(s * per, (s + 1) * per):
            if c not in taken and len(cpus) < nprocs:
                cpus.append(c)
                taken.add(c)
        s = (s + 1) % nstations
    return sorted(cpus)


# ----------------------------------------------------------------------
# cached / parallel run entry points (repro.perf)
# ----------------------------------------------------------------------
def sweep_point(
    name: str,
    nprocs: int,
    config: Optional[MachineConfig] = None,
    spread: bool = False,
    variant: str = "",
) -> SweepPoint:
    cfg = config or bench_config()
    cpus: Tuple[int, ...] = ()
    if spread:
        cpus = tuple(spread_cpus(cfg, nprocs))
    return SweepPoint(
        workload=name, nprocs=nprocs, config=cfg, cpus=cpus, variant=variant
    )


def run_point(
    name: str,
    nprocs: int,
    config: Optional[MachineConfig] = None,
    spread: bool = False,
    variant: str = "",
) -> RunRecord:
    """Run one workload point (cached); returns its :class:`RunRecord`."""
    return run_sweep([sweep_point(name, nprocs, config, spread, variant)])[0]


def run_points(points: List[SweepPoint]) -> List[RunRecord]:
    """Run many independent points — parallel across ``NUMACHINE_JOBS``
    workers, memoized in the result cache, output order = input order."""
    return run_sweep(points)


def run_workload(
    name: str,
    nprocs: int,
    config: Optional[MachineConfig] = None,
    spread: bool = False,
) -> Tuple[Machine, float]:
    """Run one suite workload in-process; returns (machine, parallel_time_ns).

    The machine object is live (useful for ad-hoc inspection); benches that
    only need statistics should prefer :func:`run_point`, which caches.
    """
    cfg = config or bench_config()
    machine = Machine(cfg)
    workload = make(name, "bench")
    if spread:
        result = workload.run(machine, cpus=spread_cpus(cfg, nprocs))
    else:
        result = workload.run(machine, nprocs=nprocs)
    return machine, result.parallel_time_ns


def run_observed(
    name: str,
    nprocs: int,
    config: Optional[MachineConfig] = None,
    spread: bool = False,
    **obs_kwargs,
):
    """Run one suite workload in-process with the observability layer on.

    Returns ``(machine, obs, parallel_time_ns)``; never cached (tracing adds
    probe events, so observed runs must not share cache entries with plain
    ones).  ``obs_kwargs`` forward to :class:`repro.obs.Observability` —
    e.g. ``trace_capacity=`` or ``probe_period_ns=``."""
    from repro.obs import Observability

    cfg = config or bench_config()
    machine = Machine(cfg)
    obs = Observability(**obs_kwargs).attach(machine)
    workload = make(name, "bench")
    if spread:
        result = workload.run(machine, cpus=spread_cpus(cfg, nprocs))
    else:
        result = workload.run(machine, nprocs=nprocs)
    return machine, obs, result.parallel_time_ns


def speedup_curve(
    name: str, procs: Iterable[int], config_factory=bench_config
) -> Dict[int, float]:
    """Parallel speedup vs the workload's own single-processor run."""
    return speedup_curves([name], procs, config_factory)[name]


def speedup_curves(
    names: Iterable[str], procs: Iterable[int], config_factory=bench_config
) -> Dict[str, Dict[int, float]]:
    """Speedup curves for several workloads at once.

    The whole ``names x procs`` grid is submitted as one sweep, so with
    ``NUMACHINE_JOBS > 1`` every point runs concurrently and cached points
    are free."""
    names = list(names)
    procs = list(procs)
    points = [
        sweep_point(name, p, config_factory()) for name in names for p in procs
    ]
    records = run_sweep(points)
    out: Dict[str, Dict[int, float]] = {}
    i = 0
    for name in names:
        base = None
        curve: Dict[int, float] = {}
        for p in procs:
            t = records[i].parallel_time_ns
            i += 1
            if base is None:
                base = t
            curve[p] = base / t
        out[name] = curve
    return out


def print_series(title: str, header: List[str], rows: List[List]) -> None:
    print()
    print(f"== {title} ==")
    widths = [max(len(str(h)), 10) for h in header]
    print("  ".join(f"{h:>{w}}" for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(
            f"{(f'{v:.2f}' if isinstance(v, float) else str(v)):>{w}}"
            for v, w in zip(row, widths)
        ))


def paper_note(text: str) -> None:
    print(f"   [paper] {text}")
