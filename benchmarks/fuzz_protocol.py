#!/usr/bin/env python
"""Randomized protocol explorer: workloads x placements x fault plans x
schedulers, with the coherence invariant checker always on.

Each run derives *everything* from one integer seed — machine size,
workload and its parameters, CPU placement, event scheduler, and a
delay-class :class:`repro.fault.FaultPlan` — so any failure reproduces
from its seed alone:

    python benchmarks/fuzz_protocol.py --reproduce <seed>

Delay-class faults must never change results, so every run asserts
completion without an invariant violation, and runs of the commutative
counter workload additionally assert the analytically known final memory
values.  Failures (violation, watchdog dump, data mismatch) are written
to ``<out-dir>/fuzz_failures.json`` and the failing seeds printed.

Typical CI use: ``--seconds 30`` on PRs, ``--seconds 180 --sizes 4,16,64``
nightly.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
import traceback
from pathlib import Path
from typing import Sequence

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Machine, MachineConfig  # noqa: E402
from repro.cpu.ops import AtomicRMW, Compute  # noqa: E402
from repro.protocol import resolve_protocol_name  # noqa: E402
from repro.fault import FaultPlan, WatchdogError  # noqa: E402
from repro.verify import CoherenceChecker, InvariantViolation  # noqa: E402
from repro.workloads.base import BarrierFactory, SharedArray, Workload  # noqa: E402
from repro.workloads.synthetic import (  # noqa: E402
    HotSpot,
    ProducerConsumer,
    UniformAccess,
)

from harness import spread_cpus  # noqa: E402


class CounterStorm(Workload):
    """Commutative atomic increments: the final value of every counter is
    known analytically, whatever the interleaving — the data-integrity
    oracle for delay-class fault runs."""

    name = "counterstorm"

    def __init__(self, words: int = 8, incs: int = 30) -> None:
        super().__init__()
        self.words = words
        self.incs = incs

    def build(self, machine, cpus: Sequence[int]) -> None:
        self.barrier = BarrierFactory(cpus)
        self.arr = SharedArray(machine, self.words, name="ctr")

    def thread_program(self, tid: int, cpus: Sequence[int]):
        yield self.barrier(tid)
        for k in range(self.incs):
            yield AtomicRMW(self.arr.addr((tid + k) % self.words), lambda v: v + 1)
            yield Compute(4)
        yield self.barrier(tid)

    def expected(self, nprocs: int) -> list:
        # each cpu touches counters (tid+k) % words, incs times total
        totals = [0] * self.words
        for tid in range(nprocs):
            for k in range(self.incs):
                totals[(tid + k) % self.words] += 1
        return totals


def config_for(nprocs: int) -> MachineConfig:
    if nprocs <= 4:
        return MachineConfig.small(stations_per_ring=2, rings=1, cpus=2)
    if nprocs <= 16:
        return MachineConfig.small(stations_per_ring=2, rings=2, cpus=4)
    return MachineConfig.prototype()


def build_workload(rng: random.Random):
    pick = rng.randrange(4)
    if pick == 0:
        return HotSpot(
            words=rng.choice([16, 64]),
            ops=rng.choice([40, 80]),
            hot_station=rng.randrange(2),
        )
    if pick == 1:
        return UniformAccess(
            words=rng.choice([256, 1024]),
            ops=rng.choice([60, 120]),
            read_frac=rng.choice([0.5, 0.8]),
        )
    if pick == 2:
        return ProducerConsumer(rounds=rng.choice([4, 8]), payload=4)
    return CounterStorm(words=rng.choice([4, 8, 16]), incs=rng.choice([20, 40]))


def fuzz_one(seed: int, sizes: Sequence[int], verbose: bool = False) -> dict:
    """Run one fully seeded scenario; returns a result record."""
    rng = random.Random(seed)
    nprocs = rng.choice(list(sizes))
    cfg = config_for(nprocs)
    nprocs = min(nprocs, cfg.num_cpus)
    workload = build_workload(rng)
    scheduler = rng.choice(["heap", "calendar"])
    spread = rng.random() < 0.5
    plan = FaultPlan.random(
        rng.randrange(1 << 30), cfg, horizon_ns=40_000.0, allow_loss=False
    )
    record = {
        "seed": seed,
        "nprocs": nprocs,
        "workload": workload.name,
        "protocol": resolve_protocol_name(cfg),
        "scheduler": scheduler,
        "spread": spread,
        "plan": plan.describe(),
    }
    if verbose:
        print(json.dumps(record, indent=2))

    prev = os.environ.get("NUMACHINE_SCHED")
    os.environ["NUMACHINE_SCHED"] = scheduler
    try:
        machine = Machine(cfg)
    finally:
        if prev is None:
            os.environ.pop("NUMACHINE_SCHED", None)
        else:
            os.environ["NUMACHINE_SCHED"] = prev

    # a single hot-line transaction can legitimately stay locked across a
    # long NACK-retry chain under high contention; scale the liveness
    # bound with the processor count so P=64 storms don't false-positive
    verifier = machine.attach_verifier(
        CoherenceChecker(max_locked_ticks=3_000_000 * max(1, nprocs // 4))
    )
    verifier.set_seed(seed)
    machine.attach_watchdog(max_ticks=500_000_000, interval=50_000)
    machine.attach_fault(plan)
    try:
        if spread:
            workload.run(machine, cpus=spread_cpus(cfg, nprocs))
        else:
            workload.run(machine, nprocs=nprocs)
        if isinstance(workload, CounterStorm):
            machine.flush_all_dirty()
            got = [machine.read_word(workload.arr.addr(i))
                   for i in range(workload.words)]
            want = workload.expected(nprocs)
            if got != want:
                raise AssertionError(
                    f"data mismatch under delay-class faults: {got} != {want}"
                )
        record["ok"] = True
        record["events"] = machine.engine.events_run
        record["checks"] = sum(verifier.checks.values())
    except (InvariantViolation, WatchdogError, AssertionError, Exception) as exc:
        record["ok"] = False
        record["error_type"] = type(exc).__name__
        record["error"] = str(exc)
        if not isinstance(exc, (InvariantViolation, WatchdogError, AssertionError)):
            record["traceback"] = traceback.format_exc()
    return record


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--seconds", type=float, default=30.0,
                    help="wall-clock budget (default 30)")
    ap.add_argument("--seed", type=int, default=0,
                    help="first seed of the sweep (default 0)")
    ap.add_argument("--sizes", default="4,16",
                    help="comma-separated processor counts (default 4,16)")
    ap.add_argument("--max-runs", type=int, default=None,
                    help="stop after N runs even if time remains")
    ap.add_argument("--reproduce", type=int, default=None, metavar="SEED",
                    help="run exactly one seed, verbosely, and exit")
    ap.add_argument("--out-dir", default="out",
                    help="where failure artifacts are written (default out/)")
    args = ap.parse_args(argv)
    sizes = [int(s) for s in args.sizes.split(",") if s]

    if args.reproduce is not None:
        record = fuzz_one(args.reproduce, sizes, verbose=True)
        print(json.dumps({k: v for k, v in record.items() if k != "plan"},
                         indent=2, default=str))
        return 0 if record["ok"] else 1

    deadline = time.monotonic() + args.seconds
    failures = []
    runs = 0
    seed = args.seed
    while time.monotonic() < deadline:
        if args.max_runs is not None and runs >= args.max_runs:
            break
        record = fuzz_one(seed, sizes)
        runs += 1
        if not record["ok"]:
            failures.append(record)
            print(f"FAIL seed={seed}: {record['error_type']}: "
                  f"{record['error'].splitlines()[0][:120]}")
        seed += 1

    print(f"fuzz: {runs} runs, {len(failures)} failures "
          f"(seeds {args.seed}..{seed - 1}, sizes {sizes})")
    if failures:
        out = Path(args.out_dir)
        out.mkdir(parents=True, exist_ok=True)
        path = out / "fuzz_failures.json"
        path.write_text(json.dumps(failures, indent=2, default=str))
        print(f"failing seeds: {[f['seed'] for f in failures]}")
        print(f"artifacts: {path}")
        print(f"reproduce with: python benchmarks/fuzz_protocol.py "
              f"--reproduce {failures[0]['seed']} --sizes {args.sizes}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
