"""Fig. 18: average ring-interface delays.

(a) the local ring interfaces: the upward ('send') path and the downward
paths, sinkable vs nonsinkable — the paper highlights that downward
nonsinkable delays are the largest (they queue behind prioritized sinkable
traffic); (b) the inter-ring interface delay between local and central
rings, which stays small.

All values in ring-clock cycles, as the paper plots them.
"""

from harness import max_procs, paper_note, print_series, run_points, sweep_point

from repro.workloads import FIG15_APPS

#: approximate Fig. 18a/b values at 64 processors (cycles):
#: (send, down sinkable, down nonsinkable, central/IRI up)
PAPER_FIG18 = {
    "barnes": (2, 8, 20, 3), "radix": (5, 15, 35, 8), "fft": (3, 10, 25, 5),
    "lu_contig": (2, 8, 18, 3), "ocean": (2, 7, 15, 2), "water_nsq": (2, 8, 18, 3),
}


def test_fig18_ring_interface_delays(benchmark):
    procs = max_procs()

    def run_all():
        records = run_points(
            [sweep_point(name, procs, spread=True) for name in FIG15_APPS]
        )
        return {r.workload: r.ring_delays for r in records}

    delays = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [name, d["send"], d["down_sinkable"], d["down_nonsinkable"],
         d.get("iri_up", 0.0), d.get("iri_down", 0.0)]
        for name, d in delays.items()
    ]
    print_series(
        f"Fig. 18: ring interface delays at P={procs} (ring cycles)",
        ["workload", "send", "down sink", "down nonsink", "iri up", "iri down"],
        rows,
    )
    for name in FIG15_APPS:
        s, ds, dn, iri = PAPER_FIG18[name]
        paper_note(f"{name}: ~{s}/{ds}/{dn} cyc local, ~{iri} cyc central")

    for name, d in delays.items():
        # the paper's observations: the send path is short ...
        assert d["send"] < 20, (name, d)
        # ... and the downward nonsinkable path is the longest of the three
        assert d["down_nonsinkable"] >= d["down_sinkable"] * 0.6, (name, d)
        # inter-ring interfaces add only a few cycles
        assert d.get("iri_up", 0.0) < 30, (name, d)
