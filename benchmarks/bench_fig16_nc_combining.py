"""Fig. 16: network cache combining rate — the fraction of requests masked
out because a fetch of the same line was already in flight (NACK + local
retry satisfied by the arriving response).
"""

from harness import max_procs, paper_note, print_series, run_points, sweep_point

from repro.workloads import FIG15_APPS

#: approximate bar heights read off Fig. 16 (percent, 64 processors)
PAPER_FIG16 = {
    "barnes": 45, "radix": 5, "fft": 7, "lu_contig": 12, "ocean": 10,
    "water_nsq": 30,
}


def test_fig16_network_cache_combining(benchmark):
    procs = max_procs()

    def run_all():
        records = run_points(
            [sweep_point(name, procs, spread=True) for name in FIG15_APPS]
        )
        return {
            r.workload: {"combining": r.nc_combining_rate, "stats": r.nc_stats}
            for r in records
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [name, 100 * r["combining"], r["stats"].get("combined_requests", 0)]
        for name, r in results.items()
    ]
    print_series(
        f"Fig. 16: NC combining rate at P={procs}",
        ["workload", "rate %", "combined"],
        rows,
    )
    for name in FIG15_APPS:
        paper_note(f"{name}: ~{PAPER_FIG16[name]}% at 64 processors")

    for name, r in results.items():
        assert 0.0 <= r["combining"] <= 1.0
    # combining exists where processors genuinely co-miss (the sharing-heavy
    # workloads), and the overall picture is non-trivial
    combined_total = sum(
        r["stats"].get("combined_requests", 0) for r in results.values()
    )
    assert combined_total > 0, "no combining observed anywhere"
