"""Table 1: contention-free request latencies.

Reproduces all nine cells (local / remote-same-ring / remote-different-ring
x read / upgrade / intervention) on an idle prototype machine and prints
them side by side with the paper's nanosecond and CPU-cycle values.
"""

import pytest

from repro.analysis.latency import (
    PAPER_TABLE1,
    SCENARIOS,
    measure_table1,
    render_table1,
)
from repro.system.config import MachineConfig


def test_table1_contention_free_latencies(benchmark):
    measured = benchmark.pedantic(measure_table1, rounds=1, iterations=1)

    print()
    print("== Table 1: contention-free request latencies ==")
    print(render_table1(measured, MachineConfig.prototype()))
    cpu_ns = MachineConfig.prototype().cpu_clock_ns
    print(f"(CPU cycles at 150 MHz: divide ns by {cpu_ns:.2f})")

    # every cell within 15% of the paper
    for key in SCENARIOS:
        paper_ns, _ = PAPER_TABLE1[key]
        assert measured[key] == pytest.approx(paper_ns, rel=0.15), key

    # orderings: local < same ring < different ring; upgrade cheapest
    for kind in ("read", "upgrade", "intervention"):
        assert (
            measured[("local", kind)]
            < measured[("remote_same_ring", kind)]
            < measured[("remote_diff_ring", kind)]
        )
    for loc in ("local", "remote_same_ring", "remote_diff_ring"):
        assert measured[(loc, "upgrade")] < measured[(loc, "read")]
