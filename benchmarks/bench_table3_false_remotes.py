"""Table 3 and the §4.6 protocol-corner measurements.

Table 3: the percentage of local NC requests that become *false remote*
requests (NC ejected its directory info while an L2 still held the line
dirty; the home bounces the request straight back).  Paper: under 1% for
every application, <<0.01% for most.

§4.6 also reports that the optimistic upgrade assumption failed only ~4
times over hundreds of millions of requests — we assert the same rarity for
special reads, proportionally.
"""

from harness import max_procs, paper_note, print_series, run_points, sweep_point


PAPER_TABLE3 = {
    "cholesky": 0.5, "fmm": 1.0, "ocean": 0.3, "radiosity": 0.2,
    "radix": 0.5,   # '< x %' bounds from the table; all others << 0.01
}

WORKLOADS = ["cholesky", "fmm", "ocean", "radiosity", "radix",
             "barnes", "fft", "lu_contig", "water_nsq"]


def test_table3_false_remote_rates(benchmark):
    procs = max_procs()

    def run_all():
        records = run_points(
            [sweep_point(name, procs, spread=True) for name in WORKLOADS]
        )
        return {
            r.workload: {
                "false_remote_pct": 100 * r.false_remote_rate,
                "special_reads": r.special_reads,
                "requests": r.nc_stats.get("requests", 0),
            }
            for r in records
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [name, r["false_remote_pct"], r["special_reads"], r["requests"]]
        for name, r in results.items()
    ]
    print_series(
        f"Table 3: false remote requests at P={procs}",
        ["workload", "false rem %", "special rds", "NC requests"],
        rows,
    )
    for name, bound in PAPER_TABLE3.items():
        paper_note(f"{name}: paper bound < {bound}%")
    paper_note("all others << 0.01%; ~4 special reads in hundreds of millions")

    for name, r in results.items():
        # the paper's conclusion: false remotes are rare enough not to
        # matter; we allow a little slack for the scaled-down caches
        assert r["false_remote_pct"] < 3.0, (name, r)
        # optimistic upgrades essentially never need the special read
        assert r["special_reads"] <= max(2, r["requests"] // 1000), (name, r)
    total_requests = sum(r["requests"] for r in results.values())
    total_special = sum(r["special_reads"] for r in results.values())
    assert total_special <= max(5, total_requests // 1000)
