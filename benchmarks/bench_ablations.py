"""Ablations for the design choices DESIGN.md calls out.

Each compares the prototype configuration against a machine with one
mechanism disabled or substituted, over a fixed mixed workload set:

* **sc_locking** — §2.3's claim: enforcing sequential consistency by
  holding write data until the ordered invalidation returns costs only
  ~2% overall ("only a 2% difference in overall performance was noted").
* **network cache** — remove the NC (DASH-RAC-style passthrough): remote
  sharing gets dramatically more expensive.
* **routing masks** — exact per-line station sets instead of the paper's
  inexact OR-masks: measures the traffic the imprecision adds (small) vs
  the directory bits it saves (large).
* **optimistic upgrade** — always sending data with upgrade grants wastes
  bandwidth for no latency win.
* **ring hierarchy** — the 4x4 two-level hierarchy vs one flat 16-station
  ring with the same processor count.
* **coherence protocol** — the full NUMAchine protocol vs the flat
  full-map MSI baseline (``config.protocol = "msi"``: exact global sharer
  map, network cache bypassed) — what do the hierarchical masks and the
  NC buy, end to end?

Besides the pytest-benchmark entry points, this file is an executable:

    python benchmarks/bench_ablations.py [--procs 16,64]   # protocol table
    python benchmarks/bench_ablations.py --check           # fingerprint gate

``--check`` re-runs every point of ``tests/data/protocol_fingerprints.json``
and asserts the default protocol's canonical surface is bit-identical —
the same gate ``tests/test_protocols.py`` applies, available to CI steps
that do not run the test suite.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from harness import bench_config, paper_note, print_series, run_workload

from repro.interconnect.routing import Geometry

#: a mixed set covering sharing-heavy, all-to-all and locality-friendly
WORKLOADS = ["fft", "ocean", "water_nsq", "barnes"]
PROCS = 16


def _total_time(config_factory) -> float:
    total = 0.0
    for name in WORKLOADS:
        # spread across the hierarchy so ring-level mechanisms are in play
        _m, t = run_workload(name, PROCS, config_factory(), spread=True)
        total += t
    return total


def test_ablation_sc_locking(benchmark):
    def run():
        return {
            "locked": _total_time(lambda: bench_config(sc_locking=True)),
            "unlocked": _total_time(lambda: bench_config(sc_locking=False)),
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    overhead = r["locked"] / r["unlocked"] - 1
    print_series(
        "Ablation: sequential-consistency locking",
        ["config", "total us"],
        [["sc locking", r["locked"] / 1e3], ["no locking", r["unlocked"] / 1e3],
         ["overhead %", 100 * overhead]],
    )
    paper_note("'only a 2% difference in overall performance was noted'")
    # same sign and magnitude class as the paper: a small, single-digit cost
    assert -0.02 <= overhead <= 0.10, overhead


def test_ablation_network_cache(benchmark):
    def run():
        return {
            "with_nc": _total_time(lambda: bench_config(nc_enabled=True)),
            "without_nc": _total_time(lambda: bench_config(nc_enabled=False)),
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    slowdown = r["without_nc"] / r["with_nc"]
    print_series(
        "Ablation: network cache removed",
        ["config", "total us"],
        [["with NC", r["with_nc"] / 1e3], ["without NC", r["without_nc"] / 1e3],
         ["slowdown x", slowdown]],
    )
    paper_note("the NC's migration/caching/combining effects motivate §3.1.4")
    assert slowdown > 1.0, "removing the network cache should hurt"


def test_ablation_routing_masks(benchmark):
    def run():
        out = {}
        for mode, exact in (("inexact", False), ("exact", True)):
            total = 0.0
            invs = 0
            ignored = 0
            for name in WORKLOADS:
                machine, t = run_workload(
                    name, PROCS, bench_config(exact_sharers=exact), spread=True
                )
                total += t
                invs += machine.memory_stats().get("invalidates_sent", 0)
                ignored += machine.nc_stats().get("invalidate_ignored_gi", 0)
            out[mode] = {"time": total, "invs": invs, "ignored": ignored}
        return out

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series(
        "Ablation: inexact OR-masks vs exact station sets",
        ["config", "total us", "invalidations", "ignored (over-delivered)"],
        [[mode, v["time"] / 1e3, v["invs"], v["ignored"]] for mode, v in r.items()],
    )
    paper_note("'the extra traffic ... is small and represents a good tradeoff'")
    # the paper's claim: imprecision costs little time ...
    assert r["inexact"]["time"] <= r["exact"]["time"] * 1.10
    # ... while the OR-mask stores exponentially fewer directory bits: the
    # sum of level widths instead of one bit (or more) per station
    from repro.interconnect.routing import Geometry, RoutingMaskCodec

    geom = bench_config().geometry
    codec = RoutingMaskCodec(geom)
    assert codec.total_bits == sum(geom.levels)
    assert codec.total_bits < geom.num_stations


def test_ablation_optimistic_upgrade(benchmark):
    def run():
        out = {}
        for mode, optimistic in (("optimistic", True), ("pessimistic", False)):
            total = 0.0
            data_sent = 0
            for name in WORKLOADS:
                machine, t = run_workload(
                    name, PROCS, bench_config(optimistic_upgrade=optimistic),
                    spread=True,
                )
                total += t
                data_sent += machine.memory_stats().get("upgrade_data_sent", 0)
            out[mode] = {"time": total, "data_sent": data_sent}
        return out

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series(
        "Ablation: optimistic (ack-only) vs pessimistic (data) upgrades",
        ["config", "total us", "upgrade data responses"],
        [[m, v["time"] / 1e3, v["data_sent"]] for m, v in r.items()],
    )
    paper_note("'the simulation results ... indicate that the optimistic "
               "choice is the right one' (§4.6)")
    # pessimism sends strictly more line data
    assert r["pessimistic"]["data_sent"] > r["optimistic"]["data_sent"]
    # and buys no meaningful time
    assert r["optimistic"]["time"] <= r["pessimistic"]["time"] * 1.05


def test_ablation_ring_hierarchy(benchmark):
    def hier():
        return bench_config()

    def flat():
        cfg = bench_config()
        cfg.geometry = Geometry((16,), processors_per_station=4)
        return cfg

    def run():
        return {
            "two-level 4x4": _total_time(hier),
            "flat 16-ring": _total_time(flat),
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = r["flat 16-ring"] / r["two-level 4x4"]
    print_series(
        "Ablation: ring hierarchy vs one flat ring",
        ["config", "total us"],
        [[k, v / 1e3] for k, v in r.items()] + [["flat/hier x", ratio]],
    )
    paper_note("'transfer times are considerably shorter than if all "
               "stations were connected by a single ring' (§2)")
    # the flat ring's longer average path should not win
    assert ratio > 0.9


# ----------------------------------------------------------------------
# coherence-protocol ablation (also the CLI entry point below)
# ----------------------------------------------------------------------
#: canonical protocol-comparison workloads — the same pair the fingerprint
#: fixture pins, so CLI numbers and pinned numbers share one surface
def _protocol_workloads():
    from repro.workloads.lu import LUContiguous
    from repro.workloads.synthetic import HotSpot

    return {
        "hotspot": lambda: HotSpot(words=16, ops=40),
        "lu": lambda: LUContiguous(n=16, block=4),
    }


def _protocol_point(protocol: str, wname: str, nprocs: int) -> dict:
    """One uncached run on the plain prototype config; returns the row
    metrics.  Plain (no compute_scale) so the numbers line up with the
    fingerprint fixture and EXPERIMENTS.md."""
    from repro import Machine, MachineConfig

    cfg = MachineConfig.prototype()
    cfg.protocol = protocol  # explicit: wins over ambient NUMACHINE_PROTOCOL
    machine = Machine(cfg)
    result = _protocol_workloads()[wname]().run(machine, nprocs=nprocs)
    nc, mem = machine.nc_stats(), machine.memory_stats()
    util = machine.utilizations()
    served = nc.get("hits", 0) + nc.get("misses", 0)
    return {
        "time_ns": result.parallel_time_ns,
        "nc_hit_pct": 100.0 * nc.get("hits", 0) / served if served else 0.0,
        "nc_hits": nc.get("hits", 0),
        "false_remotes": mem.get("false_remote_bounces", 0),
        "bus_util": util["bus"],
        "ring_util": util["local_ring"],
        "events_per_sec": machine.engine.events_per_sec,
    }


def test_ablation_coherence_protocol(benchmark):
    def run():
        out = {}
        for proto in ("numachine", "msi"):
            total = 0.0
            nc_hits = 0
            for wname in _protocol_workloads():
                row = _protocol_point(proto, wname, PROCS)
                total += row["time_ns"]
                nc_hits += row["nc_hits"]
            out[proto] = {"time": total, "nc_hits": nc_hits}
        return out

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series(
        "Ablation: NUMAchine protocol vs flat full-map MSI",
        ["protocol", "total us", "NC hits"],
        [[p, v["time"] / 1e3, v["nc_hits"]] for p, v in r.items()],
    )
    paper_note("the NC and hierarchical masks are §3.1.4/§4.6's case for "
               "the two-level protocol; MSI is the ablation baseline")
    # MSI bypasses the NC entirely: it can never score an NC hit
    assert r["msi"]["nc_hits"] == 0
    assert r["numachine"]["nc_hits"] > 0
    # and losing combining/migration/caching should not make things faster
    assert r["numachine"]["time"] <= r["msi"]["time"]


# ----------------------------------------------------------------------
# CLI: protocol comparison table + fingerprint gate
# ----------------------------------------------------------------------
_FIXTURE = Path(__file__).resolve().parent.parent / "tests" / "data" / \
    "protocol_fingerprints.json"


def _check_fingerprints(path: Path) -> int:
    """Re-run every fixture point and diff the canonical surface."""
    import json
    import os

    from repro import Machine, MachineConfig
    from repro.protocol import canonical_surface

    fix = json.loads(Path(path).read_text())
    workloads = _protocol_workloads()
    failures = []
    for key, want in sorted(fix["points"].items()):
        wname, pfield, sched = key.split("|")
        nprocs = int(pfield[1:])
        prev = os.environ.get("NUMACHINE_SCHED")
        os.environ["NUMACHINE_SCHED"] = sched
        try:
            cfg = MachineConfig.prototype()
            cfg.protocol = fix["protocol"]
            machine = Machine(cfg)
            workloads[wname]().run(machine, nprocs=nprocs)
        finally:
            if prev is None:
                os.environ.pop("NUMACHINE_SCHED", None)
            else:
                os.environ["NUMACHINE_SCHED"] = prev
        # normalize through JSON so float/int representations match the file
        got = json.loads(json.dumps(canonical_surface(machine)))
        if got == want:
            print(f"ok   {key}: now={got['now']}")
        else:
            diff = [f for f in sorted(want) if got.get(f) != want[f]]
            failures.append(key)
            print(f"FAIL {key}: fields differ: {', '.join(diff)}")
    print(f"fingerprint check: {len(fix['points']) - len(failures)}/"
          f"{len(fix['points'])} points identical ({fix['protocol']!r} "
          f"protocol, {fix['config']} config)")
    return 1 if failures else 0


def main(argv=None) -> int:
    import argparse

    ap = argparse.ArgumentParser(
        prog="python benchmarks/bench_ablations.py",
        description="Coherence-protocol ablation table / fingerprint gate.",
    )
    ap.add_argument("--procs", default="16,64",
                    help="comma-separated processor counts (default 16,64)")
    ap.add_argument("--check", action="store_true",
                    help="verify the default protocol's canonical surface "
                    "against tests/data/protocol_fingerprints.json")
    args = ap.parse_args(argv)

    if args.check:
        return _check_fingerprints(_FIXTURE)

    procs = [int(p) for p in args.procs.split(",") if p]
    rows = []
    for proto in ("numachine", "msi"):
        for wname in _protocol_workloads():
            for p in procs:
                r = _protocol_point(proto, wname, p)
                rows.append([
                    proto, wname, p, r["time_ns"] / 1e3,
                    r["nc_hit_pct"], r["false_remotes"],
                    100.0 * r["bus_util"], 100.0 * r["ring_util"],
                    r["events_per_sec"],
                ])
    print_series(
        "Coherence-protocol ablation (plain prototype config)",
        ["protocol", "workload", "P", "time us", "NC hit %",
         "false remotes", "bus util %", "ring util %", "ev/s"],
        rows,
    )
    paper_note("MSI disables the network cache and uses an exact global "
               "sharer map; NUMAchine's wins come from NC combining/"
               "migration/caching and hierarchical masks")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
