"""Ablations for the design choices DESIGN.md calls out.

Each compares the prototype configuration against a machine with one
mechanism disabled or substituted, over a fixed mixed workload set:

* **sc_locking** — §2.3's claim: enforcing sequential consistency by
  holding write data until the ordered invalidation returns costs only
  ~2% overall ("only a 2% difference in overall performance was noted").
* **network cache** — remove the NC (DASH-RAC-style passthrough): remote
  sharing gets dramatically more expensive.
* **routing masks** — exact per-line station sets instead of the paper's
  inexact OR-masks: measures the traffic the imprecision adds (small) vs
  the directory bits it saves (large).
* **optimistic upgrade** — always sending data with upgrade grants wastes
  bandwidth for no latency win.
* **ring hierarchy** — the 4x4 two-level hierarchy vs one flat 16-station
  ring with the same processor count.
"""

from harness import bench_config, paper_note, print_series, run_workload

from repro.interconnect.routing import Geometry

#: a mixed set covering sharing-heavy, all-to-all and locality-friendly
WORKLOADS = ["fft", "ocean", "water_nsq", "barnes"]
PROCS = 16


def _total_time(config_factory) -> float:
    total = 0.0
    for name in WORKLOADS:
        # spread across the hierarchy so ring-level mechanisms are in play
        _m, t = run_workload(name, PROCS, config_factory(), spread=True)
        total += t
    return total


def test_ablation_sc_locking(benchmark):
    def run():
        return {
            "locked": _total_time(lambda: bench_config(sc_locking=True)),
            "unlocked": _total_time(lambda: bench_config(sc_locking=False)),
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    overhead = r["locked"] / r["unlocked"] - 1
    print_series(
        "Ablation: sequential-consistency locking",
        ["config", "total us"],
        [["sc locking", r["locked"] / 1e3], ["no locking", r["unlocked"] / 1e3],
         ["overhead %", 100 * overhead]],
    )
    paper_note("'only a 2% difference in overall performance was noted'")
    # same sign and magnitude class as the paper: a small, single-digit cost
    assert -0.02 <= overhead <= 0.10, overhead


def test_ablation_network_cache(benchmark):
    def run():
        return {
            "with_nc": _total_time(lambda: bench_config(nc_enabled=True)),
            "without_nc": _total_time(lambda: bench_config(nc_enabled=False)),
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    slowdown = r["without_nc"] / r["with_nc"]
    print_series(
        "Ablation: network cache removed",
        ["config", "total us"],
        [["with NC", r["with_nc"] / 1e3], ["without NC", r["without_nc"] / 1e3],
         ["slowdown x", slowdown]],
    )
    paper_note("the NC's migration/caching/combining effects motivate §3.1.4")
    assert slowdown > 1.0, "removing the network cache should hurt"


def test_ablation_routing_masks(benchmark):
    def run():
        out = {}
        for mode, exact in (("inexact", False), ("exact", True)):
            total = 0.0
            invs = 0
            ignored = 0
            for name in WORKLOADS:
                machine, t = run_workload(
                    name, PROCS, bench_config(exact_sharers=exact), spread=True
                )
                total += t
                invs += machine.memory_stats().get("invalidates_sent", 0)
                ignored += machine.nc_stats().get("invalidate_ignored_gi", 0)
            out[mode] = {"time": total, "invs": invs, "ignored": ignored}
        return out

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series(
        "Ablation: inexact OR-masks vs exact station sets",
        ["config", "total us", "invalidations", "ignored (over-delivered)"],
        [[mode, v["time"] / 1e3, v["invs"], v["ignored"]] for mode, v in r.items()],
    )
    paper_note("'the extra traffic ... is small and represents a good tradeoff'")
    # the paper's claim: imprecision costs little time ...
    assert r["inexact"]["time"] <= r["exact"]["time"] * 1.10
    # ... while the OR-mask stores exponentially fewer directory bits: the
    # sum of level widths instead of one bit (or more) per station
    from repro.interconnect.routing import Geometry, RoutingMaskCodec

    geom = bench_config().geometry
    codec = RoutingMaskCodec(geom)
    assert codec.total_bits == sum(geom.levels)
    assert codec.total_bits < geom.num_stations


def test_ablation_optimistic_upgrade(benchmark):
    def run():
        out = {}
        for mode, optimistic in (("optimistic", True), ("pessimistic", False)):
            total = 0.0
            data_sent = 0
            for name in WORKLOADS:
                machine, t = run_workload(
                    name, PROCS, bench_config(optimistic_upgrade=optimistic),
                    spread=True,
                )
                total += t
                data_sent += machine.memory_stats().get("upgrade_data_sent", 0)
            out[mode] = {"time": total, "data_sent": data_sent}
        return out

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series(
        "Ablation: optimistic (ack-only) vs pessimistic (data) upgrades",
        ["config", "total us", "upgrade data responses"],
        [[m, v["time"] / 1e3, v["data_sent"]] for m, v in r.items()],
    )
    paper_note("'the simulation results ... indicate that the optimistic "
               "choice is the right one' (§4.6)")
    # pessimism sends strictly more line data
    assert r["pessimistic"]["data_sent"] > r["optimistic"]["data_sent"]
    # and buys no meaningful time
    assert r["optimistic"]["time"] <= r["pessimistic"]["time"] * 1.05


def test_ablation_ring_hierarchy(benchmark):
    def hier():
        return bench_config()

    def flat():
        cfg = bench_config()
        cfg.geometry = Geometry((16,), processors_per_station=4)
        return cfg

    def run():
        return {
            "two-level 4x4": _total_time(hier),
            "flat 16-ring": _total_time(flat),
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = r["flat 16-ring"] / r["two-level 4x4"]
    print_series(
        "Ablation: ring hierarchy vs one flat ring",
        ["config", "total us"],
        [[k, v / 1e3] for k, v in r.items()] + [["flat/hier x", ratio]],
    )
    paper_note("'transfer times are considerably shorter than if all "
               "stations were connected by a single ring' (§2)")
    # the flat ring's longer average path should not win
    assert ratio > 0.9
