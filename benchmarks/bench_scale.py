"""Scaling benchmark: simulator throughput from P=4 to the full machine.

Sweeps the active-processor count across the 64-processor prototype for
two workloads — the synthetic hot-spot (densest event traffic the
simulator generates) and the SPLASH-style blocked LU kernel (real data
flow, barriers, and hit-run batching) — and records, per point and per
execution backend (interpreted classes vs the elaborated specialized
core, see :mod:`repro.elab`), the event count, final simulated time,
wall-clock time and events/second.  The sweep asserts the two backends
replay the exact same event stream at every point and records the
``elab_speedup`` ratio.  Results land in ``BENCH_scale.json`` at the
repo root; a slim per-point digest is also appended to the longitudinal
``BENCH_history.jsonl`` ledger (:mod:`repro.perf.ledger`).

Reading the numbers
-------------------

*Events/second* measures the event loop; *wall time* measures the user
experience.  They diverge on purpose: hit-run batching (see
:mod:`repro.cpu.ops`) collapses long strings of cache hits into
closed-form time advances, which **removes** events outright — LU wall
time drops ~5x while its events/s barely moves, because the events that
remain are the genuinely hard ones (misses, coherence, ring hops).
Compare wall time for "how fast is the simulator", events/s for "how
fast is the event core".

Per point the active scheduler is recorded: auto-selection picks the C
binary heap below :data:`repro.sim.sched.AUTO_CALENDAR_MIN_CPUS` active
processors and the O(1) calendar queue at or above it (override with
``NUMACHINE_SCHED=heap|calendar``; results are bit-identical either
way).  Timing is best-of-N with median/stdev recorded so a reader can
judge host noise, exactly as in ``bench_engine_throughput.py``.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py                # full sweep
    PYTHONPATH=src python benchmarks/bench_scale.py --ops 60 \\
        --lu-n 16 --lu-block 4 --repeats 2 --out BENCH_scale.ci.json \\
        --check BENCH_scale.json                                   # CI guard

``--check BASELINE`` compares the just-measured hot-spot P=16 interp
events/second against the committed baseline file (exit non-zero on a
regression beyond ``--tolerance``, default 15%) and enforces that the
elaborated backend stays at least ``--min-ratio`` times faster than the
interpreted one — the CI perf guard.  Both verdicts are advisory when
the current host differs from the one the baseline was recorded on.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
from pathlib import Path

from repro import Machine, MachineConfig
from repro.perf import ledger
from repro.sim.engine import ticks_to_ns
from repro.workloads.lu import LUContiguous
from repro.workloads.synthetic import HotSpot

RESULT_FILE = Path(__file__).resolve().parents[1] / "BENCH_scale.json"

#: active-processor counts swept on the 64-processor prototype
DEFAULT_POINTS = (4, 16, 32, 64)

#: every point is measured under both execution backends
BACKENDS = ("interp", "elab")

#: guard point and default slack for --check
CHECK_WORKLOAD = "hotspot"
CHECK_NPROCS = 16
DEFAULT_TOLERANCE = 0.15

#: the elab/interp ratio is gated at full machine size: contention (and
#: with it the NACK-retry churn the specialized core targets) only builds
#: up at scale, so smaller points measure mostly common engine cost and
#: their ratio is noise
RATIO_NPROCS = 64

#: minimum elab/interp events-per-second ratio --check enforces at the
#: ratio point on the recorded host (advisory on any other host).  The
#: measured speedup on an idle host is ~1.3-1.7x at the hot-spot P=64
#: point; the floor sits well below that so shared-runner load does not
#: flake the gate while a real specialization regression (ratio -> 1.0)
#: still fails it.
DEFAULT_MIN_RATIO = 1.1


def measure_point(
    workload_factory, nprocs: int, repeats: int, backend: str = "interp"
) -> dict:
    """Best-of-``repeats`` timing for one (workload, nprocs, backend) point."""
    walls = []
    events = now = sched = None
    for _ in range(max(1, repeats)):
        machine = Machine(MachineConfig.prototype(), backend=backend)
        workload_factory().run(machine, nprocs=nprocs)
        assert machine.backend == backend, (machine.backend, backend)
        meter = machine.throughput()
        if events is None:
            events, now, sched = (
                meter["events_run"],
                machine.engine.now,
                meter["scheduler"],
            )
        else:
            # determinism: every repeat must replay the exact same events
            assert meter["events_run"] == events, (meter["events_run"], events)
            assert machine.engine.now == now, (machine.engine.now, now)
        walls.append(meter["wall_time_s"])
    best = min(walls)
    median = statistics.median(walls)
    return {
        "nprocs": nprocs,
        "backend": backend,
        "scheduler": sched,
        "events_run": events,
        "final_now_ticks": now,
        "sim_time_ns": ticks_to_ns(now),
        "wall_time_s": best,
        "wall_time_median_s": median,
        "wall_time_stdev_s": statistics.stdev(walls) if len(walls) > 1 else 0.0,
        "events_per_sec": events / best if best > 0 else 0.0,
        "events_per_sec_median": events / median if median > 0 else 0.0,
    }


def host_fingerprint() -> dict:
    """What the wall-clock numbers were measured on.  Events/second is a
    property of the host as much as of the code; comparing rates across
    different machines (laptop baseline vs CI runner) says nothing about
    regressions, so --check refuses to fail across a fingerprint change."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }


def run_sweep(
    points=DEFAULT_POINTS,
    ops: int = 400,
    words: int = 64,
    lu_n: int = 64,
    lu_block: int = 8,
    repeats: int = 3,
) -> dict:
    workloads = {
        "hotspot": (
            f"HotSpot(words={words}, ops={ops})",
            lambda: HotSpot(words=words, ops=ops),
        ),
        "lu_contig": (
            f"LUContiguous(n={lu_n}, block={lu_block})",
            lambda: LUContiguous(n=lu_n, block=lu_block),
        ),
    }
    result = {"schema": 2, "machine": "prototype (64p, 4 stations x 4 rings)",
              "repeats": max(1, repeats), "host": host_fingerprint(),
              "workloads": {}}
    for name, (desc, factory) in workloads.items():
        sweep = {"workload": desc, "points": {}}
        for p in points:
            cell = {}
            for backend in BACKENDS:
                point = measure_point(factory, p, repeats, backend=backend)
                cell[backend] = point
                print(
                    f"{name:10s} P={p:<3d} {backend:7s} {point['scheduler']:8s} "
                    f"{point['events_run']:>8d} events  "
                    f"wall {point['wall_time_s']:.3f}s  "
                    f"{point['events_per_sec']:>12,.0f} ev/s",
                    file=sys.stderr,
                )
            # the backends must replay the exact same event stream
            for key in ("events_run", "final_now_ticks"):
                assert cell["interp"][key] == cell["elab"][key], (
                    name, p, key, cell["interp"][key], cell["elab"][key],
                )
            cell["elab_speedup"] = (
                cell["elab"]["events_per_sec"] / cell["interp"]["events_per_sec"]
                if cell["interp"]["events_per_sec"] > 0 else 0.0
            )
            sweep["points"][str(p)] = cell
        result["workloads"][name] = sweep
    return result


def ledger_summary(result: dict) -> dict:
    """Slim per-point digest of a sweep for the BENCH_history.jsonl
    ledger: rates and speedups only, no repeat statistics."""
    out = {"machine": result.get("machine"), "repeats": result.get("repeats"),
           "workloads": {}}
    for name, sweep in result.get("workloads", {}).items():
        points = {}
        for p, cell in sweep.get("points", {}).items():
            points[p] = {
                backend: {
                    "events_per_sec": cell[backend]["events_per_sec"],
                    "wall_time_s": cell[backend]["wall_time_s"],
                    "events_run": cell[backend]["events_run"],
                    "scheduler": cell[backend]["scheduler"],
                }
                for backend in BACKENDS
                if backend in cell
            }
            if "elab_speedup" in cell:
                points[p]["elab_speedup"] = cell["elab_speedup"]
        out["workloads"][name] = points
    return out


def check_regression(
    result: dict,
    baseline_path: Path,
    tolerance: float,
    min_ratio: float = DEFAULT_MIN_RATIO,
) -> int:
    """CI guard at the hot-spot P=16 point: interp events/s must not
    regress > ``tolerance`` vs the committed baseline, and the elab
    backend must stay at least ``min_ratio`` times faster than interp.
    Wall-clock verdicts are advisory on any host other than the one the
    baseline was recorded on.  Returns a process exit code."""
    try:
        baseline = json.loads(baseline_path.read_text())
    except FileNotFoundError:
        print(f"check: baseline {baseline_path} missing, skipping", file=sys.stderr)
        return 0
    try:
        base = baseline["workloads"][CHECK_WORKLOAD]["points"][str(CHECK_NPROCS)]
        cur = result["workloads"][CHECK_WORKLOAD]["points"][str(CHECK_NPROCS)]
    except KeyError as exc:
        print(f"check: baseline missing key {exc}, skipping", file=sys.stderr)
        return 0
    if "interp" not in base:
        print("check: baseline predates the backend axis (schema 1), "
              "skipping", file=sys.stderr)
        return 0
    same_host = baseline.get("host") == result.get("host")
    failures = []

    base_rate = base["interp"]["events_per_sec"]
    cur_rate = cur["interp"]["events_per_sec"]
    floor = base_rate * (1.0 - tolerance)
    verdict = "OK" if cur_rate >= floor else "REGRESSION"
    print(
        f"check: hotspot P={CHECK_NPROCS} interp: {cur_rate:,.0f} ev/s vs "
        f"baseline {base_rate:,.0f} (floor {floor:,.0f}, tolerance "
        f"{tolerance:.0%}) -> {verdict}",
        file=sys.stderr,
    )
    if verdict != "OK":
        failures.append("interp rate regression")

    ratio_cell = (
        result["workloads"][CHECK_WORKLOAD]["points"].get(str(RATIO_NPROCS))
    )
    if ratio_cell is None:
        print(f"check: P={RATIO_NPROCS} not measured, skipping ratio gate",
              file=sys.stderr)
    else:
        ratio = ratio_cell.get("elab_speedup", 0.0)
        verdict = "OK" if ratio >= min_ratio else "BELOW FLOOR"
        print(
            f"check: hotspot P={RATIO_NPROCS} elab speedup: {ratio:.2f}x "
            f"(floor {min_ratio:.2f}x) -> {verdict}",
            file=sys.stderr,
        )
        if verdict != "OK":
            failures.append("elab/interp speedup below floor")

    if not failures:
        return 0
    if not same_host:
        # wall-clock rates are host properties; a slowdown measured on a
        # different machine than the baseline is noise, not a regression
        print(
            f"check: WARNING — host differs from baseline "
            f"({result.get('host')} vs {baseline.get('host')}); "
            f"treating as advisory only: {', '.join(failures)}",
            file=sys.stderr,
        )
        return 0
    print(f"check: FAILED — {', '.join(failures)}", file=sys.stderr)
    return 1


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--points", default=",".join(map(str, DEFAULT_POINTS)),
                    help="comma-separated active-processor counts")
    ap.add_argument("--ops", type=int, default=400, help="hot-spot ops per cpu")
    ap.add_argument("--words", type=int, default=64, help="hot-spot shared words")
    ap.add_argument("--lu-n", type=int, default=64, help="LU matrix dimension")
    ap.add_argument("--lu-block", type=int, default=8, help="LU block size")
    ap.add_argument("--repeats", type=int, default=3, help="timing repeats")
    ap.add_argument("--out", type=Path, default=RESULT_FILE,
                    help="result JSON path")
    ap.add_argument("--check", type=Path, metavar="BASELINE",
                    help="compare hot-spot P=16 events/s against this "
                    "baseline JSON; exit 1 on >tolerance regression")
    ap.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                    help="allowed fractional regression for --check")
    ap.add_argument("--min-ratio", type=float, default=DEFAULT_MIN_RATIO,
                    help="minimum elab/interp events-per-second ratio for "
                    "--check (advisory off the recorded host)")
    ap.add_argument("--pre", type=Path, metavar="PRE_JSON",
                    help="embed this JSON under 'baseline_pre' (same-host "
                    "measurements of the pre-optimization core)")
    args = ap.parse_args(argv)

    points = tuple(int(p) for p in args.points.split(","))
    result = run_sweep(points=points, ops=args.ops, words=args.words,
                       lu_n=args.lu_n, lu_block=args.lu_block,
                       repeats=args.repeats)
    if args.pre:
        result["baseline_pre"] = json.loads(args.pre.read_text())
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}", file=sys.stderr)
    ledger.append_entry("scale_sweep", ledger_summary(result))
    if args.check:
        return check_regression(result, args.check, args.tolerance,
                                args.min_ratio)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
