"""Scaling benchmark: simulator throughput from P=4 to the full machine.

Sweeps the active-processor count across the 64-processor prototype for
two workloads — the synthetic hot-spot (densest event traffic the
simulator generates) and the SPLASH-style blocked LU kernel (real data
flow, barriers, and hit-run batching) — and records, per point and per
execution backend (interpreted classes vs the elaborated specialized
core, see :mod:`repro.elab`), the event count, final simulated time,
wall-clock time and events/second.  The sweep asserts the two backends
replay the exact same event stream at every point and records the
``elab_speedup`` ratio.  Results land in ``BENCH_scale.json`` at the
repo root; a slim per-point digest is also appended to the longitudinal
``BENCH_history.jsonl`` ledger (:mod:`repro.perf.ledger`).

Reading the numbers
-------------------

*Events/second* measures the event loop; *wall time* measures the user
experience.  They diverge on purpose: hit-run batching (see
:mod:`repro.cpu.ops`) collapses long strings of cache hits into
closed-form time advances, which **removes** events outright — LU wall
time drops ~5x while its events/s barely moves, because the events that
remain are the genuinely hard ones (misses, coherence, ring hops).
Compare wall time for "how fast is the simulator", events/s for "how
fast is the event core".

Per point the active scheduler is recorded: auto-selection picks the C
binary heap below :data:`repro.sim.sched.AUTO_CALENDAR_MIN_CPUS` active
processors and the O(1) calendar queue at or above it (override with
``NUMACHINE_SCHED=heap|calendar``; results are bit-identical either
way).  Timing is best-of-N with median/stdev recorded so a reader can
judge host noise, exactly as in ``bench_engine_throughput.py``.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py                # full sweep
    PYTHONPATH=src python benchmarks/bench_scale.py --ops 60 \\
        --lu-n 16 --lu-block 4 --repeats 2 --out BENCH_scale.ci.json \\
        --check BENCH_scale.json                                   # CI guard

``--check BASELINE`` compares the just-measured hot-spot P=16 interp
events/second against the committed baseline file (exit non-zero on a
regression beyond ``--tolerance``, default 15%) and enforces that the
elaborated backend stays at least ``--min-ratio`` times faster than the
interpreted one — the CI perf guard.  Both verdicts are advisory when
the current host differs from the one the baseline was recorded on.

The fusion axis (schema 3)
--------------------------

At the hot-spot ratio point (P=64) the sweep additionally measures both
transit-fusion modes (``NUMACHINE_FUSE=off|on``, see
:mod:`repro.interconnect.ring`) under both backends, asserting the
exactness contract — identical final simulated time and
``hop_equivalent == unfused events_run`` — and recording the event
reduction and the fused/unfused wall-time ratio.  The event reduction is
deterministic (a property of the event stream, not the host) and is
gated hard at ``--min-fuse-reduction``; the wall ratio is a host
property dominated by noise at the ~1-2% real effect size (the elided
ring-hop events are the cheapest in the system — see EXPERIMENTS.md for
the ceiling analysis), so ``--min-fuse-ratio`` only guards against
fusion being an outright slowdown and is advisory off the recorded
host.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
from pathlib import Path

from repro import Machine, MachineConfig
from repro.perf import ledger
from repro.sim.engine import ticks_to_ns
from repro.workloads.lu import LUContiguous
from repro.workloads.synthetic import HotSpot

RESULT_FILE = Path(__file__).resolve().parents[1] / "BENCH_scale.json"

#: active-processor counts swept on the 64-processor prototype
DEFAULT_POINTS = (4, 16, 32, 64)

#: every point is measured under both execution backends
BACKENDS = ("interp", "elab")

#: guard point and default slack for --check
CHECK_WORKLOAD = "hotspot"
CHECK_NPROCS = 16
DEFAULT_TOLERANCE = 0.15

#: the elab/interp ratio is gated at full machine size: contention (and
#: with it the NACK-retry churn the specialized core targets) only builds
#: up at scale, so smaller points measure mostly common engine cost and
#: their ratio is noise
RATIO_NPROCS = 64

#: minimum elab/interp events-per-second ratio --check enforces at the
#: ratio point on the recorded host (advisory on any other host).  The
#: measured speedup on an idle host is ~1.3-1.7x at the hot-spot P=64
#: point; the floor sits well below that so shared-runner load does not
#: flake the gate while a real specialization regression (ratio -> 1.0)
#: still fails it.
DEFAULT_MIN_RATIO = 1.1

#: transit-fusion modes measured at the ratio point
FUSE_MODES = ("off", "on")

#: minimum fraction of hot-spot P=64 events that fusion must elide
#: (events_run reduction vs the unfused run).  Deterministic — the event
#: stream does not depend on the host — so this gate fails hard.  The
#: measured reduction at the default bench point is ~20.8%; the floor
#: sits below it with margin for workload-parameter drift.
DEFAULT_MIN_FUSE_REDUCTION = 0.15

#: minimum fused/unfused wall-time ratio (>1 means fused is faster).
#: The real effect is only ~1-2% on the elab backend — the elided hop
#: events are the cheapest in the system, bounding the ceiling at
#: ~1.26x even for a zero-cost fast path — so this floor only catches
#: fusion becoming an outright slowdown, and is advisory off the
#: recorded host.
DEFAULT_MIN_FUSE_RATIO = 0.9


def measure_point(
    workload_factory,
    nprocs: int,
    repeats: int,
    backend: str = "interp",
    fuse: str | None = None,
) -> dict:
    """Best-of-``repeats`` timing for one (workload, nprocs, backend, fuse)
    point.  ``fuse`` forces ``NUMACHINE_FUSE`` for the measured runs
    (``None`` keeps the ambient mode); the mode actually active plus the
    fusion event accounting (elided hops, repair cancels, hop-equivalent
    total) are recorded either way."""
    saved = os.environ.get("NUMACHINE_FUSE")
    if fuse is not None:
        os.environ["NUMACHINE_FUSE"] = fuse
    try:
        walls = []
        events = now = sched = counts = None
        for _ in range(max(1, repeats)):
            machine = Machine(MachineConfig.prototype(), backend=backend)
            workload_factory().run(machine, nprocs=nprocs)
            assert machine.backend == backend, (machine.backend, backend)
            meter = machine.throughput()
            if events is None:
                events, now, sched = (
                    meter["events_run"],
                    machine.engine.now,
                    meter["scheduler"],
                )
                counts = machine.event_counts()
            else:
                # determinism: every repeat must replay the exact same events
                assert meter["events_run"] == events, (meter["events_run"], events)
                assert machine.engine.now == now, (machine.engine.now, now)
            walls.append(meter["wall_time_s"])
    finally:
        if fuse is not None:
            if saved is None:
                os.environ.pop("NUMACHINE_FUSE", None)
            else:
                os.environ["NUMACHINE_FUSE"] = saved
    best = min(walls)
    median = statistics.median(walls)
    return {
        "nprocs": nprocs,
        "backend": backend,
        "scheduler": sched,
        "fuse": counts["fuse"],
        "events_run": events,
        "events_fused": counts["fused"],
        "events_cancelled": counts["cancels"],
        "events_hop_equivalent": counts["hop_equivalent"],
        "final_now_ticks": now,
        "sim_time_ns": ticks_to_ns(now),
        "wall_time_s": best,
        "wall_time_median_s": median,
        "wall_time_stdev_s": statistics.stdev(walls) if len(walls) > 1 else 0.0,
        "events_per_sec": events / best if best > 0 else 0.0,
        "events_per_sec_median": events / median if median > 0 else 0.0,
    }


def host_fingerprint() -> dict:
    """What the wall-clock numbers were measured on.  Events/second is a
    property of the host as much as of the code; comparing rates across
    different machines (laptop baseline vs CI runner) says nothing about
    regressions, so --check refuses to fail across a fingerprint change."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }


def run_fusion_axis(factory, repeats: int) -> dict:
    """Measure both transit-fusion modes at the hot-spot ratio point under
    both backends, asserting the exactness contract and recording the
    event reduction and fused/unfused wall ratio per backend."""
    axis = {"nprocs": RATIO_NPROCS, "backends": {}}
    for backend in BACKENDS:
        cell = {}
        for fuse in FUSE_MODES:
            point = measure_point(
                factory, RATIO_NPROCS, repeats, backend=backend, fuse=fuse
            )
            assert point["fuse"] == fuse, (point["fuse"], fuse)
            cell[fuse] = point
            print(
                f"{'fusion':10s} P={RATIO_NPROCS:<3d} {backend:7s} "
                f"fuse={fuse:3s} {point['events_run']:>8d} events  "
                f"({point['events_fused']} fused, "
                f"{point['events_cancelled']} repaired)  "
                f"wall {point['wall_time_s']:.3f}s",
                file=sys.stderr,
            )
        off, on = cell["off"], cell["on"]
        # exactness contract: fusion elides events, never reorders them —
        # same final time, and the hop-equivalent count reconstructs the
        # unfused event count exactly
        assert on["final_now_ticks"] == off["final_now_ticks"], (
            backend, on["final_now_ticks"], off["final_now_ticks"],
        )
        assert on["events_hop_equivalent"] == off["events_run"], (
            backend, on["events_hop_equivalent"], off["events_run"],
        )
        cell["event_reduction"] = (
            1.0 - on["events_run"] / off["events_run"]
            if off["events_run"] > 0 else 0.0
        )
        cell["fusion_wall_ratio"] = (
            off["wall_time_s"] / on["wall_time_s"]
            if on["wall_time_s"] > 0 else 0.0
        )
        axis["backends"][backend] = cell
    return axis


def run_sweep(
    points=DEFAULT_POINTS,
    ops: int = 400,
    words: int = 64,
    lu_n: int = 64,
    lu_block: int = 8,
    repeats: int = 3,
) -> dict:
    workloads = {
        "hotspot": (
            f"HotSpot(words={words}, ops={ops})",
            lambda: HotSpot(words=words, ops=ops),
        ),
        "lu_contig": (
            f"LUContiguous(n={lu_n}, block={lu_block})",
            lambda: LUContiguous(n=lu_n, block=lu_block),
        ),
    }
    result = {"schema": 3, "machine": "prototype (64p, 4 stations x 4 rings)",
              "repeats": max(1, repeats), "host": host_fingerprint(),
              "workloads": {}}
    for name, (desc, factory) in workloads.items():
        sweep = {"workload": desc, "points": {}}
        for p in points:
            cell = {}
            for backend in BACKENDS:
                point = measure_point(factory, p, repeats, backend=backend)
                cell[backend] = point
                print(
                    f"{name:10s} P={p:<3d} {backend:7s} {point['scheduler']:8s} "
                    f"{point['events_run']:>8d} events  "
                    f"wall {point['wall_time_s']:.3f}s  "
                    f"{point['events_per_sec']:>12,.0f} ev/s",
                    file=sys.stderr,
                )
            # the backends must replay the exact same event stream
            for key in ("events_run", "final_now_ticks"):
                assert cell["interp"][key] == cell["elab"][key], (
                    name, p, key, cell["interp"][key], cell["elab"][key],
                )
            cell["elab_speedup"] = (
                cell["elab"]["events_per_sec"] / cell["interp"]["events_per_sec"]
                if cell["interp"]["events_per_sec"] > 0 else 0.0
            )
            sweep["points"][str(p)] = cell
        result["workloads"][name] = sweep
    result["fusion"] = run_fusion_axis(
        workloads[CHECK_WORKLOAD][1], max(1, repeats)
    )
    return result


def ledger_summary(result: dict) -> dict:
    """Slim per-point digest of a sweep for the BENCH_history.jsonl
    ledger: rates and speedups only, no repeat statistics."""
    out = {"machine": result.get("machine"), "repeats": result.get("repeats"),
           "workloads": {}}
    for name, sweep in result.get("workloads", {}).items():
        points = {}
        for p, cell in sweep.get("points", {}).items():
            points[p] = {
                backend: {
                    "events_per_sec": cell[backend]["events_per_sec"],
                    "wall_time_s": cell[backend]["wall_time_s"],
                    "events_run": cell[backend]["events_run"],
                    "scheduler": cell[backend]["scheduler"],
                    "fuse": cell[backend].get("fuse", "off"),
                }
                for backend in BACKENDS
                if backend in cell
            }
            if "elab_speedup" in cell:
                points[p]["elab_speedup"] = cell["elab_speedup"]
        out["workloads"][name] = points
    fusion = result.get("fusion")
    if fusion:
        digest = {"nprocs": fusion.get("nprocs"), "backends": {}}
        for backend, cell in fusion.get("backends", {}).items():
            digest["backends"][backend] = {
                "event_reduction": cell.get("event_reduction"),
                "fusion_wall_ratio": cell.get("fusion_wall_ratio"),
                "events_fused": cell.get("on", {}).get("events_fused"),
                "events_cancelled": cell.get("on", {}).get("events_cancelled"),
            }
        out["fusion"] = digest
    return out


def check_fusion(
    result: dict,
    min_reduction: float = DEFAULT_MIN_FUSE_REDUCTION,
    min_fuse_ratio: float = DEFAULT_MIN_FUSE_RATIO,
) -> tuple[list, list]:
    """Gate the fusion axis: event reduction is deterministic and fails
    hard; the wall ratio is a host property and only guards against an
    outright slowdown.  Returns (hard_failures, soft_failures)."""
    hard, soft = [], []
    fusion = result.get("fusion")
    if not fusion:
        print("check: no fusion axis in result, skipping fusion gates",
              file=sys.stderr)
        return hard, soft
    for backend, cell in fusion.get("backends", {}).items():
        reduction = cell.get("event_reduction", 0.0)
        verdict = "OK" if reduction >= min_reduction else "BELOW FLOOR"
        print(
            f"check: hotspot P={fusion['nprocs']} {backend} fusion event "
            f"reduction: {reduction:.1%} (floor {min_reduction:.0%}) -> "
            f"{verdict}",
            file=sys.stderr,
        )
        if verdict != "OK":
            hard.append(f"{backend} fusion event reduction below floor")
        ratio = cell.get("fusion_wall_ratio", 0.0)
        verdict = "OK" if ratio >= min_fuse_ratio else "BELOW FLOOR"
        print(
            f"check: hotspot P={fusion['nprocs']} {backend} fused/unfused "
            f"wall ratio: {ratio:.2f}x (floor {min_fuse_ratio:.2f}x) -> "
            f"{verdict}",
            file=sys.stderr,
        )
        if verdict != "OK":
            soft.append(f"{backend} fused wall ratio below floor")
    return hard, soft


def check_regression(
    result: dict,
    baseline_path: Path,
    tolerance: float,
    min_ratio: float = DEFAULT_MIN_RATIO,
    min_fuse_reduction: float = DEFAULT_MIN_FUSE_REDUCTION,
    min_fuse_ratio: float = DEFAULT_MIN_FUSE_RATIO,
) -> int:
    """CI guard at the hot-spot P=16 point: interp events/s must not
    regress > ``tolerance`` vs the committed baseline, and the elab
    backend must stay at least ``min_ratio`` times faster than interp.
    Wall-clock verdicts are advisory on any host other than the one the
    baseline was recorded on.  The fusion event-reduction gate (see
    :func:`check_fusion`) is host-independent and fails regardless.
    Returns a process exit code."""
    try:
        baseline = json.loads(baseline_path.read_text())
    except FileNotFoundError:
        print(f"check: baseline {baseline_path} missing, skipping", file=sys.stderr)
        return 0
    try:
        base = baseline["workloads"][CHECK_WORKLOAD]["points"][str(CHECK_NPROCS)]
        cur = result["workloads"][CHECK_WORKLOAD]["points"][str(CHECK_NPROCS)]
    except KeyError as exc:
        print(f"check: baseline missing key {exc}, skipping", file=sys.stderr)
        return 0
    if "interp" not in base:
        print("check: baseline predates the backend axis (schema 1), "
              "skipping", file=sys.stderr)
        return 0
    same_host = baseline.get("host") == result.get("host")
    failures = []

    base_rate = base["interp"]["events_per_sec"]
    cur_rate = cur["interp"]["events_per_sec"]
    floor = base_rate * (1.0 - tolerance)
    verdict = "OK" if cur_rate >= floor else "REGRESSION"
    print(
        f"check: hotspot P={CHECK_NPROCS} interp: {cur_rate:,.0f} ev/s vs "
        f"baseline {base_rate:,.0f} (floor {floor:,.0f}, tolerance "
        f"{tolerance:.0%}) -> {verdict}",
        file=sys.stderr,
    )
    if verdict != "OK":
        failures.append("interp rate regression")

    ratio_cell = (
        result["workloads"][CHECK_WORKLOAD]["points"].get(str(RATIO_NPROCS))
    )
    if ratio_cell is None:
        print(f"check: P={RATIO_NPROCS} not measured, skipping ratio gate",
              file=sys.stderr)
    else:
        ratio = ratio_cell.get("elab_speedup", 0.0)
        verdict = "OK" if ratio >= min_ratio else "BELOW FLOOR"
        print(
            f"check: hotspot P={RATIO_NPROCS} elab speedup: {ratio:.2f}x "
            f"(floor {min_ratio:.2f}x) -> {verdict}",
            file=sys.stderr,
        )
        if verdict != "OK":
            failures.append("elab/interp speedup below floor")

    hard, soft = check_fusion(result, min_fuse_reduction, min_fuse_ratio)
    failures.extend(soft)

    if failures and not same_host:
        # wall-clock rates are host properties; a slowdown measured on a
        # different machine than the baseline is noise, not a regression
        print(
            f"check: WARNING — host differs from baseline "
            f"({result.get('host')} vs {baseline.get('host')}); "
            f"treating as advisory only: {', '.join(failures)}",
            file=sys.stderr,
        )
        failures = []
    failures.extend(hard)  # deterministic gates fail on any host
    if not failures:
        return 0
    print(f"check: FAILED — {', '.join(failures)}", file=sys.stderr)
    return 1


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--points", default=",".join(map(str, DEFAULT_POINTS)),
                    help="comma-separated active-processor counts")
    ap.add_argument("--ops", type=int, default=400, help="hot-spot ops per cpu")
    ap.add_argument("--words", type=int, default=64, help="hot-spot shared words")
    ap.add_argument("--lu-n", type=int, default=64, help="LU matrix dimension")
    ap.add_argument("--lu-block", type=int, default=8, help="LU block size")
    ap.add_argument("--repeats", type=int, default=3, help="timing repeats")
    ap.add_argument("--out", type=Path, default=RESULT_FILE,
                    help="result JSON path")
    ap.add_argument("--check", type=Path, metavar="BASELINE",
                    help="compare hot-spot P=16 events/s against this "
                    "baseline JSON; exit 1 on >tolerance regression")
    ap.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                    help="allowed fractional regression for --check")
    ap.add_argument("--min-ratio", type=float, default=DEFAULT_MIN_RATIO,
                    help="minimum elab/interp events-per-second ratio for "
                    "--check (advisory off the recorded host)")
    ap.add_argument("--min-fuse-reduction", type=float,
                    default=DEFAULT_MIN_FUSE_REDUCTION,
                    help="minimum fused events_run reduction at the ratio "
                    "point for --check (deterministic, fails on any host)")
    ap.add_argument("--min-fuse-ratio", type=float,
                    default=DEFAULT_MIN_FUSE_RATIO,
                    help="minimum fused/unfused wall-time ratio for --check "
                    "(advisory off the recorded host)")
    ap.add_argument("--pre", type=Path, metavar="PRE_JSON",
                    help="embed this JSON under 'baseline_pre' (same-host "
                    "measurements of the pre-optimization core)")
    args = ap.parse_args(argv)

    points = tuple(int(p) for p in args.points.split(","))
    result = run_sweep(points=points, ops=args.ops, words=args.words,
                       lu_n=args.lu_n, lu_block=args.lu_block,
                       repeats=args.repeats)
    if args.pre:
        result["baseline_pre"] = json.loads(args.pre.read_text())
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}", file=sys.stderr)
    ledger.append_entry("scale_sweep", ledger_summary(result))
    if args.check:
        return check_regression(result, args.check, args.tolerance,
                                args.min_ratio, args.min_fuse_reduction,
                                args.min_fuse_ratio)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
