"""Pytest wiring for the benches: make harness importable, and default to
one deterministic round per benchmark (simulation runs are exact)."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
