"""Engine throughput microbench.

Drives the synthetic HotSpot workload — every processor hammering one
station's memory, the densest event traffic the simulator generates — and
reports raw event-loop throughput from the engine's built-in meter:
events processed, wall-clock seconds inside :meth:`Engine.run`, and
events/second.  Results land in ``BENCH_engine.json`` next to the repo
root so successive checkouts can be compared, and every run also appends
a provenance-stamped line (host, git sha, backend, rate) to the
longitudinal ``BENCH_history.jsonl`` ledger (:mod:`repro.perf.ledger`).

Timing uses best-of-N (min wall time over repeats) for the headline rate:
the minimum is the least noisy estimator of the achievable rate on a
shared host.  The median and the standard deviation across repeats are
recorded alongside it so a reader can judge how noisy the host was —
a best-of-N figure with a large spread deserves less trust than the same
figure with a tight one.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py [repeats]
"""

from __future__ import annotations

import json
import os
import statistics
import sys
from pathlib import Path

from repro import Machine, MachineConfig
from repro.perf import ledger
from repro.workloads.synthetic import HotSpot

#: workload knobs: big enough to amortize per-run setup, small enough for CI
HOTSPOT_WORDS = 64
HOTSPOT_OPS = 400
NPROCS = 16

RESULT_FILE = Path(__file__).resolve().parents[1] / "BENCH_engine.json"


def measure(repeats: int = 3) -> dict:
    """Best-of-``repeats`` engine throughput on the hot-spot workload,
    with the median and spread across repeats recorded alongside."""
    best = None
    walls = []
    events = now = None
    backend = None
    for _ in range(max(1, repeats)):
        machine = Machine(MachineConfig.prototype())
        workload = HotSpot(words=HOTSPOT_WORDS, ops=HOTSPOT_OPS)
        workload.run(machine, nprocs=NPROCS)
        backend = machine.backend
        meter = machine.throughput()
        if events is None:
            events, now = meter["events_run"], machine.engine.now
        else:
            # determinism: every repeat must replay the exact same events
            assert meter["events_run"] == events, (meter["events_run"], events)
            assert machine.engine.now == now, (machine.engine.now, now)
        walls.append(meter["wall_time_s"])
        if best is None or meter["wall_time_s"] < best["wall_time_s"]:
            best = meter
    best["repeats"] = max(1, repeats)
    best["workload"] = f"HotSpot(words={HOTSPOT_WORDS}, ops={HOTSPOT_OPS})"
    best["nprocs"] = NPROCS
    best["backend"] = backend
    best["final_now_ticks"] = now
    # noise indicators: same event count every repeat, so the wall-time
    # median/stdev translate directly to an events/s median and spread
    median_wall = statistics.median(walls)
    best["wall_time_median_s"] = median_wall
    best["wall_time_stdev_s"] = (
        statistics.stdev(walls) if len(walls) > 1 else 0.0
    )
    best["events_per_sec_median"] = (
        events / median_wall if median_wall > 0 else 0.0
    )
    return best


def write_result(result: dict, path: Path = RESULT_FILE) -> None:
    with open(path, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    # longitudinal record: one line per run in BENCH_history.jsonl
    ledger.append_entry("engine_throughput", result)


def test_engine_throughput(benchmark):
    repeats = int(os.environ.get("NUMACHINE_BENCH_REPEATS", "3"))
    result = benchmark.pedantic(measure, args=(repeats,), rounds=1, iterations=1)
    write_result(result)
    print(
        f"\nengine throughput: {result['events_per_sec']:,.0f} events/s "
        f"({result['events_run']} events in {result['wall_time_s']:.3f}s, "
        f"best of {result['repeats']}) -> {RESULT_FILE.name}"
    )
    # smoke floor: the event loop must move (absolute rate is host-dependent)
    assert result["events_run"] > 10_000
    assert result["events_per_sec"] > 1_000


if __name__ == "__main__":
    reps = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    res = measure(reps)
    write_result(res)
    print(json.dumps(res, indent=2, sort_keys=True))
