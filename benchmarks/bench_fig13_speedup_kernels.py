"""Fig. 13: parallel speedup for the SPLASH-2 kernels.

Sweeps processor counts for Radix, LU (contiguous and non-contiguous), FFT
and Cholesky at the scaled Table 2 problem sizes, printing each curve.
Assertions cover the figure's qualitative content: every kernel speeds up,
and Cholesky is the worst scaler (as in the paper, where it tops out near
11 of 64 while the others reach 19-27).
"""

from harness import paper_note, print_series, proc_sweep, run_point, speedup_curves

from repro.workloads import FIG13_KERNELS, SUITE

#: approximate 64-processor speedups read off Fig. 13 (for the printout)
PAPER_FIG13_64P = {
    "radix": 27, "lu_contig": 25, "lu_noncontig": 22, "fft": 19, "cholesky": 11,
}


def test_fig13_kernel_speedups(benchmark):
    procs = proc_sweep()

    def run_all():
        # one sweep over the whole kernels x procs grid: points fan out
        # across NUMACHINE_JOBS workers and repeat runs hit the cache
        return speedup_curves(FIG13_KERNELS, procs)

    curves = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [name] + [curves[name][p] for p in procs] for name in FIG13_KERNELS
    ]
    print_series(
        "Fig. 13: kernel parallel speedup (scaled problems)",
        ["kernel"] + [f"P={p}" for p in procs],
        rows,
    )
    for name in FIG13_KERNELS:
        paper_note(
            f"{name}: paper problem '{SUITE[name]['paper']}', "
            f"~{PAPER_FIG13_64P[name]}x at 64 processors"
        )

    top = procs[-1]
    for name in FIG13_KERNELS:
        assert curves[name][top] > 1.0, f"{name} failed to speed up"
    # Cholesky's star-shaped elimination tree makes it the worst kernel,
    # exactly as in the paper's figure
    others = [curves[n][top] for n in FIG13_KERNELS if n != "cholesky"]
    assert curves["cholesky"][top] <= min(others) * 1.05
    # LU-contiguous beats non-contiguous in absolute time (locality), even
    # where the relative curves cross
    t_contig = run_point("lu_contig", top).parallel_time_ns
    t_noncontig = run_point("lu_noncontig", top).parallel_time_ns
    assert t_contig < t_noncontig
