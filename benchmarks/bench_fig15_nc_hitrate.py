"""Fig. 15: network cache total hit rate, split into the migration and
caching effects, for the six workloads the paper plots (Barnes, Radix, FFT,
LU, Ocean, Water) at the full processor count.
"""

from harness import max_procs, paper_note, print_series, run_points, sweep_point

from repro.workloads import FIG15_APPS

#: approximate bar heights read off Fig. 15 (total %, at 64 processors)
PAPER_FIG15 = {
    "barnes": 37, "radix": 9, "fft": 10, "lu_contig": 22, "ocean": 13,
    "water_nsq": 27,
}


def test_fig15_network_cache_hit_rate(benchmark):
    procs = max_procs()

    def run_all():
        records = run_points(
            [sweep_point(name, procs, spread=True) for name in FIG15_APPS]
        )
        return {r.workload: r.nc_hit_rate for r in records}

    rates = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [name, 100 * r["total"], 100 * r["migration"], 100 * r["caching"]]
        for name, r in rates.items()
    ]
    print_series(
        f"Fig. 15: NC hit rate at P={procs} (percent)",
        ["workload", "total", "migration", "caching"],
        rows,
    )
    for name in FIG15_APPS:
        paper_note(f"{name}: ~{PAPER_FIG15[name]}% total at 64 processors")

    for name, r in rates.items():
        # split is exact by construction
        assert abs(r["migration"] + r["caching"] - r["total"]) < 1e-9
        # the NC is useful but not magic: rates in a plausible band
        assert 0.0 <= r["total"] < 0.95, (name, r)
    # at least half the workloads show a material hit rate (the paper's
    # bars range roughly 5-40%)
    material = [n for n, r in rates.items() if r["total"] > 0.05]
    assert len(material) >= len(FIG15_APPS) // 2, rates
    # the migration effect dominates for the sharing-heavy codes, as the
    # paper's stacked bars show
    assert rates["barnes"]["migration"] > 0
