"""Station-level coherence: the paper's local read / local write examples
(§2.3), with directory-state assertions against Fig. 5."""

from repro import Barrier, Machine, Read, Write
from repro.core.states import CacheState, LineState

from conftest import small_config


def dir_entry(m, addr):
    la = m.config.line_addr(addr)
    return m.stations[m.config.home_station(la)].memory.directory.entry(la)


def test_untouched_line_is_lv():
    m = Machine(small_config())
    r = m.allocate(4096, placement="local:0")
    assert dir_entry(m, r.addr(0)).state is LineState.LV


def test_local_read_stays_lv_and_sets_proc_mask():
    m = Machine(small_config())
    r = m.allocate(4096, placement="local:0")
    m.run({0: iter([Read(r.addr(0))])})
    e = dir_entry(m, r.addr(0))
    assert e.state is LineState.LV
    assert e.proc_mask == 0b01


def test_local_write_moves_to_li():
    """Fig. 5: LV --LocalReadEx--> LI, proc mask = writer only."""
    m = Machine(small_config())
    r = m.allocate(4096, placement="local:0")
    m.run({1: iter([Write(r.addr(0), 5)])})
    e = dir_entry(m, r.addr(0))
    assert e.state is LineState.LI
    assert e.proc_mask == 0b10


def test_local_write_invalidates_local_sharer():
    """The §2.3 local-write example: other local copies are invalidated,
    writer keeps the only (dirty) copy."""
    m = Machine(small_config())
    r = m.allocate(4096, placement="local:0")
    allc = (0, 1)

    def reader():
        yield Read(r.addr(0))
        yield Barrier(0, allc)
        yield Barrier(1, allc)
        v = yield Read(r.addr(0))   # must refetch and see the new value
        assert v == 99, v

    def writer():
        yield Barrier(0, allc)
        yield Write(r.addr(0), 99)
        yield Barrier(1, allc)

    m.run({0: reader(), 1: writer()})
    e = dir_entry(m, r.addr(0))
    la = m.config.line_addr(r.addr(0))
    # reader refetched after the writer's dirty copy was pulled: LV shared
    assert e.state is LineState.LV
    assert m.cpus[0].l2.lookup(la).state is CacheState.SHARED


def test_local_read_of_dirty_line_forwards_and_cleans():
    """The §2.3 local-read example: LI --LocalRead--> LV; the owner forwards
    to both requester and memory."""
    m = Machine(small_config())
    r = m.allocate(4096, placement="local:0")
    allc = (0, 1)

    def writer():
        yield Write(r.addr(0), 123)
        yield Barrier(0, allc)
        yield Barrier(1, allc)

    def reader():
        yield Barrier(0, allc)
        v = yield Read(r.addr(0))
        assert v == 123, v
        yield Barrier(1, allc)

    m.run({0: writer(), 1: reader()})
    e = dir_entry(m, r.addr(0))
    assert e.state is LineState.LV
    assert e.proc_mask == 0b11           # both hold copies now
    la = m.config.line_addr(r.addr(0))
    assert m.cpus[0].l2.lookup(la).state is CacheState.SHARED  # downgraded
    # and the memory's DRAM holds the fresh data
    assert m.stations[0].memory.read_line(la)[0] == 123


def test_local_writeback_returns_line_to_lv():
    """Fig. 5: LI --LocalWrBack--> LV."""
    cfg = small_config()
    m = Machine(cfg)
    r = m.allocate(4 * cfg.l2_size_bytes, placement="local:0")
    nlines = cfg.l2_size_bytes // cfg.line_bytes

    def prog():
        yield Write(r.addr(0), 77)
        # force the dirty line out of the (direct-mapped) L2
        for i in range(1, nlines + 1):
            yield Write(r.addr(i * cfg.line_bytes), i)

    m.run({0: prog()})
    e = dir_entry(m, r.addr(0))
    assert e.state is LineState.LV
    la = m.config.line_addr(r.addr(0))
    assert m.stations[0].memory.read_line(la)[0] == 77


def test_two_writers_serialize_ownership():
    m = Machine(small_config())
    r = m.allocate(4096, placement="local:0")
    allc = (0, 1)

    def w(cid, value):
        def gen():
            yield Write(r.addr(0), value)
            yield Barrier(0, allc)
            v = yield Read(r.addr(0))
            assert v in (10, 20)
        return gen()

    m.run({0: w(0, 10), 1: w(1, 20)})
    # exactly one final value; directory coherent
    final = m.read_word(r.addr(0))
    assert final in (10, 20)


def test_write_to_word_preserves_rest_of_line():
    m = Machine(small_config())
    r = m.allocate(4096, placement="local:0")

    def prog():
        yield Write(r.addr(0), 1)
        yield Write(r.addr(8), 2)
        yield Write(r.addr(16), 3)

    m.run({0: prog()})
    assert m.read_word(r.addr(0)) == 1
    assert m.read_word(r.addr(8)) == 2
    assert m.read_word(r.addr(16)) == 3
