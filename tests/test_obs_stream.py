"""Live telemetry: the JSONL stream and the ``repro.obs.watch`` CLI."""

from __future__ import annotations

import json

from repro import Machine, Observability, Read, Write
from repro.obs.stream import STREAM_SCHEMA, read_stream, stream_is_final
from repro.obs.watch import _fmt_eta, main as watch_main, render_status

from conftest import tiny_config


def _streamed_run(tmp_path, *, probes=True, period_ns=200.0):
    path = tmp_path / "telemetry.jsonl"
    machine = Machine(tiny_config())
    obs = Observability(
        probes=probes, stream_path=path, stream_period_ns=period_ns
    ).attach(machine)
    region = machine.allocate(2048, placement="local:1")

    def prog():
        for i in range(12):
            v = yield Read(region.addr((i * 8) % 1024))
            yield Write(region.addr((i * 8) % 1024), (v or 0) + 1)

    machine.run({0: prog()})
    return machine, obs, path


# ----------------------------------------------------------------------
# stream emission
# ----------------------------------------------------------------------
def test_stream_lines_parse_and_terminate_with_final(tmp_path):
    machine, obs, path = _streamed_run(tmp_path)
    lines = read_stream(path)
    assert len(lines) >= 2
    assert stream_is_final(lines)
    for i, line in enumerate(lines):
        st = line["stream"]
        assert st["schema"] == STREAM_SCHEMA
        assert st["seq"] == i
        assert line["meta"]["events_run"] >= 0
        # slim: the bulky sections never ride the stream
        assert "probes" not in line and "histograms" not in line
    last = lines[-1]
    assert last["stream"]["final"] is True
    assert last["stream"]["cpus_done"] == last["stream"]["cpus_total"] == 1
    assert last["meta"]["events_run"] == machine.engine.events_run
    # monotone simulated time and event count across lines
    evs = [ln["meta"]["events_run"] for ln in lines]
    assert evs == sorted(evs)


def test_stream_with_probes_terminates_and_without_probes_too(tmp_path):
    """The stream and the probe sampler are both periodic self-re-arming
    events; neither may keep the other (or the run) alive forever."""
    m1, _obs1, _ = _streamed_run(tmp_path, probes=True)
    m2, _obs2, _ = _streamed_run(tmp_path, probes=False)
    assert m1.engine.pending == 0
    assert m2.engine.pending == 0


def test_stream_does_not_perturb_canonical_stats(tmp_path):
    plain = Machine(tiny_config())
    region_p = plain.allocate(2048, placement="local:1")

    def prog(region):
        def gen():
            for i in range(12):
                yield Read(region.addr((i * 8) % 1024))
        return gen()

    plain.run({0: prog(region_p)})

    streamed = Machine(tiny_config())
    Observability(
        trace=False, probes=False, stream_path=tmp_path / "s.jsonl"
    ).attach(streamed)
    region_s = streamed.allocate(2048, placement="local:1")
    streamed.run({0: prog(region_s)})

    assert streamed.memory_stats() == plain.memory_stats()
    assert streamed.nc_stats() == plain.nc_stats()


def test_read_stream_tolerates_torn_tail(tmp_path):
    path = tmp_path / "torn.jsonl"
    good = json.dumps({"meta": {"events_run": 1}, "stream": {"seq": 0}})
    path.write_text(good + "\n" + '{"meta": {"events_r')  # mid-write tail
    lines = read_stream(path)
    assert len(lines) == 1
    assert not stream_is_final(lines)


# ----------------------------------------------------------------------
# watch CLI
# ----------------------------------------------------------------------
def test_render_status_finished_panel(tmp_path):
    _machine, _obs, path = _streamed_run(tmp_path)
    panel = render_status(read_stream(path))
    assert "FINISHED" in panel
    assert "events" in panel
    assert "cpus 1/1 done" in panel


def test_render_status_running_panel_has_eta():
    lines = [
        {"meta": {"events_run": 100, "time_ns": 500},
         "stream": {"seq": 0, "wall_ts": 10.0, "pending": 5,
                    "cpus_done": 0, "cpus_total": 4, "final": False},
         "utilizations": {"bus": 0.5}},
        {"meta": {"events_run": 300, "time_ns": 1500},
         "stream": {"seq": 1, "wall_ts": 11.0, "pending": 7,
                    "cpus_done": 1, "cpus_total": 4, "final": False},
         "utilizations": {"bus": 0.25}},
    ]
    panel = render_status(lines)
    assert "running" in panel
    assert "eta" in panel
    assert "200 events/s" in panel  # 200 events over 1s of wall clock
    assert "bus.util" in panel


def test_render_status_empty():
    assert "no stream lines" in render_status([])


def test_fmt_eta_ranges():
    assert _fmt_eta(None) == "?"
    assert _fmt_eta(30.0) == "30.0s"
    assert _fmt_eta(600.0) == "10.0m"
    assert _fmt_eta(8000.0) == "2.2h"


def test_watch_once_exit_codes(tmp_path, capsys):
    _machine, _obs, path = _streamed_run(tmp_path)
    assert watch_main([str(path), "--once"]) == 0
    assert "FINISHED" in capsys.readouterr().out

    assert watch_main([str(tmp_path / "missing.jsonl"), "--once"]) == 2
    assert "cannot read stream" in capsys.readouterr().err


def test_watch_follow_returns_on_final_line(tmp_path, capsys):
    _machine, _obs, path = _streamed_run(tmp_path)
    assert watch_main([str(path), "--interval", "0.01"]) == 0
    assert "FINISHED" in capsys.readouterr().out
