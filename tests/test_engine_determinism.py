"""Determinism and limit semantics of the fast-path event core.

The engine's optimization contract: event *ordering* is exactly the
``(time, priority, seq)`` heap key, ``run`` limits behave as documented,
and two identical machine runs replay the same event stream down to every
statistic.  These tests pin that contract so future engine work cannot
drift it.
"""

from __future__ import annotations

import pytest

from repro.sim.engine import Engine
from repro.sim.sched import SCHEDULERS
from repro.system.config import MachineConfig
from repro.system.machine import Machine
from repro.workloads.lu import LUContiguous
from repro.workloads.synthetic import HotSpot


# ----------------------------------------------------------------------
# ordering
# ----------------------------------------------------------------------
def test_same_tick_priority_orders_events():
    eng = Engine()
    order = []
    eng.schedule(5, lambda: order.append("inject"), priority=Engine.PRIO_INJECT)
    eng.schedule(5, lambda: order.append("normal"), priority=Engine.PRIO_NORMAL)
    eng.schedule(5, lambda: order.append("arrival"), priority=Engine.PRIO_ARRIVAL)
    eng.run()
    assert order == ["arrival", "normal", "inject"]


def test_same_tick_same_priority_runs_in_schedule_order():
    eng = Engine()
    order = []
    for i in range(20):
        eng.schedule(7, order.append, i)
    eng.run()
    assert order == list(range(20))


def test_priority_beats_seq_only_at_equal_time():
    eng = Engine()
    order = []
    eng.schedule(3, lambda: order.append("late-arrival"), priority=Engine.PRIO_ARRIVAL)
    eng.schedule(1, lambda: order.append("early-inject"), priority=Engine.PRIO_INJECT)
    eng.run()
    assert order == ["early-inject", "late-arrival"]


# ----------------------------------------------------------------------
# run() limits
# ----------------------------------------------------------------------
def test_run_until_advances_clock_to_until():
    eng = Engine()
    fired = []
    eng.schedule(10, fired.append, "a")
    eng.schedule(100, fired.append, "b")
    processed = eng.run(until=50)
    assert processed == 1
    assert fired == ["a"]
    # clock parks exactly at the horizon, not at the next event's time
    assert eng.now == 50
    assert eng.pending == 1
    # resuming picks the remaining event up unchanged
    eng.run()
    assert fired == ["a", "b"]
    assert eng.now == 100


def test_run_until_at_event_time_is_inclusive():
    eng = Engine()
    fired = []
    eng.schedule(50, fired.append, "edge")
    eng.run(until=50)
    assert fired == ["edge"]
    assert eng.now == 50


def test_max_events_stops_early_and_preserves_queue():
    eng = Engine()
    order = []
    for i in range(10):
        eng.schedule(i, order.append, i)
    processed = eng.run(max_events=4)
    assert processed == 4
    assert order == [0, 1, 2, 3]
    assert eng.pending == 6
    # a second limited call continues exactly where the first stopped
    assert eng.run(max_events=2) == 2
    assert order == [0, 1, 2, 3, 4, 5]
    eng.run()
    assert order == list(range(10))


def test_events_run_accumulates_across_calls():
    eng = Engine()
    for i in range(6):
        eng.schedule(i, lambda: None)
    eng.run(max_events=2)
    eng.run()
    assert eng.events_run == 6


def test_throughput_meter_counts_events_and_wall_time():
    eng = Engine()
    for i in range(100):
        eng.schedule(i, lambda: None)
    eng.run()
    meter = eng.throughput()
    assert meter["events_run"] == 100
    assert meter["wall_time_s"] > 0.0
    assert meter["events_per_sec"] == eng.events_per_sec > 0.0


# ----------------------------------------------------------------------
# whole-machine determinism
# ----------------------------------------------------------------------
def _run_hotspot():
    machine = Machine(MachineConfig.small(stations_per_ring=2, rings=2, cpus=2))
    HotSpot(words=16, ops=60).run(machine, nprocs=8)
    return machine


def test_identical_runs_produce_identical_machine_state():
    a = _run_hotspot()
    b = _run_hotspot()
    assert a.engine.events_run == b.engine.events_run
    assert a.engine.now == b.engine.now
    assert a.nc_stats() == b.nc_stats()
    assert a.memory_stats() == b.memory_stats()
    assert a.utilizations() == b.utilizations()
    assert a.ring_interface_delays() == b.ring_interface_delays()


# ----------------------------------------------------------------------
# cross-scheduler determinism: every scheduler pops events in the exact
# (time, priority, seq) order, so whole-machine runs are bit-identical
# under the calendar queue, the reference heap, and with packet pooling
# disabled.
# ----------------------------------------------------------------------
def _fingerprint(machine: Machine) -> tuple:
    return (
        machine.engine.events_run,
        machine.engine.now,
        machine.nc_stats(),
        machine.memory_stats(),
        machine.utilizations(),
        machine.ring_interface_delays(),
    )


def _run_fingerprint(workload_factory, nprocs=8) -> tuple:
    machine = Machine(MachineConfig.small(stations_per_ring=2, rings=2, cpus=2))
    workload_factory().run(machine, nprocs=nprocs)
    return _fingerprint(machine)


_WORKLOADS = {
    "hotspot": lambda: HotSpot(words=16, ops=60),
    # a SPLASH-style kernel: exercises runs, barriers and real data flow
    "lu": lambda: LUContiguous(n=16, block=4),
}


@pytest.mark.parametrize("workload", sorted(_WORKLOADS))
def test_schedulers_are_bit_identical(monkeypatch, workload):
    prints = {}
    for name in sorted(SCHEDULERS):
        monkeypatch.setenv("NUMACHINE_SCHED", name)
        prints[name] = _run_fingerprint(_WORKLOADS[workload])
    assert prints["calendar"] == prints["heap"]


@pytest.mark.parametrize("workload", sorted(_WORKLOADS))
def test_packet_pooling_does_not_change_results(monkeypatch, workload):
    from repro.interconnect import packet as pktmod

    baseline = _run_fingerprint(_WORKLOADS[workload])
    # disable recycling entirely and drop any pooled packets
    monkeypatch.setattr(pktmod, "POOLING", False)
    monkeypatch.setattr(pktmod, "_pool", [])
    assert _run_fingerprint(_WORKLOADS[workload]) == baseline


def test_explicit_scheduler_override_beats_environment(monkeypatch):
    monkeypatch.setenv("NUMACHINE_SCHED", "heap")
    eng = Engine(scheduler="calendar")
    assert eng.scheduler_name == "calendar"
    eng = Engine()
    assert eng.scheduler_name == "heap"


def test_auto_scheduler_selection_scales_with_machine(monkeypatch):
    monkeypatch.delenv("NUMACHINE_SCHED", raising=False)
    big = Machine(MachineConfig.prototype())          # 64 processors
    assert big.engine.scheduler_name == "calendar"
    small = Machine(MachineConfig.small(stations_per_ring=2, rings=2, cpus=2))
    assert small.engine.scheduler_name == "heap"      # below the crossover
    assert Engine().scheduler_name == "calendar"      # size unknown


def test_run_refines_auto_selection_to_active_program_count(monkeypatch):
    # a 64-CPU machine driving only 16 programs generates a 16-CPU-sized
    # event population, so Machine.run refines the auto-choice back to heap
    monkeypatch.delenv("NUMACHINE_SCHED", raising=False)
    m = Machine(MachineConfig.prototype())
    assert m.engine.scheduler_name == "calendar"
    HotSpot(words=16, ops=10).run(m, nprocs=16)
    assert m.engine.scheduler_name == "heap"
    # at full scale the calendar stays in place
    m = Machine(MachineConfig.prototype())
    HotSpot(words=16, ops=4).run(m, nprocs=64)
    assert m.engine.scheduler_name == "calendar"
    # an explicit env choice is never second-guessed
    monkeypatch.setenv("NUMACHINE_SCHED", "calendar")
    m = Machine(MachineConfig.prototype())
    HotSpot(words=16, ops=10).run(m, nprocs=16)
    assert m.engine.scheduler_name == "calendar"
    # the hint never acts once anything has been scheduled
    eng = Engine(num_cpus=64)
    eng.schedule(1, lambda: None)
    eng.size_hint(4)
    assert eng.scheduler_name == "calendar"


def test_unknown_scheduler_is_rejected(monkeypatch):
    monkeypatch.setenv("NUMACHINE_SCHED", "splay-tree")
    with pytest.raises(ValueError):
        Engine()
