"""Determinism and limit semantics of the fast-path event core.

The engine's optimization contract: event *ordering* is exactly the
``(time, priority, seq)`` heap key, ``run`` limits behave as documented,
and two identical machine runs replay the same event stream down to every
statistic.  These tests pin that contract so future engine work cannot
drift it.
"""

from __future__ import annotations

from repro.sim.engine import Engine
from repro.system.config import MachineConfig
from repro.system.machine import Machine
from repro.workloads.synthetic import HotSpot


# ----------------------------------------------------------------------
# ordering
# ----------------------------------------------------------------------
def test_same_tick_priority_orders_events():
    eng = Engine()
    order = []
    eng.schedule(5, lambda: order.append("inject"), priority=Engine.PRIO_INJECT)
    eng.schedule(5, lambda: order.append("normal"), priority=Engine.PRIO_NORMAL)
    eng.schedule(5, lambda: order.append("arrival"), priority=Engine.PRIO_ARRIVAL)
    eng.run()
    assert order == ["arrival", "normal", "inject"]


def test_same_tick_same_priority_runs_in_schedule_order():
    eng = Engine()
    order = []
    for i in range(20):
        eng.schedule(7, order.append, i)
    eng.run()
    assert order == list(range(20))


def test_priority_beats_seq_only_at_equal_time():
    eng = Engine()
    order = []
    eng.schedule(3, lambda: order.append("late-arrival"), priority=Engine.PRIO_ARRIVAL)
    eng.schedule(1, lambda: order.append("early-inject"), priority=Engine.PRIO_INJECT)
    eng.run()
    assert order == ["early-inject", "late-arrival"]


# ----------------------------------------------------------------------
# run() limits
# ----------------------------------------------------------------------
def test_run_until_advances_clock_to_until():
    eng = Engine()
    fired = []
    eng.schedule(10, fired.append, "a")
    eng.schedule(100, fired.append, "b")
    processed = eng.run(until=50)
    assert processed == 1
    assert fired == ["a"]
    # clock parks exactly at the horizon, not at the next event's time
    assert eng.now == 50
    assert eng.pending == 1
    # resuming picks the remaining event up unchanged
    eng.run()
    assert fired == ["a", "b"]
    assert eng.now == 100


def test_run_until_at_event_time_is_inclusive():
    eng = Engine()
    fired = []
    eng.schedule(50, fired.append, "edge")
    eng.run(until=50)
    assert fired == ["edge"]
    assert eng.now == 50


def test_max_events_stops_early_and_preserves_queue():
    eng = Engine()
    order = []
    for i in range(10):
        eng.schedule(i, order.append, i)
    processed = eng.run(max_events=4)
    assert processed == 4
    assert order == [0, 1, 2, 3]
    assert eng.pending == 6
    # a second limited call continues exactly where the first stopped
    assert eng.run(max_events=2) == 2
    assert order == [0, 1, 2, 3, 4, 5]
    eng.run()
    assert order == list(range(10))


def test_events_run_accumulates_across_calls():
    eng = Engine()
    for i in range(6):
        eng.schedule(i, lambda: None)
    eng.run(max_events=2)
    eng.run()
    assert eng.events_run == 6


def test_throughput_meter_counts_events_and_wall_time():
    eng = Engine()
    for i in range(100):
        eng.schedule(i, lambda: None)
    eng.run()
    meter = eng.throughput()
    assert meter["events_run"] == 100
    assert meter["wall_time_s"] > 0.0
    assert meter["events_per_sec"] == eng.events_per_sec > 0.0


# ----------------------------------------------------------------------
# whole-machine determinism
# ----------------------------------------------------------------------
def _run_hotspot():
    machine = Machine(MachineConfig.small(stations_per_ring=2, rings=2, cpus=2))
    HotSpot(words=16, ops=60).run(machine, nprocs=8)
    return machine


def test_identical_runs_produce_identical_machine_state():
    a = _run_hotspot()
    b = _run_hotspot()
    assert a.engine.events_run == b.engine.events_run
    assert a.engine.now == b.engine.now
    assert a.nc_stats() == b.nc_stats()
    assert a.memory_stats() == b.memory_stats()
    assert a.utilizations() == b.utilizations()
    assert a.ring_interface_delays() == b.ring_interface_delays()
