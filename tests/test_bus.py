"""Tests for the station bus and the ordered module output port."""

from repro.sim.engine import Engine
from repro.system.bus import Bus, OrderedPort


def test_bus_serializes_transactions():
    engine = Engine()
    bus = Bus(engine, "b", arb_ticks=10)
    done = []
    bus.request(100, lambda start: done.append(("a", start, engine.now)))
    bus.request(50, lambda start: done.append(("b", start, engine.now)))
    engine.run()
    assert [d[0] for d in done] == ["a", "b"]
    # first: arb 10 + 100 = completes at 110; second: grant at 110 + arb + 50
    assert done[0][2] == 110
    assert done[1][2] == 170


def test_bus_busy_accounting_excludes_arbitration():
    engine = Engine()
    bus = Bus(engine, "b", arb_ticks=10)
    bus.request(100, lambda start: None)
    engine.run()
    assert bus.busy.busy == 100
    assert bus.transactions.value == 1


def test_bus_utilization():
    engine = Engine()
    bus = Bus(engine, "b", arb_ticks=0)
    bus.request(30, lambda start: None)
    engine.run()
    engine.schedule(70, lambda: None)
    engine.run()
    assert abs(bus.utilization(engine.now) - 0.3) < 1e-9


def test_ordered_port_preserves_issue_order_despite_delays():
    """The coherence-critical property: an action issued earlier but with a
    longer ready delay still reaches the bus first."""
    engine = Engine()
    bus = Bus(engine, "b", arb_ticks=0)
    port = OrderedPort(engine, bus)
    order = []
    port.send(500, 10, lambda start: order.append("slow-first"))
    port.send(0, 10, lambda start: order.append("fast-second"))
    engine.run()
    assert order == ["slow-first", "fast-second"]


def test_ordered_port_respects_ready_time():
    engine = Engine()
    bus = Bus(engine, "b", arb_ticks=0)
    port = OrderedPort(engine, bus)
    times = []
    port.send(300, 10, lambda start: times.append(engine.now))
    engine.run()
    assert times[0] == 310  # waits for readiness, then 10 ticks of transfer


def test_ordered_port_interleaves_with_direct_requests():
    """Direct bus users and the port share the same FIFO arbiter; the port
    adds one scheduling step, so a simultaneous direct request wins the
    arbiter, but both complete."""
    engine = Engine()
    bus = Bus(engine, "b", arb_ticks=0)
    port = OrderedPort(engine, bus)
    order = []
    port.send(0, 10, lambda start: order.append("port"))
    bus.request(10, lambda start: order.append("direct"))
    engine.run()
    assert sorted(order) == ["direct", "port"]
