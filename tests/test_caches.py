"""Tests for the cache arrays: L1/L2 (set-associative LRU) and the NC's
direct-mapped slot array — including a hypothesis model check."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.base import CacheArray
from repro.cache.nc_array import NCArray, NCLine
from repro.core.states import CacheState, LineState

LINE = 64


def test_lookup_miss_and_install():
    c = CacheArray("t", size_bytes=4 * LINE, line_bytes=LINE)
    assert c.lookup(0) is None
    c.install(0, CacheState.SHARED, [1] * 8)
    line = c.lookup(0)
    assert line.state is CacheState.SHARED
    assert line.data == [1] * 8


def test_direct_mapped_conflict_evicts():
    c = CacheArray("t", size_bytes=4 * LINE, line_bytes=LINE, assoc=1)
    c.install(0, CacheState.DIRTY, [7] * 8)
    victim = c.install(4 * LINE, CacheState.SHARED, [0] * 8)  # same set
    assert victim is not None
    assert victim.addr == 0
    assert victim.state is CacheState.DIRTY
    assert c.lookup(0) is None


def test_assoc_lru_order():
    c = CacheArray("t", size_bytes=4 * LINE, line_bytes=LINE, assoc=2)
    a, b, d = 0, 2 * LINE, 4 * LINE  # all map to set 0
    c.install(a, CacheState.SHARED, [])
    c.install(b, CacheState.SHARED, [])
    c.lookup(a)                       # touch a: b becomes LRU
    victim = c.install(d, CacheState.SHARED, [])
    assert victim.addr == b
    assert c.lookup(a) is not None


def test_invalidate_and_downgrade():
    c = CacheArray("t", size_bytes=4 * LINE, line_bytes=LINE)
    c.install(0, CacheState.DIRTY, [1])
    assert c.downgrade(0).state is CacheState.SHARED
    assert c.invalidate(0).addr == 0
    assert c.lookup(0) is None


def test_reinstall_same_line_no_victim():
    c = CacheArray("t", size_bytes=2 * LINE, line_bytes=LINE, assoc=1)
    c.install(0, CacheState.SHARED, [1])
    victim = c.install(0, CacheState.DIRTY, [2])
    assert victim is None
    assert c.lookup(0).state is CacheState.DIRTY


@given(st.lists(st.tuples(st.integers(0, 15), st.booleans()), max_size=120))
@settings(max_examples=80, deadline=None)
def test_cache_array_matches_reference_lru_model(ops):
    """Cross-check CacheArray against a brute-force LRU model."""
    assoc, nsets = 2, 4
    c = CacheArray("t", size_bytes=assoc * nsets * LINE, line_bytes=LINE,
                   assoc=assoc)
    model = {s: [] for s in range(nsets)}  # set -> [addr] in LRU..MRU order
    for block, is_install in ops:
        addr = block * LINE
        s = block % nsets
        if is_install:
            victim = c.install(addr, CacheState.SHARED, [])
            if addr in model[s]:
                model[s].remove(addr)
                assert victim is None
            elif len(model[s]) >= assoc:
                expect_victim = model[s].pop(0)
                assert victim is not None and victim.addr == expect_victim
            else:
                assert victim is None
            model[s].append(addr)
        else:
            line = c.lookup(addr)
            assert (line is not None) == (addr in model[s])
            if line is not None:
                model[s].remove(addr)
                model[s].append(addr)


# ----------------------------------------------------------------------
# the NC array
# ----------------------------------------------------------------------
def test_nc_probe_requires_tag_match():
    nc = NCArray("nc", size_bytes=4 * LINE, line_bytes=LINE)
    nc.insert(NCLine(addr=0, state=LineState.GV))
    assert nc.probe(0) is not None
    assert nc.probe(4 * LINE) is None          # same slot, different tag
    assert nc.occupant(4 * LINE).addr == 0     # but the slot is occupied


def test_nc_insert_displaces_conflicting_line():
    nc = NCArray("nc", size_bytes=4 * LINE, line_bytes=LINE)
    nc.insert(NCLine(addr=0, state=LineState.GV))
    displaced = nc.insert(NCLine(addr=4 * LINE, state=LineState.GI))
    assert displaced.addr == 0
    assert nc.probe(4 * LINE) is not None
    assert nc.probe(0) is None


def test_nc_insert_same_line_not_displaced():
    nc = NCArray("nc", size_bytes=4 * LINE, line_bytes=LINE)
    nc.insert(NCLine(addr=0, state=LineState.GV))
    displaced = nc.insert(NCLine(addr=0, state=LineState.LI))
    assert displaced is None


def test_nc_evict_checks_tag():
    nc = NCArray("nc", size_bytes=4 * LINE, line_bytes=LINE)
    nc.insert(NCLine(addr=0, state=LineState.GV))
    assert nc.evict(4 * LINE) is None   # tag mismatch: nothing evicted
    assert nc.evict(0).addr == 0
    assert nc.occupancy() == 0


def test_nc_data_valid_property():
    assert NCLine(addr=0, state=LineState.GV, data=[1]).data_valid
    assert NCLine(addr=0, state=LineState.LV, data=[1]).data_valid
    assert not NCLine(addr=0, state=LineState.LI, data=[1]).data_valid
    assert not NCLine(addr=0, state=LineState.GV, data=None).data_valid
