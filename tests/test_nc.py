"""Network cache behaviour: the four effects of §3.1.4 (migration, caching,
combining, coherence localization), plus ejection rules and bypass mode."""

from repro import Barrier, Machine, Read, Write
from repro.core.states import LineState

from conftest import small_config


def cpus_of(m, station):
    per = m.config.cpus_per_station
    return list(range(station * per, (station + 1) * per))


def test_migration_effect():
    """One processor's miss brings the line in; its station sibling hits."""
    m = Machine(small_config())
    r = m.allocate(4096, placement="local:1")
    p0, p1 = cpus_of(m, 0)
    allc = (p0, p1)

    def first():
        yield Read(r.addr(0))
        yield Barrier(0, allc)

    def second():
        yield Barrier(0, allc)
        yield Read(r.addr(0))

    m.run({p0: first(), p1: second()})
    s = m.nc_stats()
    assert s["misses"] == 1
    assert s["hits"] == 1
    assert s["migration_hits"] == 1
    assert s.get("caching_hits", 0) == 0


def test_caching_effect_via_writeback():
    """A dirty line written back to the NC and re-read by the same
    processor counts as a caching hit (fig 6 LocalWrBack -> LV)."""
    cfg = small_config(l2_size_bytes=8 * 1024)
    m = Machine(cfg)
    r = m.allocate(4 * cfg.l2_size_bytes, placement="local:1")
    p0 = cpus_of(m, 0)[0]
    nlines = cfg.l2_size_bytes // cfg.line_bytes

    def prog():
        yield Write(r.addr(0), 42)
        # evict it from L2 (direct-mapped conflict) -> write-back into NC
        yield Write(r.addr(nlines * cfg.line_bytes), 1)
        # re-read: must hit the NC (caching effect), not go remote
        v = yield Read(r.addr(0))
        assert v == 42

    m.run({p0: prog()})
    s = m.nc_stats()
    assert s.get("caching_hits", 0) >= 1
    assert s.get("wb_forwarded", 0) == 0       # data stayed in the NC


def test_combining_effect():
    """Concurrent requests for one in-flight line are NACKed and counted
    as combined; their retries are satisfied locally."""
    m = Machine(small_config())
    r = m.allocate(4096, placement="local:1")
    p0, p1 = cpus_of(m, 0)

    def reader():
        yield Read(r.addr(0))

    m.run({p0: reader(), p1: reader()})
    s = m.nc_stats()
    assert s["misses"] == 1                     # one network fetch
    assert s["hits"] == 1                       # the other satisfied locally
    assert s.get("combined_requests", 0) >= 1
    assert m.nc_combining_rate() > 0


def test_coherence_localization_write_after_station_read():
    """LV write grant happens entirely within the station: no new request
    reaches the home memory."""
    cfg = small_config()
    m = Machine(cfg)
    r = m.allocate(4096, placement="local:1")
    p0, p1 = cpus_of(m, 0)
    allc = (p0, p1)

    def owner():
        yield Write(r.addr(0), 5)     # station 0 takes exclusive ownership
        yield Barrier(0, allc)
        yield Barrier(1, allc)
        # localized again: the NC (LI) intervenes locally for the new read
        v = yield Read(r.addr(0))
        assert v == 6, v

    def sibling():
        yield Barrier(0, allc)
        v = yield Read(r.addr(0))     # NC local intervention (hit)
        assert v == 5, v
        yield Write(r.addr(0), 6)     # NC LV -> local exclusivity grant
        yield Barrier(1, allc)

    m.run({p0: owner(), p1: sibling()})
    home_mem = m.stations[1].memory
    # after the initial fetch, everything stayed on station 0
    la = m.config.line_addr(r.addr(0))
    e = home_mem.directory.entry(la)
    assert e.state is LineState.GI
    assert home_mem._owner_station(e) == 0
    # exactly one miss went remote; the rest were local hits
    s = m.nc_stats()
    assert s["misses"] == 1
    assert s["hits"] >= 2


def test_gv_ejection_is_silent_but_invalidates_sharers():
    cfg = small_config(l2_size_bytes=64 * 1024, nc_size_bytes=32 * 1024)
    m = Machine(cfg)
    nc_slots = cfg.nc_size_bytes // cfg.line_bytes
    base = m.allocate(cfg.line_bytes * (nc_slots + 1), placement="local:1")
    a, b = base.addr(0), base.addr(nc_slots * cfg.line_bytes)
    p0 = cpus_of(m, 0)[0]

    def prog():
        yield Read(a)      # NC GV
        yield Read(b)      # conflicts: ejects a (clean: no writeback)
        v = yield Read(a)  # must refetch remotely
        assert v == 0

    m.run({p0: prog()})
    s = m.nc_stats()
    assert s["ejections"] >= 1
    assert s.get("wb_forwarded", 0) == 0
    assert s["misses"] >= 2    # a (twice) + b... at least the refetch


def test_lv_ejection_writes_back_home():
    cfg = small_config(l2_size_bytes=64 * 1024, nc_size_bytes=32 * 1024)
    m = Machine(cfg)
    nc_slots = cfg.nc_size_bytes // cfg.line_bytes
    base = m.allocate(cfg.line_bytes * (nc_slots + 1), placement="local:1")
    a, b = base.addr(0), base.addr(nc_slots * cfg.line_bytes)
    p0, p1 = cpus_of(m, 0)
    allc = (p0, p1)

    def writer():
        yield Write(a, 7)             # station 0 owner; NC LI
        yield Barrier(0, allc)
        yield Barrier(1, allc)

    def sibling():
        yield Barrier(0, allc)
        v = yield Read(a)             # local intervention: NC LV with data
        assert v == 7
        yield Read(b)                 # eject the LV line -> writeback home
        yield Barrier(1, allc)

    m.run({p0: writer(), p1: sibling()})
    s = m.nc_stats()
    assert s.get("wb_forwarded", 0) >= 1
    la = m.config.line_addr(a)
    assert m.stations[1].memory.read_line(la)[0] == 7
    e = m.stations[1].memory.directory.entry(la)
    assert e.state is LineState.GV     # fig 5: GI --RemWrBack--> GV


def test_nc_bypass_mode_is_correct_but_slower():
    """nc_enabled=False: every remote access goes home; values identical."""
    times = {}
    for enabled in (True, False):
        cfg = small_config(nc_enabled=enabled)
        m = Machine(cfg)
        r = m.allocate(4096, placement="local:1")
        p0, p1 = cpus_of(m, 0)
        allc = (p0, p1)

        def first():
            for i in range(8):
                yield Write(r.addr(i * 8), i + 1)
            yield Barrier(0, allc)

        def second():
            yield Barrier(0, allc)
            total = 0
            for i in range(8):
                v = yield Read(r.addr(i * 8))
                total += v
            assert total == sum(range(1, 9)), total
            # re-read: with the NC this is station-local; without it the
            # lines are in L2 anyway - so read a second line set too
            v = yield Read(r.addr(0))
            assert v == 1

        res = m.run({p0: first(), p1: second()})
        times[enabled] = m.parallel_time_ns(res)
        if enabled:
            assert m.nc_stats().get("hits", 0) > 0
        else:
            assert m.nc_stats().get("hits", 0) == 0
    # reading the sibling's freshly written data through the NC is faster
    assert times[True] <= times[False]


def test_prefetch_fills_nc_without_waking_cpu():
    from repro import SoftOp

    cfg = small_config()
    m = Machine(cfg)
    r = m.allocate(4096, placement="local:1")
    p0 = cpus_of(m, 0)[0]

    def prog():
        yield SoftOp("prefetch_nc", {"addr": r.addr(0)})
        yield from ()  # nothing else: prefetch is asynchronous

    m.run({p0: prog()})
    line = m.stations[0].nc.array.probe(m.config.line_addr(r.addr(0)))
    assert line is not None
    assert line.state is LineState.GV
    assert m.nc_stats().get("prefetch_fills", 0) == 1
