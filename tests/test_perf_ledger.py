"""The cross-checkout performance ledger (repro.perf.ledger)."""

from __future__ import annotations

import json

from repro.perf import ledger


def test_append_read_roundtrip(tmp_path):
    path = tmp_path / "history.jsonl"
    e1 = ledger.append_entry("engine_throughput",
                             {"events_per_sec": 1e6, "backend": "elab"},
                             path=path)
    e2 = ledger.append_entry("scale_sweep", {"points": 3}, path=path)
    entries = ledger.read_ledger(path)
    assert [e["bench"] for e in entries] == ["engine_throughput", "scale_sweep"]
    assert entries[0]["result"] == e1["result"]
    assert entries[1]["result"] == e2["result"]
    # one self-describing JSON object per line
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    for line in lines:
        json.loads(line)


def test_entry_schema_and_provenance():
    entry = ledger.make_entry("x", {"v": 1})
    assert entry["schema"] == ledger.LEDGER_SCHEMA
    assert entry["bench"] == "x"
    assert entry["result"] == {"v": 1}
    assert entry["ts"] > 0
    assert "T" in entry["date"]
    host = entry["host"]
    assert set(host) == {"platform", "machine", "python", "cpu_count"}
    # this test runs inside the repo: a 40-hex sha must resolve
    assert entry["git_sha"] is None or len(entry["git_sha"]) == 40


def test_git_sha_env_override(monkeypatch):
    monkeypatch.setenv("GITHUB_SHA", "cafe" * 10)
    assert ledger.git_sha() == "cafe" * 10


def test_append_never_raises_on_unwritable_path(tmp_path):
    target = tmp_path / "no" / "such" / "dir" / "ledger.jsonl"
    entry = ledger.append_entry("x", {"v": 1}, path=target)
    assert entry["bench"] == "x"  # entry still produced
    assert not target.exists()


def test_read_skips_torn_and_blank_lines(tmp_path):
    path = tmp_path / "history.jsonl"
    good = json.dumps(ledger.make_entry("ok", {}))
    path.write_text(good + "\n\n{torn line\n" + good + "\n")
    entries = ledger.read_ledger(path)
    assert len(entries) == 2
    assert all(e["bench"] == "ok" for e in entries)


def test_read_missing_file_is_empty(tmp_path):
    assert ledger.read_ledger(tmp_path / "absent.jsonl") == []


def test_default_path_is_repo_root():
    assert ledger.DEFAULT_PATH.name == "BENCH_history.jsonl"
    # sits next to the existing single-shot bench result files
    assert (ledger.DEFAULT_PATH.parent / "ROADMAP.md").exists()
