"""Tests for machine configuration and the address map / page placement."""

import pytest

from repro import Machine, MachineConfig
from repro.interconnect.routing import Geometry
from repro.system.address_map import AddressMap, PageAttributes

from conftest import small_config


def test_prototype_defaults():
    cfg = MachineConfig.prototype()
    assert cfg.num_stations == 16
    assert cfg.num_cpus == 64
    assert cfg.line_words == 8
    assert cfg.line_flits == 9            # header + 8 data flits
    assert cfg.line_bus_ticks == 8 * cfg.bus_cycle_ticks
    cfg.validate()


def test_home_station_by_address_range():
    cfg = small_config()
    assert cfg.home_station(0) == 0
    assert cfg.home_station(cfg.station_mem_bytes) == 1
    assert cfg.home_station(3 * cfg.station_mem_bytes + 5) == 3
    with pytest.raises(ValueError):
        cfg.home_station(cfg.num_stations * cfg.station_mem_bytes)


def test_line_addr_alignment():
    cfg = small_config()
    assert cfg.line_addr(0) == 0
    assert cfg.line_addr(63) == 0
    assert cfg.line_addr(64) == 64
    assert cfg.line_addr(130) == 128


def test_validate_rejects_bad_sizes():
    cfg = small_config()
    cfg.line_bytes = 60
    with pytest.raises(ValueError):
        cfg.validate()


def test_round_robin_placement():
    cfg = small_config()
    amap = AddressMap(cfg)
    region = amap.allocate(4 * cfg.page_bytes, placement="round_robin")
    homes = [cfg.home_station(p) for p in region.pages]
    assert homes == [0, 1, 2, 3]


def test_local_placement():
    cfg = small_config()
    amap = AddressMap(cfg)
    region = amap.allocate(3 * cfg.page_bytes, placement="local:2")
    assert all(cfg.home_station(p) == 2 for p in region.pages)
    region2 = amap.allocate(cfg.page_bytes, placement=1)
    assert cfg.home_station(region2.pages[0]) == 1


def test_block_placement_spreads_chunks():
    cfg = small_config()
    amap = AddressMap(cfg)
    region = amap.allocate(8 * cfg.page_bytes, placement="block")
    homes = [cfg.home_station(p) for p in region.pages]
    assert homes == sorted(homes)
    assert set(homes) == {0, 1, 2, 3}


def test_region_addressing_spans_pages():
    cfg = small_config()
    amap = AddressMap(cfg)
    region = amap.allocate(2 * cfg.page_bytes, placement="round_robin")
    a0 = region.addr(0)
    a1 = region.addr(cfg.page_bytes)  # first byte of second page
    assert cfg.home_station(a0) == 0
    assert cfg.home_station(a1) == 1
    with pytest.raises(IndexError):
        region.addr(2 * cfg.page_bytes)


def test_memory_exhaustion():
    cfg = small_config()
    amap = AddressMap(cfg)
    with pytest.raises(MemoryError):
        amap.allocate(cfg.station_mem_bytes + cfg.page_bytes, placement="local:0")


def test_page_attributes_attached():
    cfg = small_config()
    amap = AddressMap(cfg)
    attrs = PageAttributes(cacheable=False)
    region = amap.allocate(cfg.page_bytes, attrs=attrs)
    assert not region.attrs.cacheable
    assert amap.regions[region.name] is region


def test_unknown_placement_rejected():
    cfg = small_config()
    amap = AddressMap(cfg)
    with pytest.raises(ValueError):
        amap.allocate(64, placement="diagonal")


def test_machine_builds_all_geometries():
    for levels in [(2,), (4,), (2, 2), (2, 3)]:
        cfg = MachineConfig(
            geometry=Geometry(levels, processors_per_station=2),
            l1_size_bytes=1024, l2_size_bytes=8192, nc_size_bytes=32768,
            station_mem_bytes=1 << 22,
        )
        m = Machine(cfg)
        assert len(m.stations) == cfg.num_stations
        assert len(m.cpus) == cfg.num_cpus
