"""Hit-run batching (ReadRun / WriteRun) semantics.

The contract: a run op is observationally equivalent to the word-by-word
loop it replaces — same values, same hit/miss counters, same coherence
traffic, and (on an uncontended processor) the same program completion
time.  Only the number of engine events differs, because a run consumes
whole cache lines per Python iteration instead of one generator
round-trip per word.
"""

from __future__ import annotations

import pytest

from repro import Machine, Read, ReadRun, Write, WriteRun
from repro.sim.engine import SimulationError

from conftest import small_config


def _counters(cpu):
    return {
        "reads": cpu.stats.counter("reads").value,
        "writes": cpu.stats.counter("writes").value,
        "read_misses": cpu.stats.counter("read_misses").value,
        "write_misses": cpu.stats.counter("write_misses").value,
    }


def _run_one(prog_factory, nwords=96):
    m = Machine(small_config())
    region = m.allocate(m.config.word_bytes * nwords, placement="local:0", name="buf")
    base = region.addr(0)
    m.run({0: prog_factory(base, m.config.word_bytes, nwords)})
    return m, m.cpus[0]


def test_write_run_read_run_roundtrip_values():
    got = {}

    def prog(base, wb, n):
        yield WriteRun(base, tuple(float(i) * 1.5 for i in range(n)))
        vals = yield ReadRun(base, n)
        got["vals"] = list(vals)

    _run_one(prog)
    assert got["vals"] == [float(i) * 1.5 for i in range(96)]


def test_runs_interoperate_with_word_ops():
    got = {}

    def prog(base, wb, n):
        yield WriteRun(base, tuple(float(i) for i in range(n)))
        got["one"] = (yield Read(base + 17 * wb))
        yield Write(base + 3 * wb, -8.0)
        vals = yield ReadRun(base, n)
        got["vals"] = list(vals)

    _run_one(prog)
    assert got["one"] == 17.0
    expected = [float(i) for i in range(96)]
    expected[3] = -8.0
    assert got["vals"] == expected


def test_run_counters_match_word_loop():
    def words(base, wb, n):
        for i in range(n):
            yield Write(base + i * wb, float(i))
        for i in range(n):
            yield Read(base + i * wb)

    def runs(base, wb, n):
        yield WriteRun(base, tuple(float(i) for i in range(n)))
        yield ReadRun(base, n)

    _, cw = _run_one(words)
    _, cr = _run_one(runs)
    cc = _counters(cr)
    assert _counters(cw) == cc
    # every access is accounted once, as a hit or as a miss
    assert cc["reads"] + cc["read_misses"] == 96
    assert cc["writes"] + cc["write_misses"] == 96


def test_run_completion_time_matches_word_loop():
    """On one CPU with no contention the closed-form time advance lands the
    program at exactly the same finish tick as the per-word loop."""

    def words(base, wb, n):
        for i in range(n):
            yield Write(base + i * wb, float(i))
        for i in range(n):
            yield Read(base + i * wb)

    def runs(base, wb, n):
        yield WriteRun(base, tuple(float(i) for i in range(n)))
        yield ReadRun(base, n)

    mw, cw = _run_one(words)
    mr, cr = _run_one(runs)
    assert cw.finished_at == cr.finished_at


def test_run_suspends_on_miss_and_resumes():
    """A cold run misses on every line; each miss goes through the normal
    miss path and the run picks up where it left off."""
    cfg = small_config()
    m = Machine(cfg)
    nwords = 4 * cfg.line_bytes // cfg.word_bytes  # four lines
    region = m.allocate(cfg.word_bytes * nwords, placement="local:1", name="rbuf")
    base = region.addr(0)
    got = {}

    def writer():
        yield WriteRun(base, tuple(float(i) for i in range(nwords)))

    def reader():
        got["vals"] = list((yield ReadRun(base, nwords)))

    # write from station 0, then read from a cpu on station 1 so every
    # line of the read run misses and is fetched through the protocol
    m.run({0: writer()})
    other = cfg.cpus_per_station  # first cpu of station 1
    m.run({other: reader()})
    assert got["vals"] == [float(i) for i in range(nwords)]
    reader_cpu = m.cpus[other]
    assert reader_cpu.stats.counter("read_misses").value == 4
    assert reader_cpu.stats.counter("reads").value == nwords - 4


def test_read_run_with_stride():
    got = {}

    def prog(base, wb, n):
        yield WriteRun(base, tuple(float(i) for i in range(n)))
        got["even"] = list((yield ReadRun(base, n // 2, stride=2 * wb)))

    _run_one(prog)
    assert got["even"] == [float(i) for i in range(0, 96, 2)]


def test_bad_stride_raises():
    def prog(base, wb, n):
        yield ReadRun(base, 4, stride=wb + 1)

    with pytest.raises(SimulationError):
        _run_one(prog)


def test_empty_run_is_a_noop():
    got = {}

    def prog(base, wb, n):
        got["vals"] = list((yield ReadRun(base, 0)))
        yield WriteRun(base, ())
        yield Write(base, 5.0)
        got["after"] = (yield Read(base))

    _run_one(prog)
    assert got["vals"] == []
    assert got["after"] == 5.0
