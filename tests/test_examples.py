"""Smoke tests: every example script runs cleanly as a subprocess."""

import os
import subprocess
import sys


EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def _run(script, *args, timeout=420):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, script), *args],
        capture_output=True, text=True, timeout=timeout,
    )


def test_quickstart_example():
    r = _run("quickstart.py")
    assert r.returncode == 0, r.stderr
    assert "network cache hit rate" in r.stdout
    assert "utilization" in r.stdout


def test_speedup_example_small():
    r = _run("splash_speedup.py", "ocean", "4")
    assert r.returncode == 0, r.stderr
    assert "speedup" in r.stdout
    assert "P" in r.stdout


def test_software_coherence_example():
    r = _run("software_coherence.py")
    assert r.returncode == 0, r.stderr
    for marker in ("eureka", "block copy", "zeroing", "interrupt"):
        assert marker in r.stdout, r.stdout


def test_monitoring_example():
    r = _run("monitoring.py")
    assert r.returncode == 0, r.stderr
    assert "coherence histogram" in r.stdout
    assert "phase" in r.stdout
