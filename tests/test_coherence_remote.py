"""Network-level coherence: the paper's remote read and remote write (fig 7)
examples, GI intervention forwarding, ownership transfer, and the optimistic
upgrade machinery (§2.3, §4.6)."""

from repro import Barrier, Machine, Read, Write
from repro.core.states import CacheState, LineState

from conftest import small_config


def home_entry(m, addr):
    la = m.config.line_addr(addr)
    return m.stations[m.config.home_station(la)].memory.directory.entry(la)


def nc_line(m, station, addr):
    return m.stations[station].nc.array.probe(m.config.line_addr(addr))


def cpus_of(m, station):
    per = m.config.cpus_per_station
    return list(range(station * per, (station + 1) * per))


def test_remote_read_goes_gv_and_fills_nc():
    """Remote shared read: home -> GV with the reader's station in the mask;
    the reader's NC holds a GV copy."""
    m = Machine(small_config())
    r = m.allocate(4096, placement="local:1")
    reader = cpus_of(m, 0)[0]
    m.run({reader: iter([Read(r.addr(0))])})
    e = home_entry(m, r.addr(0))
    assert e.state is LineState.GV
    assert m.stations[1].memory.directory.may_have_copy(e, 0)
    line = nc_line(m, 0, r.addr(0))
    assert line is not None and line.state is LineState.GV
    assert line.proc_mask == 0b01


def test_remote_write_follows_fig7():
    """Remote write to a shared line: data first, ordered invalidation after;
    home ends GI with the writer's station as owner; writer's NC is LI."""
    cfg = small_config()
    m = Machine(cfg)
    r = m.allocate(4096, placement="local:2")
    reader = cpus_of(m, 1)[0]      # make the line shared at station 1
    writer = cpus_of(m, 0)[0]
    allc = (reader, writer)

    def rd():
        v = yield Read(r.addr(0))
        assert v == 0
        yield Barrier(0, allc)

    def wr():
        yield Barrier(0, allc)
        yield Write(r.addr(0), 55)

    m.run({reader: rd(), writer: wr()})
    e = home_entry(m, r.addr(0))
    assert e.state is LineState.GI
    assert m.stations[2].memory._owner_station(e) == 0
    wline = nc_line(m, 0, r.addr(0))
    assert wline.state is LineState.LI
    assert wline.proc_mask == 0b01
    assert m.stations[2].memory.stats.counter("invalidates_sent").value >= 1
    # the reader's stale copies are gone
    la = m.config.line_addr(r.addr(0))
    assert m.cpus[reader].l2.lookup(la) is None
    rline = nc_line(m, 1, r.addr(0))
    assert rline is None or rline.state is LineState.GI


def test_stale_reader_refetches_after_remote_write():
    cfg = small_config()
    m = Machine(cfg)
    r = m.allocate(4096, placement="local:2")
    reader = cpus_of(m, 1)[0]
    writer = cpus_of(m, 0)[0]
    allc = (reader, writer)

    def rd():
        v = yield Read(r.addr(0))
        assert v == 0
        yield Barrier(0, allc)
        yield Barrier(1, allc)
        v = yield Read(r.addr(0))   # stale copy was invalidated: refetch
        assert v == 55, v

    def wr():
        yield Barrier(0, allc)
        yield Write(r.addr(0), 55)
        yield Barrier(1, allc)

    m.run({reader: rd(), writer: wr()})
    assert m.read_word(r.addr(0)) == 55


def test_remote_read_of_remote_dirty_forwards_through_owner():
    """The §2.3 third example: home GI, dirty at Z; a read from X causes an
    intervention at Z, data goes to X and a copy home; home -> GV."""
    cfg = small_config()
    m = Machine(cfg)
    r = m.allocate(4096, placement="local:2")   # home station 2 (ring 1)
    owner = cpus_of(m, 1)[0]                    # Z = station 1
    reader = cpus_of(m, 0)[0]                   # X = station 0
    allc = (owner, reader)

    def own():
        yield Write(r.addr(0), 321)
        yield Barrier(0, allc)
        yield Barrier(1, allc)

    def rd():
        yield Barrier(0, allc)
        v = yield Read(r.addr(0))
        assert v == 321, v
        yield Barrier(1, allc)

    m.run({owner: own(), reader: rd()})
    e = home_entry(m, r.addr(0))
    assert e.state is LineState.GV
    # the home DRAM received its copy
    la = m.config.line_addr(r.addr(0))
    assert m.stations[2].memory.read_line(la)[0] == 321
    # owner's NC kept a (now shared) copy: fig 6 LI --RemRead--> GV
    zline = nc_line(m, 1, r.addr(0))
    assert zline.state is LineState.GV
    # owner's L2 downgraded to SHARED
    assert m.cpus[owner].l2.lookup(la).state is CacheState.SHARED


def test_remote_write_of_remote_dirty_transfers_ownership():
    """Home GI with owner Z; a write from X moves exclusive ownership
    X <- Z without any invalidation multicast (no other sharers)."""
    cfg = small_config()
    m = Machine(cfg)
    r = m.allocate(4096, placement="local:2")
    owner = cpus_of(m, 1)[0]
    writer = cpus_of(m, 0)[0]
    allc = (owner, writer)

    def own():
        yield Write(r.addr(0), 1)
        yield Barrier(0, allc)
        yield Barrier(1, allc)
        v = yield Read(r.addr(0))
        assert v == 2, v

    def wr():
        yield Barrier(0, allc)
        yield Write(r.addr(0), 2)
        yield Barrier(1, allc)

    m.run({owner: own(), writer: wr()})
    e = home_entry(m, r.addr(0))
    assert e.state in (LineState.GI, LineState.GV)
    if e.state is LineState.GI:
        # ownership may have moved back via the final read; accept either
        assert m.stations[2].memory._owner_station(e) in (0, 1)


def test_upgrade_is_ack_only_when_copy_still_valid():
    """§2.3: write permission for a still-shared line is granted without
    sending data (the optimistic case Table: 'upgrade')."""
    cfg = small_config()
    m = Machine(cfg)
    r = m.allocate(4096, placement="local:1")
    writer = cpus_of(m, 0)[0]

    def prog():
        yield Read(r.addr(0))       # shared copy
        yield Write(r.addr(0), 9)   # upgrade

    m.run({writer: prog()})
    assert m.read_word(r.addr(0)) == 9
    s = m.nc_stats()
    assert s.get("special_reads", 0) == 0
    mem = m.memory_stats()
    assert mem.get("upgrade_data_sent", 0) == 0


def test_sequential_consistency_locking_holds_data_until_invalidate():
    """With sc_locking, the writer's NC releases the data only after its
    own copy of the ordered invalidation arrives; disabling the lock must
    not change values, only timing."""
    results = {}
    for sc in (True, False):
        cfg = small_config(sc_locking=sc)
        m = Machine(cfg)
        r = m.allocate(4096, placement="local:2")
        reader = cpus_of(m, 1)[0]
        writer = cpus_of(m, 0)[0]
        allc = (reader, writer)

        def rd():
            yield Read(r.addr(0))
            yield Barrier(0, allc)
            yield Barrier(1, allc)

        def wr():
            yield Barrier(0, allc)
            yield Write(r.addr(0), 1)
            yield Barrier(1, allc)

        res = m.run({reader: rd(), writer: wr()})
        results[sc] = res.time_ticks
        assert m.read_word(r.addr(0)) == 1
    assert results[True] >= results[False]


def test_gi_to_gv_on_nc_ejection_writeback():
    """Fig. 5: GI --RemWrBack--> GV when the owning NC ejects its LV line."""
    # L2 larger than the NC so an NC slot conflict is not an L2 conflict
    cfg = small_config(l2_size_bytes=64 * 1024, nc_size_bytes=32 * 1024)
    m = Machine(cfg)
    cfg_line = cfg.line_bytes
    # two lines homed on station 1 that collide in station 0's NC
    nc_slots = cfg.nc_size_bytes // cfg_line
    base = m.allocate(cfg_line * (nc_slots + 1), placement="local:1")
    a = base.addr(0)
    b = base.addr(nc_slots * cfg_line)   # same NC slot as a
    writer = cpus_of(m, 0)[0]

    def prog():
        yield Write(a, 41)               # station 0 owns line a (NC LI)
        v = yield Read(a)
        assert v == 41
        # write back a's data into the NC (evict from L2 by... simpler:
        # a is dirty in L2; touching b only moves NC entries, so instead
        # read a lot to be safe) - here we directly displace the NC entry:
        yield Read(b)                    # b misses -> occupies the slot
        yield Barrier(0, (writer,))

    m.run({writer: prog()})
    e_a = home_entry(m, a)
    # a's NC entry was LI (dirty still in L2): info lost, home still GI
    assert e_a.state is LineState.GI
    assert m.nc_stats().get("li_info_lost", 0) >= 1


def test_false_remote_request_resolved():
    """§4.6 Table 3: NC loses an LI entry; the next local miss bounces off
    home as a 'false remote' intervention back to the same station and is
    satisfied by the local dirty copy."""
    cfg = small_config(l2_size_bytes=64 * 1024, nc_size_bytes=32 * 1024)
    m = Machine(cfg)
    nc_slots = cfg.nc_size_bytes // cfg.line_bytes
    base = m.allocate(cfg.line_bytes * (nc_slots + 1), placement="local:1")
    a = base.addr(0)
    b = base.addr(nc_slots * cfg.line_bytes)
    p0, p1 = cpus_of(m, 0)[:2]
    allc = (p0, p1)

    def owner():
        yield Write(a, 17)          # P0 dirty; NC LI
        yield Read(b)               # eject the NC's LI entry for a
        yield Barrier(0, allc)
        yield Barrier(1, allc)

    def sibling():
        yield Barrier(0, allc)
        v = yield Read(a)           # NC NotIn -> home -> false remote
        assert v == 17, v
        yield Barrier(1, allc)

    m.run({p0: owner(), p1: sibling()})
    assert m.nc_stats().get("false_remotes", 0) >= 1
    assert m.false_remote_rate() > 0
