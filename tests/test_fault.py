"""Tests for the fault-injection harness (repro.fault).

The contract under test, per fault class:

* **delay-class** faults (link stalls, packet delay, service-time spikes,
  FIFO/credit squeezes) reshuffle timing but may never change *results* —
  a commutative counter workload must end with the analytically known
  final memory values, fault plan or not.
* **loss-class** faults (packet duplication, permanent stalls) may break
  the protocol by design — the run must then *detect and report* (an
  invariant violation or a watchdog dump), never silently corrupt data or
  hang.

Plus: same seed + plan replays the identical event stream, and the
watchdog converts both flavours of "nothing happens anymore" (drained
queue, runaway spin) into a diagnostic :class:`WatchdogError`.
"""

from __future__ import annotations

import pytest

from repro import Barrier, Compute, Machine, MachineConfig, Read
from repro.cpu.ops import AtomicRMW
from repro.fault import (
    FaultEvent,
    FaultPlan,
    Watchdog,
    WatchdogError,
    diagnostic_dump,
)
from repro.verify import CoherenceChecker, InvariantViolation


def _small():
    return MachineConfig.small(stations_per_ring=2, rings=2, cpus=4)


WORDS, INCS = 8, 20


def _counter_run(machine, nprocs=4):
    """Commutative atomic increments with an analytic oracle: returns
    (final values, expected values)."""
    cfg = machine.config
    # homed on station 1 while the active CPUs sit on station 0: every
    # access crosses the ring, so link/packet faults are on the data path
    arr = machine.allocate(WORDS * cfg.word_bytes, placement="local:1",
                           name="ctr")
    cpus = tuple(range(nprocs))

    def worker(tid):
        yield Barrier(0, cpus)
        for k in range(INCS):
            yield AtomicRMW(arr.addr(((tid + k) % WORDS) * cfg.word_bytes),
                            lambda v: v + 1)
            yield Compute(4)
        yield Barrier(1, cpus)

    machine.run({cpu: worker(tid) for tid, cpu in enumerate(cpus)})
    machine.flush_all_dirty()
    got = [machine.read_word(arr.addr(i * cfg.word_bytes))
           for i in range(WORDS)]
    want = [0] * WORDS
    for tid in range(nprocs):
        for k in range(INCS):
            want[(tid + k) % WORDS] += 1
    return got, want


def _delay_plan():
    return FaultPlan(seed=7, events=[
        FaultEvent("link_stall", 3_000.0,
                   {"ring": "local:0", "pos": 1, "duration_ns": 5_000.0}),
        FaultEvent("packet_delay", 1_000.0,
                   {"station": 1, "duration_ns": 8_000.0, "prob": 0.4,
                    "delay_ns": 600.0}),
        FaultEvent("service_spike", 2_000.0,
                   {"target": "mem", "station": 0, "duration_ns": 6_000.0,
                    "factor": 6}),
    ])


# ----------------------------------------------------------------------
# fault plans
# ----------------------------------------------------------------------
def test_fault_class_classification():
    assert _delay_plan().fault_class() == "delay"
    dup = FaultPlan(seed=1, events=[
        FaultEvent("packet_dup", 0.0, {"station": 0, "duration_ns": 1e4,
                                       "prob": 0.2})])
    assert dup.fault_class() == "loss"
    perm = FaultPlan(seed=1, events=[
        FaultEvent("link_stall", 0.0,
                   {"ring": "local:0", "pos": 0, "permanent": True})])
    assert perm.fault_class() == "loss"


def test_random_plans_are_seed_deterministic():
    cfg = _small()
    a = FaultPlan.random(42, cfg, allow_loss=True)
    b = FaultPlan.random(42, cfg, allow_loss=True)
    assert a.describe() == b.describe()
    assert FaultPlan.random(43, cfg).describe() != a.describe()


def test_unknown_fault_kind_rejected():
    with pytest.raises(ValueError):
        FaultEvent("bit_flip", 0.0, {})


# ----------------------------------------------------------------------
# delay-class: timing changes, results don't
# ----------------------------------------------------------------------
def test_delay_faults_preserve_final_memory():
    clean = Machine(_small())
    got, want = _counter_run(clean)
    assert got == want

    faulted = Machine(_small())
    faulted.attach_fault(_delay_plan())
    got_f, want_f = _counter_run(faulted)
    assert got_f == want_f == want
    # the plan really did something: faults fired and time moved
    assert sum(faulted.fault.triggered.values()) > 0
    assert faulted.engine.now != clean.engine.now


def test_fault_injection_is_deterministic():
    def fingerprint():
        machine = Machine(_small())
        machine.attach_fault(_delay_plan())
        _counter_run(machine)
        return machine.engine.now, machine.engine.events_run

    assert fingerprint() == fingerprint()


def test_fifo_and_credit_squeeze_still_completes():
    machine = Machine(_small())
    machine.attach_fault(FaultPlan(seed=3, events=[],
                                   in_fifo_capacity=8, nonsink_limit=2))
    machine.attach_verifier(CoherenceChecker())
    got, want = _counter_run(machine)
    assert got == want


def test_delay_faults_pass_the_invariant_checker():
    machine = Machine(_small())
    machine.attach_verifier(CoherenceChecker())
    machine.attach_fault(_delay_plan())
    got, want = _counter_run(machine)
    assert got == want


# ----------------------------------------------------------------------
# loss-class: must detect-and-report, never corrupt silently
# ----------------------------------------------------------------------
def test_loss_faults_detect_or_stay_harmless():
    machine = Machine(_small())
    machine.attach_verifier(CoherenceChecker(max_locked_ticks=500_000))
    machine.attach_watchdog(max_ticks=50_000_000, interval=2_000)
    machine.attach_fault(FaultPlan(seed=9, events=[
        FaultEvent("packet_dup", 500.0,
                   {"station": 0, "duration_ns": 50_000.0, "prob": 1.0}),
    ]))
    try:
        got, want = _counter_run(machine)
    except (InvariantViolation, WatchdogError):
        return  # detected and reported: the required outcome
    # duplication happened to be absorbed -- then data must still be right
    assert got == want


# ----------------------------------------------------------------------
# watchdog: silent hangs become diagnostic dumps
# ----------------------------------------------------------------------
def test_watchdog_requires_a_bound():
    with pytest.raises(ValueError):
        Watchdog(Machine(_small()))


def test_watchdog_wraps_barrier_deadlock_with_dump():
    machine = Machine(_small())
    machine.attach_watchdog(max_ticks=10_000_000)

    def lonely(tid):
        yield Barrier(0, (0, 1))  # partner never arrives

    with pytest.raises(WatchdogError) as exc_info:
        machine.run({0: lonely(0)})
    msg = str(exc_info.value)
    assert "watchdog diagnostic dump" in msg
    assert "barrier" in msg  # the blocked component is named
    assert exc_info.value.dump["blocked"]


def test_watchdog_bounds_a_spin_livelock():
    machine = Machine(_small())
    machine.attach_watchdog(max_ticks=1_000_000, interval=200)
    flag = machine.allocate(64, placement="local:1", name="flag")

    def spinner(tid):
        while True:  # the flag is never set: spins forever
            v = yield Read(flag.addr(0))
            if v:
                break
            yield Compute(50)

    with pytest.raises(WatchdogError) as exc_info:
        machine.run({0: spinner(0)})
    dump = exc_info.value.dump
    assert dump["now_ticks"] > 1_000_000
    assert dump["events_run"] > 0


def test_diagnostic_dump_shape():
    machine = Machine(_small())
    dump = diagnostic_dump(machine)
    for key in ("now_ticks", "now_ns", "events_run", "pending_events",
                "blocked", "fifos", "locked_memory_lines",
                "locked_nc_lines", "ring_interfaces", "in_flight"):
        assert key in dump, key
