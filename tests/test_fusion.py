"""Transit fusion (``NUMACHINE_FUSE=on``) — the exactness contract.

Fusion is an execution strategy, not a model change: collapsing a
deterministic chain of ring pass-through hops into one closed-form
macro-event must leave the canonical reporting surface — final simulated
time, ``nc_stats`` / ``memory_stats`` / ``utilizations`` /
``ring_interface_delays`` — bit-identical to the hop-by-hop run, while
only ``events_run`` shrinks.  These tests pin that contract across
processor counts, schedulers and backends; exercise the segment
reservation table's conflict repair under backpressure storms; and unit
test the O(1) tombstone cancellation it is built on.
"""

from __future__ import annotations

import pytest

from repro.sim.engine import Engine
from repro.system.config import MachineConfig
from repro.system.machine import Machine
from repro.workloads.synthetic import HotSpot


def _surface(machine: Machine) -> tuple:
    """The canonical reporting surface (everything except event counts)."""
    return (
        machine.engine.now,
        machine.nc_stats(),
        machine.memory_stats(),
        machine.utilizations(),
        machine.ring_interface_delays(),
    )


def _run(backend: str, nprocs: int, config: MachineConfig = None) -> tuple:
    machine = Machine(config or MachineConfig.prototype(), backend=backend)
    HotSpot(words=16, ops=40).run(machine, nprocs=nprocs)
    assert machine.backend == backend
    return _surface(machine), machine.event_counts()


# ----------------------------------------------------------------------
# cross-mode bit-identity: {off, on} x {interp, elab} x {heap, calendar} x P
# ----------------------------------------------------------------------
@pytest.mark.parametrize("nprocs", [4, 16, 64])
def test_fused_surface_bit_identical(monkeypatch, nprocs):
    prints = {}
    for sched in ("heap", "calendar"):
        monkeypatch.setenv("NUMACHINE_SCHED", sched)
        by_mode = {}
        for fuse in ("off", "on"):
            monkeypatch.setenv("NUMACHINE_FUSE", fuse)
            surf_i, counts_i = _run("interp", nprocs)
            surf_e, counts_e = _run("elab", nprocs)
            # backend bit-identity holds *within* a fusion mode on the
            # full surface including the macro-event count
            assert (surf_i, counts_i) == (surf_e, counts_e), (
                f"interp/elab mismatch under {sched} fuse={fuse}"
            )
            assert counts_i["fuse"] == fuse
            by_mode[fuse] = (surf_i, counts_i)
        off_surf, off_counts = by_mode["off"]
        on_surf, on_counts = by_mode["on"]
        # fusion changes only the event count: the surface is bit-identical
        assert on_surf == off_surf, f"fused surface diverged under {sched}"
        # the unfused run fuses nothing; the fused run accounts for every
        # elided hop exactly (tombstone pops subtracted back out)
        assert off_counts["fused"] == 0 and off_counts["cancels"] == 0
        assert off_counts["hop_equivalent"] == off_counts["events"]
        assert on_counts["hop_equivalent"] == off_counts["events"]
        if nprocs >= 16:
            assert on_counts["fused"] > 0
            assert on_counts["events"] < off_counts["events"]
        prints[sched] = (off_surf, on_surf)
    assert prints["heap"] == prints["calendar"]


# ----------------------------------------------------------------------
# conflict repair: backpressure halts must cancel and replay fused transits
# ----------------------------------------------------------------------
def test_contention_storm_repairs_fused_transits(monkeypatch):
    """A hot-spot behind shrunken input FIFOs raises halt_link storms that
    land inside fused windows: each one must cancel the macro arrival,
    roll the skipped links back and replay hop-by-hop — without moving a
    single bit of the canonical surface."""

    def storm(fuse: str) -> tuple:
        monkeypatch.setenv("NUMACHINE_FUSE", fuse)
        config = MachineConfig.prototype()
        config.ring_in_fifo_capacity = 6
        machine = Machine(config, backend="interp")
        HotSpot(words=8, ops=60).run(machine, nprocs=16)
        halts = sum(r.halts.value for r in machine.net.rings.values())
        return _surface(machine), machine.event_counts(), halts

    surf_on, counts_on, halts_on = storm("on")
    surf_off, counts_off, halts_off = storm("off")
    assert halts_on > 0, "storm did not trigger backpressure halts"
    assert counts_on["cancels"] > 0, "no fused transit was ever repaired"
    assert counts_on["fused"] > counts_on["cancels"]
    assert surf_on == surf_off
    assert halts_on == halts_off
    assert counts_on["hop_equivalent"] == counts_off["events"]


# ----------------------------------------------------------------------
# tombstone cancellation: O(1), scheduler-agnostic, accounted
# ----------------------------------------------------------------------
@pytest.mark.parametrize("sched", ["heap", "calendar"])
def test_cancel_tombstone(sched):
    engine = Engine(scheduler=sched)
    assert engine.scheduler_name == sched
    fired = []
    doomed = engine.schedule_cancellable_at(10, lambda: fired.append("doomed"))
    engine.schedule_cancellable_at(10, fired.append, arg="kept")
    assert engine.cancel(doomed) is True
    assert engine.cancel(doomed) is False  # second cancel is a no-op
    assert engine.cancels == 1
    engine.run()
    assert fired == ["kept"]
    # the tombstoned tuple still popped as one (empty) event
    assert engine.events_run == 2
    assert engine.now == 10


@pytest.mark.parametrize("sched", ["heap", "calendar"])
def test_cancel_after_fire_returns_false(sched):
    engine = Engine(scheduler=sched)
    fired = []
    handle = engine.schedule_cancellable_at(5, fired.append, arg="x")
    engine.run()
    assert fired == ["x"]
    assert engine.cancel(handle) is False
    assert engine.cancels == 0


@pytest.mark.parametrize("sched", ["heap", "calendar"])
def test_cancelled_key_slot_is_reusable(sched):
    """Repair can push a replacement event at the *exact* (time, priority,
    key) of a cancelled fused arrival; tuple comparison then reaches the
    callback slot and must not raise (Cancellable compares neither-less)."""
    engine = Engine(scheduler=sched)
    fired = []
    stale = engine.schedule_cancellable_keyed_at(
        7, 0x5A5A, lambda p: fired.append(("stale", p)), arg=1
    )
    engine.cancel(stale)
    engine.schedule_keyed_at(7, 0x5A5A, lambda p: fired.append(("live", p)), arg=2)
    engine.run()
    assert fired == [("live", 2)]
    assert engine.events_run == 2
    assert engine.cancels == 1
