"""End-to-end correctness of the SPLASH-2-like applications."""

import math

import pytest

from repro import Machine
from repro.workloads.barnes import Barnes, direct_forces
from repro.workloads.fmm import FMM, direct_potentials
from repro.workloads.ocean import Ocean
from repro.workloads.radiosity import Radiosity
from repro.workloads.raytrace import Raytrace
from repro.workloads.water import WaterNsquared, WaterSpatial

from conftest import small_config


def test_barnes_against_direct_sum():
    m = Machine(small_config())
    wl = Barnes(nbodies=40, steps=1, theta=0.3)
    wl.run(m, nprocs=4)
    got = wl.accelerations(m)
    ref = direct_forces(wl.default_bodies(), wl.eps2)
    for (a, b, c), (x, y, z) in zip(got, ref):
        mag = math.sqrt(x * x + y * y + z * z) + 1e-12
        err = math.sqrt((a - x) ** 2 + (b - y) ** 2 + (c - z) ** 2) / mag
        assert err < 0.05, err


def test_barnes_deterministic_across_nprocs():
    results = []
    for nprocs in (1, 4):
        m = Machine(small_config())
        wl = Barnes(nbodies=24, steps=1, theta=0.5)
        wl.run(m, nprocs=nprocs)
        results.append(wl.accelerations(m))
    for (a1, b1, c1), (a2, b2, c2) in zip(*results):
        assert abs(a1 - a2) < 1e-12 and abs(b1 - b2) < 1e-12


def test_fmm_against_direct_sum():
    m = Machine(small_config())
    wl = FMM(nparticles=32, grid=4)
    wl.run(m, nprocs=4)
    got = wl.potentials(m)
    ref = direct_potentials(wl.particles0)
    for a, b in zip(got, ref):
        assert abs(a - b) / max(1.0, abs(b)) < 1e-3


def test_ocean_residual_decreases():
    m = Machine(small_config())
    wl = Ocean(n=12, sweeps=4)
    wl.run(m, nprocs=4)
    assert wl.residual_norm(m) < 0.01


def test_ocean_single_vs_parallel_same_result():
    grids = []
    for nprocs in (1, 4):
        m = Machine(small_config())
        wl = Ocean(n=10, sweeps=3)
        wl.run(m, nprocs=nprocs)
        g = [
            [m.read_word(wl.grid.addr(i, j)) for j in range(wl.n)]
            for i in range(wl.n)
        ]
        grids.append(g)
    # red-black ordering is deterministic and independent of thread count
    for r1, r2 in zip(*grids):
        for v1, v2 in zip(r1, r2):
            assert abs(v1 - v2) < 1e-12


@pytest.mark.parametrize("cls,nmol", [(WaterNsquared, 16), (WaterSpatial, 27)])
def test_water_runs_and_molecules_stay_in_box(cls, nmol):
    m = Machine(small_config())
    wl = cls(nmol=nmol, steps=1)
    wl.run(m, nprocs=4)
    for (x, y, z) in wl.positions(m):
        assert -1e-9 <= x <= wl.box + 1e-9
        assert -1e-9 <= y <= wl.box + 1e-9
        assert -1e-9 <= z <= wl.box + 1e-9


def test_water_nsq_newtons_third_law_total_force():
    """With pairwise antisymmetric forces the total must be ~zero."""
    m = Machine(small_config())
    wl = WaterNsquared(nmol=16, steps=1)
    wl.run(m, nprocs=4)
    totals = [0.0, 0.0, 0.0]
    for i in range(wl.n):
        for d in range(3):
            totals[d] += m.read_word(wl.frc.addr(3 * i + d))
    assert all(abs(t) < 1e-9 for t in totals)


def test_raytrace_pixels_match_reference_render():
    m = Machine(small_config())
    wl = Raytrace(image=8, nspheres=6)
    wl.run(m, nprocs=4)
    fb = wl.framebuffer(m)
    ref = [
        wl.shade_with_scene(wl.spheres0, px, py)
        for py in range(wl.image) for px in range(wl.image)
    ]
    assert fb == ref


def test_raytrace_every_tile_claimed_once():
    m = Machine(small_config())
    wl = Raytrace(image=8, nspheres=4, tile=4)
    wl.run(m, nprocs=4)
    fb = wl.framebuffer(m)
    assert all(isinstance(v, float) for v in fb)  # no pixel left unwritten


def test_radiosity_matches_jacobi_reference():
    m = Machine(small_config())
    wl = Radiosity(patches_per_wall=2, iterations=2)
    wl.run(m, nprocs=4)
    got = wl.radiosities(m)
    ref = wl.reference_solution()
    assert max(abs(a - b) for a, b in zip(got, ref)) < 1e-9


def test_radiosity_light_spreads():
    m = Machine(small_config())
    wl = Radiosity(patches_per_wall=2, iterations=3)
    wl.run(m, nprocs=4)
    got = wl.radiosities(m)
    # non-emitting patches received bounced light
    non_emitters = [b for b, e in zip(got, wl.emit) if e == 0.0]
    assert all(b > 0 for b in non_emitters)
